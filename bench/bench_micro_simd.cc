/**
 * @file
 * SIMD kernel microbenchmark: throughput of every host hot-path
 * kernel (Internet checksum, 5-tuple flow hash, Feistel scrambler,
 * packet-memory clear) on every backend the host supports, with
 * speedups over the generic scalar reference.
 *
 * Unlike bench_micro_interp this measures pure host arithmetic — no
 * simulated machine — so the numbers isolate the kernel layer that
 * net::inetChecksum, the batched dispatcher, AddressScrambler, and
 * Memory::reset() dispatch into (src/net/simd/).
 *
 * Output: a human-readable table on stdout and a JSON document
 * (default BENCH_simd.json, `--out=FILE`) with schema
 * "packetbench.bench_simd.v1".  ci/check_bench.py validates it; the
 * committed copy at the repo root is the baseline snapshot.
 *
 * Options: --batch=N (items per measured pass), --repeats=N
 * (best-of), --out=FILE, plus the usual --report/--prom/--trace.
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"

#include "common/rng.hh"
#include "net/simd/kernels.hh"
#include "obs/json.hh"

namespace
{

using namespace pb;
using namespace pb::net::simd;

/** Kernels measured, in table order. */
constexpr const char *kernelNames[] = {"checksum", "flowhash",
                                      "feistel", "clear"};
constexpr unsigned numKernels = 4;

constexpr unsigned headerLen = 20;   // IPv4 header per checksum op
constexpr unsigned clearLen = 1500;  // bytes per clear op (MTU-ish)
constexpr unsigned feistelRounds = 4;

/** Random inputs shared by every backend (identical work). */
struct Inputs
{
    std::vector<uint8_t> headers;      // batch x 20-byte headers
    std::vector<const uint8_t *> ptrs; // into headers
    std::vector<unsigned> lens;
    std::vector<uint32_t> src, dst, ports, proto;
    std::vector<uint32_t> addrs;
    std::vector<uint8_t> clearBuf;

    explicit Inputs(unsigned batch)
    {
        Rng rng(1905);
        headers.resize(static_cast<size_t>(batch) * headerLen);
        for (auto &byte : headers)
            byte = static_cast<uint8_t>(rng.below(256));
        for (unsigned i = 0; i < batch; i++) {
            ptrs.push_back(headers.data() +
                           static_cast<size_t>(i) * headerLen);
            lens.push_back(headerLen);
            src.push_back(rng.next());
            dst.push_back(rng.next());
            ports.push_back(rng.next());
            proto.push_back(rng.below(256));
            addrs.push_back(rng.next());
        }
        clearBuf.assign(clearLen, 0xa5);
    }
};

/**
 * One timed pass of kernel @p k on @p table; returns item count.
 * @p sink accumulates results so the work cannot be elided.
 */
unsigned
runPass(const KernelTable &table, unsigned k, Inputs &in,
        std::vector<uint16_t> &sums, std::vector<uint32_t> &words,
        uint64_t &sink)
{
    const unsigned batch = static_cast<unsigned>(in.lens.size());
    switch (k) {
      case 0:
        table.checksumBatch(in.ptrs.data(), in.lens.data(),
                            sums.data(), batch);
        sink += sums[0] + sums[batch - 1];
        return batch;
      case 1:
        table.flowHashBatch(in.src.data(), in.dst.data(),
                            in.ports.data(), in.proto.data(),
                            words.data(), batch);
        sink += words[0] + words[batch - 1];
        return batch;
      case 2:
        table.feistelBatch(in.addrs.data(), words.data(), batch,
                           0x5ca1ab1e, feistelRounds);
        sink += words[0] + words[batch - 1];
        return batch;
      case 3:
        // One buffer cleared per "op", batch ops per pass.
        for (unsigned i = 0; i < batch; i++)
            table.clearBytes(in.clearBuf.data(), clearLen);
        sink += in.clearBuf[0];
        return batch;
    }
    return 0;
}

/** Bytes handled by one op of kernel @p k (throughput in MB/s). */
unsigned
opBytes(unsigned k)
{
    switch (k) {
      case 0:
        return headerLen;
      case 3:
        return clearLen;
      default:
        return 4; // one 32-bit lane in, one out
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, [&] {
        uint32_t batch = bench::uintArg(argc, argv, "batch", 4096);
        uint32_t repeats = bench::uintArg(argc, argv, "repeats", 7);
        uint32_t passes = bench::uintArg(argc, argv, "passes", 200);
        std::string out = bench::fileArg(argc, argv, "out")
                              .value_or("BENCH_simd.json");

        bench::banner(
            "SIMD kernel throughput (backend x kernel, Mops)",
            "substrate benchmark; no paper counterpart");

        std::vector<Backend> backends;
        for (unsigned b = 0; b < numBackends; b++) {
            Backend backend = static_cast<Backend>(b);
            if (backendSupported(backend))
                backends.push_back(backend);
        }

        Inputs inputs(batch);
        std::vector<uint16_t> sums(batch);
        std::vector<uint32_t> words(batch);
        uint64_t sink = 0;

        // best[backend][kernel] in Mops (ops = items processed).
        std::vector<std::array<double, numKernels>> best(
            backends.size(), std::array<double, numKernels>{});
        // Interleaved best-of rounds: every (backend, kernel) cell
        // is timed once per round so slow drift hits all cells
        // evenly instead of whichever ran last.
        for (uint32_t r = 0; r < repeats; r++) {
            for (size_t bi = 0; bi < backends.size(); bi++) {
                const KernelTable &table =
                    backendTable(backends[bi]);
                for (unsigned k = 0; k < numKernels; k++) {
                    uint64_t ops = 0;
                    auto start = std::chrono::steady_clock::now();
                    for (uint32_t p = 0; p < passes; p++)
                        ops += runPass(table, k, inputs, sums,
                                       words, sink);
                    double ns =
                        std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count();
                    double mops =
                        ns > 0
                            ? static_cast<double>(ops) * 1e3 / ns
                            : 0;
                    if (mops > best[bi][k])
                        best[bi][k] = mops;
                }
            }
        }
        if (sink == uint64_t(-1)) // defeat dead-code elimination
            std::printf("sink %llu\n",
                        static_cast<unsigned long long>(sink));

        std::printf("%-8s %12s %12s %12s %12s\n", "backend",
                    "checksum", "flowhash", "feistel", "clear");
        obs::JsonValue::Array backends_json;
        for (size_t bi = 0; bi < backends.size(); bi++) {
            std::string name(backendName(backends[bi]));
            std::printf("%-8s", name.c_str());
            obs::JsonValue::Object kernels_json;
            for (unsigned k = 0; k < numKernels; k++) {
                double mops = best[bi][k];
                double speedup =
                    best[0][k] > 0 ? mops / best[0][k] : 0;
                std::printf(" %8.1f/%.2fx", mops, speedup);
                kernels_json.emplace_back(
                    kernelNames[k],
                    obs::JsonValue(obs::JsonValue::Object{
                        {"mops", mops},
                        {"mbytes_per_sec", mops * opBytes(k)},
                        {"speedup_vs_generic", speedup}}));
            }
            std::printf("\n");
            backends_json.push_back(
                obs::JsonValue(obs::JsonValue::Object{
                    {"backend", name},
                    {"kernels", std::move(kernels_json)}}));
        }

        obs::JsonValue doc(obs::JsonValue::Object{
            {"schema", "packetbench.bench_simd.v1"},
            {"batch", static_cast<uint64_t>(batch)},
            {"repeats", static_cast<uint64_t>(repeats)},
            {"passes", static_cast<uint64_t>(passes)},
            {"header_len", static_cast<uint64_t>(headerLen)},
            {"clear_len", static_cast<uint64_t>(clearLen)},
            {"active_backend",
             std::string(backendName(activeBackend()))},
            {"best_backend",
             std::string(backendName(bestSupportedBackend()))},
            {"backends", std::move(backends_json)}});
        std::ofstream file(out);
        if (!file)
            fatal("cannot write %s", out.c_str());
        file << doc.dump(2) << "\n";
        std::fprintf(stderr, "benchmark written to %s\n",
                     out.c_str());
    });
}
