/**
 * @file
 * Extension: header vs payload processing cost as a function of
 * packet size.
 *
 * The paper's evaluation covers header-processing applications (HPA)
 * and notes PacketBench also characterizes payload processing (PPA,
 * as defined in CommBench).  This bench sweeps the packet size and
 * shows the defining contrast: HPA cost is flat in packet size, PPA
 * cost grows linearly.
 */

#include "apps/crc_app.hh"
#include "apps/flow_class.hh"
#include "apps/ipv4_trie.hh"
#include "apps/xtea_app.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "net/ipv4.hh"
#include "route/prefix.hh"

namespace
{

using namespace pb;

uint64_t
costAtSize(core::Application &app, uint16_t total_len)
{
    core::PacketBench bench(app);
    net::FiveTuple tuple;
    tuple.src = 0x0a010203;
    tuple.dst = 0x0b040506;
    tuple.srcPort = 1;
    tuple.dstPort = 2;
    tuple.proto = 17;
    net::Packet packet;
    packet.bytes = net::buildIpv4Packet(tuple, total_len, 64, 0x3c);
    packet.wireLen = total_len;
    return bench.processPacket(packet).stats.instCount;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        bench::banner(
            "Extension: HPA vs PPA Cost vs Packet Size",
            "header apps are size-independent; payload apps scale "
            "linearly (CommBench's HPA/PPA distinction)");

        apps::Ipv4TrieApp trie(route::generateSmallTable(160, 1));
        apps::FlowClassApp flow(1024);
        apps::CrcApp crc;
        apps::XteaApp xtea;

        TextTable table(5);
        table.header({"IP total length", "trie (HPA)", "flow (HPA)",
                      "CRC32 (PPA)", "XTEA (PPA)"});
        for (uint16_t size : {40, 64, 96, 128, 256, 512}) {
            // Captured bytes == total length here (no snap).
            table.row({std::to_string(size),
                       std::to_string(costAtSize(trie, size)),
                       std::to_string(costAtSize(flow, size)),
                       std::to_string(costAtSize(crc, size)),
                       std::to_string(costAtSize(xtea, size))});
        }
        std::printf("%s", table.render().c_str());
        std::printf("\ninstructions per payload byte: CRC32 ~13, "
                    "XTEA ~135 (32 rounds per 8-byte block)\n");
    });
}
