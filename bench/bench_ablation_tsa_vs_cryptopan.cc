/**
 * @file
 * Ablation: TSA vs full per-bit prefix-preserving anonymization.
 *
 * TSA's design claim (paper reference [26]) is that replacing the
 * per-bit PRF walk of Xu et al. with one top-table lookup plus a
 * shared replicated subtree makes prefix-preserving anonymization
 * cheap enough for per-packet use.  This bench compares the two on
 * the host (wall-clock per address) and reports TSA's simulated
 * per-packet cost and table footprints.
 */

#include <chrono>

#include "anon/tsa.hh"
#include "apps/tsa_app.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "common/texttable.hh"
#include "net/tracegen.hh"

namespace
{

/** Nanoseconds per call of @p fn over @p iterations addresses. */
template <typename Fn>
double
nsPerCall(Fn &&fn, uint32_t iterations)
{
    pb::Rng rng(7);
    // Warm up and defeat dead-code elimination with a checksum.
    volatile uint32_t sink = 0;
    auto start = std::chrono::steady_clock::now();
    for (uint32_t i = 0; i < iterations; i++)
        sink = sink ^ fn(rng.next());
    auto stop = std::chrono::steady_clock::now();
    (void)sink;
    return std::chrono::duration<double, std::nano>(stop - start)
               .count() /
           iterations;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t iterations = bench::packetArg(argc, argv, 2'000'000);
        bench::banner(
            "Ablation: TSA vs Full Per-Bit Prefix-Preserving "
            "Anonymization",
            "TSA trades precomputed tables for a ~10x cheaper "
            "per-address operation");

        anon::TsaAnonymizer tsa(0x1234);
        anon::CryptoPanPp pan(0x1234);

        double tsa_ns = nsPerCall(
            [&](uint32_t a) { return tsa.anonymize(a); }, iterations);
        double pan_ns = nsPerCall(
            [&](uint32_t a) { return pan.anonymize(a); }, iterations);

        TextTable table(4);
        table.header({"Scheme", "host ns/address", "table bytes",
                      "per-bit PRF calls"});
        table.row({"TSA (top-hash + subtree)",
                   strprintf("%.1f", tsa_ns),
                   withCommas(anon::tsalayout::topBytes +
                              anon::tsalayout::subtreeBytes),
                   "0"});
        table.row({"Full per-bit (Xu et al.)",
                   strprintf("%.1f", pan_ns), "0", "32"});
        table.row({"speedup", strprintf("%.1fx", pan_ns / tsa_ns),
                   "-", "-"});
        std::printf("%s", table.render().c_str());

        // Simulated per-packet cost of the TSA application.
        apps::TsaApp app(0x1234);
        core::PacketBench pbench(app);
        net::SyntheticTrace trace(net::Profile::MRA, 200, 2);
        double insts = 0;
        uint32_t n = 0;
        while (auto packet = trace.next()) {
            insts += static_cast<double>(
                pbench.processPacket(*packet).stats.instCount);
            n++;
        }
        std::printf("\nsimulated TSA application: %.1f instructions "
                    "per packet (both addresses + header collection)\n",
                    insts / n);
    });
}
