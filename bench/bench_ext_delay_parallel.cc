/**
 * @file
 * Extension: analytic processing delay and multi-core allocation.
 *
 * The paper's Section V-D points at two downstream uses of the
 * workload characteristics: an analytic per-packet processing-delay
 * model (their ref. [29]) and processor-allocation studies (ref.
 * [31]).  This bench feeds the measured per-packet statistics into
 * the delay model and dispatches the trace onto 1..16 parallel
 * IXP-class engines.
 */

#include "analysis/delaymodel.hh"
#include "apps/crc_app.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "core/multicore.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    using namespace pb::an;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 2'000);
        CoreModel core; // IXP2400-class defaults
        bench::banner(
            strprintf("Extension: Processing Delay Model + "
                      "Multi-Core Allocation (MRA, %u packets, "
                      "%.0f MHz engines)", packets, core.clockMhz),
            "delay = (insts x CPI + mem accesses x latency) / f; "
            "throughput from earliest-free-core dispatch");

        ExperimentConfig cfg;
        TextTable delay_table(4);
        delay_table.header({"App", "mean delay (us)", "max (us)",
                            "1-core kpps"});
        std::vector<std::pair<AppKind, std::vector<double>>> services;
        for (AppKind kind : extendedAppKinds) {
            AppRun run =
                runApp(kind, net::Profile::MRA, packets, cfg);
            DelaySummary summary = summarizeDelay(run.stats, core);
            delay_table.row(
                {appTitle(kind),
                 strprintf("%.3f", summary.meanUsec),
                 strprintf("%.3f", summary.maxUsec),
                 strprintf("%.1f", summary.corePacketsPerSec / 1e3)});
            std::vector<double> service;
            service.reserve(run.stats.size());
            for (const auto &stats : run.stats)
                service.push_back(packetDelayUsec(stats, core));
            services.emplace_back(kind, std::move(service));
        }
        std::printf("%s\n", delay_table.render().c_str());

        TextTable scale_table(6);
        scale_table.header({"App", "1 core", "2", "4", "8",
                            "16 (kpps)"});
        for (const auto &[kind, service] : services) {
            std::vector<std::string> cells{appTitle(kind)};
            for (uint32_t cores : {1u, 2u, 4u, 8u, 16u}) {
                ParallelResult result =
                    simulateParallel(service, {}, cores);
                cells.push_back(
                    strprintf("%.0f", result.throughputPps / 1e3));
            }
            scale_table.row(std::move(cells));
        }
        std::printf("%s", scale_table.render().c_str());
        std::printf("\nsaturation throughput scales ~linearly with "
                    "engines (packet-level parallelism, the premise "
                    "of NP architectures)\n\n");

        // The analytic model predicts; the real multi-engine
        // simulation (core/multicore.hh) measures.  Host wall-clock
        // speedup of the threaded run loop over the serial reference,
        // same flow-pinned dispatch and identical per-engine
        // outcomes.
        TextTable wall_table(5);
        wall_table.header({"App (measured)", "serial ms", "2 eng x",
                           "4 eng x", "8 eng x"});
        for (AppKind kind : extendedAppKinds) {
            auto factory = [kind, &cfg] { return makeApp(kind, cfg); };
            core::MultiCoreBench serial_cores(factory, 1);
            net::SyntheticTrace serial_trace(net::Profile::MRA,
                                             packets, cfg.traceSeed);
            core::MultiCoreResult serial =
                serial_cores.run(serial_trace, packets);
            std::vector<std::string> cells{
                appTitle(kind),
                strprintf("%.1f", serial.wallNs / 1e6)};
            for (uint32_t engines : {2u, 4u, 8u}) {
                core::BenchConfig mc_cfg;
                mc_cfg.parallel = true;
                core::MultiCoreBench par_cores(factory, engines, mc_cfg);
                net::SyntheticTrace par_trace(net::Profile::MRA,
                                              packets, cfg.traceSeed);
                core::MultiCoreResult par =
                    par_cores.run(par_trace, packets);
                cells.push_back(strprintf(
                    "%.2f", static_cast<double>(serial.wallNs) /
                                static_cast<double>(par.wallNs)));
            }
            wall_table.row(std::move(cells));
        }
        std::printf("%s", wall_table.render().c_str());
        std::printf("\nwall-clock speedup of the threaded run loop "
                    "(one worker per engine) over the serial "
                    "reference on this host\n");
    });
}
