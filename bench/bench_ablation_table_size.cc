/**
 * @file
 * Ablation: routing-table size vs lookup cost.
 *
 * The paper attributes IPv4-radix's weight to walking the radix
 * structure and IPv4-trie's speed to level compression.  This bench
 * sweeps the table size and reports the per-packet simulated cost of
 * both structures plus the LC-trie's average depth — showing that
 * the radix walk grows with prefix-length coverage while the LC-trie
 * stays nearly flat.
 */

#include "apps/ipv4_radix.hh"
#include "apps/ipv4_trie.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "net/tracegen.hh"
#include "route/lctrie.hh"

namespace
{

double
meanInsts(pb::core::Application &app, uint32_t packets)
{
    using namespace pb;
    core::BenchConfig cfg;
    cfg.scramble = true;
    core::PacketBench bench(app, cfg);
    net::SyntheticTrace trace(net::Profile::MRA, packets, 2);
    double total = 0;
    uint32_t n = 0;
    while (auto packet = trace.next()) {
        total += static_cast<double>(
            bench.processPacket(*packet).stats.instCount);
        n++;
    }
    return total / n;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 300);
        bench::banner(
            strprintf("Ablation: Routing Table Size vs Lookup Cost "
                      "(MRA, %u packets per point)", packets),
            "radix cost grows with table depth; LC-trie stays flat "
            "(level compression)");

        TextTable table(6);
        table.header({"Prefixes", "radix insts/pkt",
                      "radix nodes", "trie insts/pkt",
                      "trie avg depth", "trie nodes"});
        for (uint32_t size : {256u, 1024u, 4096u, 16384u, 65536u}) {
            auto entries = route::generateCoreTable(size, 1);
            apps::Ipv4RadixApp radix_app(entries);
            apps::Ipv4TrieApp trie_app(entries);
            route::LcTrie trie(entries);
            table.row({withCommas(size),
                       strprintf("%.0f", meanInsts(radix_app, packets)),
                       withCommas(radix_app.radix().numNodes()),
                       strprintf("%.0f", meanInsts(trie_app, packets)),
                       strprintf("%.2f", trie.averageDepth()),
                       withCommas(trie.numNodes())});
        }
        std::printf("%s", table.render().c_str());
    });
}
