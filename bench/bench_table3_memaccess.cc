/**
 * @file
 * Table III: average accesses to packet and non-packet memory.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 10'000);
        bench::banner(
            strprintf("Table III: Packet vs Non-Packet Memory "
                      "Accesses (%u packets per trace)", packets),
            "packet accesses near-constant per app (32/32/23/18); "
            "non-packet dominated by radix (836), tiny for trie (18)");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderTable3(cfg, packets).c_str());
    });
}
