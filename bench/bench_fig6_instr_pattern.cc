/**
 * @file
 * Figure 6: detailed packet processing — unique instruction index
 * versus execution order while processing a single packet; loops
 * appear as overlaps.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        bench::banner(
            "Figure 6: Instruction Access Pattern (one MRA packet)",
            "radix shows repeated loop structure; flow "
            "classification is nearly linear");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderFig6(cfg).c_str());
    });
}
