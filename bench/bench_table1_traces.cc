/**
 * @file
 * Table I: packet traces used to evaluate applications.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        bench::banner(
            "Table I: Packet Traces Used to Evaluate Applications",
            "MRA/COS/ODU are NLANR backbone traces; LAN is a local "
            "intranet capture. We synthesize equivalents per profile.");
        std::printf("%s", an::renderTable1().c_str());
    });
}
