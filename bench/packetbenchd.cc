/**
 * @file
 * packetbenchd: the persistent packet-processing service.
 *
 * Where every other bench binary runs a finite corpus to completion
 * and exits, packetbenchd keeps processing: a rate-controlled
 * replayer (token-bucket paced, optionally looping the corpus
 * forever) feeds an ingest ring, a dispatcher shards flows across N
 * engine workers, and live telemetry flows out through the usual
 * observability flags (`--stats` NDJSON stream, `--prom` snapshot
 * rewritten per tick) plus a periodic console speed line.  SIGINT or
 * SIGTERM drains and flushes everything, then exits 0.
 *
 * Flags (all `--name=value`, on top of the common `--report`,
 * `--prom`, `--trace`, `--stats`):
 *
 *   --app=flow|nat|tsa   application replicated per engine (flow)
 *   --profile=mra|cos|odu|lan  synthetic corpus profile     (mra)
 *   --packets=N          corpus size per pass               (20000)
 *   --seed=N             corpus generator seed              (7)
 *   --engines=N          processing engines / worker threads (2)
 *   --rate=PPS           offered packets/second; 0 = unpaced (0)
 *   --burst=N            token-bucket depth                 (64)
 *   --loop=0|1           recycle the corpus when exhausted  (0)
 *   --max=N              stop after N packets offered; 0 = ∞ (0)
 *   --duration=SECS      request shutdown after SECS; 0 = ∞ (0)
 *   --mode=pinned|stealing  flow-to-engine policy        (pinned)
 *   --drop-full=0|1      full ring drops (NIC) vs blocks    (0)
 *   --ring=N             ingest ring capacity in packets    (4096)
 *   --batch=N            dispatcher hand-off batch          (64)
 *   --depth=N            per-engine queue depth in batches  (8)
 *   --speed-ms=N         console speed line period; 0 = off (1000)
 *
 * Faulting packets are dropped and counted (FaultPolicy::Drop) —
 * a service must survive bad input, not abort on it.
 */

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "apps/flow_class.hh"
#include "apps/nat_app.hh"
#include "apps/tsa_app.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "net/tracegen.hh"
#include "service/daemon.hh"

namespace
{

using namespace pb;

net::Profile
parseProfile(const std::string &name)
{
    if (name == "mra")
        return net::Profile::MRA;
    if (name == "cos")
        return net::Profile::COS;
    if (name == "odu")
        return net::Profile::ODU;
    if (name == "lan")
        return net::Profile::LAN;
    fatal("unknown --profile '%s' (mra|cos|odu|lan)", name.c_str());
}

core::MultiCoreBench::AppFactory
parseApp(const std::string &name)
{
    if (name == "flow")
        return [] { return std::make_unique<apps::FlowClassApp>(1024); };
    if (name == "nat")
        return [] { return std::make_unique<apps::NatApp>(); };
    if (name == "tsa")
        return [] { return std::make_unique<apps::TsaApp>(); };
    fatal("unknown --app '%s' (flow|nat|tsa)", name.c_str());
}

core::DispatchPolicy
parseMode(const std::string &name)
{
    if (name == "pinned")
        return core::DispatchPolicy::Pinned;
    if (name == "stealing")
        return core::DispatchPolicy::Stealing;
    fatal("unknown --mode '%s' (pinned|stealing)", name.c_str());
}

/**
 * Requests a graceful shutdown after a fixed wall-clock budget —
 * the `--duration` flag — through the same flag SIGTERM sets, so
 * timed runs and signaled runs exercise the identical drain path.
 */
class DurationGuard
{
  public:
    explicit DurationGuard(uint32_t seconds)
    {
        if (!seconds)
            return;
        thread = std::thread([this, seconds] {
            std::unique_lock<std::mutex> lock(mu);
            if (!cv.wait_for(lock, std::chrono::seconds(seconds),
                             [this] { return cancelled; }))
                requestShutdown(0);
        });
    }

    ~DurationGuard()
    {
        if (!thread.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mu);
            cancelled = true;
        }
        cv.notify_all();
        thread.join();
    }

  private:
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool cancelled = false;
};

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, [&] {
        std::string app =
            bench::fileArg(argc, argv, "app").value_or("flow");
        std::string profile =
            bench::fileArg(argc, argv, "profile").value_or("mra");
        std::string mode =
            bench::fileArg(argc, argv, "mode").value_or("pinned");
        uint32_t packets = bench::packetArg(argc, argv, 20'000);
        uint32_t seed = bench::uintArg(argc, argv, "seed", 7);

        service::ServiceConfig cfg;
        cfg.engines = bench::uintArg(argc, argv, "engines", 2);
        cfg.ringCapacity = bench::uintArg(argc, argv, "ring", 4096);
        cfg.speedIntervalMs =
            bench::uintArg(argc, argv, "speed-ms", 1000);
        cfg.replay.ratePps = bench::uintArg(argc, argv, "rate", 0);
        cfg.replay.burst = bench::uintArg(argc, argv, "burst", 64);
        cfg.replay.loop =
            bench::uintArg(argc, argv, "loop", 0) != 0;
        cfg.replay.maxPackets = bench::uintArg(argc, argv, "max", 0);
        cfg.replay.dropWhenFull =
            bench::uintArg(argc, argv, "drop-full", 0) != 0;
        cfg.bench.parallel = cfg.engines > 1;
        cfg.bench.dispatchBatch =
            bench::uintArg(argc, argv, "batch", 64);
        cfg.bench.queueDepth =
            bench::uintArg(argc, argv, "depth", 8);
        cfg.bench.dispatchPolicy = parseMode(mode);
        cfg.bench.faultPolicy = core::FaultPolicy::Drop;
        uint32_t duration =
            bench::uintArg(argc, argv, "duration", 0);

        bench::banner(
            strprintf("packetbenchd: %s x%u engines, %s corpus "
                      "(%u pkts/pass%s), rate=%llu pps, %s dispatch",
                      app.c_str(), cfg.engines, profile.c_str(),
                      packets, cfg.replay.loop ? ", looped" : "",
                      static_cast<unsigned long long>(
                          cfg.replay.ratePps),
                      mode.c_str()),
            "service mode: sustained rate-controlled processing, "
            "not run-to-completion");

        net::Profile prof = parseProfile(profile);
        service::PacketBenchd daemon(parseApp(app), cfg);

        DurationGuard guard(duration);
        service::ServiceResult res = daemon.run([prof, packets,
                                                 seed] {
            return std::make_unique<net::SyntheticTrace>(
                prof, packets, seed);
        });

        // End-of-run per-worker summary (the per-core Mpps/Gbps
        // table every packet daemon prints on exit).
        TextTable table(6);
        table.header({"engine", "packets", "Mpps", "Gbps",
                      "sim-MIPS", "faults"});
        double wall = res.wallSeconds > 0.0 ? res.wallSeconds : 1.0;
        for (size_t e = 0; e < res.mc.engines.size(); e++) {
            const core::EngineLoad &load = res.mc.engines[e];
            table.row(
                {strprintf("%zu", e),
                 strprintf("%llu", static_cast<unsigned long long>(
                                       load.packets)),
                 strprintf("%.4f", load.packets / wall / 1e6),
                 strprintf("%.4f",
                           load.bytes * 8.0 / wall / 1e9),
                 strprintf("%.2f", load.instructions / wall / 1e6),
                 strprintf("%llu", static_cast<unsigned long long>(
                                       load.faults))});
        }
        table.rule();
        table.row({"total",
                   strprintf("%llu", static_cast<unsigned long long>(
                                         res.mc.totalPackets)),
                   strprintf("%.4f",
                             res.mc.totalPackets / wall / 1e6),
                   "-",
                   strprintf("%.2f",
                             res.mc.totalInstructions / wall / 1e6),
                   strprintf("%llu", static_cast<unsigned long long>(
                                         res.mc.totalFaults))});
        std::printf("%s", table.render().c_str());
        std::printf("\nreplayed %llu packets in %llu passes, "
                    "%llu ring drops, %.2f s wall%s\n",
                    static_cast<unsigned long long>(res.replayed),
                    static_cast<unsigned long long>(res.loops),
                    static_cast<unsigned long long>(res.ringDropped),
                    res.wallSeconds,
                    res.shutdownBySignal
                        ? " (stopped by shutdown request)"
                        : "");
    });
}
