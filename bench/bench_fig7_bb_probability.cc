/**
 * @file
 * Figure 7: basic block access frequency — the probability that each
 * basic block executes while processing a packet.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 1'000);
        bench::banner(
            strprintf("Figure 7: Basic Block Execution Probability "
                      "(MRA, %u packets)", packets),
            "most blocks execute for every packet; a tail of "
            "special-case blocks is rare");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderFig7(cfg, packets).c_str());
    });
}
