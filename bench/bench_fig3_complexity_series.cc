/**
 * @file
 * Figure 3: packet processing complexity variation — instructions
 * executed per packet over the first packets of the MRA trace, for
 * IPv4-radix and Flow Classification.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 500);
        bench::banner(
            strprintf("Figure 3: Packet Processing Complexity "
                      "Variation (MRA, %u packets)", packets),
            "radix varies widely with the routing-table path; flow "
            "classification clusters on a few values");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderFig3(cfg, packets).c_str());
    });
}
