/**
 * @file
 * Table IV: instruction and data memory sizes (bytes touched while
 * processing the first packets of the MRA trace).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 1'000);
        bench::banner(
            strprintf("Table IV: Instruction and Data Memory Sizes "
                      "(bytes, MRA, %u packets)", packets),
            "radix 4,420/18,004; trie 584/2,908; "
            "flow 1,584/43,344; TSA 836/2,668");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderTable4(cfg, packets).c_str());
    });
}
