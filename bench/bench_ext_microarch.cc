/**
 * @file
 * Extension: classic microarchitectural statistics per application.
 *
 * The paper (Section V) notes that instruction mix, branch
 * misprediction, and cache statistics fall out of the simulator
 * substrate "as a straightforward exercise"; this bench produces
 * them for all six applications: instruction mix, I/D-cache miss
 * rates (IXP-class 4 KiB / 8 KiB, 2-way), and bimodal branch
 * misprediction.
 */

#include "apps/crc_app.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    using namespace pb::an;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 2'000);
        bench::banner(
            strprintf("Extension: Microarchitectural Statistics "
                      "(MRA, %u packets)", packets),
            "small kernels: high I-cache locality, low mispredict "
            "except data-dependent branch patterns");

        ExperimentConfig cfg;
        TextTable table(9);
        table.header({"App", "ALU%", "Ld%", "St%", "Br%",
                      "icache miss", "dcache miss", "br mispred",
                      "CPI"});
        for (AppKind kind : extendedAppKinds) {
            auto app = makeApp(kind, cfg);
            core::BenchConfig bench_cfg =
                benchConfigFor(net::Profile::MRA, cfg);
            bench_cfg.microArch = true;
            bench_cfg.timing = true;
            core::PacketBench bench(*app, bench_cfg);
            net::SyntheticTrace trace(net::Profile::MRA, packets,
                                      cfg.traceSeed);
            bench.run(trace, packets);

            const auto &mix = bench.recorder().classCounts();
            double total =
                static_cast<double>(bench.recorder().totalInsts());
            auto pct = [&](isa::InstClass cls) {
                return strprintf(
                    "%.1f",
                    100.0 * mix[static_cast<size_t>(cls)] / total);
            };
            const sim::MicroArchModel *uarch = bench.microArch();
            table.row(
                {appTitle(kind), pct(isa::InstClass::IntAlu),
                 pct(isa::InstClass::Load), pct(isa::InstClass::Store),
                 pct(isa::InstClass::Branch),
                 strprintf("%.3f%%", 100 * uarch->icache().missRate()),
                 strprintf("%.3f%%", 100 * uarch->dcache().missRate()),
                 strprintf("%.2f%%",
                           100 * uarch->predictor().mispredictRate()),
                 strprintf("%.2f", bench.timing()->cpi())});
        }
        std::printf("%s", table.render().c_str());
    });
}
