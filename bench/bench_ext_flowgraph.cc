/**
 * @file
 * Extension: the weighted packet-processing flow graph proposed in
 * the paper's introduction ("by comparing the execution path of
 * different packets on the same application, we can develop a
 * weighted flow graph that illustrates the dynamics of packet
 * processing").
 *
 * Prints the hottest block-to-block edges per application and emits
 * the full Graphviz DOT graph for Flow Classification.
 */

#include "analysis/flowgraph.hh"
#include "apps/crc_app.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    using namespace pb::an;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 200);
        bench::banner(
            strprintf("Extension: Weighted Packet-Processing Flow "
                      "Graph (MRA, %u packets)", packets),
            "hot edges = the fast path; low-weight edges = special "
            "cases that can live on the slow path");

        ExperimentConfig cfg;
        cfg.coreTablePrefixes = 8192;
        for (AppKind kind :
             {AppKind::Ipv4Radix, AppKind::FlowClass}) {
            // Collect instruction traces.
            auto app = makeApp(kind, cfg);
            core::BenchConfig bench_cfg =
                benchConfigFor(net::Profile::MRA, cfg);
            bench_cfg.recorder.instTrace = true;
            core::PacketBench bench(*app, bench_cfg);
            net::SyntheticTrace trace(net::Profile::MRA, packets,
                                      cfg.traceSeed);

            WeightedFlowGraph graph(bench.blocks());
            while (auto packet = trace.next()) {
                auto outcome = bench.processPacket(*packet);
                graph.addPacket(outcome.stats.instTrace);
            }

            std::printf("\n%s: %u blocks, %zu edges over %llu "
                        "packets; hottest edges:\n",
                        appTitle(kind).c_str(),
                        bench.blocks().numBlocks(),
                        graph.edges().size(),
                        static_cast<unsigned long long>(
                            graph.packets()));
            TextTable table(4);
            table.header({"edge", "traversals", "per packet",
                          "kind"});
            auto edges = graph.edges();
            for (size_t i = 0; i < std::min<size_t>(8, edges.size());
                 i++) {
                const auto &edge = edges[i];
                double per_pkt = static_cast<double>(edge.count) /
                                 static_cast<double>(graph.packets());
                table.row({strprintf("B%u -> B%u", edge.from, edge.to),
                           std::to_string(edge.count),
                           strprintf("%.2f", per_pkt),
                           edge.from == edge.to       ? "self-loop"
                           : edge.from > edge.to      ? "back edge"
                                                      : "forward"});
            }
            std::printf("%s", table.render().c_str());

            if (kind == AppKind::FlowClass) {
                std::printf("\nGraphviz DOT (flow classification):\n%s",
                            graph.toDot("flow_class").c_str());
            }
        }
    });
}
