/**
 * @file
 * Extension: flow-pinned multi-engine scaling, on real simulation.
 *
 * Unlike bench_ext_delay_parallel (analytic service times), this
 * bench actually replicates the application across N simulated
 * engines with flow-pinned dispatch and reports the achieved load
 * balance — the quantity that bounds throughput for *stateful*
 * applications, where packets of one flow must share an engine
 * (paper reference [31]'s topology question).
 *
 * Each configuration runs twice: serially (the reference path) and
 * with one worker thread per engine (BenchConfig::parallel).  The
 * dispatch decisions are identical, so the per-engine outcomes
 * match bit-for-bit; the wall-clock columns show what host-side
 * parallelism actually buys.
 *
 * Flags: `--packets=N`, `--threads=0` (skip the threaded runs),
 * `--batch=N` (packets per queue hand-off batch).
 */

#include "apps/flow_class.hh"
#include "apps/nat_app.hh"
#include "apps/tsa_app.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "core/multicore.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    using namespace pb::core;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 8'000);
        bool threaded = bench::uintArg(argc, argv, "threads", 1) != 0;
        uint32_t batch = bench::uintArg(argc, argv, "batch", 64);
        bench::banner(
            strprintf("Extension: Flow-Pinned Multi-Engine Scaling "
                      "(MRA, %u packets, batch %u%s)",
                      packets, batch,
                      threaded ? "" : ", serial only"),
            "stateful apps parallelize up to the flow-level load "
            "balance; imbalance caps the speedup");

        struct Workload
        {
            const char *name;
            MultiCoreBench::AppFactory factory;
        };
        const Workload workloads[] = {
            {"Flow Class.",
             [] { return std::make_unique<apps::FlowClassApp>(1024); }},
            {"NAT",
             [] { return std::make_unique<apps::NatApp>(); }},
            {"TSA",
             [] { return std::make_unique<apps::TsaApp>(); }},
        };

        TextTable table(8);
        table.header({"App", "engines", "imbalance", "speedup",
                      "efficiency", "serial ms", "parallel ms",
                      "wall x"});
        for (const auto &workload : workloads) {
            for (uint32_t engines : {1u, 2u, 4u, 8u, 16u}) {
                MultiCoreBench serial_cores(workload.factory,
                                            engines);
                net::SyntheticTrace serial_trace(net::Profile::MRA,
                                                 packets, 3);
                MultiCoreResult serial =
                    serial_cores.run(serial_trace, packets);

                std::string par_ms = "-";
                std::string wall_x = "-";
                if (threaded && engines > 1) {
                    BenchConfig cfg;
                    cfg.parallel = true;
                    cfg.dispatchBatch = batch;
                    MultiCoreBench par_cores(workload.factory,
                                             engines, cfg);
                    net::SyntheticTrace par_trace(net::Profile::MRA,
                                                  packets, 3);
                    MultiCoreResult par =
                        par_cores.run(par_trace, packets);
                    for (uint32_t e = 0; e < engines; e++) {
                        if (par.engines[e].packets !=
                                serial.engines[e].packets ||
                            par.engines[e].instructions !=
                                serial.engines[e].instructions)
                            fatal("engine %u diverged between serial "
                                  "and parallel runs", e);
                    }
                    par_ms = strprintf("%.1f", par.wallNs / 1e6);
                    wall_x = strprintf(
                        "%.2f", static_cast<double>(serial.wallNs) /
                                    static_cast<double>(par.wallNs));
                }
                table.row({workload.name, std::to_string(engines),
                           strprintf("%.2f", serial.imbalance()),
                           strprintf("%.2f", serial.speedup()),
                           strprintf("%.0f%%", 100.0 *
                                                   serial.speedup() /
                                                   engines),
                           strprintf("%.1f", serial.wallNs / 1e6),
                           par_ms, wall_x});
            }
            table.rule();
        }
        std::printf("%s", table.render().c_str());
        if (threaded)
            std::printf("\nwall x = serial / parallel host time; "
                        "per-engine outcomes are verified identical "
                        "between the two paths\n");
    });
}
