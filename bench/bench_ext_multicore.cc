/**
 * @file
 * Extension: flow-pinned multi-engine scaling, on real simulation.
 *
 * Unlike bench_ext_delay_parallel (analytic service times), this
 * bench actually replicates the application across N simulated
 * engines with flow-pinned dispatch and reports the achieved load
 * balance — the quantity that bounds throughput for *stateful*
 * applications, where packets of one flow must share an engine
 * (paper reference [31]'s topology question).
 */

#include "apps/flow_class.hh"
#include "apps/nat_app.hh"
#include "apps/tsa_app.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "core/multicore.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    using namespace pb::core;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 8'000);
        bench::banner(
            strprintf("Extension: Flow-Pinned Multi-Engine Scaling "
                      "(MRA, %u packets)", packets),
            "stateful apps parallelize up to the flow-level load "
            "balance; imbalance caps the speedup");

        struct Workload
        {
            const char *name;
            MultiCoreBench::AppFactory factory;
        };
        const Workload workloads[] = {
            {"Flow Class.",
             [] { return std::make_unique<apps::FlowClassApp>(1024); }},
            {"NAT",
             [] { return std::make_unique<apps::NatApp>(); }},
            {"TSA",
             [] { return std::make_unique<apps::TsaApp>(); }},
        };

        TextTable table(5);
        table.header({"App", "engines", "imbalance",
                      "speedup", "efficiency"});
        for (const auto &workload : workloads) {
            for (uint32_t engines : {1u, 2u, 4u, 8u, 16u}) {
                MultiCoreBench cores(workload.factory, engines);
                net::SyntheticTrace trace(net::Profile::MRA, packets,
                                          3);
                MultiCoreResult result = cores.run(trace, packets);
                table.row({workload.name, std::to_string(engines),
                           strprintf("%.2f", result.imbalance()),
                           strprintf("%.2f", result.speedup()),
                           strprintf("%.0f%%", 100.0 *
                                                   result.speedup() /
                                                   engines)});
            }
            table.rule();
        }
        std::printf("%s", table.render().c_str());
    });
}
