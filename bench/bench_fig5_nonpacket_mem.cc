/**
 * @file
 * Figure 5: non-packet memory access pattern — accesses to program
 * data memory per packet, correlated with instruction counts.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 500);
        bench::banner(
            strprintf("Figure 5: Non-Packet Memory Access Pattern "
                      "(MRA, %u packets)", packets),
            "tracks the per-packet instruction counts of Figure 3");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderFig5(cfg, packets).c_str());
    });
}
