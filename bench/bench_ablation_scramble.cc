/**
 * @file
 * Ablation: the paper's Section IV-B address scrambling.
 *
 * NLANR traces number addresses sequentially from 10.0.0.1, so
 * routing-table lookups hit the same few prefixes.  The paper
 * scrambles addresses during preprocessing to restore uniform
 * coverage.  This bench runs IPv4-radix on the renumbered MRA trace
 * with and without scrambling and shows the bias.
 */

#include <set>

#include "analysis/occurrence.hh"
#include "apps/ipv4_radix.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "net/ipv4.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    using namespace pb::core;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 2'000);
        bench::banner(
            strprintf("Ablation: IP Address Scrambling (IPv4-radix, "
                      "MRA, %u packets)", packets),
            "without scrambling, NLANR sequential addressing biases "
            "lookups to one table region (paper Section IV-B)");

        TextTable table(5);
        table.header({"Preprocessing", "mean insts", "top-1 share",
                      "distinct counts", "next hops used"});
        for (bool scramble : {false, true}) {
            auto entries = route::generateCoreTable(32768, 1);
            apps::Ipv4RadixApp app(entries);
            BenchConfig cfg;
            cfg.scramble = scramble;
            PacketBench pbench(app, cfg);
            net::SyntheticTrace trace(net::Profile::MRA, packets, 2);

            std::vector<uint64_t> insts;
            std::set<uint32_t> hops;
            while (auto packet = trace.next()) {
                PacketOutcome outcome = pbench.processPacket(*packet);
                insts.push_back(outcome.stats.instCount);
                if (outcome.verdict == isa::SysCode::Send)
                    hops.insert(outcome.outInterface);
            }
            an::OccurrenceSummary summary = an::summarize(insts, 1);
            std::map<uint64_t, int> distinct;
            for (uint64_t v : insts)
                distinct[v]++;
            table.row({scramble ? "scrambled" : "raw (sequential)",
                       strprintf("%.1f", summary.average),
                       strprintf("%.1f%%", summary.top[0].pct),
                       std::to_string(distinct.size()),
                       std::to_string(hops.size())});
        }
        std::printf("%s", table.render().c_str());
    });
}
