/**
 * @file
 * Figure 8: packet coverage — fraction of packets processable with
 * a given number of basic blocks installed in the instruction store.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 1'000);
        bench::banner(
            strprintf("Figure 8: Packet Coverage vs Basic Blocks "
                      "(MRA, %u packets)", packets),
            "over 90%% coverage well before all blocks are "
            "installed (the sweet spot)");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderFig8(cfg, packets).c_str());
    });
}
