/**
 * @file
 * Extension: fault-isolation soak — survive a hostile trace.
 *
 * Replays a synthetic trace with every Nth packet corrupted (bit
 * flips, truncation, header corruption, oversized records,
 * budget-blowing payloads) through the fault-isolation layer and
 * verifies the acceptance contract end to end:
 *
 *  - under Drop and Quarantine the run completes, with every hard
 *    fault counted in pb.faults.* (nothing lost, nothing spurious);
 *  - quarantined packets are byte-identical to the injected ones;
 *  - per-engine outcomes are bit-identical between the serial and
 *    parallel multi-engine paths on the same corrupted trace.
 *
 * Any divergence is a fatal() so the CI smoke step fails loudly.
 *
 * Flags: `--packets=N` (default 10'000), `--period=N` (corrupt every
 * Nth packet, default 50), `--engines=N` (default 4),
 * `--report=FILE`.
 */

#include <algorithm>
#include <sstream>

#include "apps/crc_app.hh"
#include "apps/flow_class.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "core/multicore.hh"
#include "net/faultinject.hh"
#include "net/pcap.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::core;

/** One policy scenario over a hard-fault (deterministic) injector. */
struct ScenarioResult
{
    uint64_t packets = 0;
    uint64_t faults = 0;
    uint64_t injected = 0;
    uint64_t quarantined = 0;
};

ScenarioResult
runHardFaults(FaultPolicy policy, uint32_t packets, uint32_t period,
              uint32_t engines, bool parallel)
{
    // Truncation and oversize only: packets the framework can never
    // process, so injected and faulted counts must match exactly.
    net::FaultInjectConfig inject;
    inject.period = period;
    inject.seed = 7;
    inject.bitFlips = false;
    inject.headerCorruption = false;
    inject.keepInjected = policy == FaultPolicy::Quarantine;

    std::stringstream captured;
    net::PcapWriter pcap(captured, net::LinkType::Raw);
    QuarantineSink quarantine(pcap);

    BenchConfig cfg;
    cfg.faultPolicy = policy;
    if (policy == FaultPolicy::Quarantine)
        cfg.quarantine = &quarantine;
    cfg.parallel = parallel;

    MultiCoreBench cores(
        [] { return std::make_unique<apps::FlowClassApp>(1024); },
        engines, cfg);
    net::SyntheticTrace trace(net::Profile::MRA, packets, 3);
    net::FaultInjectingTraceSource source(trace, inject);
    MultiCoreResult res = cores.run(source, packets);

    ScenarioResult out;
    out.packets = res.totalPackets;
    out.faults = res.totalFaults;
    out.injected = source.injectedCount();
    out.quarantined = quarantine.quarantined();

    if (out.packets != packets)
        fatal("%s run lost packets: %llu of %u",
              faultPolicyName(policy),
              static_cast<unsigned long long>(out.packets), packets);
    if (out.faults != out.injected)
        fatal("%s run fault count %llu != injected %llu",
              faultPolicyName(policy),
              static_cast<unsigned long long>(out.faults),
              static_cast<unsigned long long>(out.injected));

    if (policy == FaultPolicy::Quarantine) {
        // Replay the quarantine file: every capture must be
        // byte-identical to one of the injected packets.  Parallel
        // workers interleave the write order, so match by content.
        if (out.quarantined != out.injected)
            fatal("quarantined %llu != injected %llu",
                  static_cast<unsigned long long>(out.quarantined),
                  static_cast<unsigned long long>(out.injected));
        std::vector<std::vector<uint8_t>> expected;
        for (const auto &packet : source.injectedPackets())
            expected.push_back(packet.bytes);
        std::stringstream replay(captured.str());
        net::PcapReader reader(replay, "quarantine");
        uint64_t matched = 0;
        while (auto got = reader.next()) {
            auto it = std::find(expected.begin(), expected.end(),
                                got->bytes);
            if (it == expected.end())
                fatal("quarantined packet %llu is not byte-identical "
                      "to any injected packet",
                      static_cast<unsigned long long>(matched));
            expected.erase(it);
            matched++;
        }
        if (matched != out.injected)
            fatal("quarantine replay found %llu packets, expected "
                  "%llu",
                  static_cast<unsigned long long>(matched),
                  static_cast<unsigned long long>(out.injected));
    }
    return out;
}

/** Serial vs parallel per-engine equivalence on the corrupted trace. */
void
checkSerialParallelEquivalence(uint32_t packets, uint32_t period,
                               uint32_t engines)
{
    net::FaultInjectConfig inject;
    inject.period = period;
    inject.seed = 7;
    inject.bitFlips = false;
    inject.headerCorruption = false;

    auto factory = [] {
        return std::make_unique<apps::FlowClassApp>(1024);
    };
    BenchConfig serial_cfg;
    serial_cfg.faultPolicy = FaultPolicy::Drop;
    MultiCoreBench serial_cores(factory, engines, serial_cfg);
    net::SyntheticTrace serial_trace(net::Profile::MRA, packets, 3);
    net::FaultInjectingTraceSource serial_source(serial_trace, inject);
    MultiCoreResult serial = serial_cores.run(serial_source, packets);

    BenchConfig par_cfg = serial_cfg;
    par_cfg.parallel = true;
    MultiCoreBench par_cores(factory, engines, par_cfg);
    net::SyntheticTrace par_trace(net::Profile::MRA, packets, 3);
    net::FaultInjectingTraceSource par_source(par_trace, inject);
    MultiCoreResult parallel = par_cores.run(par_source, packets);

    for (uint32_t e = 0; e < engines; e++) {
        if (serial.engines[e].packets != parallel.engines[e].packets ||
            serial.engines[e].instructions !=
                parallel.engines[e].instructions ||
            serial.engines[e].faults != parallel.engines[e].faults)
            fatal("engine %u diverged between serial and parallel "
                  "runs on the corrupted trace",
                  e);
    }
}

/** Budget faults: payload bloat against a tight budget on CrcApp. */
ScenarioResult
runBudgetFaults(uint32_t packets, uint32_t period)
{
    net::FaultInjectConfig inject;
    inject.period = period;
    inject.seed = 11;
    inject.bitFlips = false;
    inject.truncation = false;
    inject.headerCorruption = false;
    inject.oversize = false;
    inject.payloadBloat = true;

    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Drop;
    // CRC cost scales with packet length; normal MRA packets fit
    // comfortably, a 60 KB bloated payload cannot.
    cfg.instBudget = 200'000;

    apps::CrcApp app;
    PacketBench bench(app, cfg);
    net::SyntheticTrace trace(net::Profile::MRA, packets, 5);
    net::FaultInjectingTraceSource source(trace, inject);

    ScenarioResult out;
    while (auto packet = source.next()) {
        PacketOutcome outcome = bench.processPacket(*packet);
        out.packets++;
        if (outcome.faulted()) {
            out.faults++;
            if (outcome.fault != FaultKind::BudgetExceeded)
                fatal("bloated payload faulted as %s, expected "
                      "budget-exceeded",
                      faultKindName(outcome.fault));
        }
    }
    out.injected = source.injectedCount();
    if (out.faults != out.injected)
        fatal("budget scenario: %llu faults for %llu bloated packets",
              static_cast<unsigned long long>(out.faults),
              static_cast<unsigned long long>(out.injected));
    return out;
}

/** Noise faults (bit flips, header garbling) must simply complete. */
ScenarioResult
runNoiseFaults(uint32_t packets, uint32_t period)
{
    net::FaultInjectConfig inject;
    inject.period = period;
    inject.seed = 13;
    inject.truncation = false;
    inject.oversize = false;

    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Drop;
    apps::FlowClassApp app(1024);
    PacketBench bench(app, cfg);
    net::SyntheticTrace trace(net::Profile::LAN, packets, 5);
    net::FaultInjectingTraceSource source(trace, inject);

    ScenarioResult out;
    while (auto packet = source.next()) {
        PacketOutcome outcome = bench.processPacket(*packet);
        out.packets++;
        if (outcome.faulted())
            out.faults++;
    }
    out.injected = source.injectedCount();
    if (out.packets != packets)
        fatal("noise scenario lost packets");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pb;
    using namespace pb::core;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 10'000);
        uint32_t period = bench::uintArg(argc, argv, "period", 50);
        uint32_t engines = bench::uintArg(argc, argv, "engines", 4);
        bench::banner(
            strprintf("Extension: Per-Packet Fault Isolation "
                      "(%u packets, every %uth corrupted, %u engines)",
                      packets, period, engines),
            "a hostile trace must cost faulted packets, never the "
            "run");

        TextTable table(6);
        table.header({"scenario", "policy", "packets", "injected",
                      "faulted", "quarantined"});

        ScenarioResult drop = runHardFaults(
            FaultPolicy::Drop, packets, period, engines, false);
        table.row({"hard faults", "drop", std::to_string(drop.packets),
                   std::to_string(drop.injected),
                   std::to_string(drop.faults), "-"});

        ScenarioResult quar = runHardFaults(FaultPolicy::Quarantine,
                                            packets, period, engines,
                                            true);
        table.row({"hard faults", "quarantine",
                   std::to_string(quar.packets),
                   std::to_string(quar.injected),
                   std::to_string(quar.faults),
                   std::to_string(quar.quarantined)});

        checkSerialParallelEquivalence(packets, period, engines);

        ScenarioResult budget = runBudgetFaults(packets / 2, period);
        table.row({"payload bloat", "drop",
                   std::to_string(budget.packets),
                   std::to_string(budget.injected),
                   std::to_string(budget.faults), "-"});

        ScenarioResult noise = runNoiseFaults(packets / 2, period);
        table.row({"noise (flips)", "drop",
                   std::to_string(noise.packets),
                   std::to_string(noise.injected),
                   std::to_string(noise.faults), "-"});

        std::printf("%s", table.render().c_str());
        std::printf("\nall checks passed: fault counts exact, "
                    "quarantine byte-identical, serial == parallel "
                    "per engine\n");
    });
}
