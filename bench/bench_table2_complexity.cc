/**
 * @file
 * Table II: average number of instructions per packet executed for
 * the four applications over the four traces.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 10'000);
        bench::banner(
            strprintf("Table II: Average Instructions per Packet "
                      "(%u packets per trace)", packets),
            "radix 4,493 / trie 205 / flow 159 / TSA 904 on "
            "SimpleScalar-ARM; expect the same ordering and "
            "radix >> TSA > trie > flow gaps here");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderTable2(cfg, packets).c_str());
    });
}
