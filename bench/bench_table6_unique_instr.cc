/**
 * @file
 * Table VI: variation of unique executed instructions over the COS
 * trace.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 100'000);
        bench::banner(
            strprintf("Table VI: Variation of Unique Executed "
                      "Instructions (COS, %u packets)", packets),
            "unique counts vary far less than totals; repetition "
            "factor ~4x for radix/TSA, ~1x for trie/flow");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderTable6(cfg, packets).c_str());
    });
}
