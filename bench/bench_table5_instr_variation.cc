/**
 * @file
 * Table V: variation of executed instructions — the three most
 * frequent per-packet instruction counts, minimum, maximum, and
 * average, over the COS trace.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 100'000);
        bench::banner(
            strprintf("Table V: Variation of Executed Instructions "
                      "(COS, %u packets)", packets),
            "top-3 mass ~90%% for trie/flow/TSA, much flatter for "
            "radix (10.5%% + 6.0%% + 3.2%%)");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderTable5(cfg, packets).c_str());
    });
}
