/**
 * @file
 * Figure 9: data memory access pattern while processing a single
 * packet — packet memory on the positive axis, non-packet on the
 * negative axis.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        bench::banner(
            "Figure 9: Data Memory Access Sequence (one MRA packet)",
            "radix reads the header up front then works in table "
            "memory; flow classification interleaves both");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderFig9(cfg).c_str());
    });
}
