/**
 * @file
 * Ablation: flow-table bucket count vs classification cost.
 *
 * Flow Classification's per-packet cost is parsing + hash + chain
 * walk; the chain length is flows/buckets.  This bench sweeps the
 * bucket count for a fixed trace and shows the cost and memory
 * tradeoff a designer makes when sizing the hash table — the kind of
 * decision the paper argues per-packet workload data should drive.
 */

#include "apps/flow_class.hh"
#include "bench_util.hh"
#include "common/texttable.hh"
#include "net/ipv4.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 20'000);
        bench::banner(
            strprintf("Ablation: Flow-Table Buckets vs "
                      "Classification Cost (ODU, %u packets)",
                      packets),
            "fewer buckets -> longer chains -> more instructions and "
            "non-packet accesses per packet");

        TextTable table(6);
        table.header({"Buckets", "insts/pkt", "non-pkt/pkt",
                      "max insts", "flows", "table bytes"});
        for (uint32_t buckets : {64u, 256u, 1024u, 4096u, 16384u}) {
            apps::FlowClassApp app(buckets);
            core::PacketBench bench(app);
            net::SyntheticTrace trace(net::Profile::ODU, packets, 5);
            double insts = 0;
            double nonpkt = 0;
            uint64_t max_insts = 0;
            uint32_t n = 0;
            while (auto packet = trace.next()) {
                auto outcome = bench.processPacket(*packet);
                insts += static_cast<double>(outcome.stats.instCount);
                nonpkt += outcome.stats.nonPacketAccesses();
                max_insts =
                    std::max(max_insts, outcome.stats.instCount);
                n++;
            }
            table.row({withCommas(buckets),
                       strprintf("%.1f", insts / n),
                       strprintf("%.1f", nonpkt / n),
                       withCommas(max_insts),
                       withCommas(app.simFlowCount(bench.memory())),
                       withCommas(
                           bench.recorder().dataMemoryBytes())});
        }
        std::printf("%s", table.render().c_str());
    });
}
