/**
 * @file
 * google-benchmark microbenchmarks for the PacketBench substrates:
 * interpreter throughput, assembler, trace I/O, generators, LPM
 * structures, hashes, scrambler, and anonymizers.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>
#include <vector>

#include "anon/tsa.hh"
#include "bench_util.hh"
#include "apps/flow_class.hh"
#include "apps/ipv4_radix.hh"
#include "common/hash.hh"
#include "common/rng.hh"
#include "core/packetbench.hh"
#include "isa/assembler.hh"
#include "net/ipv4.hh"
#include "net/pcap.hh"
#include "net/scramble.hh"
#include "net/tracegen.hh"
#include "route/lctrie.hh"
#include "route/linear.hh"
#include "route/radix.hh"

namespace
{

using namespace pb;

net::Packet
samplePacket()
{
    net::FiveTuple tuple;
    tuple.src = 0x0a010203;
    tuple.dst = 0xc0a80042;
    tuple.srcPort = 1234;
    tuple.dstPort = 80;
    tuple.proto = 6;
    net::Packet packet;
    packet.bytes = net::buildIpv4Packet(tuple, 64);
    packet.wireLen = 64;
    return packet;
}

void
BM_InterpreterFlowClass(benchmark::State &state)
{
    apps::FlowClassApp app(1024);
    core::PacketBench bench(app);
    net::Packet packet = samplePacket();
    uint64_t insts = 0;
    for (auto _ : state) {
        core::PacketOutcome outcome = bench.processPacket(packet);
        insts += outcome.stats.instCount;
        benchmark::DoNotOptimize(outcome.verdict);
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterFlowClass);

void
BM_InterpreterRadix(benchmark::State &state)
{
    apps::Ipv4RadixApp app(route::generateCoreTable(8192, 1));
    core::PacketBench bench(app);
    net::Packet packet = samplePacket();
    uint64_t insts = 0;
    for (auto _ : state) {
        net::Packet copy = packet;
        core::PacketOutcome outcome = bench.processPacket(copy);
        insts += outcome.stats.instCount;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterRadix);

void
BM_Assembler(benchmark::State &state)
{
    std::string src;
    for (int i = 0; i < 200; i++)
        src += strprintf("l%d: addi t0, t0, 1\nbnez t0, l%d\n", i, i);
    src += "sys 0\n";
    for (auto _ : state) {
        isa::Program prog = isa::Assembler(0x1000).assemble(src);
        benchmark::DoNotOptimize(prog.words.data());
    }
    state.SetItemsProcessed(state.iterations() * 401);
}
BENCHMARK(BM_Assembler);

void
BM_PcapRoundTrip(benchmark::State &state)
{
    net::Packet packet = samplePacket();
    for (auto _ : state) {
        std::stringstream stream;
        net::PcapWriter writer(stream, net::LinkType::Raw);
        for (int i = 0; i < 64; i++)
            writer.write(packet);
        net::PcapReader reader(stream);
        while (auto got = reader.next())
            benchmark::DoNotOptimize(got->bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PcapRoundTrip);

void
BM_TraceGen(benchmark::State &state)
{
    for (auto _ : state) {
        net::SyntheticTrace trace(net::Profile::MRA, 256, 1);
        while (auto packet = trace.next())
            benchmark::DoNotOptimize(packet->bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TraceGen);

void
BM_LpmLinear(benchmark::State &state)
{
    route::LinearLpm lpm(route::generateCoreTable(
        static_cast<uint32_t>(state.range(0)), 1));
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(lpm.lookup(rng.next()));
}
BENCHMARK(BM_LpmLinear)->Arg(256)->Arg(4096);

void
BM_LpmRadix(benchmark::State &state)
{
    route::RadixTable radix(route::generateCoreTable(
        static_cast<uint32_t>(state.range(0)), 1));
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(radix.lookup(rng.next()));
}
BENCHMARK(BM_LpmRadix)->Arg(4096)->Arg(65536);

void
BM_LpmLcTrie(benchmark::State &state)
{
    route::LcTrie trie(route::generateCoreTable(
        static_cast<uint32_t>(state.range(0)), 1));
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(trie.lookup(rng.next()));
}
BENCHMARK(BM_LpmLcTrie)->Arg(4096)->Arg(65536);

void
BM_HashJenkins(benchmark::State &state)
{
    uint8_t buffer[64];
    for (size_t i = 0; i < sizeof(buffer); i++)
        buffer[i] = static_cast<uint8_t>(i);
    for (auto _ : state)
        benchmark::DoNotOptimize(jenkinsOaat(buffer, sizeof(buffer)));
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HashJenkins);

void
BM_HashCrc32(benchmark::State &state)
{
    uint8_t buffer[64];
    for (size_t i = 0; i < sizeof(buffer); i++)
        buffer[i] = static_cast<uint8_t>(i);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32(buffer, sizeof(buffer)));
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HashCrc32);

void
BM_Scrambler(benchmark::State &state)
{
    net::AddressScrambler scrambler(42);
    uint32_t addr = 1;
    for (auto _ : state) {
        addr = scrambler.scramble(addr);
        benchmark::DoNotOptimize(addr);
    }
}
BENCHMARK(BM_Scrambler);

void
BM_TsaHost(benchmark::State &state)
{
    anon::TsaAnonymizer tsa(1);
    uint32_t addr = 1;
    for (auto _ : state) {
        addr = tsa.anonymize(addr);
        benchmark::DoNotOptimize(addr);
    }
}
BENCHMARK(BM_TsaHost);

void
BM_CryptoPanHost(benchmark::State &state)
{
    anon::CryptoPanPp pan(1);
    uint32_t addr = 1;
    for (auto _ : state) {
        addr = pan.anonymize(addr);
        benchmark::DoNotOptimize(addr);
    }
}
BENCHMARK(BM_CryptoPanHost);

void
BM_InetChecksum(benchmark::State &state)
{
    net::Packet packet = samplePacket();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            net::inetChecksum(packet.bytes.data(), 20));
    }
}
BENCHMARK(BM_InetChecksum);

} // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): peel off the
// PacketBench-wide `--report` flag before google-benchmark sees the
// arguments, so this binary emits the same JSON run-report artifact
// as the table/figure benches.
int
main(int argc, char **argv)
{
    auto start = std::chrono::steady_clock::now();
    std::optional<std::string> report =
        pb::bench::reportArg(argc, argv);

    std::vector<char *> passthrough;
    for (int i = 0; i < argc; i++) {
        std::string_view arg = argv[i];
        if (pb::startsWith(arg, "--report="))
            continue;
        if (arg == "--report") {
            i++; // skip the file operand as well
            continue;
        }
        passthrough.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (report) {
        pb::obs::RunMeta meta =
            pb::obs::RunMeta::fromArgv(argc, argv);
        meta.wallSeconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               start)
                               .count();
        pb::obs::writeRunReportFile(*report, meta,
                                    pb::obs::defaultRegistry());
        std::fprintf(stderr, "report written to %s\n",
                     report->c_str());
    }
    return 0;
}
