/**
 * @file
 * Figure 4: packet memory access pattern — accesses to packet
 * memory per packet.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    return bench::benchMain(argc, argv, [&] {
        uint32_t packets = bench::packetArg(argc, argv, 500);
        bench::banner(
            strprintf("Figure 4: Packet Memory Access Pattern "
                      "(MRA, %u packets)", packets),
            "variation in packet-memory accesses is very small");
        an::ExperimentConfig cfg;
        std::printf("%s", an::renderFig4(cfg, packets).c_str());
    });
}
