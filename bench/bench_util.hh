/**
 * @file
 * Shared helpers for the table/figure bench binaries.
 *
 * Every binary accepts an optional `--packets=N` argument to scale
 * the experiment, and prints the paper reference values next to the
 * reproduction so the two are directly comparable.
 */

#ifndef PB_BENCH_BENCH_UTIL_HH
#define PB_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "analysis/experiments.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace pb::bench
{

/** Parse `--packets=N` (or a bare integer) from argv. */
inline uint32_t
packetArg(int argc, char **argv, uint32_t fallback)
{
    for (int i = 1; i < argc; i++) {
        std::string_view arg = argv[i];
        if (startsWith(arg, "--packets="))
            arg.remove_prefix(10);
        auto value = parseInt(arg);
        if (value && *value > 0)
            return static_cast<uint32_t>(*value);
    }
    return fallback;
}

/** Print a section header for one experiment. */
inline void
banner(const std::string &title, const std::string &paper_note)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    if (!paper_note.empty())
        std::printf("paper reference: %s\n", paper_note.c_str());
    std::printf("-----------------------------------------------"
                "---------------------\n");
}

/** Run a table/figure main body with uniform error handling. */
template <typename Fn>
int
benchMain(Fn &&body)
{
    try {
        body();
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

} // namespace pb::bench

#endif // PB_BENCH_BENCH_UTIL_HH
