/**
 * @file
 * Shared helpers for the table/figure bench binaries.
 *
 * Every binary accepts an optional `--packets=N` argument to scale
 * the experiment and an optional `--report=FILE` (or `--report
 * FILE`) argument to write a structured JSON run report
 * (obs/report.hh) of everything the run published into the default
 * metrics registry, and prints the paper reference values next to
 * the reproduction so the two are directly comparable.
 *
 * Observability outputs (all optional):
 *  - `--report=FILE`: structured JSON run report (obs/report.hh),
 *  - `--prom=FILE`: Prometheus text exposition of the registry,
 *  - `--trace=FILE`: Chrome trace-event JSON of the run
 *    (obs/tracing.hh; loads in Perfetto or chrome://tracing).
 *    Tracing records for the whole body; PB_TRACE_CAP and
 *    PB_TRACE_SAMPLE tune ring capacity and NPE32 sampling.
 *  - `--stats=FILE`: live NDJSON telemetry stream (obs/stats.hh,
 *    schema packetbench.stats.v1) appended every PB_STATS_MS
 *    milliseconds while the body runs; combined with `--prom`, the
 *    Prometheus snapshot is also rewritten in place on every tick
 *    so scrapers see live values mid-run.
 */

#ifndef PB_BENCH_BENCH_UTIL_HH
#define PB_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>

#include "analysis/experiments.hh"
#include "common/logging.hh"
#include "common/shutdown.hh"
#include "common/strutil.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "obs/tracing.hh"

namespace pb::bench
{

/** Parse `--packets=N` (or a bare integer) from argv. */
inline uint32_t
packetArg(int argc, char **argv, uint32_t fallback)
{
    for (int i = 1; i < argc; i++) {
        std::string_view arg = argv[i];
        if (startsWith(arg, "--packets="))
            arg.remove_prefix(10);
        auto value = parseInt(arg);
        if (value && *value > 0)
            return static_cast<uint32_t>(*value);
    }
    return fallback;
}

/**
 * Parse `--<name>=N` as an unsigned integer (e.g. uintArg(argc,
 * argv, "threads", 4) parses `--threads=N`); @p fallback when the
 * option is absent or malformed.
 */
inline uint32_t
uintArg(int argc, char **argv, std::string_view name,
        uint32_t fallback)
{
    std::string prefix = "--" + std::string(name) + "=";
    for (int i = 1; i < argc; i++) {
        std::string_view arg = argv[i];
        if (!startsWith(arg, prefix))
            continue;
        arg.remove_prefix(prefix.size());
        if (auto value = parseInt(arg); value && *value >= 0)
            return static_cast<uint32_t>(*value);
    }
    return fallback;
}

/** Parse `--<name>=FILE` or `--<name> FILE` from argv. */
inline std::optional<std::string>
fileArg(int argc, char **argv, std::string_view name)
{
    std::string eq = "--" + std::string(name) + "=";
    std::string bare = "--" + std::string(name);
    for (int i = 1; i < argc; i++) {
        std::string_view arg = argv[i];
        if (startsWith(arg, eq) && arg.size() > eq.size())
            return std::string(arg.substr(eq.size()));
        if (arg == bare && i + 1 < argc)
            return std::string(argv[i + 1]);
    }
    return std::nullopt;
}

/** Parse `--report=FILE` or `--report FILE` from argv. */
inline std::optional<std::string>
reportArg(int argc, char **argv)
{
    return fileArg(argc, argv, "report");
}

/** Parse `--trace=FILE` (Chrome trace-event JSON destination). */
inline std::optional<std::string>
traceArg(int argc, char **argv)
{
    return fileArg(argc, argv, "trace");
}

/** Parse `--prom=FILE` (Prometheus text exposition destination). */
inline std::optional<std::string>
promArg(int argc, char **argv)
{
    return fileArg(argc, argv, "prom");
}

/** Parse `--stats=FILE` (live NDJSON telemetry stream). */
inline std::optional<std::string>
statsArg(int argc, char **argv)
{
    return fileArg(argc, argv, "stats");
}

/** Print a section header for one experiment. */
inline void
banner(const std::string &title, const std::string &paper_note)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    if (!paper_note.empty())
        std::printf("paper reference: %s\n", paper_note.c_str());
    std::printf("-----------------------------------------------"
                "---------------------\n");
}

/**
 * Run a table/figure main body with uniform error handling.  After
 * the body finishes, `--report=FILE` serializes the default metrics
 * registry plus run metadata as JSON into FILE, `--prom=FILE` writes
 * the registry in Prometheus text format, and `--trace=FILE` records
 * the body under the event tracer and writes Chrome trace JSON.
 * `--stats=FILE` streams live NDJSON telemetry while the body runs
 * (one record per PB_STATS_MS tick plus a final one at stop).
 */
template <typename Fn>
int
benchMain(int argc, char **argv, Fn &&body)
{
    try {
        // SIGINT/SIGTERM request a graceful stop: run loops that
        // poll shutdownRequested() drain and return, so every flush
        // below (stats, trace, prom, report) still happens and the
        // process exits 0 with complete, parseable outputs.
        installShutdownHandlers();
        auto trace_path = traceArg(argc, argv);
        if (trace_path) {
            obs::Tracer::instance().configureFromEnv();
            obs::Tracer::instance().start();
        }
        auto stats_path = statsArg(argc, argv);
        obs::StatsPump pump;
        if (stats_path) {
            // With --prom too, the pump rewrites the Prometheus file
            // on every tick so scrapers see live values; the final
            // end-of-run snapshot below still runs last.
            if (auto prom_path = promArg(argc, argv))
                pump.setPromPath(*prom_path);
            pump.start(*stats_path, obs::StatsPump::defaultIntervalMs());
        }
        auto start = std::chrono::steady_clock::now();
        body();
        if (shutdownRequested())
            std::fprintf(stderr,
                         "interrupted by signal %d; flushing "
                         "outputs before exit\n",
                         shutdownSignal());
        if (stats_path) {
            pump.stop();
            std::fprintf(stderr, "stats written to %s\n",
                         stats_path->c_str());
        }
        if (trace_path) {
            obs::Tracer::instance().stop();
            obs::Tracer::instance().writeJsonFile(*trace_path);
            std::fprintf(stderr, "trace written to %s\n",
                         trace_path->c_str());
        }
        if (auto path = promArg(argc, argv)) {
            obs::writePrometheusFile(*path, obs::defaultRegistry());
            std::fprintf(stderr, "metrics written to %s\n",
                         path->c_str());
        }
        if (auto path = reportArg(argc, argv)) {
            obs::RunMeta meta = obs::RunMeta::fromArgv(argc, argv);
            meta.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            obs::writeRunReportFile(*path, meta,
                                    obs::defaultRegistry());
            std::fprintf(stderr, "report written to %s\n",
                         path->c_str());
        }
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

} // namespace pb::bench

#endif // PB_BENCH_BENCH_UTIL_HH
