/**
 * @file
 * Interpreter hot-path microbenchmark: simulated MIPS per application
 * for every dispatch mode x observer configuration, plus the
 * blocked-over-reference speedups the trajectory tracks.
 *
 * Unlike the table/figure benches this one bypasses PacketBench and
 * drives Memory/Cpu directly, so the numbers isolate the interpreter
 * (and, in the accounting configuration, the observer fan-out) from
 * framework per-packet work.  The measured loop is exactly the
 * framework's accounting boundary: place packet bytes, reset
 * registers, run the handler.
 *
 * Output: a human-readable table on stdout and a JSON document
 * (default BENCH_interp.json, `--out=FILE`) with schema
 * "packetbench.bench_interp.v1".  ci/check_bench.py validates it;
 * the committed copy at the repo root is the baseline snapshot.
 *
 * Options: --packets=N (per measured pass), --repeats=N (best-of),
 * --out=FILE, plus the usual --report/--prom/--trace.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hh"

#include "core/packetbench.hh"
#include "net/tracegen.hh"
#include "obs/json.hh"
#include "sim/accounting.hh"
#include "sim/bblock.hh"
#include "sim/cpu.hh"
#include "sim/memmap.hh"
#include "sim/memory.hh"

namespace
{

using namespace pb;

constexpr uint64_t instBudget = 10'000'000;

/** One app on one simulated machine, PacketBench's calling convention. */
struct Harness
{
    sim::Memory mem;
    sim::Cpu cpu{mem};
    uint32_t entry = 0;
    std::unique_ptr<core::Application> app;
    std::unique_ptr<sim::BlockMap> blockMap;
    std::unique_ptr<sim::PacketRecorder> rec;
    sim::FanoutObserver fanout;
    uint32_t prevLen = 0;

    explicit Harness(an::AppKind kind)
    {
        an::ExperimentConfig cfg;
        app = an::makeApp(kind, cfg);
        isa::Program prog = app->setup(mem);
        cpu.loadProgram(prog);
        entry = prog.entry("main");
        blockMap = std::make_unique<sim::BlockMap>(prog);
        rec = std::make_unique<sim::PacketRecorder>(prog, *blockMap);
        fanout.add(rec.get());
    }

    uint64_t
    runOne(const net::Packet &packet, bool accounting)
    {
        uint32_t l3_len = packet.l3Len();
        if (prevLen > l3_len)
            mem.fill(sim::layout::packetBase + l3_len,
                     prevLen - l3_len);
        mem.writeBlock(sim::layout::packetBase, packet.l3(), l3_len);
        prevLen = l3_len;
        cpu.resetRegs();
        cpu.setReg(isa::regA0, sim::layout::packetBase);
        cpu.setReg(isa::regA1, l3_len);
        if (accounting)
            rec->beginPacket();
        sim::RunResult result = cpu.run(entry, instBudget);
        if (accounting)
            rec->endPacket();
        return result.instCount;
    }
};

struct Sample
{
    uint64_t insts = 0;
    double mips = 0;
};

/** One dispatch-mode x observer configuration under measurement. */
struct Config
{
    sim::DispatchMode mode;
    bool accounting;
    std::unique_ptr<Harness> harness;
    Sample best;
};

/**
 * Best-of-@p repeats measurement of all four configurations of one
 * app.  Rounds are interleaved (each round times every configuration
 * once) so slow drift — CPU frequency boost decay, background load —
 * hits all configurations evenly instead of whichever happened to be
 * measured last.
 */
std::array<Sample, 4>
measureApp(an::AppKind kind, const std::vector<net::Packet> &packets,
           uint32_t repeats)
{
    std::array<Config, 4> configs{
        Config{sim::DispatchMode::Reference, false, nullptr, {}},
        Config{sim::DispatchMode::Reference, true, nullptr, {}},
        Config{sim::DispatchMode::Blocked, false, nullptr, {}},
        Config{sim::DispatchMode::Blocked, true, nullptr, {}},
    };
    for (auto &c : configs) {
        c.harness = std::make_unique<Harness>(kind);
        c.harness->cpu.setDispatchMode(c.mode);
        c.harness->cpu.setObserver(c.accounting ? &c.harness->fanout
                                                : nullptr);
        for (const auto &p : packets) // warm up
            c.harness->runOne(p, c.accounting);
    }
    for (uint32_t r = 0; r < repeats; r++) {
        for (auto &c : configs) {
            uint64_t insts = 0;
            auto start = std::chrono::steady_clock::now();
            for (const auto &p : packets)
                insts += c.harness->runOne(p, c.accounting);
            double ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count();
            double mips =
                ns > 0 ? static_cast<double>(insts) * 1e3 / ns : 0;
            if (mips > c.best.mips)
                c.best = {insts, mips};
        }
    }
    return {configs[0].best, configs[1].best, configs[2].best,
            configs[3].best};
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::benchMain(argc, argv, [&] {
        uint32_t n_packets = bench::packetArg(argc, argv, 5000);
        uint32_t repeats = bench::uintArg(argc, argv, "repeats", 3);
        std::string out = bench::fileArg(argc, argv, "out")
                              .value_or("BENCH_interp.json");

        bench::banner(
            "interpreter simulated MIPS "
            "(dispatch mode x observer configuration)",
            "substrate benchmark; no paper counterpart");

        obs::JsonValue::Array apps_json;
        double geo_none = 0, geo_acct = 0;
        std::printf("%-14s %12s %12s %12s %12s %9s %9s\n", "app",
                    "ref/none", "ref/acct", "blk/none", "blk/acct",
                    "x none", "x acct");
        for (an::AppKind kind : an::allAppKinds) {
            // Same synthetic packets for every configuration of an
            // app, regenerated per app so harness state never leaks.
            std::vector<net::Packet> packets;
            packets.reserve(n_packets);
            net::SyntheticTrace gen(net::Profile::MRA, n_packets, 2);
            while (auto p = gen.next())
                packets.push_back(*p);

            auto [ref_none, ref_acct, blk_none, blk_acct] =
                measureApp(kind, packets, repeats);
            if (ref_none.insts != blk_none.insts ||
                ref_acct.insts != blk_acct.insts)
                fatal("dispatch modes disagree on instruction count");

            double sp_none = ref_none.mips > 0
                                 ? blk_none.mips / ref_none.mips
                                 : 0;
            double sp_acct = ref_acct.mips > 0
                                 ? blk_acct.mips / ref_acct.mips
                                 : 0;
            geo_none += std::log(sp_none);
            geo_acct += std::log(sp_acct);

            std::string title = an::appTitle(kind);
            std::printf("%-14s %12.1f %12.1f %12.1f %12.1f %8.2fx "
                        "%8.2fx\n",
                        title.c_str(), ref_none.mips, ref_acct.mips,
                        blk_none.mips, blk_acct.mips, sp_none,
                        sp_acct);

            apps_json.push_back(obs::JsonValue(obs::JsonValue::Object{
                {"app", title},
                {"insts_per_packet",
                 static_cast<double>(blk_none.insts) / n_packets},
                {"mips",
                 obs::JsonValue(obs::JsonValue::Object{
                     {"reference",
                      obs::JsonValue(obs::JsonValue::Object{
                          {"none", ref_none.mips},
                          {"accounting", ref_acct.mips}})},
                     {"blocked",
                      obs::JsonValue(obs::JsonValue::Object{
                          {"none", blk_none.mips},
                          {"accounting", blk_acct.mips}})}})},
                {"speedup",
                 obs::JsonValue(obs::JsonValue::Object{
                     {"none", sp_none}, {"accounting", sp_acct}})}}));
        }
        size_t n_apps = std::size(an::allAppKinds);
        geo_none = std::exp(geo_none / static_cast<double>(n_apps));
        geo_acct = std::exp(geo_acct / static_cast<double>(n_apps));
        std::printf("%-14s %12s %12s %12s %12s %8.2fx %8.2fx\n",
                    "geomean", "", "", "", "", geo_none, geo_acct);

        obs::JsonValue doc(obs::JsonValue::Object{
            {"schema", "packetbench.bench_interp.v1"},
            {"packets", static_cast<uint64_t>(n_packets)},
            {"repeats", static_cast<uint64_t>(repeats)},
            {"apps", std::move(apps_json)},
            {"geomean_speedup",
             obs::JsonValue(obs::JsonValue::Object{
                 {"none", geo_none}, {"accounting", geo_acct}})}});
        std::ofstream file(out);
        if (!file)
            fatal("cannot write %s", out.c_str());
        file << doc.dump(2) << "\n";
        std::fprintf(stderr, "benchmark written to %s\n", out.c_str());
    });
}
