#!/usr/bin/env python3
"""Structural validator for Chrome trace-event JSON from --trace.

Checks that the file is valid JSON in the Chrome trace-event format
and that the instrumented pipeline actually showed up: per-packet
spans on more than one worker row (for a parallel run), dispatcher
spans, and well-formed required fields on every event.

Usage: check_trace.py TRACE.json
"""

import json
import sys

VALID_PHASES = {"X", "i", "C", "M"}


def fail(msg):
    print(f"trace check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py TRACE.json")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    packet_spans = 0
    packet_tids = set()
    dispatch_spans = 0
    thread_names = set()
    for ev in events:
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"bad phase {ph!r} in {ev}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                fail(f"event missing {key!r}: {ev}")
        if ph == "M":
            if ev["name"] == "thread_name":
                thread_names.add(ev["args"]["name"])
            continue
        if "ts" not in ev:
            fail(f"event missing ts: {ev}")
        if ph == "X":
            if "dur" not in ev or ev["dur"] < 0:
                fail(f"complete event missing/negative dur: {ev}")
            if ev["name"] == "packet":
                packet_spans += 1
                packet_tids.add(ev["tid"])
                args = ev.get("args", {})
                for key in ("app", "engine", "packet"):
                    if key not in args:
                        fail(f"packet span missing arg {key!r}: {ev}")
            elif ev["name"] == "dispatch":
                dispatch_spans += 1
        elif ph == "C":
            if not ev.get("args"):
                fail(f"counter event without args: {ev}")

    if packet_spans == 0:
        fail("no per-packet spans recorded")
    if dispatch_spans == 0:
        fail("no dispatcher spans recorded (parallel run expected)")
    if len(packet_tids) < 2:
        fail(f"packet spans confined to one thread row: {packet_tids}")
    if not any(n.startswith("engine") for n in thread_names):
        fail(f"no engine thread names: {thread_names}")
    if "dispatcher" not in thread_names:
        fail(f"no dispatcher thread name: {thread_names}")

    print(
        f"trace OK: {len(events)} events, {packet_spans} packet spans "
        f"on {len(packet_tids)} rows, {dispatch_spans} dispatch spans"
    )


if __name__ == "__main__":
    main()
