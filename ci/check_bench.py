#!/usr/bin/env python3
"""Structural validator for BENCH_interp.json from bench_micro_interp.

Checks that the interpreter microbenchmark produced a well-formed
document: the expected schema, every application present, positive
simulated-MIPS figures for all four dispatch-mode x observer
configurations, and speedup figures consistent with the raw MIPS.
Absolute thresholds are deliberately loose (the hard 2x / 1.3x gate
is judged on the committed baseline, not on shared CI runners), but
the block-stepped loop must at least not lose to the reference loop.

Usage: check_bench.py BENCH_interp.json
"""

import json
import math
import sys

EXPECTED_SCHEMA = "packetbench.bench_interp.v1"
EXPECTED_APPS = {"IPv4-radix", "IPv4-trie", "Flow Class.", "TSA"}
CONFIGS = ("none", "accounting")


def fail(msg):
    print(f"bench check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench.py BENCH_interp.json")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if doc.get("schema") != EXPECTED_SCHEMA:
        fail(f"schema {doc.get('schema')!r} != {EXPECTED_SCHEMA!r}")
    if doc.get("packets", 0) <= 0 or doc.get("repeats", 0) <= 0:
        fail("packets/repeats missing or non-positive")

    apps = doc.get("apps")
    if not isinstance(apps, list):
        fail("apps missing")
    names = {a.get("app") for a in apps}
    if names != EXPECTED_APPS:
        fail(f"app set {sorted(names)} != {sorted(EXPECTED_APPS)}")

    for app in apps:
        name = app["app"]
        if app.get("insts_per_packet", 0) <= 0:
            fail(f"{name}: non-positive insts_per_packet")
        mips = app.get("mips", {})
        for loop in ("reference", "blocked"):
            for cfg in CONFIGS:
                v = mips.get(loop, {}).get(cfg, 0)
                if not (isinstance(v, (int, float)) and v > 0):
                    fail(f"{name}: {loop}/{cfg} MIPS {v!r} not > 0")
        for cfg in CONFIGS:
            claimed = app.get("speedup", {}).get(cfg)
            derived = mips["blocked"][cfg] / mips["reference"][cfg]
            if claimed is None or not math.isclose(
                claimed, derived, rel_tol=1e-6
            ):
                fail(
                    f"{name}: speedup/{cfg} {claimed!r} inconsistent "
                    f"with MIPS ratio {derived:.4f}"
                )

    geo = doc.get("geomean_speedup", {})
    for cfg in CONFIGS:
        v = geo.get(cfg, 0)
        derived = math.exp(
            sum(math.log(a["speedup"][cfg]) for a in apps) / len(apps)
        )
        if not math.isclose(v, derived, rel_tol=1e-6):
            fail(
                f"geomean_speedup/{cfg} {v!r} inconsistent with "
                f"per-app speedups ({derived:.4f})"
            )
        if v <= 1.0:
            fail(
                f"geomean_speedup/{cfg} is {v:.2f}: the block-stepped "
                "loop lost to the reference loop"
            )

    print(
        "bench OK: {} apps, geomean speedup {:.2f}x (no observer) / "
        "{:.2f}x (accounting)".format(
            len(apps), geo["none"], geo["accounting"]
        )
    )


if __name__ == "__main__":
    main()
