#!/usr/bin/env python3
"""Structural validator for committed benchmark baselines.

Dispatches on the document's "schema" field:

packetbench.bench_interp.v1 (bench_micro_interp)
    The interpreter microbenchmark: the expected schema, every
    application present, positive simulated-MIPS figures for all four
    dispatch-mode x observer configurations, and speedup figures
    consistent with the raw MIPS.  Absolute thresholds are
    deliberately loose (the hard 2x / 1.3x gate is judged on the
    committed baseline, not on shared CI runners), but the
    block-stepped loop must at least not lose to the reference loop.

packetbench.bench_simd.v1 (bench_micro_simd)
    The SIMD kernel microbenchmark: a generic backend is always
    present, every backend reports the full kernel set with positive
    throughputs, generic speedups are exactly 1, and — when the host
    has any vector backend — the best backend beats generic on the
    batched checksum and flow-hash kernels.  No floor is imposed on
    feistel or clear: the clear kernel delegates large buffers to
    memset, so parity (speedup ~1.0) is its expected result.

Usage: check_bench.py BENCH_file.json
"""

import json
import math
import sys

INTERP_SCHEMA = "packetbench.bench_interp.v1"
SIMD_SCHEMA = "packetbench.bench_simd.v1"

EXPECTED_APPS = {"IPv4-radix", "IPv4-trie", "Flow Class.", "TSA"}
CONFIGS = ("none", "accounting")

SIMD_KERNELS = {"checksum", "flowhash", "feistel", "clear"}
SIMD_BACKENDS = ("generic", "sse42", "avx2")
# Kernels where a vector win is part of the acceptance criteria.
SIMD_MUST_WIN = ("checksum", "flowhash")


def fail(msg):
    print(f"bench check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_interp(doc):
    if doc.get("packets", 0) <= 0 or doc.get("repeats", 0) <= 0:
        fail("packets/repeats missing or non-positive")

    apps = doc.get("apps")
    if not isinstance(apps, list):
        fail("apps missing")
    names = {a.get("app") for a in apps}
    if names != EXPECTED_APPS:
        fail(f"app set {sorted(names)} != {sorted(EXPECTED_APPS)}")

    for app in apps:
        name = app["app"]
        if app.get("insts_per_packet", 0) <= 0:
            fail(f"{name}: non-positive insts_per_packet")
        mips = app.get("mips", {})
        for loop in ("reference", "blocked"):
            for cfg in CONFIGS:
                v = mips.get(loop, {}).get(cfg, 0)
                if not (isinstance(v, (int, float)) and v > 0):
                    fail(f"{name}: {loop}/{cfg} MIPS {v!r} not > 0")
        for cfg in CONFIGS:
            claimed = app.get("speedup", {}).get(cfg)
            derived = mips["blocked"][cfg] / mips["reference"][cfg]
            if claimed is None or not math.isclose(
                claimed, derived, rel_tol=1e-6
            ):
                fail(
                    f"{name}: speedup/{cfg} {claimed!r} inconsistent "
                    f"with MIPS ratio {derived:.4f}"
                )

    geo = doc.get("geomean_speedup", {})
    for cfg in CONFIGS:
        v = geo.get(cfg, 0)
        derived = math.exp(
            sum(math.log(a["speedup"][cfg]) for a in apps) / len(apps)
        )
        if not math.isclose(v, derived, rel_tol=1e-6):
            fail(
                f"geomean_speedup/{cfg} {v!r} inconsistent with "
                f"per-app speedups ({derived:.4f})"
            )
        if v <= 1.0:
            fail(
                f"geomean_speedup/{cfg} is {v:.2f}: the block-stepped "
                "loop lost to the reference loop"
            )

    print(
        "bench OK: {} apps, geomean speedup {:.2f}x (no observer) / "
        "{:.2f}x (accounting)".format(
            len(apps), geo["none"], geo["accounting"]
        )
    )


def check_simd(doc):
    for key in ("batch", "repeats", "passes"):
        if doc.get(key, 0) <= 0:
            fail(f"{key} missing or non-positive")
    for key in ("active_backend", "best_backend"):
        if doc.get(key) not in SIMD_BACKENDS:
            fail(f"{key} {doc.get(key)!r} not one of {SIMD_BACKENDS}")

    backends = doc.get("backends")
    if not isinstance(backends, list) or not backends:
        fail("backends missing or empty")
    by_name = {}
    for entry in backends:
        name = entry.get("backend")
        if name not in SIMD_BACKENDS:
            fail(f"unknown backend {name!r}")
        kernels = entry.get("kernels", {})
        if set(kernels) != SIMD_KERNELS:
            fail(
                f"{name}: kernel set {sorted(kernels)} != "
                f"{sorted(SIMD_KERNELS)}"
            )
        for kname, k in kernels.items():
            for field in ("mops", "mbytes_per_sec"):
                v = k.get(field, 0)
                if not (isinstance(v, (int, float)) and v > 0):
                    fail(f"{name}/{kname}: {field} {v!r} not > 0")
        by_name[name] = kernels

    if "generic" not in by_name:
        fail("generic backend missing (must always be measured)")
    for kname, k in by_name["generic"].items():
        if not math.isclose(k.get("speedup_vs_generic", 0), 1.0):
            fail(f"generic/{kname}: speedup_vs_generic != 1")

    best = doc["best_backend"]
    if best not in by_name:
        fail(f"best_backend {best!r} has no measurements")
    if best != "generic":
        # Acceptance criterion: the batched checksum and flow-hash
        # kernels must actually win on a vector-capable host.
        for kname in SIMD_MUST_WIN:
            v = by_name[best][kname].get("speedup_vs_generic", 0)
            if v <= 1.0:
                fail(
                    f"{best}/{kname}: speedup_vs_generic {v:.2f} "
                    "<= 1.0 — vector kernel lost to generic"
                )

    summary = ", ".join(
        "{} {:.2f}x".format(
            k, by_name[best][k].get("speedup_vs_generic", 0)
        )
        for k in ("checksum", "flowhash", "feistel", "clear")
    )
    print(
        "bench OK: {} backends, best={} ({})".format(
            len(by_name), best, summary
        )
    )


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench.py BENCH_file.json")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    schema = doc.get("schema")
    if schema == INTERP_SCHEMA:
        check_interp(doc)
    elif schema == SIMD_SCHEMA:
        check_simd(doc)
    else:
        fail(
            f"schema {schema!r} not one of "
            f"[{INTERP_SCHEMA!r}, {SIMD_SCHEMA!r}]"
        )


if __name__ == "__main__":
    main()
