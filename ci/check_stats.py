#!/usr/bin/env python3
"""Structural validator for the --stats NDJSON telemetry stream.

Checks that every line is a well-formed packetbench.stats.v1 record
(schema tag, strictly increasing seq and wall_ns, finite non-negative
rates, well-formed top-K tables) and that the live plane actually
observed the run: at least one record with a positive per-engine
windowed packet rate and a non-empty top-K flow table.

Usage: check_stats.py STATS.ndjson
"""

import json
import math
import sys

SCHEMA = "packetbench.stats.v1"

PROCESS_COUNTERS = (
    "packets",
    "insts",
    "sent",
    "dropped",
    "faults",
    "trace_dropped",
)
PROCESS_RATES = ("pps", "mips", "fault_pps")
ENGINE_RATES = ("pps", "bps", "mips", "fault_pps")


def fail(msg):
    print(f"stats check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rate(value, what):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{what} is not a number: {value!r}")
    if not math.isfinite(value):
        fail(f"{what} is not finite: {value!r}")
    if value < 0:
        fail(f"{what} is negative: {value!r}")


def check_count(value, what):
    if not isinstance(value, int) or isinstance(value, bool):
        fail(f"{what} is not an integer: {value!r}")
    if value < 0:
        fail(f"{what} is negative: {value!r}")


def check_topk(topk, where):
    if not isinstance(topk, list):
        fail(f"{where}: topk is not a list")
    prev_packets = None
    for entry in topk:
        for key in ("flow", "hash", "packets", "bytes", "faults",
                    "error"):
            if key not in entry:
                fail(f"{where}: topk entry missing {key!r}: {entry}")
        if not isinstance(entry["flow"], str) or not entry["flow"]:
            fail(f"{where}: empty topk flow label: {entry}")
        for key in ("hash", "packets", "bytes", "faults", "error"):
            check_count(entry[key], f"{where}: topk {key}")
        if entry["packets"] < 1:
            fail(f"{where}: topk entry with zero packets: {entry}")
        # The space-saving invariant: est - error <= true <= est
        # needs error <= est to be satisfiable at all.
        if entry["error"] > entry["packets"]:
            fail(f"{where}: topk error exceeds estimate: {entry}")
        if prev_packets is not None and entry["packets"] > prev_packets:
            fail(f"{where}: topk not sorted by packets desc")
        prev_packets = entry["packets"]


def main():
    if len(sys.argv) != 2:
        fail("usage: check_stats.py STATS.ndjson")

    records = []
    with open(sys.argv[1]) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append((lineno, json.loads(line)))
            except json.JSONDecodeError as e:
                fail(f"line {lineno} is not valid JSON: {e}")

    if not records:
        fail("no records in stream")

    prev_seq = 0
    prev_wall = 0
    saw_engine_pps = False
    saw_topk = False
    for lineno, rec in records:
        where = f"line {lineno}"
        if rec.get("schema") != SCHEMA:
            fail(f"{where}: schema {rec.get('schema')!r} != {SCHEMA!r}")

        for key in ("seq", "wall_ns", "interval_ns", "snapshot_ns"):
            check_count(rec.get(key), f"{where}: {key}")
        if rec["seq"] <= prev_seq:
            fail(f"{where}: seq {rec['seq']} not > {prev_seq}")
        if rec["wall_ns"] <= prev_wall:
            fail(f"{where}: wall_ns {rec['wall_ns']} not > {prev_wall}")
        prev_seq = rec["seq"]
        prev_wall = rec["wall_ns"]

        process = rec.get("process")
        if not isinstance(process, dict):
            fail(f"{where}: missing process object")
        for key in PROCESS_COUNTERS:
            check_count(process.get(key), f"{where}: process.{key}")
        for key in PROCESS_RATES:
            check_rate(process.get(key), f"{where}: process.{key}")

        engines = rec.get("engines")
        if not isinstance(engines, list):
            fail(f"{where}: missing engines array")
        for eng in engines:
            eng_where = f"{where}: engine {eng.get('engine')}"
            for key in ("engine", "packets", "faults", "queue_depth"):
                check_count(eng.get(key), f"{eng_where}: {key}")
            for key in ENGINE_RATES:
                check_rate(eng.get(key), f"{eng_where}: {key}")
            ipp = eng.get("insts_per_packet")
            if not isinstance(ipp, dict):
                fail(f"{eng_where}: missing insts_per_packet")
            check_count(ipp.get("count"), f"{eng_where}: ipp.count")
            check_rate(ipp.get("mean"), f"{eng_where}: ipp.mean")
            check_count(ipp.get("p50"), f"{eng_where}: ipp.p50")
            check_count(ipp.get("p99"), f"{eng_where}: ipp.p99")
            if ipp["p99"] < ipp["p50"]:
                fail(f"{eng_where}: p99 {ipp['p99']} < p50 {ipp['p50']}")
            check_topk(eng.get("topk"), eng_where)
            if eng["pps"] > 0:
                saw_engine_pps = True
            if eng["topk"]:
                saw_topk = True

    if not saw_engine_pps:
        fail("no record shows a positive per-engine windowed rate")
    if not saw_topk:
        fail("no record carries a non-empty top-K flow table")

    last = records[-1][1]
    n_eng = len(last["engines"])
    print(
        f"stats OK: {len(records)} records over "
        f"{last['wall_ns'] / 1e9:.2f}s, {n_eng} engines, "
        f"live rates and top-K present"
    )


if __name__ == "__main__":
    main()
