/**
 * @file
 * Workload report: PacketBench as the tool the paper describes.
 *
 * Runs all seven applications over a trace — a pcap file if given, a
 * synthetic profile otherwise — and prints a combined workload
 * characterization: per-packet complexity, memory behavior, basic
 * blocks, memory footprints, and modeled processing delay.  This is
 * the "detailed understanding of the workload" the paper argues NP
 * designers need, as one command.
 *
 * Usage: workload_report [trace.pcap|MRA|COS|ODU|LAN] [packets]
 *                        [csv-dir] [--report=FILE]
 *
 * With a third argument, per-packet statistics for every application
 * are also written as CSV files into the given directory.  With
 * `--report=FILE`, the run additionally emits the structured JSON
 * run report (obs/report.hh) holding every metric the run published
 * — the machine-readable twin of the tables below.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>

#include "analysis/delaymodel.hh"
#include "analysis/export.hh"
#include "analysis/experiments.hh"
#include "analysis/occurrence.hh"
#include "apps/crc_app.hh"
#include "common/strutil.hh"
#include "common/texttable.hh"
#include "net/pcap.hh"
#include "net/tracegen.hh"
#include "obs/report.hh"

namespace
{

using namespace pb;
using namespace pb::an;

std::unique_ptr<net::TraceSource>
openSource(const std::string &spec, uint32_t packets, bool &scramble)
{
    for (net::Profile profile : net::allProfiles) {
        if (spec == net::profileInfo(profile).name) {
            // NLANR-style profiles need the paper's scrambling
            // preprocessing or every lookup hits the same path.
            scramble = net::profileInfo(profile).nlanrRenumber;
            return std::make_unique<net::SyntheticTrace>(profile,
                                                         packets, 1);
        }
    }
    scramble = false;
    return net::openPcapFile(spec);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        auto start = std::chrono::steady_clock::now();
        // Split `--report=FILE` off from the positional arguments.
        std::optional<std::string> report_path;
        std::vector<std::string> pos;
        for (int i = 1; i < argc; i++) {
            std::string_view arg = argv[i];
            if (startsWith(arg, "--report=")) {
                report_path = std::string(arg.substr(9));
                continue;
            }
            pos.emplace_back(arg);
        }

        std::string spec = pos.size() > 0 ? pos[0] : "MRA";
        uint32_t packets = 2'000;
        if (pos.size() > 1) {
            if (auto v = parseInt(pos[1]))
                packets = static_cast<uint32_t>(*v);
        }
        std::string csv_dir = pos.size() > 2 ? pos[2] : "";

        ExperimentConfig cfg;
        CoreModel core;
        std::printf("PacketBench workload report: trace %s, %u "
                    "packets\n\n", spec.c_str(), packets);

        TextTable table(8);
        table.header({"App", "insts/pkt", "uniq", "pkt mem",
                      "non-pkt", "blocks", "data bytes",
                      "delay us"});
        for (AppKind kind : extendedAppKinds) {
            auto app = makeApp(kind, cfg);
            core::BenchConfig bench_cfg;
            bench_cfg.recorder.blockSets = true;
            auto source =
                openSource(spec, packets, bench_cfg.scramble);
            core::PacketBench bench(*app, bench_cfg);

            std::vector<sim::PacketStats> stats;
            uint32_t count = 0;
            while (count < packets) {
                auto packet = source->next();
                if (!packet)
                    break;
                stats.push_back(
                    bench.processPacket(*packet).stats);
                count++;
            }
            if (stats.empty())
                fatal("trace '%s' produced no packets", spec.c_str());

            double insts = 0;
            double unique = 0;
            double pkt = 0;
            double nonpkt = 0;
            for (const auto &s : stats) {
                insts += static_cast<double>(s.instCount);
                unique += s.uniqueInstCount;
                pkt += s.packetAccesses();
                nonpkt += s.nonPacketAccesses();
            }
            double n = static_cast<double>(stats.size());
            DelaySummary delay = summarizeDelay(stats, core);
            if (!csv_dir.empty()) {
                std::string path = csv_dir + "/" + app->name() +
                                   ".csv";
                std::ofstream csv(path);
                if (!csv)
                    fatal("cannot write '%s'", path.c_str());
                writeStatsCsv(csv, stats);
            }
            table.row({appTitle(kind), strprintf("%.0f", insts / n),
                       strprintf("%.0f", unique / n),
                       strprintf("%.1f", pkt / n),
                       strprintf("%.1f", nonpkt / n),
                       std::to_string(bench.blocks().numBlocks()),
                       withCommas(bench.recorder().dataMemoryBytes()),
                       strprintf("%.3f", delay.meanUsec)});
        }
        std::printf("%s", table.render().c_str());
        if (!csv_dir.empty())
            std::printf("\nper-packet CSVs written to %s/\n",
                        csv_dir.c_str());
        std::printf("\n(delay modeled at %.0f MHz, CPI %.1f, "
                    "pkt-mem %.0f cyc, data-mem %.0f cyc)\n",
                    core.clockMhz, core.cpi, core.packetMemCycles,
                    core.dataMemCycles);
        if (report_path) {
            obs::RunMeta meta = obs::RunMeta::fromArgv(argc, argv);
            meta.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            meta.set("trace", spec);
            meta.set("packets", std::to_string(packets));
            obs::writeRunReportFile(*report_path, meta,
                                    obs::defaultRegistry());
            std::printf("\nJSON run report written to %s\n",
                        report_path->c_str());
        }
        return 0;
    } catch (const pb::Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
