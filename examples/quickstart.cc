/**
 * @file
 * Quickstart: run a PacketBench application over a packet trace and
 * read the per-packet workload statistics.
 *
 * This is the five-minute tour: make an application, bind it to a
 * simulated core with PacketBench, feed it packets, look at the
 * numbers the paper's evaluation is built from.
 */

#include <cstdio>

#include "apps/flow_class.hh"
#include "core/packetbench.hh"
#include "net/ipv4.hh"
#include "net/tracegen.hh"

int
main()
{
    using namespace pb;

    // 1. An application: 5-tuple flow classification with a
    //    1024-bucket hash table (built in simulated memory).
    apps::FlowClassApp app(1024);

    // 2. The framework: loads the app's NPE32 program onto the
    //    simulated core and enables selective accounting.
    core::PacketBench bench(app);

    // 3. A trace: synthetic OC-3c backbone traffic (profile "COS"
    //    from the paper's Table I).  Any pcap/TSH file works too.
    net::SyntheticTrace trace(net::Profile::COS, 2000, /*seed=*/1);

    uint64_t total_insts = 0;
    uint64_t min_insts = UINT64_MAX;
    uint64_t max_insts = 0;
    uint32_t packets = 0;
    while (auto packet = trace.next()) {
        core::PacketOutcome outcome = bench.processPacket(*packet);
        total_insts += outcome.stats.instCount;
        min_insts = std::min(min_insts, outcome.stats.instCount);
        max_insts = std::max(max_insts, outcome.stats.instCount);
        packets++;
    }

    std::printf("application: %s\n", app.name().c_str());
    std::printf("packets processed: %u\n", packets);
    std::printf("instructions/packet: avg %.1f, min %llu, max %llu\n",
                static_cast<double>(total_insts) / packets,
                static_cast<unsigned long long>(min_insts),
                static_cast<unsigned long long>(max_insts));
    std::printf("flows classified: %u\n",
                app.simFlowCount(bench.memory()));
    std::printf("instruction memory touched: %llu bytes\n",
                static_cast<unsigned long long>(
                    bench.recorder().instMemoryBytes()));
    std::printf("data memory touched: %llu bytes\n",
                static_cast<unsigned long long>(
                    bench.recorder().dataMemoryBytes()));
    std::printf("static basic blocks: %u\n",
                bench.blocks().numBlocks());
    return 0;
}
