/**
 * @file
 * Trace anonymizer: the TSA workload as a real tool.
 *
 * Reads a pcap file (or generates synthetic backbone traffic when no
 * file is given), anonymizes every packet's addresses with the
 * prefix-preserving TSA application *running on the simulated
 * network processor*, and writes the anonymized trace to a new pcap
 * file — the paper's measurement-infrastructure use case end to end.
 *
 * Usage: anonymize_trace [input.pcap] [output.pcap] [key]
 */

#include <cstdio>
#include <fstream>

#include "apps/tsa_app.hh"
#include "common/strutil.hh"
#include "core/packetbench.hh"
#include "net/ipv4.hh"
#include "net/pcap.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    try {
        std::string output_path =
            argc > 2 ? argv[2] : "/tmp/anonymized.pcap";
        uint32_t key = 0xfeedface;
        if (argc > 3) {
            auto parsed = parseInt(argv[3]);
            if (parsed)
                key = static_cast<uint32_t>(*parsed);
        }

        std::unique_ptr<net::TraceSource> source;
        if (argc > 1) {
            source = net::openPcapFile(argv[1]);
        } else {
            std::printf("no input given; generating 1000 synthetic "
                        "backbone packets\n");
            source = std::make_unique<net::SyntheticTrace>(
                net::Profile::MRA, 1000, 1);
        }

        apps::TsaApp app(key);
        core::PacketBench bench(app);

        std::ofstream out_file(output_path, std::ios::binary);
        if (!out_file)
            fatal("cannot open '%s' for writing", output_path.c_str());
        net::PcapWriter sink(out_file, net::LinkType::Raw);

        uint64_t insts = 0;
        uint32_t kept = 0;
        uint32_t dropped = 0;
        while (auto packet = source->next()) {
            core::PacketOutcome outcome =
                bench.processPacket(*packet);
            insts += outcome.stats.instCount;
            if (outcome.verdict == isa::SysCode::Send) {
                // Strip any link header: TSA records raw IP.
                net::Packet raw;
                raw.tsUsec = packet->tsUsec;
                raw.wireLen = packet->wireLen;
                raw.bytes.assign(packet->l3(),
                                 packet->l3() + packet->l3Len());
                sink.write(raw);
                kept++;
            } else {
                dropped++;
            }
        }

        std::printf("anonymized %u packets (%u non-IPv4 dropped) -> "
                    "%s\n", kept, dropped, output_path.c_str());
        std::printf("simulated cost: %.1f instructions/packet\n",
                    kept ? static_cast<double>(insts) / (kept + dropped)
                         : 0.0);
        std::printf("header records collected on-chip: %u\n",
                    app.simRecordCount(bench.memory()));
        std::printf("prefix preservation: addresses sharing k prefix "
                    "bits still share exactly k bits\n");
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
