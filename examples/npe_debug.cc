/**
 * @file
 * Interactive NPE32 debugger.
 *
 * Loads one of the PacketBench applications (or a tiny demo program
 * when none is named), places a sample packet in packet memory, and
 * drops into the debugger REPL: step, continue, breakpoints,
 * registers, memory, disassembly.
 *
 * Usage: npe_debug [ipv4-radix|ipv4-trie|flow-class|tsa|nat|crc32|
 *                   xtea-enc]
 *
 * Example session:
 *     (dbg) l main 6        # disassemble
 *     (dbg) b trie_walk     # break at the lookup loop
 *     (dbg) c               # run to it
 *     (dbg) r               # inspect registers
 *     (dbg) s 10            # single-step
 */

#include <cstdio>
#include <iostream>

#include "analysis/experiments.hh"
#include "isa/assembler.hh"
#include "net/ipv4.hh"
#include "sim/debugger.hh"
#include "sim/memmap.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    try {
        sim::Memory mem;
        sim::Cpu cpu(mem);
        isa::Program prog;

        std::string name = argc > 1 ? argv[1] : "";
        bool found = false;
        for (an::AppKind kind : an::extendedAppKinds) {
            an::ExperimentConfig cfg;
            cfg.coreTablePrefixes = 1024;
            auto app = an::makeApp(kind, cfg);
            if (app->name() == name) {
                prog = app->setup(mem);
                found = true;
                break;
            }
        }
        if (!found) {
            if (!name.empty()) {
                std::fprintf(stderr,
                             "unknown app '%s'; using the demo\n",
                             name.c_str());
            }
            prog = isa::Assembler(sim::layout::textBase).assemble(R"(
                # demo: sum the first 8 header bytes
                main:
                    li  t0, 0       # sum
                    li  t1, 0       # i
                loop:
                    add  at, a0, t1
                    lbu  at, 0(at)
                    add  t0, t0, at
                    addi t1, t1, 1
                    li   at, 8
                    blt  t1, at, loop
                    move a1, t0
                    sys  1
            )");
        }
        cpu.loadProgram(prog);

        // Place a sample packet and set up the handler arguments.
        net::FiveTuple tuple;
        tuple.src = 0x0a000001;
        tuple.dst = 0xc0a80105;
        tuple.srcPort = 1234;
        tuple.dstPort = 80;
        tuple.proto = 6;
        auto bytes = net::buildIpv4Packet(tuple, 64);
        mem.writeBlock(sim::layout::packetBase, bytes.data(),
                       static_cast<uint32_t>(bytes.size()));
        cpu.resetRegs();
        cpu.setReg(isa::regA0, sim::layout::packetBase);
        cpu.setReg(isa::regA1,
                   static_cast<uint32_t>(bytes.size()));

        std::printf("loaded %zu instructions; a0 = packet (64-byte "
                    "TCP 10.0.0.1:1234 -> 192.168.1.5:80)\n",
                    prog.words.size());
        sim::Debugger dbg(cpu, prog.entry("main"));
        dbg.repl(std::cin, std::cout);
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
