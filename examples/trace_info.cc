/**
 * @file
 * Trace inspector: one-pass statistics over a packet trace.
 *
 * Accepts a pcap file, a TSH file (by .tsh extension), or a synthetic
 * profile name, and prints the Table-I-style facts PacketBench users
 * need before characterizing a workload on the trace.
 *
 * Usage: trace_info [trace.pcap|trace.tsh|MRA|COS|ODU|LAN] [packets]
 */

#include <cstdio>

#include "common/strutil.hh"
#include "net/pcap.hh"
#include "net/tracegen.hh"
#include "net/tracestats.hh"
#include "net/tsh.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    try {
        std::string spec = argc > 1 ? argv[1] : "MRA";
        uint64_t packets = 10'000;
        if (argc > 2) {
            if (auto v = parseInt(argv[2]))
                packets = static_cast<uint64_t>(*v);
        }

        std::unique_ptr<net::TraceSource> source;
        for (net::Profile profile : net::allProfiles) {
            if (spec == net::profileInfo(profile).name) {
                source = std::make_unique<net::SyntheticTrace>(
                    profile, static_cast<uint32_t>(packets), 1);
            }
        }
        if (!source) {
            if (spec.size() > 4 &&
                spec.substr(spec.size() - 4) == ".tsh") {
                source = net::openTshFile(spec);
            } else {
                source = net::openPcapFile(spec);
            }
        }

        net::TraceStats stats =
            net::collectTraceStats(*source, packets);
        std::printf("%s", stats.report(spec).c_str());
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
