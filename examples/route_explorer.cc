/**
 * @file
 * Route explorer: the paper's IPv4-radix vs IPv4-trie comparison as
 * an interactive report.
 *
 * Builds both forwarding applications over the *same* routing table,
 * runs them over the same traffic, verifies they agree on every
 * forwarding decision, and reports the per-packet workload contrast
 * that motivates the paper's Table II / Table III discussion.
 *
 * Usage: route_explorer [prefixes] [packets]
 */

#include <cstdio>

#include "apps/ipv4_radix.hh"
#include "apps/ipv4_trie.hh"
#include "common/strutil.hh"
#include "common/texttable.hh"
#include "core/packetbench.hh"
#include "net/tracegen.hh"

int
main(int argc, char **argv)
{
    using namespace pb;
    try {
        uint32_t prefixes = 8192;
        uint32_t packets = 1000;
        if (argc > 1) {
            if (auto v = parseInt(argv[1]))
                prefixes = static_cast<uint32_t>(*v);
        }
        if (argc > 2) {
            if (auto v = parseInt(argv[2]))
                packets = static_cast<uint32_t>(*v);
        }

        auto table = route::generateCoreTable(prefixes, 1);
        apps::Ipv4RadixApp radix_app(table);
        apps::Ipv4TrieApp trie_app(table);

        std::printf("routing table: %zu entries "
                    "(radix: %zu nodes; LC-trie: %zu nodes + %zu "
                    "leaves, avg depth %.2f)\n\n",
                    table.size(), radix_app.radix().numNodes(),
                    trie_app.trie().numNodes(),
                    trie_app.trie().numLeaves(),
                    trie_app.trie().averageDepth());

        core::BenchConfig cfg;
        cfg.scramble = true;
        core::PacketBench radix_bench(radix_app, cfg);
        core::PacketBench trie_bench(trie_app, cfg);

        struct Tally
        {
            double insts = 0;
            double pkt = 0;
            double nonpkt = 0;
            uint64_t min = UINT64_MAX;
            uint64_t max = 0;
        };
        Tally radix_tally;
        Tally trie_tally;
        uint32_t mismatches = 0;

        net::SyntheticTrace trace_a(net::Profile::MRA, packets, 2);
        net::SyntheticTrace trace_b(net::Profile::MRA, packets, 2);
        for (uint32_t i = 0; i < packets; i++) {
            auto pa = trace_a.next();
            auto pb_ = trace_b.next();
            core::PacketOutcome a = radix_bench.processPacket(*pa);
            core::PacketOutcome b = trie_bench.processPacket(*pb_);
            if (a.verdict != b.verdict ||
                (a.verdict == isa::SysCode::Send &&
                 a.outInterface != b.outInterface)) {
                mismatches++;
            }
            auto add = [](Tally &tally,
                          const core::PacketOutcome &outcome) {
                tally.insts +=
                    static_cast<double>(outcome.stats.instCount);
                tally.pkt += outcome.stats.packetAccesses();
                tally.nonpkt += outcome.stats.nonPacketAccesses();
                tally.min =
                    std::min(tally.min, outcome.stats.instCount);
                tally.max =
                    std::max(tally.max, outcome.stats.instCount);
            };
            add(radix_tally, a);
            add(trie_tally, b);
        }

        std::printf("forwarding agreement: %u/%u packets%s\n\n",
                    packets - mismatches, packets,
                    mismatches ? "  <-- BUG" : "");

        TextTable report(6);
        report.header({"App", "insts/pkt", "min", "max", "pkt mem",
                       "non-pkt mem"});
        auto row = [&](const char *name, const Tally &tally) {
            report.row({name,
                        strprintf("%.1f", tally.insts / packets),
                        std::to_string(tally.min),
                        std::to_string(tally.max),
                        strprintf("%.1f", tally.pkt / packets),
                        strprintf("%.1f", tally.nonpkt / packets)});
        };
        row("IPv4-radix", radix_tally);
        row("IPv4-trie", trie_tally);
        std::printf("%s", report.render().c_str());
        std::printf("\nradix/trie instruction ratio: %.1fx "
                    "(the paper's headline contrast)\n",
                    radix_tally.insts / trie_tally.insts);
        return mismatches ? 1 : 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
