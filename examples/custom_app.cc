/**
 * @file
 * Writing a new PacketBench application from scratch.
 *
 * The paper's Section III sells PacketBench on how little it takes
 * to plug in a new packet-processing function.  This example defines
 * a brand-new application inline — a TTL-threshold filter with
 * per-interface accounting — implements core::Application, and runs
 * it with full workload statistics, including a disassembly of the
 * generated program.
 *
 * Usage: custom_app [ttl_threshold]
 */

#include <cstdio>

#include "common/strutil.hh"
#include "core/packetbench.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "net/tracegen.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;

/**
 * Drops packets whose TTL is below a threshold; forwards the rest on
 * an interface chosen by destination-address parity, counting
 * per-interface packets in simulated memory.
 */
class TtlFilterApp : public core::Application
{
  public:
    explicit TtlFilterApp(uint8_t threshold) : threshold(threshold) {}

    std::string name() const override { return "ttl-filter"; }

    /** Packet counters live at the start of the data region. */
    static constexpr uint32_t countersBase = sim::layout::dataBase;

    isa::Program
    setup(sim::Memory &mem) override
    {
        mem.write32(countersBase, 0);     // interface 0 count
        mem.write32(countersBase + 4, 0); // interface 1 count

        std::string src = strprintf(".equ COUNTERS, 0x%08x\n"
                                    ".equ THRESHOLD, %u\n",
                                    countersBase, threshold);
        src += R"(
            # a0 = packet (layer 3), a1 = captured length
main:
            lbu  t0, 8(a0)          # TTL
            li   at, THRESHOLD
            blt  t0, at, drop
            lbu  t1, 19(a0)         # low byte of destination
            andi t1, t1, 1          # interface = dst & 1
            slli t2, t1, 2
            li   at, COUNTERS
            add  t2, t2, at
            lw   t3, 0(t2)          # counters[interface]++
            addi t3, t3, 1
            sw   t3, 0(t2)
            move a1, t1
            sys  1                  # send on the chosen interface
drop:
            sys  2
)";
        return isa::Assembler(sim::layout::textBase)
            .assemble(src, "ttl_filter.s");
    }

  private:
    uint8_t threshold;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace pb;
    try {
        uint8_t threshold = 16;
        if (argc > 1) {
            if (auto v = parseInt(argv[1]))
                threshold = static_cast<uint8_t>(*v);
        }

        TtlFilterApp app(threshold);
        core::PacketBench bench(app);

        std::printf("generated NPE32 program:\n%s\n",
                    isa::disassemble(bench.program()).c_str());

        net::SyntheticTrace trace(net::Profile::LAN, 2000, 3);
        uint32_t sent[2] = {0, 0};
        uint32_t dropped = 0;
        uint64_t insts = 0;
        while (auto packet = trace.next()) {
            core::PacketOutcome outcome =
                bench.processPacket(*packet);
            insts += outcome.stats.instCount;
            if (outcome.verdict == isa::SysCode::Send)
                sent[outcome.outInterface & 1]++;
            else
                dropped++;
        }

        std::printf("TTL threshold %u: sent %u on if0, %u on if1, "
                    "dropped %u\n", threshold, sent[0], sent[1],
                    dropped);
        std::printf("simulated counters agree: if0=%u if1=%u\n",
                    bench.memory().read32(TtlFilterApp::countersBase),
                    bench.memory().read32(
                        TtlFilterApp::countersBase + 4));
        std::printf("cost: %.1f instructions/packet (a trivial app — "
                    "compare Table II)\n",
                    static_cast<double>(insts) / 2000);
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
