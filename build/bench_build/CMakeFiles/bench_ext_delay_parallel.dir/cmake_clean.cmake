file(REMOVE_RECURSE
  "../bench/bench_ext_delay_parallel"
  "../bench/bench_ext_delay_parallel.pdb"
  "CMakeFiles/bench_ext_delay_parallel.dir/bench_ext_delay_parallel.cc.o"
  "CMakeFiles/bench_ext_delay_parallel.dir/bench_ext_delay_parallel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_delay_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
