# Empty dependencies file for bench_ext_delay_parallel.
# This may be replaced when dependencies are built.
