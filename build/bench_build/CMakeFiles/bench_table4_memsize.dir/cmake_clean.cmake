file(REMOVE_RECURSE
  "../bench/bench_table4_memsize"
  "../bench/bench_table4_memsize.pdb"
  "CMakeFiles/bench_table4_memsize.dir/bench_table4_memsize.cc.o"
  "CMakeFiles/bench_table4_memsize.dir/bench_table4_memsize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_memsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
