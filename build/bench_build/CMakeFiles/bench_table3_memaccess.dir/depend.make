# Empty dependencies file for bench_table3_memaccess.
# This may be replaced when dependencies are built.
