file(REMOVE_RECURSE
  "../bench/bench_table3_memaccess"
  "../bench/bench_table3_memaccess.pdb"
  "CMakeFiles/bench_table3_memaccess.dir/bench_table3_memaccess.cc.o"
  "CMakeFiles/bench_table3_memaccess.dir/bench_table3_memaccess.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_memaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
