# Empty compiler generated dependencies file for bench_fig5_nonpacket_mem.
# This may be replaced when dependencies are built.
