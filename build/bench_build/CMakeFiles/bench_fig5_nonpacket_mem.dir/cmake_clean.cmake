file(REMOVE_RECURSE
  "../bench/bench_fig5_nonpacket_mem"
  "../bench/bench_fig5_nonpacket_mem.pdb"
  "CMakeFiles/bench_fig5_nonpacket_mem.dir/bench_fig5_nonpacket_mem.cc.o"
  "CMakeFiles/bench_fig5_nonpacket_mem.dir/bench_fig5_nonpacket_mem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nonpacket_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
