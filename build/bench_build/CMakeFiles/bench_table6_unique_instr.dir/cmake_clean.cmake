file(REMOVE_RECURSE
  "../bench/bench_table6_unique_instr"
  "../bench/bench_table6_unique_instr.pdb"
  "CMakeFiles/bench_table6_unique_instr.dir/bench_table6_unique_instr.cc.o"
  "CMakeFiles/bench_table6_unique_instr.dir/bench_table6_unique_instr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_unique_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
