# Empty compiler generated dependencies file for bench_table6_unique_instr.
# This may be replaced when dependencies are built.
