# Empty dependencies file for bench_ext_microarch.
# This may be replaced when dependencies are built.
