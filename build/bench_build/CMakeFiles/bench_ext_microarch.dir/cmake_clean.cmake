file(REMOVE_RECURSE
  "../bench/bench_ext_microarch"
  "../bench/bench_ext_microarch.pdb"
  "CMakeFiles/bench_ext_microarch.dir/bench_ext_microarch.cc.o"
  "CMakeFiles/bench_ext_microarch.dir/bench_ext_microarch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
