file(REMOVE_RECURSE
  "../bench/bench_table2_complexity"
  "../bench/bench_table2_complexity.pdb"
  "CMakeFiles/bench_table2_complexity.dir/bench_table2_complexity.cc.o"
  "CMakeFiles/bench_table2_complexity.dir/bench_table2_complexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
