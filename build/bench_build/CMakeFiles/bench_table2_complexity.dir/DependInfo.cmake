
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_complexity.cc" "bench_build/CMakeFiles/bench_table2_complexity.dir/bench_table2_complexity.cc.o" "gcc" "bench_build/CMakeFiles/bench_table2_complexity.dir/bench_table2_complexity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/pb_route.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/pb_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/pb_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/payload/CMakeFiles/pb_payload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
