# Empty dependencies file for bench_table5_instr_variation.
# This may be replaced when dependencies are built.
