file(REMOVE_RECURSE
  "../bench/bench_table5_instr_variation"
  "../bench/bench_table5_instr_variation.pdb"
  "CMakeFiles/bench_table5_instr_variation.dir/bench_table5_instr_variation.cc.o"
  "CMakeFiles/bench_table5_instr_variation.dir/bench_table5_instr_variation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_instr_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
