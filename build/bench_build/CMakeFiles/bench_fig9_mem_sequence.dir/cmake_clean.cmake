file(REMOVE_RECURSE
  "../bench/bench_fig9_mem_sequence"
  "../bench/bench_fig9_mem_sequence.pdb"
  "CMakeFiles/bench_fig9_mem_sequence.dir/bench_fig9_mem_sequence.cc.o"
  "CMakeFiles/bench_fig9_mem_sequence.dir/bench_fig9_mem_sequence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mem_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
