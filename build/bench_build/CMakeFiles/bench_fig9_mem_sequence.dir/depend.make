# Empty dependencies file for bench_fig9_mem_sequence.
# This may be replaced when dependencies are built.
