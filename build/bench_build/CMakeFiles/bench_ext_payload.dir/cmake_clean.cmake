file(REMOVE_RECURSE
  "../bench/bench_ext_payload"
  "../bench/bench_ext_payload.pdb"
  "CMakeFiles/bench_ext_payload.dir/bench_ext_payload.cc.o"
  "CMakeFiles/bench_ext_payload.dir/bench_ext_payload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
