file(REMOVE_RECURSE
  "../bench/bench_ext_multicore"
  "../bench/bench_ext_multicore.pdb"
  "CMakeFiles/bench_ext_multicore.dir/bench_ext_multicore.cc.o"
  "CMakeFiles/bench_ext_multicore.dir/bench_ext_multicore.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
