file(REMOVE_RECURSE
  "../bench/bench_ablation_tsa_vs_cryptopan"
  "../bench/bench_ablation_tsa_vs_cryptopan.pdb"
  "CMakeFiles/bench_ablation_tsa_vs_cryptopan.dir/bench_ablation_tsa_vs_cryptopan.cc.o"
  "CMakeFiles/bench_ablation_tsa_vs_cryptopan.dir/bench_ablation_tsa_vs_cryptopan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tsa_vs_cryptopan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
