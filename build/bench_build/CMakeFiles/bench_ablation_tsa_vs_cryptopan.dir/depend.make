# Empty dependencies file for bench_ablation_tsa_vs_cryptopan.
# This may be replaced when dependencies are built.
