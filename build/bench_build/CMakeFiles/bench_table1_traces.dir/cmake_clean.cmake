file(REMOVE_RECURSE
  "../bench/bench_table1_traces"
  "../bench/bench_table1_traces.pdb"
  "CMakeFiles/bench_table1_traces.dir/bench_table1_traces.cc.o"
  "CMakeFiles/bench_table1_traces.dir/bench_table1_traces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
