# Empty compiler generated dependencies file for bench_fig7_bb_probability.
# This may be replaced when dependencies are built.
