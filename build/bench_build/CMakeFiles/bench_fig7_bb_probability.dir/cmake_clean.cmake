file(REMOVE_RECURSE
  "../bench/bench_fig7_bb_probability"
  "../bench/bench_fig7_bb_probability.pdb"
  "CMakeFiles/bench_fig7_bb_probability.dir/bench_fig7_bb_probability.cc.o"
  "CMakeFiles/bench_fig7_bb_probability.dir/bench_fig7_bb_probability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bb_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
