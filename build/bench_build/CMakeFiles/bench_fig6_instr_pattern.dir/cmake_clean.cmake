file(REMOVE_RECURSE
  "../bench/bench_fig6_instr_pattern"
  "../bench/bench_fig6_instr_pattern.pdb"
  "CMakeFiles/bench_fig6_instr_pattern.dir/bench_fig6_instr_pattern.cc.o"
  "CMakeFiles/bench_fig6_instr_pattern.dir/bench_fig6_instr_pattern.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_instr_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
