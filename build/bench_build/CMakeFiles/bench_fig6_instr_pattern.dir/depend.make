# Empty dependencies file for bench_fig6_instr_pattern.
# This may be replaced when dependencies are built.
