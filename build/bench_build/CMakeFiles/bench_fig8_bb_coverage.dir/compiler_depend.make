# Empty compiler generated dependencies file for bench_fig8_bb_coverage.
# This may be replaced when dependencies are built.
