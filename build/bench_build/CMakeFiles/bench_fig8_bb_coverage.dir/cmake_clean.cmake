file(REMOVE_RECURSE
  "../bench/bench_fig8_bb_coverage"
  "../bench/bench_fig8_bb_coverage.pdb"
  "CMakeFiles/bench_fig8_bb_coverage.dir/bench_fig8_bb_coverage.cc.o"
  "CMakeFiles/bench_fig8_bb_coverage.dir/bench_fig8_bb_coverage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bb_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
