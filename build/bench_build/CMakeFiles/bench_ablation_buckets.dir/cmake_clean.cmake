file(REMOVE_RECURSE
  "../bench/bench_ablation_buckets"
  "../bench/bench_ablation_buckets.pdb"
  "CMakeFiles/bench_ablation_buckets.dir/bench_ablation_buckets.cc.o"
  "CMakeFiles/bench_ablation_buckets.dir/bench_ablation_buckets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
