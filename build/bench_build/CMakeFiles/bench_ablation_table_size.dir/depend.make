# Empty dependencies file for bench_ablation_table_size.
# This may be replaced when dependencies are built.
