file(REMOVE_RECURSE
  "../bench/bench_fig3_complexity_series"
  "../bench/bench_fig3_complexity_series.pdb"
  "CMakeFiles/bench_fig3_complexity_series.dir/bench_fig3_complexity_series.cc.o"
  "CMakeFiles/bench_fig3_complexity_series.dir/bench_fig3_complexity_series.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_complexity_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
