# Empty compiler generated dependencies file for bench_fig3_complexity_series.
# This may be replaced when dependencies are built.
