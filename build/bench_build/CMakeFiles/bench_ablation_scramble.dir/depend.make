# Empty dependencies file for bench_ablation_scramble.
# This may be replaced when dependencies are built.
