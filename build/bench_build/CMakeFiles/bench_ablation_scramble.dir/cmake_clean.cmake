file(REMOVE_RECURSE
  "../bench/bench_ablation_scramble"
  "../bench/bench_ablation_scramble.pdb"
  "CMakeFiles/bench_ablation_scramble.dir/bench_ablation_scramble.cc.o"
  "CMakeFiles/bench_ablation_scramble.dir/bench_ablation_scramble.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scramble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
