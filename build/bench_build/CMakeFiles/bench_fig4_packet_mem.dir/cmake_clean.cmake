file(REMOVE_RECURSE
  "../bench/bench_fig4_packet_mem"
  "../bench/bench_fig4_packet_mem.pdb"
  "CMakeFiles/bench_fig4_packet_mem.dir/bench_fig4_packet_mem.cc.o"
  "CMakeFiles/bench_fig4_packet_mem.dir/bench_fig4_packet_mem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_packet_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
