# Empty compiler generated dependencies file for bench_ext_flowgraph.
# This may be replaced when dependencies are built.
