file(REMOVE_RECURSE
  "../bench/bench_ext_flowgraph"
  "../bench/bench_ext_flowgraph.pdb"
  "CMakeFiles/bench_ext_flowgraph.dir/bench_ext_flowgraph.cc.o"
  "CMakeFiles/bench_ext_flowgraph.dir/bench_ext_flowgraph.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_flowgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
