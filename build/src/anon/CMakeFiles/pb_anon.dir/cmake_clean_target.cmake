file(REMOVE_RECURSE
  "libpb_anon.a"
)
