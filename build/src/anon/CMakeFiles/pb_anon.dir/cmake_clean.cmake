file(REMOVE_RECURSE
  "CMakeFiles/pb_anon.dir/tsa.cc.o"
  "CMakeFiles/pb_anon.dir/tsa.cc.o.d"
  "libpb_anon.a"
  "libpb_anon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
