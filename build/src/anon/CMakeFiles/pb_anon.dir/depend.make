# Empty dependencies file for pb_anon.
# This may be replaced when dependencies are built.
