# Empty compiler generated dependencies file for pb_common.
# This may be replaced when dependencies are built.
