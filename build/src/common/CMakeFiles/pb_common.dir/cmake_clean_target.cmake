file(REMOVE_RECURSE
  "libpb_common.a"
)
