file(REMOVE_RECURSE
  "CMakeFiles/pb_common.dir/hash.cc.o"
  "CMakeFiles/pb_common.dir/hash.cc.o.d"
  "CMakeFiles/pb_common.dir/logging.cc.o"
  "CMakeFiles/pb_common.dir/logging.cc.o.d"
  "CMakeFiles/pb_common.dir/strutil.cc.o"
  "CMakeFiles/pb_common.dir/strutil.cc.o.d"
  "CMakeFiles/pb_common.dir/texttable.cc.o"
  "CMakeFiles/pb_common.dir/texttable.cc.o.d"
  "libpb_common.a"
  "libpb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
