file(REMOVE_RECURSE
  "CMakeFiles/pb_analysis.dir/blockstats.cc.o"
  "CMakeFiles/pb_analysis.dir/blockstats.cc.o.d"
  "CMakeFiles/pb_analysis.dir/delaymodel.cc.o"
  "CMakeFiles/pb_analysis.dir/delaymodel.cc.o.d"
  "CMakeFiles/pb_analysis.dir/experiments.cc.o"
  "CMakeFiles/pb_analysis.dir/experiments.cc.o.d"
  "CMakeFiles/pb_analysis.dir/export.cc.o"
  "CMakeFiles/pb_analysis.dir/export.cc.o.d"
  "CMakeFiles/pb_analysis.dir/flowgraph.cc.o"
  "CMakeFiles/pb_analysis.dir/flowgraph.cc.o.d"
  "CMakeFiles/pb_analysis.dir/instpattern.cc.o"
  "CMakeFiles/pb_analysis.dir/instpattern.cc.o.d"
  "CMakeFiles/pb_analysis.dir/occurrence.cc.o"
  "CMakeFiles/pb_analysis.dir/occurrence.cc.o.d"
  "libpb_analysis.a"
  "libpb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
