
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blockstats.cc" "src/analysis/CMakeFiles/pb_analysis.dir/blockstats.cc.o" "gcc" "src/analysis/CMakeFiles/pb_analysis.dir/blockstats.cc.o.d"
  "/root/repo/src/analysis/delaymodel.cc" "src/analysis/CMakeFiles/pb_analysis.dir/delaymodel.cc.o" "gcc" "src/analysis/CMakeFiles/pb_analysis.dir/delaymodel.cc.o.d"
  "/root/repo/src/analysis/experiments.cc" "src/analysis/CMakeFiles/pb_analysis.dir/experiments.cc.o" "gcc" "src/analysis/CMakeFiles/pb_analysis.dir/experiments.cc.o.d"
  "/root/repo/src/analysis/export.cc" "src/analysis/CMakeFiles/pb_analysis.dir/export.cc.o" "gcc" "src/analysis/CMakeFiles/pb_analysis.dir/export.cc.o.d"
  "/root/repo/src/analysis/flowgraph.cc" "src/analysis/CMakeFiles/pb_analysis.dir/flowgraph.cc.o" "gcc" "src/analysis/CMakeFiles/pb_analysis.dir/flowgraph.cc.o.d"
  "/root/repo/src/analysis/instpattern.cc" "src/analysis/CMakeFiles/pb_analysis.dir/instpattern.cc.o" "gcc" "src/analysis/CMakeFiles/pb_analysis.dir/instpattern.cc.o.d"
  "/root/repo/src/analysis/occurrence.cc" "src/analysis/CMakeFiles/pb_analysis.dir/occurrence.cc.o" "gcc" "src/analysis/CMakeFiles/pb_analysis.dir/occurrence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/pb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/pb_route.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/pb_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/pb_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/payload/CMakeFiles/pb_payload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
