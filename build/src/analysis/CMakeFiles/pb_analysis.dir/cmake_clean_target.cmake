file(REMOVE_RECURSE
  "libpb_analysis.a"
)
