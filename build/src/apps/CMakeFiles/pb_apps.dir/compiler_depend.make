# Empty compiler generated dependencies file for pb_apps.
# This may be replaced when dependencies are built.
