file(REMOVE_RECURSE
  "CMakeFiles/pb_apps.dir/crc_app.cc.o"
  "CMakeFiles/pb_apps.dir/crc_app.cc.o.d"
  "CMakeFiles/pb_apps.dir/flow_class.cc.o"
  "CMakeFiles/pb_apps.dir/flow_class.cc.o.d"
  "CMakeFiles/pb_apps.dir/ipv4_radix.cc.o"
  "CMakeFiles/pb_apps.dir/ipv4_radix.cc.o.d"
  "CMakeFiles/pb_apps.dir/ipv4_trie.cc.o"
  "CMakeFiles/pb_apps.dir/ipv4_trie.cc.o.d"
  "CMakeFiles/pb_apps.dir/nat_app.cc.o"
  "CMakeFiles/pb_apps.dir/nat_app.cc.o.d"
  "CMakeFiles/pb_apps.dir/tsa_app.cc.o"
  "CMakeFiles/pb_apps.dir/tsa_app.cc.o.d"
  "CMakeFiles/pb_apps.dir/xtea_app.cc.o"
  "CMakeFiles/pb_apps.dir/xtea_app.cc.o.d"
  "libpb_apps.a"
  "libpb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
