file(REMOVE_RECURSE
  "libpb_apps.a"
)
