
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/crc_app.cc" "src/apps/CMakeFiles/pb_apps.dir/crc_app.cc.o" "gcc" "src/apps/CMakeFiles/pb_apps.dir/crc_app.cc.o.d"
  "/root/repo/src/apps/flow_class.cc" "src/apps/CMakeFiles/pb_apps.dir/flow_class.cc.o" "gcc" "src/apps/CMakeFiles/pb_apps.dir/flow_class.cc.o.d"
  "/root/repo/src/apps/ipv4_radix.cc" "src/apps/CMakeFiles/pb_apps.dir/ipv4_radix.cc.o" "gcc" "src/apps/CMakeFiles/pb_apps.dir/ipv4_radix.cc.o.d"
  "/root/repo/src/apps/ipv4_trie.cc" "src/apps/CMakeFiles/pb_apps.dir/ipv4_trie.cc.o" "gcc" "src/apps/CMakeFiles/pb_apps.dir/ipv4_trie.cc.o.d"
  "/root/repo/src/apps/nat_app.cc" "src/apps/CMakeFiles/pb_apps.dir/nat_app.cc.o" "gcc" "src/apps/CMakeFiles/pb_apps.dir/nat_app.cc.o.d"
  "/root/repo/src/apps/tsa_app.cc" "src/apps/CMakeFiles/pb_apps.dir/tsa_app.cc.o" "gcc" "src/apps/CMakeFiles/pb_apps.dir/tsa_app.cc.o.d"
  "/root/repo/src/apps/xtea_app.cc" "src/apps/CMakeFiles/pb_apps.dir/xtea_app.cc.o" "gcc" "src/apps/CMakeFiles/pb_apps.dir/xtea_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/pb_route.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/pb_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/pb_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/payload/CMakeFiles/pb_payload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
