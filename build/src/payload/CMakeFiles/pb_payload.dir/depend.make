# Empty dependencies file for pb_payload.
# This may be replaced when dependencies are built.
