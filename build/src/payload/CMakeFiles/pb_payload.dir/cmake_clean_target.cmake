file(REMOVE_RECURSE
  "libpb_payload.a"
)
