file(REMOVE_RECURSE
  "CMakeFiles/pb_payload.dir/xtea.cc.o"
  "CMakeFiles/pb_payload.dir/xtea.cc.o.d"
  "libpb_payload.a"
  "libpb_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
