file(REMOVE_RECURSE
  "CMakeFiles/pb_sim.dir/accounting.cc.o"
  "CMakeFiles/pb_sim.dir/accounting.cc.o.d"
  "CMakeFiles/pb_sim.dir/bblock.cc.o"
  "CMakeFiles/pb_sim.dir/bblock.cc.o.d"
  "CMakeFiles/pb_sim.dir/cpu.cc.o"
  "CMakeFiles/pb_sim.dir/cpu.cc.o.d"
  "CMakeFiles/pb_sim.dir/debugger.cc.o"
  "CMakeFiles/pb_sim.dir/debugger.cc.o.d"
  "CMakeFiles/pb_sim.dir/memory.cc.o"
  "CMakeFiles/pb_sim.dir/memory.cc.o.d"
  "CMakeFiles/pb_sim.dir/timing.cc.o"
  "CMakeFiles/pb_sim.dir/timing.cc.o.d"
  "CMakeFiles/pb_sim.dir/uarch.cc.o"
  "CMakeFiles/pb_sim.dir/uarch.cc.o.d"
  "libpb_sim.a"
  "libpb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
