
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accounting.cc" "src/sim/CMakeFiles/pb_sim.dir/accounting.cc.o" "gcc" "src/sim/CMakeFiles/pb_sim.dir/accounting.cc.o.d"
  "/root/repo/src/sim/bblock.cc" "src/sim/CMakeFiles/pb_sim.dir/bblock.cc.o" "gcc" "src/sim/CMakeFiles/pb_sim.dir/bblock.cc.o.d"
  "/root/repo/src/sim/cpu.cc" "src/sim/CMakeFiles/pb_sim.dir/cpu.cc.o" "gcc" "src/sim/CMakeFiles/pb_sim.dir/cpu.cc.o.d"
  "/root/repo/src/sim/debugger.cc" "src/sim/CMakeFiles/pb_sim.dir/debugger.cc.o" "gcc" "src/sim/CMakeFiles/pb_sim.dir/debugger.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/pb_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/pb_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/timing.cc" "src/sim/CMakeFiles/pb_sim.dir/timing.cc.o" "gcc" "src/sim/CMakeFiles/pb_sim.dir/timing.cc.o.d"
  "/root/repo/src/sim/uarch.cc" "src/sim/CMakeFiles/pb_sim.dir/uarch.cc.o" "gcc" "src/sim/CMakeFiles/pb_sim.dir/uarch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
