
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/multicore.cc" "src/core/CMakeFiles/pb_core.dir/multicore.cc.o" "gcc" "src/core/CMakeFiles/pb_core.dir/multicore.cc.o.d"
  "/root/repo/src/core/packetbench.cc" "src/core/CMakeFiles/pb_core.dir/packetbench.cc.o" "gcc" "src/core/CMakeFiles/pb_core.dir/packetbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
