file(REMOVE_RECURSE
  "libpb_core.a"
)
