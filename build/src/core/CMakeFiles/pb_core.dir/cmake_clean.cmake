file(REMOVE_RECURSE
  "CMakeFiles/pb_core.dir/multicore.cc.o"
  "CMakeFiles/pb_core.dir/multicore.cc.o.d"
  "CMakeFiles/pb_core.dir/packetbench.cc.o"
  "CMakeFiles/pb_core.dir/packetbench.cc.o.d"
  "libpb_core.a"
  "libpb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
