# Empty dependencies file for pb_flow.
# This may be replaced when dependencies are built.
