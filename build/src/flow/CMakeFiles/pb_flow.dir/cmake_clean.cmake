file(REMOVE_RECURSE
  "CMakeFiles/pb_flow.dir/flowtable.cc.o"
  "CMakeFiles/pb_flow.dir/flowtable.cc.o.d"
  "CMakeFiles/pb_flow.dir/nat.cc.o"
  "CMakeFiles/pb_flow.dir/nat.cc.o.d"
  "libpb_flow.a"
  "libpb_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
