file(REMOVE_RECURSE
  "libpb_flow.a"
)
