
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flowtable.cc" "src/flow/CMakeFiles/pb_flow.dir/flowtable.cc.o" "gcc" "src/flow/CMakeFiles/pb_flow.dir/flowtable.cc.o.d"
  "/root/repo/src/flow/nat.cc" "src/flow/CMakeFiles/pb_flow.dir/nat.cc.o" "gcc" "src/flow/CMakeFiles/pb_flow.dir/nat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
