file(REMOVE_RECURSE
  "libpb_isa.a"
)
