# Empty compiler generated dependencies file for pb_isa.
# This may be replaced when dependencies are built.
