file(REMOVE_RECURSE
  "CMakeFiles/pb_isa.dir/assembler.cc.o"
  "CMakeFiles/pb_isa.dir/assembler.cc.o.d"
  "CMakeFiles/pb_isa.dir/disasm.cc.o"
  "CMakeFiles/pb_isa.dir/disasm.cc.o.d"
  "CMakeFiles/pb_isa.dir/inst.cc.o"
  "CMakeFiles/pb_isa.dir/inst.cc.o.d"
  "CMakeFiles/pb_isa.dir/opcodes.cc.o"
  "CMakeFiles/pb_isa.dir/opcodes.cc.o.d"
  "libpb_isa.a"
  "libpb_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
