file(REMOVE_RECURSE
  "libpb_net.a"
)
