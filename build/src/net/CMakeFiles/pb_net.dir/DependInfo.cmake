
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/pb_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/pb_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/net/CMakeFiles/pb_net.dir/pcap.cc.o" "gcc" "src/net/CMakeFiles/pb_net.dir/pcap.cc.o.d"
  "/root/repo/src/net/scramble.cc" "src/net/CMakeFiles/pb_net.dir/scramble.cc.o" "gcc" "src/net/CMakeFiles/pb_net.dir/scramble.cc.o.d"
  "/root/repo/src/net/tracegen.cc" "src/net/CMakeFiles/pb_net.dir/tracegen.cc.o" "gcc" "src/net/CMakeFiles/pb_net.dir/tracegen.cc.o.d"
  "/root/repo/src/net/tracestats.cc" "src/net/CMakeFiles/pb_net.dir/tracestats.cc.o" "gcc" "src/net/CMakeFiles/pb_net.dir/tracestats.cc.o.d"
  "/root/repo/src/net/tsh.cc" "src/net/CMakeFiles/pb_net.dir/tsh.cc.o" "gcc" "src/net/CMakeFiles/pb_net.dir/tsh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
