# Empty dependencies file for pb_net.
# This may be replaced when dependencies are built.
