file(REMOVE_RECURSE
  "CMakeFiles/pb_net.dir/ipv4.cc.o"
  "CMakeFiles/pb_net.dir/ipv4.cc.o.d"
  "CMakeFiles/pb_net.dir/pcap.cc.o"
  "CMakeFiles/pb_net.dir/pcap.cc.o.d"
  "CMakeFiles/pb_net.dir/scramble.cc.o"
  "CMakeFiles/pb_net.dir/scramble.cc.o.d"
  "CMakeFiles/pb_net.dir/tracegen.cc.o"
  "CMakeFiles/pb_net.dir/tracegen.cc.o.d"
  "CMakeFiles/pb_net.dir/tracestats.cc.o"
  "CMakeFiles/pb_net.dir/tracestats.cc.o.d"
  "CMakeFiles/pb_net.dir/tsh.cc.o"
  "CMakeFiles/pb_net.dir/tsh.cc.o.d"
  "libpb_net.a"
  "libpb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
