# Empty dependencies file for pb_route.
# This may be replaced when dependencies are built.
