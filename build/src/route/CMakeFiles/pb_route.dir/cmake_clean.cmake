file(REMOVE_RECURSE
  "CMakeFiles/pb_route.dir/lctrie.cc.o"
  "CMakeFiles/pb_route.dir/lctrie.cc.o.d"
  "CMakeFiles/pb_route.dir/linear.cc.o"
  "CMakeFiles/pb_route.dir/linear.cc.o.d"
  "CMakeFiles/pb_route.dir/prefix.cc.o"
  "CMakeFiles/pb_route.dir/prefix.cc.o.d"
  "CMakeFiles/pb_route.dir/radix.cc.o"
  "CMakeFiles/pb_route.dir/radix.cc.o.d"
  "libpb_route.a"
  "libpb_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
