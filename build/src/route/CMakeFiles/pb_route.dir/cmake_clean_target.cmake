file(REMOVE_RECURSE
  "libpb_route.a"
)
