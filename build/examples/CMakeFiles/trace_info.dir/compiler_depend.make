# Empty compiler generated dependencies file for trace_info.
# This may be replaced when dependencies are built.
