# Empty compiler generated dependencies file for npe_debug.
# This may be replaced when dependencies are built.
