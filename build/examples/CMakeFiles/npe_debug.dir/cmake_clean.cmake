file(REMOVE_RECURSE
  "CMakeFiles/npe_debug.dir/npe_debug.cc.o"
  "CMakeFiles/npe_debug.dir/npe_debug.cc.o.d"
  "npe_debug"
  "npe_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npe_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
