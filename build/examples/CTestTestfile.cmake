# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_app "/root/repo/build/examples/custom_app" "16")
set_tests_properties(example_custom_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_route_explorer "/root/repo/build/examples/route_explorer" "1024" "200")
set_tests_properties(example_route_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymize_trace "/root/repo/build/examples/anonymize_trace")
set_tests_properties(example_anonymize_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_report "/root/repo/build/examples/workload_report" "LAN" "200")
set_tests_properties(example_workload_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_info "/root/repo/build/examples/trace_info" "COS" "2000")
set_tests_properties(example_trace_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_npe_debug "sh" "-c" "echo 'l main 4
s 3
r
q' | /root/repo/build/examples/npe_debug")
set_tests_properties(example_npe_debug PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
