# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pb_test_common[1]_include.cmake")
include("/root/repo/build/tests/pb_test_isa[1]_include.cmake")
include("/root/repo/build/tests/pb_test_sim[1]_include.cmake")
include("/root/repo/build/tests/pb_test_net[1]_include.cmake")
include("/root/repo/build/tests/pb_test_route[1]_include.cmake")
include("/root/repo/build/tests/pb_test_flow[1]_include.cmake")
include("/root/repo/build/tests/pb_test_payload[1]_include.cmake")
include("/root/repo/build/tests/pb_test_anon[1]_include.cmake")
include("/root/repo/build/tests/pb_test_core[1]_include.cmake")
include("/root/repo/build/tests/pb_test_apps[1]_include.cmake")
include("/root/repo/build/tests/pb_test_analysis[1]_include.cmake")
