file(REMOVE_RECURSE
  "CMakeFiles/pb_test_net.dir/net/test_ipv4.cc.o"
  "CMakeFiles/pb_test_net.dir/net/test_ipv4.cc.o.d"
  "CMakeFiles/pb_test_net.dir/net/test_pcap.cc.o"
  "CMakeFiles/pb_test_net.dir/net/test_pcap.cc.o.d"
  "CMakeFiles/pb_test_net.dir/net/test_pcap_fuzz.cc.o"
  "CMakeFiles/pb_test_net.dir/net/test_pcap_fuzz.cc.o.d"
  "CMakeFiles/pb_test_net.dir/net/test_scramble.cc.o"
  "CMakeFiles/pb_test_net.dir/net/test_scramble.cc.o.d"
  "CMakeFiles/pb_test_net.dir/net/test_tracegen.cc.o"
  "CMakeFiles/pb_test_net.dir/net/test_tracegen.cc.o.d"
  "CMakeFiles/pb_test_net.dir/net/test_tracestats.cc.o"
  "CMakeFiles/pb_test_net.dir/net/test_tracestats.cc.o.d"
  "CMakeFiles/pb_test_net.dir/net/test_tsh.cc.o"
  "CMakeFiles/pb_test_net.dir/net/test_tsh.cc.o.d"
  "pb_test_net"
  "pb_test_net.pdb"
  "pb_test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
