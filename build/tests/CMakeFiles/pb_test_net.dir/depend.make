# Empty dependencies file for pb_test_net.
# This may be replaced when dependencies are built.
