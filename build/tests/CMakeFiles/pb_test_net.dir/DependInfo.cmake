
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_ipv4.cc" "tests/CMakeFiles/pb_test_net.dir/net/test_ipv4.cc.o" "gcc" "tests/CMakeFiles/pb_test_net.dir/net/test_ipv4.cc.o.d"
  "/root/repo/tests/net/test_pcap.cc" "tests/CMakeFiles/pb_test_net.dir/net/test_pcap.cc.o" "gcc" "tests/CMakeFiles/pb_test_net.dir/net/test_pcap.cc.o.d"
  "/root/repo/tests/net/test_pcap_fuzz.cc" "tests/CMakeFiles/pb_test_net.dir/net/test_pcap_fuzz.cc.o" "gcc" "tests/CMakeFiles/pb_test_net.dir/net/test_pcap_fuzz.cc.o.d"
  "/root/repo/tests/net/test_scramble.cc" "tests/CMakeFiles/pb_test_net.dir/net/test_scramble.cc.o" "gcc" "tests/CMakeFiles/pb_test_net.dir/net/test_scramble.cc.o.d"
  "/root/repo/tests/net/test_tracegen.cc" "tests/CMakeFiles/pb_test_net.dir/net/test_tracegen.cc.o" "gcc" "tests/CMakeFiles/pb_test_net.dir/net/test_tracegen.cc.o.d"
  "/root/repo/tests/net/test_tracestats.cc" "tests/CMakeFiles/pb_test_net.dir/net/test_tracestats.cc.o" "gcc" "tests/CMakeFiles/pb_test_net.dir/net/test_tracestats.cc.o.d"
  "/root/repo/tests/net/test_tsh.cc" "tests/CMakeFiles/pb_test_net.dir/net/test_tsh.cc.o" "gcc" "tests/CMakeFiles/pb_test_net.dir/net/test_tsh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/pb_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
