file(REMOVE_RECURSE
  "CMakeFiles/pb_test_common.dir/common/test_bitops.cc.o"
  "CMakeFiles/pb_test_common.dir/common/test_bitops.cc.o.d"
  "CMakeFiles/pb_test_common.dir/common/test_hash.cc.o"
  "CMakeFiles/pb_test_common.dir/common/test_hash.cc.o.d"
  "CMakeFiles/pb_test_common.dir/common/test_logging.cc.o"
  "CMakeFiles/pb_test_common.dir/common/test_logging.cc.o.d"
  "CMakeFiles/pb_test_common.dir/common/test_rng.cc.o"
  "CMakeFiles/pb_test_common.dir/common/test_rng.cc.o.d"
  "CMakeFiles/pb_test_common.dir/common/test_strutil.cc.o"
  "CMakeFiles/pb_test_common.dir/common/test_strutil.cc.o.d"
  "CMakeFiles/pb_test_common.dir/common/test_texttable.cc.o"
  "CMakeFiles/pb_test_common.dir/common/test_texttable.cc.o.d"
  "pb_test_common"
  "pb_test_common.pdb"
  "pb_test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
