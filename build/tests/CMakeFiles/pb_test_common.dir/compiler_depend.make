# Empty compiler generated dependencies file for pb_test_common.
# This may be replaced when dependencies are built.
