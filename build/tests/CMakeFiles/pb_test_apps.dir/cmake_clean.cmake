file(REMOVE_RECURSE
  "CMakeFiles/pb_test_apps.dir/apps/test_apps_matrix.cc.o"
  "CMakeFiles/pb_test_apps.dir/apps/test_apps_matrix.cc.o.d"
  "CMakeFiles/pb_test_apps.dir/apps/test_apps_roundtrip.cc.o"
  "CMakeFiles/pb_test_apps.dir/apps/test_apps_roundtrip.cc.o.d"
  "CMakeFiles/pb_test_apps.dir/apps/test_flow_app.cc.o"
  "CMakeFiles/pb_test_apps.dir/apps/test_flow_app.cc.o.d"
  "CMakeFiles/pb_test_apps.dir/apps/test_ipv4_apps.cc.o"
  "CMakeFiles/pb_test_apps.dir/apps/test_ipv4_apps.cc.o.d"
  "CMakeFiles/pb_test_apps.dir/apps/test_nat_app.cc.o"
  "CMakeFiles/pb_test_apps.dir/apps/test_nat_app.cc.o.d"
  "CMakeFiles/pb_test_apps.dir/apps/test_payload_apps.cc.o"
  "CMakeFiles/pb_test_apps.dir/apps/test_payload_apps.cc.o.d"
  "CMakeFiles/pb_test_apps.dir/apps/test_tsa_app.cc.o"
  "CMakeFiles/pb_test_apps.dir/apps/test_tsa_app.cc.o.d"
  "pb_test_apps"
  "pb_test_apps.pdb"
  "pb_test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
