# Empty dependencies file for pb_test_apps.
# This may be replaced when dependencies are built.
