# Empty dependencies file for pb_test_sim.
# This may be replaced when dependencies are built.
