
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_accounting.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_accounting.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_accounting.cc.o.d"
  "/root/repo/tests/sim/test_bblock.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_bblock.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_bblock.cc.o.d"
  "/root/repo/tests/sim/test_cpu.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_cpu.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_cpu.cc.o.d"
  "/root/repo/tests/sim/test_cpu_random.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_cpu_random.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_cpu_random.cc.o.d"
  "/root/repo/tests/sim/test_debugger.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_debugger.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_debugger.cc.o.d"
  "/root/repo/tests/sim/test_memory.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_memory.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_memory.cc.o.d"
  "/root/repo/tests/sim/test_timing.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_timing.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_timing.cc.o.d"
  "/root/repo/tests/sim/test_uarch.cc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_uarch.cc.o" "gcc" "tests/CMakeFiles/pb_test_sim.dir/sim/test_uarch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
