file(REMOVE_RECURSE
  "CMakeFiles/pb_test_sim.dir/sim/test_accounting.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_accounting.cc.o.d"
  "CMakeFiles/pb_test_sim.dir/sim/test_bblock.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_bblock.cc.o.d"
  "CMakeFiles/pb_test_sim.dir/sim/test_cpu.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_cpu.cc.o.d"
  "CMakeFiles/pb_test_sim.dir/sim/test_cpu_random.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_cpu_random.cc.o.d"
  "CMakeFiles/pb_test_sim.dir/sim/test_debugger.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_debugger.cc.o.d"
  "CMakeFiles/pb_test_sim.dir/sim/test_memory.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_memory.cc.o.d"
  "CMakeFiles/pb_test_sim.dir/sim/test_timing.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_timing.cc.o.d"
  "CMakeFiles/pb_test_sim.dir/sim/test_uarch.cc.o"
  "CMakeFiles/pb_test_sim.dir/sim/test_uarch.cc.o.d"
  "pb_test_sim"
  "pb_test_sim.pdb"
  "pb_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
