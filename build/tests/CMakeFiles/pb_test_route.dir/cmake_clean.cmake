file(REMOVE_RECURSE
  "CMakeFiles/pb_test_route.dir/route/test_lpm.cc.o"
  "CMakeFiles/pb_test_route.dir/route/test_lpm.cc.o.d"
  "CMakeFiles/pb_test_route.dir/route/test_prefix.cc.o"
  "CMakeFiles/pb_test_route.dir/route/test_prefix.cc.o.d"
  "pb_test_route"
  "pb_test_route.pdb"
  "pb_test_route[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
