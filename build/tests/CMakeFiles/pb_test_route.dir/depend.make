# Empty dependencies file for pb_test_route.
# This may be replaced when dependencies are built.
