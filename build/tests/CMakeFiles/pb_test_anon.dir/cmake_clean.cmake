file(REMOVE_RECURSE
  "CMakeFiles/pb_test_anon.dir/anon/test_tsa.cc.o"
  "CMakeFiles/pb_test_anon.dir/anon/test_tsa.cc.o.d"
  "pb_test_anon"
  "pb_test_anon.pdb"
  "pb_test_anon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
