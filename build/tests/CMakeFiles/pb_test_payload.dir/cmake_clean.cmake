file(REMOVE_RECURSE
  "CMakeFiles/pb_test_payload.dir/payload/test_xtea.cc.o"
  "CMakeFiles/pb_test_payload.dir/payload/test_xtea.cc.o.d"
  "pb_test_payload"
  "pb_test_payload.pdb"
  "pb_test_payload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
