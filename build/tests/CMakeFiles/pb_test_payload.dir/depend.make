# Empty dependencies file for pb_test_payload.
# This may be replaced when dependencies are built.
