file(REMOVE_RECURSE
  "CMakeFiles/pb_test_isa.dir/isa/test_assembler.cc.o"
  "CMakeFiles/pb_test_isa.dir/isa/test_assembler.cc.o.d"
  "CMakeFiles/pb_test_isa.dir/isa/test_disasm.cc.o"
  "CMakeFiles/pb_test_isa.dir/isa/test_disasm.cc.o.d"
  "CMakeFiles/pb_test_isa.dir/isa/test_encoding.cc.o"
  "CMakeFiles/pb_test_isa.dir/isa/test_encoding.cc.o.d"
  "pb_test_isa"
  "pb_test_isa.pdb"
  "pb_test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
