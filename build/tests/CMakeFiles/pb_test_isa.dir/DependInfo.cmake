
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa/test_assembler.cc" "tests/CMakeFiles/pb_test_isa.dir/isa/test_assembler.cc.o" "gcc" "tests/CMakeFiles/pb_test_isa.dir/isa/test_assembler.cc.o.d"
  "/root/repo/tests/isa/test_disasm.cc" "tests/CMakeFiles/pb_test_isa.dir/isa/test_disasm.cc.o" "gcc" "tests/CMakeFiles/pb_test_isa.dir/isa/test_disasm.cc.o.d"
  "/root/repo/tests/isa/test_encoding.cc" "tests/CMakeFiles/pb_test_isa.dir/isa/test_encoding.cc.o" "gcc" "tests/CMakeFiles/pb_test_isa.dir/isa/test_encoding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
