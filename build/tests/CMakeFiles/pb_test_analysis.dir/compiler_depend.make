# Empty compiler generated dependencies file for pb_test_analysis.
# This may be replaced when dependencies are built.
