file(REMOVE_RECURSE
  "CMakeFiles/pb_test_analysis.dir/analysis/test_blockstats.cc.o"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_blockstats.cc.o.d"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_delaymodel.cc.o"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_delaymodel.cc.o.d"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_experiments.cc.o"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_experiments.cc.o.d"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_export.cc.o"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_export.cc.o.d"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_flowgraph.cc.o"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_flowgraph.cc.o.d"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_instpattern.cc.o"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_instpattern.cc.o.d"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_occurrence.cc.o"
  "CMakeFiles/pb_test_analysis.dir/analysis/test_occurrence.cc.o.d"
  "pb_test_analysis"
  "pb_test_analysis.pdb"
  "pb_test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
