
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_blockstats.cc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_blockstats.cc.o" "gcc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_blockstats.cc.o.d"
  "/root/repo/tests/analysis/test_delaymodel.cc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_delaymodel.cc.o" "gcc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_delaymodel.cc.o.d"
  "/root/repo/tests/analysis/test_experiments.cc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_experiments.cc.o" "gcc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_experiments.cc.o.d"
  "/root/repo/tests/analysis/test_export.cc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_export.cc.o" "gcc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_export.cc.o.d"
  "/root/repo/tests/analysis/test_flowgraph.cc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_flowgraph.cc.o" "gcc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_flowgraph.cc.o.d"
  "/root/repo/tests/analysis/test_instpattern.cc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_instpattern.cc.o" "gcc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_instpattern.cc.o.d"
  "/root/repo/tests/analysis/test_occurrence.cc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_occurrence.cc.o" "gcc" "tests/CMakeFiles/pb_test_analysis.dir/analysis/test_occurrence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/pb_route.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/pb_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/pb_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/payload/CMakeFiles/pb_payload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pb_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
