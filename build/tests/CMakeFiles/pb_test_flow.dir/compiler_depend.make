# Empty compiler generated dependencies file for pb_test_flow.
# This may be replaced when dependencies are built.
