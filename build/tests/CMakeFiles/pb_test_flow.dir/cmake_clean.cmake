file(REMOVE_RECURSE
  "CMakeFiles/pb_test_flow.dir/flow/test_flowtable.cc.o"
  "CMakeFiles/pb_test_flow.dir/flow/test_flowtable.cc.o.d"
  "pb_test_flow"
  "pb_test_flow.pdb"
  "pb_test_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
