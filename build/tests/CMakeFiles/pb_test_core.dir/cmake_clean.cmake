file(REMOVE_RECURSE
  "CMakeFiles/pb_test_core.dir/core/test_multicore.cc.o"
  "CMakeFiles/pb_test_core.dir/core/test_multicore.cc.o.d"
  "CMakeFiles/pb_test_core.dir/core/test_packetbench.cc.o"
  "CMakeFiles/pb_test_core.dir/core/test_packetbench.cc.o.d"
  "pb_test_core"
  "pb_test_core.pdb"
  "pb_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
