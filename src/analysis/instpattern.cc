/**
 * @file
 * Instruction pattern analysis implementation.
 */

#include "instpattern.hh"

#include <cstddef>
#include <unordered_map>
#include "obs/metrics.hh"

namespace pb::an
{

std::vector<uint32_t>
uniqueIndexSeries(const std::vector<uint32_t> &inst_trace)
{
    PB_SCOPED_TIMER("phase.analyze_ns");
    std::unordered_map<uint32_t, uint32_t> first_touch;
    first_touch.reserve(inst_trace.size());
    std::vector<uint32_t> series;
    series.reserve(inst_trace.size());
    uint32_t next = 0;
    for (uint32_t addr : inst_trace) {
        auto [it, inserted] = first_touch.emplace(addr, next);
        if (inserted)
            next++;
        series.push_back(it->second);
    }
    return series;
}

uint32_t
countBackJumps(const std::vector<uint32_t> &series)
{
    uint32_t jumps = 0;
    for (size_t i = 1; i < series.size(); i++) {
        if (series[i] < series[i - 1])
            jumps++;
    }
    return jumps;
}

} // namespace pb::an
