/**
 * @file
 * Occurrence analysis: the paper's Tables V and VI report, for a
 * per-packet metric, the three most frequent values (with their
 * share of packets), the minimum, maximum, and average.
 */

#ifndef PB_ANALYSIS_OCCURRENCE_HH
#define PB_ANALYSIS_OCCURRENCE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pb::an
{

/** One value of the metric and how often it occurred. */
struct Occurrence
{
    uint64_t value = 0;
    uint32_t count = 0;
    double pct = 0.0; ///< share of all samples, in percent
};

/** Summary in the shape of the paper's variation tables. */
struct OccurrenceSummary
{
    std::vector<Occurrence> top; ///< most frequent first
    Occurrence min;
    Occurrence max;
    double average = 0.0;
    uint64_t samples = 0;
};

/**
 * Summarize @p values.
 * @param top_k how many most-frequent entries to keep
 */
OccurrenceSummary summarize(const std::vector<uint64_t> &values,
                            size_t top_k = 3);

} // namespace pb::an

#endif // PB_ANALYSIS_OCCURRENCE_HH
