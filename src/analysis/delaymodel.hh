/**
 * @file
 * Analytic packet-processing delay model.
 *
 * The paper's "Impact of Results" section (V-D) points out that the
 * processing-complexity and memory-access characteristics derived by
 * PacketBench feed an analytic model of per-packet processing delay
 * (their reference [29], "Characterizing network processing delay"):
 *
 *     delay = (instructions x CPI
 *              + packet_accesses x packet_mem_latency
 *              + non_packet_accesses x data_mem_latency) / f_clock
 *
 * This module implements that model over PacketStats, plus a simple
 * multi-core service model in the spirit of their reference [31]
 * (pipelining vs. multiprocessor topologies): packets arrive with
 * their trace timestamps and are dispatched to the first available
 * of N cores.
 */

#ifndef PB_ANALYSIS_DELAYMODEL_HH
#define PB_ANALYSIS_DELAYMODEL_HH

#include <cstdint>
#include <vector>

#include "sim/accounting.hh"

namespace pb::an
{

/** Processing-engine timing parameters (IXP2400-class defaults). */
struct CoreModel
{
    double clockMhz = 600.0;       ///< microengine clock
    double cpi = 1.2;              ///< base cycles per instruction
    double packetMemCycles = 4.0;  ///< per packet-memory access
    double dataMemCycles = 10.0;   ///< per SRAM/DRAM data access
};

/** Modeled processing delay of one packet, in microseconds. */
double packetDelayUsec(const sim::PacketStats &stats,
                       const CoreModel &core);

/** Summary of a delay-model evaluation over a run. */
struct DelaySummary
{
    double meanUsec = 0.0;
    double maxUsec = 0.0;
    /** Sustainable throughput of one core, packets per second. */
    double corePacketsPerSec = 0.0;
};

/** Evaluate the model over all packets of a run. */
DelaySummary summarizeDelay(const std::vector<sim::PacketStats> &run,
                            const CoreModel &core);

/** Result of the multi-core dispatch simulation. */
struct ParallelResult
{
    uint32_t cores = 0;
    double throughputPps = 0.0; ///< packets/s actually achieved
    double meanSojournUsec = 0.0; ///< queueing + service per packet
    double utilization = 0.0;     ///< busy fraction across cores
};

/**
 * Simulate dispatching packets to @p cores parallel engines.
 *
 * @param service_usec  per-packet service times (model output)
 * @param arrival_usec  per-packet arrival times; pass an empty
 *                      vector for back-to-back (saturation) arrivals
 */
ParallelResult simulateParallel(const std::vector<double> &service_usec,
                                const std::vector<double> &arrival_usec,
                                uint32_t cores);

} // namespace pb::an

#endif // PB_ANALYSIS_DELAYMODEL_HH
