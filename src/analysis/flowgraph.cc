/**
 * @file
 * Weighted flow graph implementation.
 */

#include "flowgraph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pb::an
{

WeightedFlowGraph::WeightedFlowGraph(const sim::BlockMap &blocks_)
    : blocks(blocks_)
{
    entryCounts.assign(blocks.numBlocks(), 0);
}

void
WeightedFlowGraph::addPacket(const std::vector<uint32_t> &inst_trace)
{
    if (inst_trace.empty())
        return;
    packetCount++;
    uint32_t prev_addr = inst_trace[0];
    uint32_t prev_block = blocks.blockOf(prev_addr);
    entryCounts[prev_block]++;
    for (size_t i = 1; i < inst_trace.size(); i++) {
        uint32_t addr = inst_trace[i];
        uint32_t block = blocks.blockOf(addr);
        // A block boundary is crossed on any control transfer and on
        // fall-through into the next block.
        bool transfer = addr != prev_addr + 4;
        if (transfer || block != prev_block) {
            edgeCounts[{prev_block, block}]++;
            entryCounts[block]++;
        }
        prev_addr = addr;
        prev_block = block;
    }
}

std::vector<FlowEdge>
WeightedFlowGraph::edges() const
{
    std::vector<FlowEdge> out;
    out.reserve(edgeCounts.size());
    for (const auto &[key, count] : edgeCounts)
        out.push_back({key.first, key.second, count});
    std::stable_sort(out.begin(), out.end(),
                     [](const FlowEdge &a, const FlowEdge &b) {
                         return a.count > b.count;
                     });
    return out;
}

uint64_t
WeightedFlowGraph::blockEntries(uint32_t id) const
{
    if (id >= entryCounts.size())
        panic("flow graph: block id %u out of range", id);
    return entryCounts[id];
}

std::string
WeightedFlowGraph::toDot(const std::string &graph_name) const
{
    std::string out = "digraph " + graph_name + " {\n";
    out += "  node [shape=box, fontname=\"monospace\"];\n";
    for (uint32_t id = 0; id < blocks.numBlocks(); id++) {
        if (entryCounts[id] == 0)
            continue;
        const sim::BasicBlock &block = blocks.block(id);
        out += strprintf(
            "  b%u [label=\"B%u @0x%x\\n%u insts, %llu entries\"];\n",
            id, id, block.startAddr, block.numInsts,
            static_cast<unsigned long long>(entryCounts[id]));
    }
    for (const auto &[key, count] : edgeCounts) {
        bool hot = packetCount > 0 && count >= packetCount;
        out += strprintf("  b%u -> b%u [label=\"%llu\"%s];\n",
                         key.first, key.second,
                         static_cast<unsigned long long>(count),
                         hot ? "" : ", style=dashed");
    }
    out += "}\n";
    return out;
}

} // namespace pb::an
