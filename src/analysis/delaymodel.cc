/**
 * @file
 * Delay model and multi-core dispatch implementation.
 */

#include "delaymodel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pb::an
{

double
packetDelayUsec(const sim::PacketStats &stats, const CoreModel &core)
{
    double cycles =
        static_cast<double>(stats.instCount) * core.cpi +
        stats.packetAccesses() * core.packetMemCycles +
        stats.nonPacketAccesses() * core.dataMemCycles;
    return cycles / core.clockMhz; // MHz -> cycles per usec
}

DelaySummary
summarizeDelay(const std::vector<sim::PacketStats> &run,
               const CoreModel &core)
{
    if (run.empty())
        fatal("delay summary of an empty run");
    DelaySummary summary;
    double total = 0.0;
    for (const auto &stats : run) {
        double delay = packetDelayUsec(stats, core);
        total += delay;
        summary.maxUsec = std::max(summary.maxUsec, delay);
    }
    summary.meanUsec = total / static_cast<double>(run.size());
    summary.corePacketsPerSec = 1e6 / summary.meanUsec;
    return summary;
}

ParallelResult
simulateParallel(const std::vector<double> &service_usec,
                 const std::vector<double> &arrival_usec, uint32_t cores)
{
    if (cores == 0)
        fatal("parallel simulation needs at least one core");
    if (service_usec.empty())
        fatal("parallel simulation of an empty run");
    if (!arrival_usec.empty() &&
        arrival_usec.size() != service_usec.size())
        fatal("arrival/service vectors must match");

    // Earliest-free-core dispatch.
    std::vector<double> free_at(cores, 0.0);
    double total_sojourn = 0.0;
    double busy = 0.0;
    double last_finish = 0.0;
    for (size_t i = 0; i < service_usec.size(); i++) {
        double arrival = arrival_usec.empty() ? 0.0 : arrival_usec[i];
        auto it = std::min_element(free_at.begin(), free_at.end());
        double start = std::max(arrival, *it);
        double finish = start + service_usec[i];
        *it = finish;
        total_sojourn += finish - arrival;
        busy += service_usec[i];
        last_finish = std::max(last_finish, finish);
    }

    ParallelResult result;
    result.cores = cores;
    result.throughputPps =
        last_finish > 0.0
            ? static_cast<double>(service_usec.size()) * 1e6 /
                  last_finish
            : 0.0;
    result.meanSojournUsec =
        total_sojourn / static_cast<double>(service_usec.size());
    result.utilization =
        last_finish > 0.0 ? busy / (last_finish * cores) : 0.0;
    return result;
}

} // namespace pb::an
