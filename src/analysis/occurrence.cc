/**
 * @file
 * Occurrence analysis implementation.
 */

#include "occurrence.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace pb::an
{

OccurrenceSummary
summarize(const std::vector<uint64_t> &values, size_t top_k)
{
    PB_SCOPED_TIMER("phase.analyze_ns");
    if (values.empty())
        fatal("occurrence summary of an empty sample");

    std::map<uint64_t, uint32_t> histogram;
    double total = 0.0;
    for (uint64_t v : values) {
        histogram[v]++;
        total += static_cast<double>(v);
    }

    OccurrenceSummary summary;
    summary.samples = values.size();
    summary.average = total / static_cast<double>(values.size());

    auto pct_of = [&](uint32_t count) {
        return 100.0 * count / static_cast<double>(values.size());
    };

    std::vector<Occurrence> all;
    all.reserve(histogram.size());
    for (auto [value, count] : histogram)
        all.push_back({value, count, pct_of(count)});

    summary.min = all.front();
    summary.max = all.back();

    std::stable_sort(all.begin(), all.end(),
                     [](const Occurrence &a, const Occurrence &b) {
                         return a.count > b.count;
                     });
    for (size_t i = 0; i < std::min(top_k, all.size()); i++)
        summary.top.push_back(all[i]);
    return summary;
}

} // namespace pb::an
