/**
 * @file
 * CSV export of workload results.
 *
 * The bench binaries print human-readable tables; for plotting and
 * downstream processing (the gnuplot figures of the paper), these
 * helpers serialize per-packet statistics, data series, and
 * coverage curves as CSV.
 */

#ifndef PB_ANALYSIS_EXPORT_HH
#define PB_ANALYSIS_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/blockstats.hh"
#include "sim/accounting.hh"

namespace pb::an
{

/**
 * Per-packet statistics as CSV with a header row:
 * packet,insts,unique_insts,pkt_reads,pkt_writes,nonpkt_reads,
 * nonpkt_writes.
 */
void writeStatsCsv(std::ostream &out,
                   const std::vector<sim::PacketStats> &stats);

/** Generic (x, y) series with custom column names. */
void writeSeriesCsv(std::ostream &out, const std::string &x_name,
                    const std::string &y_name,
                    const std::vector<std::pair<double, double>> &xy);

/** Coverage curve as CSV: blocks,coverage. */
void writeCoverageCsv(std::ostream &out,
                      const std::vector<CoveragePoint> &curve);

/**
 * One packet's memory-access trace as CSV:
 * inst_index,region,rw,addr,size  (region: packet|data|stack|text).
 */
void writeMemTraceCsv(std::ostream &out,
                      const std::vector<sim::PacketStats::TracedAccess>
                          &trace);

} // namespace pb::an

#endif // PB_ANALYSIS_EXPORT_HH
