/**
 * @file
 * Paper-experiment harness implementation.
 */

#include "experiments.hh"

#include "analysis/blockstats.hh"
#include "analysis/instpattern.hh"
#include "analysis/occurrence.hh"
#include "apps/crc_app.hh"
#include "apps/flow_class.hh"
#include "apps/ipv4_radix.hh"
#include "apps/ipv4_trie.hh"
#include "apps/nat_app.hh"
#include "apps/tsa_app.hh"
#include "apps/xtea_app.hh"
#include "common/strutil.hh"
#include "common/texttable.hh"
#include "obs/metrics.hh"
#include "route/prefix.hh"

namespace pb::an
{

std::string
appTitle(AppKind kind)
{
    switch (kind) {
      case AppKind::Ipv4Radix:
        return "IPv4-radix";
      case AppKind::Ipv4Trie:
        return "IPv4-trie";
      case AppKind::FlowClass:
        return "Flow Class.";
      case AppKind::Tsa:
        return "TSA";
      case AppKind::Crc32:
        return "CRC32";
      case AppKind::XteaEnc:
        return "XTEA-enc";
      case AppKind::Nat:
        return "NAT";
    }
    return "?";
}

std::unique_ptr<core::Application>
makeApp(AppKind kind, const ExperimentConfig &cfg)
{
    switch (kind) {
      case AppKind::Ipv4Radix:
        return std::make_unique<apps::Ipv4RadixApp>(
            route::generateCoreTable(cfg.coreTablePrefixes,
                                     cfg.tableSeed));
      case AppKind::Ipv4Trie:
        return std::make_unique<apps::Ipv4TrieApp>(
            route::generateSmallTable(cfg.smallTablePrefixes,
                                      cfg.tableSeed));
      case AppKind::FlowClass:
        return std::make_unique<apps::FlowClassApp>(cfg.flowBuckets);
      case AppKind::Tsa:
        return std::make_unique<apps::TsaApp>(cfg.tsaKey);
      case AppKind::Crc32:
        return std::make_unique<apps::CrcApp>();
      case AppKind::XteaEnc:
        return std::make_unique<apps::XteaApp>();
      case AppKind::Nat:
        return std::make_unique<apps::NatApp>();
    }
    panic("unknown application kind");
}

core::BenchConfig
benchConfigFor(net::Profile profile, const ExperimentConfig &cfg,
               sim::RecorderConfig recorder)
{
    core::BenchConfig bench;
    bench.recorder = recorder;
    bench.scramble = net::profileInfo(profile).nlanrRenumber;
    bench.scrambleKey = cfg.scrambleKey;
    return bench;
}

double
AppRun::meanInsts() const
{
    double total = 0;
    for (const auto &s : stats)
        total += static_cast<double>(s.instCount);
    return stats.empty() ? 0.0 : total / static_cast<double>(stats.size());
}

double
AppRun::meanPacketAccesses() const
{
    double total = 0;
    for (const auto &s : stats)
        total += s.packetAccesses();
    return stats.empty() ? 0.0 : total / static_cast<double>(stats.size());
}

double
AppRun::meanNonPacketAccesses() const
{
    double total = 0;
    for (const auto &s : stats)
        total += s.nonPacketAccesses();
    return stats.empty() ? 0.0 : total / static_cast<double>(stats.size());
}

AppRun
runApp(AppKind kind, net::Profile profile, uint32_t packets,
       const ExperimentConfig &cfg, sim::RecorderConfig recorder)
{
    std::unique_ptr<core::Application> app = makeApp(kind, cfg);
    core::PacketBench bench(*app,
                            benchConfigFor(profile, cfg, recorder));
    net::SyntheticTrace trace(profile, packets, cfg.traceSeed);

    AppRun run;
    run.stats.reserve(packets);
    while (auto packet = trace.next()) {
        core::PacketOutcome outcome = bench.processPacket(*packet);
        if (outcome.verdict == isa::SysCode::Drop)
            run.dropped++;
        run.stats.push_back(std::move(outcome.stats));
    }
    run.instMemoryBytes = bench.recorder().instMemoryBytes();
    run.dataMemoryBytes = bench.recorder().dataMemoryBytes();
    run.numBlocks = bench.blocks().numBlocks();
    return run;
}

std::string
renderTable1()
{
    TextTable table(4);
    table.header({"Trace Name", "Type", "Packets (paper)",
                  "Link"});
    for (net::Profile profile : net::allProfiles) {
        const auto &info = net::profileInfo(profile);
        table.row({std::string(info.name), std::string(info.linkDesc),
                   withCommas(info.paperPackets),
                   info.link == net::LinkType::Ethernet ? "Ethernet"
                                                        : "raw IP"});
    }
    return table.render();
}

namespace
{

/** Shared driver for Tables II and III (apps x traces). */
std::vector<std::vector<AppRun>>
runMatrix(const ExperimentConfig &cfg, uint32_t packets)
{
    std::vector<std::vector<AppRun>> matrix;
    for (net::Profile profile : net::allProfiles) {
        std::vector<AppRun> row;
        for (AppKind kind : allAppKinds)
            row.push_back(runApp(kind, profile, packets, cfg));
        matrix.push_back(std::move(row));
    }
    return matrix;
}

std::string
fmt1(double v)
{
    return strprintf("%.1f", v);
}

std::string
fmt0(double v)
{
    return withCommas(static_cast<uint64_t>(v + 0.5));
}

} // namespace

std::string
renderTable2(const ExperimentConfig &cfg, uint32_t packets_per_trace)
{
    auto matrix = runMatrix(cfg, packets_per_trace);
    PB_SCOPED_TIMER("phase.analyze_ns");
    TextTable table(5);
    table.header({"Trace Name", "IPv4-radix", "IPv4-trie",
                  "Flow Classification", "TSA"});
    std::vector<double> sums(4, 0.0);
    for (size_t t = 0; t < matrix.size(); t++) {
        std::vector<std::string> cells{std::string(
            net::profileInfo(net::allProfiles[t]).name)};
        for (size_t a = 0; a < matrix[t].size(); a++) {
            double mean = matrix[t][a].meanInsts();
            sums[a] += mean;
            cells.push_back(fmt0(mean));
        }
        table.row(std::move(cells));
    }
    table.rule();
    std::vector<std::string> avg{"Average"};
    for (double sum : sums)
        avg.push_back(fmt0(sum / static_cast<double>(matrix.size())));
    table.row(std::move(avg));
    return table.render();
}

std::string
renderTable3(const ExperimentConfig &cfg, uint32_t packets_per_trace)
{
    auto matrix = runMatrix(cfg, packets_per_trace);
    PB_SCOPED_TIMER("phase.analyze_ns");
    TextTable table(9);
    table.header({"Trace Name", "radix Pkt", "radix Non-pkt",
                  "trie Pkt", "trie Non-pkt", "flow Pkt",
                  "flow Non-pkt", "TSA Pkt", "TSA Non-pkt"});
    std::vector<double> sums(8, 0.0);
    for (size_t t = 0; t < matrix.size(); t++) {
        std::vector<std::string> cells{std::string(
            net::profileInfo(net::allProfiles[t]).name)};
        for (size_t a = 0; a < matrix[t].size(); a++) {
            double pkt = matrix[t][a].meanPacketAccesses();
            double nonpkt = matrix[t][a].meanNonPacketAccesses();
            sums[a * 2] += pkt;
            sums[a * 2 + 1] += nonpkt;
            cells.push_back(fmt1(pkt));
            cells.push_back(fmt1(nonpkt));
        }
        table.row(std::move(cells));
    }
    table.rule();
    std::vector<std::string> avg{"Average"};
    for (double sum : sums)
        avg.push_back(fmt1(sum / static_cast<double>(matrix.size())));
    table.row(std::move(avg));
    return table.render();
}

std::string
renderTable4(const ExperimentConfig &cfg, uint32_t packets)
{
    TextTable table(3);
    table.header({"Application", "Instr. memory size",
                  "Data memory size"});
    for (AppKind kind : allAppKinds) {
        AppRun run = runApp(kind, net::Profile::MRA, packets, cfg);
        table.row({appTitle(kind), withCommas(run.instMemoryBytes),
                   withCommas(run.dataMemoryBytes)});
    }
    return table.render();
}

namespace
{

/** Shared driver for Tables V and VI. */
std::string
renderVariationTable(const ExperimentConfig &cfg, uint32_t packets,
                     bool unique)
{
    TextTable table(7);
    table.header({"Application", "1st", "2nd", "3rd", "Minimum",
                  "Maximum", "Average"});
    for (AppKind kind : allAppKinds) {
        AppRun run = runApp(kind, net::Profile::COS, packets, cfg);
        std::vector<uint64_t> values;
        values.reserve(run.stats.size());
        for (const auto &s : run.stats) {
            values.push_back(unique ? s.uniqueInstCount
                                    : s.instCount);
        }
        OccurrenceSummary summary = summarize(values, 3);
        std::vector<std::string> cells{appTitle(kind)};
        for (size_t i = 0; i < 3; i++) {
            if (i < summary.top.size()) {
                cells.push_back(strprintf(
                    "%s (%.2f%%)",
                    withCommas(summary.top[i].value).c_str(),
                    summary.top[i].pct));
            } else {
                cells.push_back("-");
            }
        }
        cells.push_back(strprintf(
            "%s (%.2f%%)", withCommas(summary.min.value).c_str(),
            summary.min.pct));
        cells.push_back(strprintf(
            "%s (%.2f%%)", withCommas(summary.max.value).c_str(),
            summary.max.pct));
        cells.push_back(fmt0(summary.average));
        table.row(std::move(cells));
    }
    return table.render();
}

/** Shared driver for the per-packet series figures (3, 4, 5). */
std::string
renderSeries(const ExperimentConfig &cfg, uint32_t packets,
             const char *what,
             uint32_t (*metric)(const sim::PacketStats &))
{
    std::string out;
    for (AppKind kind : {AppKind::Ipv4Radix, AppKind::FlowClass}) {
        AppRun run = runApp(kind, net::Profile::MRA, packets, cfg);
        out += strprintf("# %s: %s per packet (MRA, first %u "
                         "packets)\n# packet  value\n",
                         appTitle(kind).c_str(), what, packets);
        for (size_t i = 0; i < run.stats.size(); i++) {
            out += strprintf("%zu %u\n", i, metric(run.stats[i]));
        }
        out += "\n";
    }
    return out;
}

} // namespace

std::string
renderTable5(const ExperimentConfig &cfg, uint32_t packets)
{
    return renderVariationTable(cfg, packets, false);
}

std::string
renderTable6(const ExperimentConfig &cfg, uint32_t packets)
{
    return renderVariationTable(cfg, packets, true);
}

std::string
renderFig3(const ExperimentConfig &cfg, uint32_t packets)
{
    return renderSeries(cfg, packets, "instructions",
                        [](const sim::PacketStats &s) {
                            return static_cast<uint32_t>(s.instCount);
                        });
}

std::string
renderFig4(const ExperimentConfig &cfg, uint32_t packets)
{
    return renderSeries(cfg, packets, "packet memory accesses",
                        [](const sim::PacketStats &s) {
                            return s.packetAccesses();
                        });
}

std::string
renderFig5(const ExperimentConfig &cfg, uint32_t packets)
{
    return renderSeries(cfg, packets, "non-packet memory accesses",
                        [](const sim::PacketStats &s) {
                            return s.nonPacketAccesses();
                        });
}

std::string
renderFig6(const ExperimentConfig &cfg)
{
    sim::RecorderConfig recorder;
    recorder.instTrace = true;
    std::string out;
    for (AppKind kind : {AppKind::Ipv4Radix, AppKind::FlowClass}) {
        AppRun run = runApp(kind, net::Profile::MRA, 1, cfg, recorder);
        const auto &trace = run.stats.at(0).instTrace;
        std::vector<uint32_t> series = uniqueIndexSeries(trace);
        out += strprintf("# %s: instruction access pattern, one MRA "
                         "packet\n# instruction  unique_index\n",
                         appTitle(kind).c_str());
        for (size_t i = 0; i < series.size(); i++)
            out += strprintf("%zu %u\n", i, series[i]);
        out += "\n";
    }
    return out;
}

std::string
renderFig7(const ExperimentConfig &cfg, uint32_t packets)
{
    sim::RecorderConfig recorder;
    recorder.blockSets = true;
    std::string out;
    for (AppKind kind : {AppKind::Ipv4Radix, AppKind::FlowClass}) {
        AppRun run =
            runApp(kind, net::Profile::MRA, packets, cfg, recorder);
        std::vector<double> probabilities =
            blockProbabilities(run.stats, run.numBlocks);
        out += strprintf("# %s: basic block execution probability "
                         "(MRA, %u packets)\n# block  probability\n",
                         appTitle(kind).c_str(), packets);
        for (size_t b = 0; b < probabilities.size(); b++)
            out += strprintf("%zu %.4f\n", b, probabilities[b]);
        out += "\n";
    }
    return out;
}

std::string
renderFig8(const ExperimentConfig &cfg, uint32_t packets)
{
    sim::RecorderConfig recorder;
    recorder.blockSets = true;
    std::string out;
    for (AppKind kind : {AppKind::Ipv4Radix, AppKind::FlowClass}) {
        AppRun run =
            runApp(kind, net::Profile::MRA, packets, cfg, recorder);
        auto curve = coverageCurve(run.stats, run.numBlocks);
        uint32_t sweet = blocksForCoverage(curve, 0.9);
        out += strprintf("# %s: packet coverage vs installed basic "
                         "blocks (MRA, %u packets)\n"
                         "# >=90%% coverage at %u blocks (of %u)\n"
                         "# blocks  coverage\n",
                         appTitle(kind).c_str(), packets, sweet,
                         run.numBlocks);
        for (const auto &point : curve) {
            out += strprintf("%u %.4f\n", point.blocks,
                             point.packetFraction);
        }
        out += "\n";
    }
    return out;
}

std::string
renderFig9(const ExperimentConfig &cfg)
{
    sim::RecorderConfig recorder;
    recorder.memTrace = true;
    std::string out;
    for (AppKind kind : {AppKind::Ipv4Radix, AppKind::FlowClass}) {
        AppRun run = runApp(kind, net::Profile::MRA, 1, cfg, recorder);
        out += strprintf("# %s: data memory accesses, one MRA packet\n"
                         "# instruction  region(+1=packet,-1=other)  "
                         "rw\n",
                         appTitle(kind).c_str());
        for (const auto &access : run.stats.at(0).memTrace) {
            int region =
                access.event.region == sim::MemRegion::Packet ? 1 : -1;
            out += strprintf("%llu %d %c",
                             static_cast<unsigned long long>(
                                 access.instIndex),
                             region,
                             access.event.isStore ? 'W' : 'R');
            out += "\n";
        }
        out += "\n";
    }
    return out;
}

} // namespace pb::an
