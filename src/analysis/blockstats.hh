/**
 * @file
 * Basic-block statistics across packets:
 *
 *  - execution probability per block (paper Fig. 7): the fraction of
 *    packets whose processing executed the block at least once;
 *  - packet coverage curve (paper Fig. 8): installing the most
 *    frequently executed blocks first, what fraction of packets can
 *    be processed entirely from a store holding N blocks.
 */

#ifndef PB_ANALYSIS_BLOCKSTATS_HH
#define PB_ANALYSIS_BLOCKSTATS_HH

#include <cstdint>
#include <vector>

#include "sim/accounting.hh"

namespace pb::an
{

/**
 * Per-block execution probability.
 *
 * @param packets   per-packet stats with block sets recorded
 * @param num_blocks static block count of the program
 * @return probability in [0,1] per block id
 */
std::vector<double>
blockProbabilities(const std::vector<sim::PacketStats> &packets,
                   uint32_t num_blocks);

/** One point of the coverage curve. */
struct CoveragePoint
{
    uint32_t blocks;       ///< number of blocks installed
    double packetFraction; ///< fraction of packets fully covered
};

/**
 * Greedy packet-coverage curve: blocks are installed in decreasing
 * execution-probability order; a packet is covered once every block
 * it executes is installed.
 *
 * The result has one point per installed-block count from 1 to
 * @p num_blocks (monotone non-decreasing fractions).
 */
std::vector<CoveragePoint>
coverageCurve(const std::vector<sim::PacketStats> &packets,
              uint32_t num_blocks);

/**
 * Smallest number of blocks achieving at least @p fraction coverage
 * under the greedy order, or num_blocks if unreachable.
 */
uint32_t
blocksForCoverage(const std::vector<CoveragePoint> &curve,
                  double fraction);

} // namespace pb::an

#endif // PB_ANALYSIS_BLOCKSTATS_HH
