/**
 * @file
 * Basic-block statistics implementation.
 */

#include "blockstats.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace pb::an
{

std::vector<double>
blockProbabilities(const std::vector<sim::PacketStats> &packets,
                   uint32_t num_blocks)
{
    PB_SCOPED_TIMER("phase.analyze_ns");
    if (packets.empty())
        fatal("block probabilities of an empty run");
    std::vector<uint64_t> hits(num_blocks, 0);
    for (const auto &stats : packets) {
        for (uint32_t block : stats.blocks) {
            if (block >= num_blocks)
                panic("block id %u out of range", block);
            hits[block]++;
        }
    }
    std::vector<double> probabilities(num_blocks);
    for (uint32_t b = 0; b < num_blocks; b++) {
        probabilities[b] =
            static_cast<double>(hits[b]) / packets.size();
    }
    return probabilities;
}

std::vector<CoveragePoint>
coverageCurve(const std::vector<sim::PacketStats> &packets,
              uint32_t num_blocks)
{
    PB_SCOPED_TIMER("phase.analyze_ns");
    std::vector<double> probabilities =
        blockProbabilities(packets, num_blocks);

    // Greedy install order: most frequently executed blocks first.
    std::vector<uint32_t> order(num_blocks);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return probabilities[a] > probabilities[b];
                     });
    std::vector<uint32_t> rank(num_blocks);
    for (uint32_t i = 0; i < num_blocks; i++)
        rank[order[i]] = i;

    // A packet is covered once its worst-ranked block is installed.
    std::vector<uint64_t> covered_at(num_blocks + 1, 0);
    for (const auto &stats : packets) {
        uint32_t worst = 0;
        for (uint32_t block : stats.blocks)
            worst = std::max(worst, rank[block] + 1);
        covered_at[worst]++;
    }

    std::vector<CoveragePoint> curve;
    curve.reserve(num_blocks);
    uint64_t covered = covered_at[0];
    for (uint32_t n = 1; n <= num_blocks; n++) {
        covered += covered_at[n];
        curve.push_back(
            {n, static_cast<double>(covered) / packets.size()});
    }
    return curve;
}

uint32_t
blocksForCoverage(const std::vector<CoveragePoint> &curve,
                  double fraction)
{
    for (const auto &point : curve) {
        if (point.packetFraction >= fraction)
            return point.blocks;
    }
    return curve.empty() ? 0 : curve.back().blocks;
}

} // namespace pb::an
