/**
 * @file
 * Weighted control-flow graph of packet processing.
 *
 * The paper's introduction proposes comparing the execution paths of
 * different packets through the same application as a *weighted flow
 * graph* that illustrates the dynamics of packet processing.  This
 * class accumulates basic-block transition counts over per-packet
 * instruction traces and renders the result, including Graphviz DOT
 * output with edges weighted by traversal count.
 */

#ifndef PB_ANALYSIS_FLOWGRAPH_HH
#define PB_ANALYSIS_FLOWGRAPH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/bblock.hh"

namespace pb::an
{

/** One weighted edge of the flow graph. */
struct FlowEdge
{
    uint32_t from;
    uint32_t to;
    uint64_t count;
};

/** Block-level weighted control-flow graph. */
class WeightedFlowGraph
{
  public:
    /** @param blocks static block map of the program under study. */
    explicit WeightedFlowGraph(const sim::BlockMap &blocks);

    /**
     * Accumulate one packet's instruction-address trace.  An edge is
     * recorded at every control transfer (taken branch, jump, call,
     * return) and every fall-through into a different block.
     */
    void addPacket(const std::vector<uint32_t> &inst_trace);

    /** Edges sorted by descending traversal count. */
    std::vector<FlowEdge> edges() const;

    /** Number of times block @p id began executing. */
    uint64_t blockEntries(uint32_t id) const;

    /** Packets accumulated so far. */
    uint64_t packets() const { return packetCount; }

    /**
     * Render as Graphviz DOT.  Edge labels carry traversal counts;
     * edges traversed by every packet are solid, rarer ones dashed.
     */
    std::string toDot(const std::string &graph_name = "pb") const;

  private:
    const sim::BlockMap &blocks;
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> edgeCounts;
    std::vector<uint64_t> entryCounts;
    uint64_t packetCount = 0;
};

} // namespace pb::an

#endif // PB_ANALYSIS_FLOWGRAPH_HH
