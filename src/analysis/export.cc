/**
 * @file
 * CSV export implementation.
 */

#include "export.hh"

#include <ostream>

#include "sim/memmap.hh"

namespace pb::an
{

void
writeStatsCsv(std::ostream &out,
              const std::vector<sim::PacketStats> &stats)
{
    out << "packet,insts,unique_insts,pkt_reads,pkt_writes,"
           "nonpkt_reads,nonpkt_writes\n";
    for (size_t i = 0; i < stats.size(); i++) {
        const auto &s = stats[i];
        out << i << ',' << s.instCount << ',' << s.uniqueInstCount
            << ',' << s.packetReads << ',' << s.packetWrites << ','
            << s.nonPacketReads << ',' << s.nonPacketWrites << '\n';
    }
}

void
writeSeriesCsv(std::ostream &out, const std::string &x_name,
               const std::string &y_name,
               const std::vector<std::pair<double, double>> &xy)
{
    out << x_name << ',' << y_name << '\n';
    for (const auto &[x, y] : xy)
        out << x << ',' << y << '\n';
}

void
writeCoverageCsv(std::ostream &out,
                 const std::vector<CoveragePoint> &curve)
{
    out << "blocks,coverage\n";
    for (const auto &point : curve)
        out << point.blocks << ',' << point.packetFraction << '\n';
}

void
writeMemTraceCsv(std::ostream &out,
                 const std::vector<sim::PacketStats::TracedAccess>
                     &trace)
{
    out << "inst_index,region,rw,addr,size\n";
    for (const auto &access : trace) {
        out << access.instIndex << ','
            << memRegionName(access.event.region) << ','
            << (access.event.isStore ? 'W' : 'R') << ','
            << access.event.addr << ','
            << static_cast<unsigned>(access.event.size) << '\n';
    }
}

} // namespace pb::an
