/**
 * @file
 * Intra-packet instruction pattern analysis (paper Fig. 6): each
 * executed instruction address is assigned a unique index in first-
 * execution order; plotting the index against execution time makes
 * loops visible as horizontal overlaps.
 */

#ifndef PB_ANALYSIS_INSTPATTERN_HH
#define PB_ANALYSIS_INSTPATTERN_HH

#include <cstdint>
#include <vector>

namespace pb::an
{

/**
 * Map an instruction-address trace to unique first-touch indices.
 *
 * @param inst_trace executed addresses in order
 * @return one index per executed instruction; index i < j iff the
 *         instruction at i was first executed earlier
 */
std::vector<uint32_t>
uniqueIndexSeries(const std::vector<uint32_t> &inst_trace);

/**
 * Number of (start, length) repetition segments: positions where the
 * series goes backwards (a loop back-edge at instruction level).
 */
uint32_t countBackJumps(const std::vector<uint32_t> &series);

} // namespace pb::an

#endif // PB_ANALYSIS_INSTPATTERN_HH
