/**
 * @file
 * Paper-experiment harness: one entry point per table and figure of
 * the evaluation section (Tables I-VI, Figures 3-9).
 *
 * Each render function sets up the applications and traces the way
 * the paper describes, runs them on the simulator, and returns the
 * table rows / data series as text.  The bench binaries are thin
 * wrappers over these functions; integration tests assert on the
 * underlying data.
 */

#ifndef PB_ANALYSIS_EXPERIMENTS_HH
#define PB_ANALYSIS_EXPERIMENTS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/packetbench.hh"
#include "net/tracegen.hh"
#include "sim/accounting.hh"

namespace pb::an
{

/** The PacketBench workloads. */
enum class AppKind
{
    // The paper's four header-processing applications (HPA).
    Ipv4Radix,
    Ipv4Trie,
    FlowClass,
    Tsa,
    // Payload-processing applications (PPA, CommBench class) — the
    // paper mentions PacketBench handles these as well.
    Crc32,
    XteaEnc,
    // Further header app from the paper's motivating functions.
    Nat,
};

/** The paper's evaluation set (tables and figures use these). */
constexpr AppKind allAppKinds[] = {AppKind::Ipv4Radix,
                                   AppKind::Ipv4Trie,
                                   AppKind::FlowClass, AppKind::Tsa};

/** Everything, including the payload applications. */
constexpr AppKind extendedAppKinds[] = {
    AppKind::Ipv4Radix, AppKind::Ipv4Trie, AppKind::FlowClass,
    AppKind::Tsa,       AppKind::Nat,      AppKind::Crc32,
    AppKind::XteaEnc};

/** Display name used in table headers. */
std::string appTitle(AppKind kind);

/** Experiment parameters (defaults follow the paper's setup). */
struct ExperimentConfig
{
    /** Prefixes in the MAE-WEST-like core table (IPv4-radix). */
    uint32_t coreTablePrefixes = 32768;
    /** Prefixes in the small table (IPv4-trie, per the paper). */
    uint32_t smallTablePrefixes = 160;
    /** Flow Classification hash buckets. */
    uint32_t flowBuckets = 4096;
    /** TSA anonymization key. */
    uint32_t tsaKey = 0x7e57a0ff;
    /** Routing-table generator seed. */
    uint32_t tableSeed = 1;
    /** Trace generator seed. */
    uint32_t traceSeed = 2;
    /** Address-scrambler key (paper Section IV-B preprocessing). */
    uint32_t scrambleKey = 0x5ca1ab1e;
};

/** Instantiate one application per the configuration. */
std::unique_ptr<core::Application> makeApp(AppKind kind,
                                           const ExperimentConfig &cfg);

/**
 * Framework configuration for a profile: backbone traces (NLANR-
 * renumbered) get the scrambling preprocessing, the LAN trace does
 * not — exactly the paper's setup.
 */
core::BenchConfig benchConfigFor(net::Profile profile,
                                 const ExperimentConfig &cfg,
                                 sim::RecorderConfig recorder = {});

/** Result of one (application, trace) run. */
struct AppRun
{
    std::vector<sim::PacketStats> stats; ///< per packet, in order
    uint64_t instMemoryBytes = 0; ///< run-level text coverage
    uint64_t dataMemoryBytes = 0; ///< run-level data coverage
    uint32_t numBlocks = 0;       ///< static basic blocks
    uint32_t dropped = 0;         ///< packets the app dropped

    double meanInsts() const;
    double meanPacketAccesses() const;
    double meanNonPacketAccesses() const;
};

/** Run @p kind over @p packets packets of @p profile. */
AppRun runApp(AppKind kind, net::Profile profile, uint32_t packets,
              const ExperimentConfig &cfg,
              sim::RecorderConfig recorder = {});

/** @name Paper tables (rendered as aligned text). @{ */
/** Table I: the packet traces used to evaluate applications. */
std::string renderTable1();
/** Table II: average instructions per packet, 4 apps x 4 traces. */
std::string renderTable2(const ExperimentConfig &cfg,
                         uint32_t packets_per_trace);
/** Table III: packet vs non-packet memory accesses per packet. */
std::string renderTable3(const ExperimentConfig &cfg,
                         uint32_t packets_per_trace);
/** Table IV: instruction and data memory sizes (bytes, MRA). */
std::string renderTable4(const ExperimentConfig &cfg,
                         uint32_t packets);
/** Table V: variation of executed instructions (COS). */
std::string renderTable5(const ExperimentConfig &cfg,
                         uint32_t packets);
/** Table VI: variation of unique executed instructions (COS). */
std::string renderTable6(const ExperimentConfig &cfg,
                         uint32_t packets);
/** @} */

/** @name Paper figures (rendered as plottable series). @{ */
/** Figs. 3-5: per-packet series over the first packets of MRA. */
std::string renderFig3(const ExperimentConfig &cfg, uint32_t packets);
std::string renderFig4(const ExperimentConfig &cfg, uint32_t packets);
std::string renderFig5(const ExperimentConfig &cfg, uint32_t packets);
/** Fig. 6: instruction access pattern while processing one packet. */
std::string renderFig6(const ExperimentConfig &cfg);
/** Fig. 7: basic-block execution probability (MRA). */
std::string renderFig7(const ExperimentConfig &cfg, uint32_t packets);
/** Fig. 8: packet coverage vs number of basic blocks (MRA). */
std::string renderFig8(const ExperimentConfig &cfg, uint32_t packets);
/** Fig. 9: data-memory access pattern while processing one packet. */
std::string renderFig9(const ExperimentConfig &cfg);
/** @} */

} // namespace pb::an

#endif // PB_ANALYSIS_EXPERIMENTS_HH
