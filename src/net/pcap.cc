/**
 * @file
 * libpcap-format reader/writer implementation.
 */

#include "pcap.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/byteorder.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/tracing.hh"

namespace pb::net
{

namespace
{

constexpr uint32_t magicSwapped = 0xd4c3b2a1;
constexpr size_t globalHeaderLen = 24;
constexpr size_t recordHeaderLen = 16;

/** What a fixed-length read actually delivered. */
enum class ReadStatus
{
    Ok,        ///< all bytes read
    CleanEof,  ///< zero bytes read, stream at EOF
    Truncated, ///< some but not all bytes read (EOF mid-record)
};

/**
 * Read exactly @p len bytes.  A zero-byte read on a healthy stream
 * at EOF is a clean end of trace; a zero-byte read on a broken
 * stream is an I/O error, never "truncated record".
 */
ReadStatus
readExact(std::istream &in, uint8_t *buf, size_t len,
          const std::string &trace, const std::string &what)
{
    in.read(reinterpret_cast<char *>(buf),
            static_cast<std::streamsize>(len));
    std::streamsize got = in.gcount();
    if (static_cast<size_t>(got) == len)
        return ReadStatus::Ok;
    if (in.bad() || (got == 0 && !in.eof())) {
        throw TraceIoError(
            strprintf("%s: stream error reading %s", trace.c_str(),
                      what.c_str()));
    }
    return got == 0 ? ReadStatus::CleanEof : ReadStatus::Truncated;
}

} // namespace

uint32_t
PcapReader::field32(const uint8_t *p) const
{
    return swapped ? loadBe32(p) : loadLe32(p);
}

uint16_t
PcapReader::field16(const uint8_t *p) const
{
    return swapped ? loadBe16(p) : loadLe16(p);
}

PcapReader::PcapReader(std::istream &input, std::string trace_name,
                       ReadRecovery recovery_)
    : in(input), traceName(std::move(trace_name)), recovery(recovery_)
{
    uint8_t hdr[globalHeaderLen];
    if (readExact(in, hdr, sizeof(hdr), traceName, "global header") !=
        ReadStatus::Ok)
        throw TraceFormatError("empty or truncated pcap file");

    uint32_t magic = loadLe32(hdr);
    if (magic == pcapMagic) {
        swapped = false;
    } else if (magic == magicSwapped) {
        swapped = true;
    } else if (magic == pcapMagicNanos) {
        swapped = false;
        nanos = true;
    } else if (magic == bswap32(pcapMagicNanos)) {
        swapped = true;
        nanos = true;
    } else {
        throw TraceFormatError(
            strprintf("bad pcap magic 0x%08x", magic));
    }

    uint16_t major = field16(hdr + 4);
    if (major != 2) {
        throw TraceFormatError(
            strprintf("unsupported pcap version %u", major));
    }
    snap = field32(hdr + 16);
    uint32_t network = field32(hdr + 20);
    switch (network) {
      case pcapLinkEthernet:
        link = LinkType::Ethernet;
        break;
      case pcapLinkRaw:
        link = LinkType::Raw;
        break;
      default:
        throw TraceFormatError(strprintf(
            "unsupported pcap link type %u (want EN10MB or RAW)",
            network));
    }
}

void
PcapReader::malformedRecord(const std::string &msg)
{
    malformed++;
    PB_COUNTER("trace.malformed");
    if (recovery == ReadRecovery::Strict)
        throw TraceFormatError(msg);
    PB_LOG(Debug, "%s: skipping malformed record: %s",
           traceName.c_str(), msg.c_str());
}

std::optional<Packet>
PcapReader::next()
{
    PB_SCOPED_TIMER("phase.trace_read_ns");
    PB_TRACE_SPAN("net", "trace.read");
    for (;;) {
        uint8_t hdr[recordHeaderLen];
        ReadStatus st =
            readExact(in, hdr, sizeof(hdr), traceName,
                      strprintf("record header #%llu",
                                static_cast<unsigned long long>(
                                    packetIndex)));
        if (st == ReadStatus::CleanEof)
            return std::nullopt;
        if (st == ReadStatus::Truncated) {
            malformedRecord(strprintf(
                "truncated pcap record header #%llu",
                static_cast<unsigned long long>(packetIndex)));
            return std::nullopt; // nothing left to resync to
        }

        uint32_t ts_sec = field32(hdr + 0);
        uint32_t ts_frac = field32(hdr + 4);
        uint32_t incl_len = field32(hdr + 8);
        uint32_t orig_len = field32(hdr + 12);
        if (incl_len > 0x04000000) {
            malformedRecord(strprintf(
                "implausible pcap record length %u (corrupt file?)",
                incl_len));
            // Skip: advance by the declared length and try the next
            // record header; a garbage length lands on garbage, but
            // consistent oversized records (e.g. beyond our cap)
            // resynchronize exactly.
            in.ignore(static_cast<std::streamsize>(incl_len));
            if (!in.good())
                return std::nullopt;
            packetIndex++;
            continue;
        }

        Packet packet;
        // Nanosecond-magic files store the fraction in nanoseconds;
        // scale to the microseconds the Packet carries.
        packet.tsUsec = static_cast<uint64_t>(ts_sec) * 1'000'000 +
                        (nanos ? ts_frac / 1000 : ts_frac);
        packet.wireLen = orig_len;
        packet.bytes.resize(incl_len);
        if (incl_len > 0 &&
            readExact(in, packet.bytes.data(), incl_len, traceName,
                      strprintf("record #%llu body",
                                static_cast<unsigned long long>(
                                    packetIndex))) != ReadStatus::Ok) {
            malformedRecord("pcap record body missing at EOF");
            return std::nullopt;
        }
        packet.l3Offset = (link == LinkType::Ethernet) ? 14 : 0;
        packetIndex++;
        PB_COUNTER("trace.packets_read");
        PB_COUNTER_ADD("trace.bytes_read", packet.bytes.size());
        return packet;
    }
}

PcapWriter::PcapWriter(std::ostream &output, LinkType link_type,
                       uint32_t snap_len)
    : out(output), link(link_type)
{
    uint8_t hdr[globalHeaderLen] = {};
    storeLe32(hdr + 0, pcapMagic);
    storeLe16(hdr + 4, 2);  // version major
    storeLe16(hdr + 6, 4);  // version minor
    storeLe32(hdr + 8, 0);  // thiszone
    storeLe32(hdr + 12, 0); // sigfigs
    storeLe32(hdr + 16, snap_len);
    storeLe32(hdr + 20, link == LinkType::Ethernet ? pcapLinkEthernet
                                                   : pcapLinkRaw);
    out.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
}

void
PcapWriter::write(const Packet &packet)
{
    uint8_t hdr[recordHeaderLen];
    storeLe32(hdr + 0, static_cast<uint32_t>(packet.tsUsec / 1'000'000));
    storeLe32(hdr + 4, static_cast<uint32_t>(packet.tsUsec % 1'000'000));
    storeLe32(hdr + 8, static_cast<uint32_t>(packet.bytes.size()));
    storeLe32(hdr + 12, packet.wireLen ? packet.wireLen
                                       : static_cast<uint32_t>(
                                             packet.bytes.size()));
    out.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    out.write(reinterpret_cast<const char *>(packet.bytes.data()),
              static_cast<std::streamsize>(packet.bytes.size()));
    PB_COUNTER("trace.packets_written");
    if (!out)
        fatal("pcap write failed (disk full or closed stream?)");
}

namespace
{

/** TraceSource that owns its backing file stream. */
class OwningPcapReader : public TraceSource
{
  public:
    OwningPcapReader(const std::string &path, ReadRecovery recovery)
        : file(path, std::ios::binary)
    {
        if (!file)
            fatal("cannot open pcap file '%s'", path.c_str());
        reader = std::make_unique<PcapReader>(file, path, recovery);
    }

    std::optional<Packet> next() override { return reader->next(); }
    std::string name() const override { return reader->name(); }

  private:
    std::ifstream file;
    std::unique_ptr<PcapReader> reader;
};

} // namespace

std::unique_ptr<TraceSource>
openPcapFile(const std::string &path, ReadRecovery recovery)
{
    return std::make_unique<OwningPcapReader>(path, recovery);
}

} // namespace pb::net
