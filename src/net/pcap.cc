/**
 * @file
 * libpcap-format reader/writer implementation.
 */

#include "pcap.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/byteorder.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace pb::net
{

namespace
{

constexpr uint32_t magicSwapped = 0xd4c3b2a1;
constexpr uint32_t magicNanos = 0xa1b23c4d;
constexpr size_t globalHeaderLen = 24;
constexpr size_t recordHeaderLen = 16;

/** Read exactly @p len bytes; returns false on clean EOF at byte 0. */
bool
readExact(std::istream &in, uint8_t *buf, size_t len,
          const std::string &what)
{
    in.read(reinterpret_cast<char *>(buf), static_cast<std::streamsize>(len));
    std::streamsize got = in.gcount();
    if (got == 0 && in.eof())
        return false;
    if (static_cast<size_t>(got) != len) {
        throw TraceFormatError(
            strprintf("truncated pcap %s: wanted %zu bytes, got %zd",
                      what.c_str(), len, got));
    }
    return true;
}

} // namespace

uint32_t
PcapReader::field32(const uint8_t *p) const
{
    return swapped ? loadBe32(p) : loadLe32(p);
}

uint16_t
PcapReader::field16(const uint8_t *p) const
{
    return swapped ? loadBe16(p) : loadLe16(p);
}

PcapReader::PcapReader(std::istream &input, std::string trace_name)
    : in(input), traceName(std::move(trace_name))
{
    uint8_t hdr[globalHeaderLen];
    if (!readExact(in, hdr, sizeof(hdr), "global header"))
        throw TraceFormatError("empty pcap file");

    uint32_t magic = loadLe32(hdr);
    if (magic == pcapMagic) {
        swapped = false;
    } else if (magic == magicSwapped) {
        swapped = true;
    } else if (magic == magicNanos || bswap32(magic) == magicNanos) {
        throw TraceFormatError(
            "nanosecond-resolution pcap files are not supported");
    } else {
        throw TraceFormatError(
            strprintf("bad pcap magic 0x%08x", magic));
    }

    uint16_t major = field16(hdr + 4);
    if (major != 2) {
        throw TraceFormatError(
            strprintf("unsupported pcap version %u", major));
    }
    snap = field32(hdr + 16);
    uint32_t network = field32(hdr + 20);
    switch (network) {
      case pcapLinkEthernet:
        link = LinkType::Ethernet;
        break;
      case pcapLinkRaw:
        link = LinkType::Raw;
        break;
      default:
        throw TraceFormatError(strprintf(
            "unsupported pcap link type %u (want EN10MB or RAW)",
            network));
    }
}

std::optional<Packet>
PcapReader::next()
{
    PB_SCOPED_TIMER("phase.trace_read_ns");
    uint8_t hdr[recordHeaderLen];
    if (!readExact(in, hdr, sizeof(hdr),
                   strprintf("record header #%llu",
                             static_cast<unsigned long long>(
                                 packetIndex))))
        return std::nullopt;

    uint32_t ts_sec = field32(hdr + 0);
    uint32_t ts_usec = field32(hdr + 4);
    uint32_t incl_len = field32(hdr + 8);
    uint32_t orig_len = field32(hdr + 12);
    if (incl_len > 0x04000000) {
        throw TraceFormatError(strprintf(
            "implausible pcap record length %u (corrupt file?)",
            incl_len));
    }

    Packet packet;
    packet.tsUsec = static_cast<uint64_t>(ts_sec) * 1'000'000 + ts_usec;
    packet.wireLen = orig_len;
    packet.bytes.resize(incl_len);
    if (incl_len > 0 &&
        !readExact(in, packet.bytes.data(), incl_len,
                   strprintf("record #%llu body",
                             static_cast<unsigned long long>(
                                 packetIndex)))) {
        throw TraceFormatError("pcap record body missing at EOF");
    }
    packet.l3Offset = (link == LinkType::Ethernet) ? 14 : 0;
    packetIndex++;
    PB_COUNTER("trace.packets_read");
    PB_COUNTER_ADD("trace.bytes_read", packet.bytes.size());
    return packet;
}

PcapWriter::PcapWriter(std::ostream &output, LinkType link_type,
                       uint32_t snap_len)
    : out(output), link(link_type)
{
    uint8_t hdr[globalHeaderLen] = {};
    storeLe32(hdr + 0, pcapMagic);
    storeLe16(hdr + 4, 2);  // version major
    storeLe16(hdr + 6, 4);  // version minor
    storeLe32(hdr + 8, 0);  // thiszone
    storeLe32(hdr + 12, 0); // sigfigs
    storeLe32(hdr + 16, snap_len);
    storeLe32(hdr + 20, link == LinkType::Ethernet ? pcapLinkEthernet
                                                   : pcapLinkRaw);
    out.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
}

void
PcapWriter::write(const Packet &packet)
{
    uint8_t hdr[recordHeaderLen];
    storeLe32(hdr + 0, static_cast<uint32_t>(packet.tsUsec / 1'000'000));
    storeLe32(hdr + 4, static_cast<uint32_t>(packet.tsUsec % 1'000'000));
    storeLe32(hdr + 8, static_cast<uint32_t>(packet.bytes.size()));
    storeLe32(hdr + 12, packet.wireLen ? packet.wireLen
                                       : static_cast<uint32_t>(
                                             packet.bytes.size()));
    out.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    out.write(reinterpret_cast<const char *>(packet.bytes.data()),
              static_cast<std::streamsize>(packet.bytes.size()));
    PB_COUNTER("trace.packets_written");
    if (!out)
        fatal("pcap write failed (disk full or closed stream?)");
}

namespace
{

/** TraceSource that owns its backing file stream. */
class OwningPcapReader : public TraceSource
{
  public:
    OwningPcapReader(const std::string &path)
        : file(path, std::ios::binary)
    {
        if (!file)
            fatal("cannot open pcap file '%s'", path.c_str());
        reader = std::make_unique<PcapReader>(file, path);
    }

    std::optional<Packet> next() override { return reader->next(); }
    std::string name() const override { return reader->name(); }

  private:
    std::ifstream file;
    std::unique_ptr<PcapReader> reader;
};

} // namespace

std::unique_ptr<TraceSource>
openPcapFile(const std::string &path)
{
    return std::make_unique<OwningPcapReader>(path);
}

} // namespace pb::net
