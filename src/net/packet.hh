/**
 * @file
 * Packet representation used throughout PacketBench.
 *
 * A packet is the captured bytes plus enough metadata to find the
 * layer-3 (IPv4) header.  PacketBench applications, like the paper's,
 * see the packet "from the layer 3 header onwards"; the framework is
 * responsible for knowing where that is per link type.
 */

#ifndef PB_NET_PACKET_HH
#define PB_NET_PACKET_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace pb::net
{

/** Link layer a trace was captured on. */
enum class LinkType : uint8_t
{
    Ethernet, ///< 14-byte MAC header before the IP header
    Raw,      ///< IP directly (PoS / ATM AAL5 / TSH records)
};

/** One captured packet. */
struct Packet
{
    /** Capture timestamp in microseconds. */
    uint64_t tsUsec = 0;

    /** Original length on the wire (may exceed captured bytes). */
    uint32_t wireLen = 0;

    /** Captured bytes, starting at layer 2 (or layer 3 for Raw). */
    std::vector<uint8_t> bytes;

    /** Byte offset of the IPv4 header within @ref bytes. */
    uint16_t l3Offset = 0;

    /** Pointer to the IPv4 header. */
    const uint8_t *
    l3() const
    {
        if (l3Offset > bytes.size())
            panic("packet l3Offset beyond captured bytes");
        return bytes.data() + l3Offset;
    }

    /** Mutable pointer to the IPv4 header. */
    uint8_t *
    l3()
    {
        if (l3Offset > bytes.size())
            panic("packet l3Offset beyond captured bytes");
        return bytes.data() + l3Offset;
    }

    /**
     * Captured bytes from the IPv4 header onwards.
     *
     * Zero when the capture ends before the layer-3 offset (a runt
     * Ethernet record, say, with incl_len < 14): such packets carry
     * no usable L3 bytes and must surface as a malformed-packet
     * fault, never as an underflowed 65-KiB phantom length.
     */
    uint32_t
    l3Len() const
    {
        if (l3Offset >= bytes.size())
            return 0;
        return static_cast<uint32_t>(bytes.size() - l3Offset);
    }
};

} // namespace pb::net

#endif // PB_NET_PACKET_HH
