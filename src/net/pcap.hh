/**
 * @file
 * Reader and writer for the classic libpcap capture format,
 * implemented from scratch (no libpcap dependency).
 *
 * Supported: both byte orders (magic 0xa1b2c3d4 / 0xd4c3b2a1), the
 * nanosecond-resolution magic 0xa1b23c4d in both byte orders
 * (timestamps scaled to microseconds), link types EN10MB (Ethernet)
 * and RAW (IP).  Other link types are rejected with a clear error.
 *
 * Malformed records (truncated bodies, implausible lengths) throw
 * TraceFormatError by default; with ReadRecovery::Skip the reader
 * counts them ("trace.malformed") and advances by the declared
 * record length instead, so one corrupt record does not abandon a
 * multi-million-packet trace.
 */

#ifndef PB_NET_PCAP_HH
#define PB_NET_PCAP_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "net/trace.hh"

namespace pb::net
{

/** Streaming pcap reader. */
class PcapReader : public TraceSource
{
  public:
    /**
     * Parse the global header from @p input.
     * @param input      stream positioned at the start of the file
     * @param trace_name name used in reports and error messages
     * @param recovery   how to react to malformed records
     * @throws TraceFormatError on bad magic or unsupported link type
     */
    PcapReader(std::istream &input, std::string trace_name = "pcap",
               ReadRecovery recovery = ReadRecovery::Strict);

    std::optional<Packet> next() override;
    std::string name() const override { return traceName; }

    /** Link type declared in the file header. */
    LinkType linkType() const { return link; }

    /** Snap length declared in the file header. */
    uint32_t snapLen() const { return snap; }

    /** File uses the nanosecond-resolution magic. */
    bool nanosecond() const { return nanos; }

    /** Malformed records skipped so far (ReadRecovery::Skip). */
    uint64_t malformedRecords() const { return malformed; }

  private:
    std::istream &in;
    std::string traceName;
    ReadRecovery recovery;
    bool swapped = false;
    bool nanos = false;
    LinkType link = LinkType::Raw;
    uint32_t snap = 0;
    uint64_t packetIndex = 0;
    uint64_t malformed = 0;

    /** Count one malformed record; throws under Strict. */
    void malformedRecord(const std::string &msg);

    uint32_t field32(const uint8_t *p) const;
    uint16_t field16(const uint8_t *p) const;
};

/** Streaming pcap writer. */
class PcapWriter : public TraceSink
{
  public:
    /**
     * Write the global header immediately.
     * @param output    destination stream
     * @param link_type link type recorded in the header
     * @param snap_len  snap length recorded in the header
     */
    PcapWriter(std::ostream &output, LinkType link_type,
               uint32_t snap_len = 65535);

    void write(const Packet &packet) override;

  private:
    std::ostream &out;
    LinkType link;
};

/** Open a pcap file for reading (owns the stream). */
std::unique_ptr<TraceSource>
openPcapFile(const std::string &path,
             ReadRecovery recovery = ReadRecovery::Strict);

/** pcap magic (host-endian written by our writer). */
constexpr uint32_t pcapMagic = 0xa1b2c3d4;
/** pcap magic for nanosecond-resolution timestamps. */
constexpr uint32_t pcapMagicNanos = 0xa1b23c4d;
/** pcap link-type codes. */
constexpr uint32_t pcapLinkEthernet = 1;
constexpr uint32_t pcapLinkRaw = 101;

} // namespace pb::net

#endif // PB_NET_PCAP_HH
