/**
 * @file
 * Fault-injecting trace source.
 *
 * Wraps any TraceSource and corrupts every Nth packet with a seeded,
 * reproducible mutation — bit flips, truncation to a runt, header
 * corruption, growth beyond simulated packet memory, or a
 * budget-blowing payload.  This is the repository's hostile-input
 * generator: the fault-isolation layer (core/fault.hh) is tested and
 * benchmarked against it, the way related trace-replay systems treat
 * malformed input as the common case rather than the exception.
 *
 * Determinism: corruption decisions are a pure function of the
 * configuration seed and the packet index, so two instances over
 * identical upstreams produce byte-identical streams — which is what
 * lets serial and parallel runs be compared on faulting traces.
 */

#ifndef PB_NET_FAULTINJECT_HH
#define PB_NET_FAULTINJECT_HH

#include <vector>

#include "common/rng.hh"
#include "net/trace.hh"

namespace pb::net
{

/** The corruption kinds the injector can apply. */
enum class InjectedFault : uint8_t
{
    None = 0,      ///< packet passed through untouched
    BitFlip,       ///< 1-8 random bit flips anywhere in the capture
    Truncate,      ///< cut to at most l3Offset bytes (a runt: no L3)
    HeaderCorrupt, ///< garble the IPv4 version/IHL and length fields
    Oversize,      ///< grow beyond simulated packet memory
    PayloadBloat,  ///< budget-blowing payload (hurts payload apps)
};

/** Human-readable corruption name. */
const char *injectedFaultName(InjectedFault kind);

/** Injector configuration. */
struct FaultInjectConfig
{
    /** Corrupt every Nth packet (1-based; 0 disables injection). */
    uint32_t period = 50;

    /** Seed for all corruption decisions. */
    uint32_t seed = 1;

    /**
     * @name Enabled corruption kinds.
     * The kind applied to each victim is drawn uniformly from the
     * enabled set.  Truncate and Oversize are *hard* faults — the
     * framework can never process such packets, so injected counts
     * can be checked exactly against pb.faults.*.  BitFlip and
     * HeaderCorrupt are *noise*: the packet may still process
     * cleanly, which is exactly what real corrupt traces do.
     * @{
     */
    bool bitFlips = true;
    bool truncation = true;
    bool headerCorruption = true;
    bool oversize = true;
    bool payloadBloat = false;
    /** @} */

    /** Byte length used for Oversize (> 64 KiB packet memory). */
    uint32_t oversizeLen = 70'000;

    /** Byte length used for PayloadBloat (fits packet memory). */
    uint32_t bloatLen = 60'000;

    /**
     * Keep a copy of every corrupted packet (as emitted), so tests
     * can verify quarantine captures byte-for-byte.
     */
    bool keepInjected = false;
};

/** TraceSource decorator that corrupts every Nth packet. */
class FaultInjectingTraceSource : public TraceSource
{
  public:
    /** @param upstream source to wrap; must outlive the injector. */
    FaultInjectingTraceSource(TraceSource &upstream,
                              FaultInjectConfig cfg = {});

    std::optional<Packet> next() override;
    std::string name() const override
    {
        return upstream.name() + "+faults";
    }

    /** Packets corrupted so far. */
    uint64_t injectedCount() const { return injected; }

    /** Corruption applied to the most recent packet. */
    InjectedFault lastFault() const { return last; }

    /** Copies of the corrupted packets (cfg.keepInjected). */
    const std::vector<Packet> &injectedPackets() const
    {
        return kept;
    }

  private:
    InjectedFault pickKind();
    void corrupt(Packet &packet, InjectedFault kind);

    TraceSource &upstream;
    FaultInjectConfig cfg;
    Rng rng;
    uint64_t index = 0;
    uint64_t injected = 0;
    InjectedFault last = InjectedFault::None;
    std::vector<Packet> kept;
};

} // namespace pb::net

#endif // PB_NET_FAULTINJECT_HH
