/**
 * @file
 * IPv4 header helpers and checksum arithmetic.
 */

#include "ipv4.hh"

namespace pb::net
{

uint16_t
inetChecksum(const uint8_t *data, unsigned len)
{
    uint32_t sum = 0;
    unsigned i = 0;
    for (; i + 1 < len; i += 2)
        sum += loadBe16(data + i);
    if (i < len)
        sum += static_cast<uint32_t>(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<uint16_t>(~sum);
}

bool
verifyIpv4Checksum(const uint8_t *header, unsigned header_len)
{
    // Sum over the header including the stored checksum is all-ones,
    // so the folded complement is zero.
    return inetChecksum(header, header_len) == 0;
}

void
fillIpv4Checksum(uint8_t *header, unsigned header_len)
{
    storeBe16(header + ipv4::offChecksum, 0);
    storeBe16(header + ipv4::offChecksum,
              inetChecksum(header, header_len));
}

uint16_t
incrementalChecksum(uint16_t old_sum, uint16_t old_val, uint16_t new_val)
{
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
    uint32_t sum = static_cast<uint16_t>(~old_sum);
    sum += static_cast<uint16_t>(~old_val);
    sum += new_val;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<uint16_t>(~sum);
}

bool
parseFiveTuple(const Packet &packet, FiveTuple &tuple)
{
    if (packet.l3Len() < ipv4::minHeaderLen)
        return false;
    Ipv4ConstView ip(packet.l3());
    if (ip.version() != 4)
        return false;
    unsigned hlen = ip.headerLen();
    if (hlen < ipv4::minHeaderLen || packet.l3Len() < hlen)
        return false;

    tuple.src = ip.src();
    tuple.dst = ip.dst();
    tuple.proto = ip.proto();
    tuple.srcPort = 0;
    tuple.dstPort = 0;
    if ((tuple.proto == static_cast<uint8_t>(IpProto::Tcp) ||
         tuple.proto == static_cast<uint8_t>(IpProto::Udp)) &&
        packet.l3Len() >= hlen + 4) {
        const uint8_t *l4p = packet.l3() + hlen;
        tuple.srcPort = loadBe16(l4p + l4::offSrcPort);
        tuple.dstPort = loadBe16(l4p + l4::offDstPort);
    }
    return true;
}

ForwardCheck
rfc1812Check(const Packet &packet)
{
    if (packet.l3Len() < ipv4::minHeaderLen)
        return ForwardCheck::BadHeader;
    Ipv4ConstView ip(packet.l3());
    if (ip.version() != 4 || ip.ihl() < 5)
        return ForwardCheck::BadHeader;
    if (!verifyIpv4Checksum(packet.l3(), ipv4::minHeaderLen))
        return ForwardCheck::BadChecksum;
    if (ip.ttl() <= 1)
        return ForwardCheck::TtlExpired;
    uint8_t src_top = static_cast<uint8_t>(ip.src() >> 24);
    if (src_top == 0 || src_top == 127)
        return ForwardCheck::MartianSource;
    if ((ip.dst() >> 28) == 0xe) // 224.0.0.0/4
        return ForwardCheck::MulticastDest;
    return ForwardCheck::Ok;
}

std::vector<uint8_t>
buildIpv4Packet(const FiveTuple &tuple, uint16_t total_len, uint8_t ttl,
                uint8_t payload_fill)
{
    if (total_len < ipv4::minHeaderLen + 8)
        fatal("buildIpv4Packet: total_len %u too small", total_len);
    std::vector<uint8_t> bytes(total_len, payload_fill);
    Ipv4View ip(bytes.data());
    ip.setVersionIhl(4, 5);
    bytes[ipv4::offTos] = 0;
    ip.setTotalLen(total_len);
    ip.setIdent(0);
    storeBe16(bytes.data() + ipv4::offFlagsFrag, 0x4000); // DF
    ip.setTtl(ttl);
    ip.setProto(tuple.proto);
    ip.setSrc(tuple.src);
    ip.setDst(tuple.dst);
    fillIpv4Checksum(bytes.data(), ipv4::minHeaderLen);

    uint8_t *l4p = bytes.data() + ipv4::minHeaderLen;
    storeBe16(l4p + l4::offSrcPort, tuple.srcPort);
    storeBe16(l4p + l4::offDstPort, tuple.dstPort);
    // Remaining 4 bytes of the L4 stub: sequence/length field.
    storeBe32(l4p + 4, static_cast<uint32_t>(total_len));
    return bytes;
}

} // namespace pb::net
