/**
 * @file
 * IPv4 header helpers and checksum arithmetic.
 */

#include "ipv4.hh"

#include <algorithm>

#include "net/simd/kernels.hh"

namespace pb::net
{

uint16_t
inetChecksum(const uint8_t *data, unsigned len)
{
    // Runtime-dispatched kernel (generic/sse42/avx2); every backend
    // is pinned bit-identical to the scalar reference sum.
    return simd::kernels().checksum(data, len);
}

bool
verifyIpv4Checksum(const uint8_t *header, unsigned header_len)
{
    // Sum over the header including the stored checksum is all-ones,
    // so the folded complement is zero.
    return inetChecksum(header, header_len) == 0;
}

void
fillIpv4Checksum(uint8_t *header, unsigned header_len)
{
    storeBe16(header + ipv4::offChecksum, 0);
    storeBe16(header + ipv4::offChecksum,
              inetChecksum(header, header_len));
}

uint16_t
incrementalChecksum(uint16_t old_sum, uint16_t old_val, uint16_t new_val)
{
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
    uint32_t sum = static_cast<uint16_t>(~old_sum);
    sum += static_cast<uint16_t>(~old_val);
    sum += new_val;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<uint16_t>(~sum);
}

bool
parseFiveTuple(const Packet &packet, FiveTuple &tuple)
{
    if (packet.l3Len() < ipv4::minHeaderLen)
        return false;
    Ipv4ConstView ip(packet.l3());
    if (ip.version() != 4)
        return false;
    unsigned hlen = ip.headerLen();
    if (hlen < ipv4::minHeaderLen || packet.l3Len() < hlen)
        return false;

    tuple.src = ip.src();
    tuple.dst = ip.dst();
    tuple.proto = ip.proto();
    tuple.srcPort = 0;
    tuple.dstPort = 0;
    // A non-first fragment carries payload where the L4 header would
    // be; its ports stay 0 so all fragments of a datagram share one
    // (portless) flow instead of minting a garbage tuple per train.
    if ((tuple.proto == static_cast<uint8_t>(IpProto::Tcp) ||
         tuple.proto == static_cast<uint8_t>(IpProto::Udp)) &&
        ip.fragOffset() == 0 && packet.l3Len() >= hlen + 4) {
        const uint8_t *l4p = packet.l3() + hlen;
        tuple.srcPort = loadBe16(l4p + l4::offSrcPort);
        tuple.dstPort = loadBe16(l4p + l4::offDstPort);
    }
    return true;
}

void
hashPacketBatch(const Packet *const *packets, unsigned n,
                uint32_t *hash, bool *valid)
{
    constexpr unsigned chunk = 16;
    uint32_t src[chunk], dst[chunk], ports[chunk], proto[chunk];
    unsigned lane_index[chunk];

    for (unsigned base = 0; base < n; base += chunk) {
        unsigned count = std::min(n - base, chunk);
        unsigned lanes = 0;
        for (unsigned i = 0; i < count; i++) {
            FiveTuple tuple;
            valid[base + i] = parseFiveTuple(*packets[base + i], tuple);
            if (!valid[base + i])
                continue;
            src[lanes] = tuple.src;
            dst[lanes] = tuple.dst;
            ports[lanes] =
                (static_cast<uint32_t>(tuple.srcPort) << 16) |
                tuple.dstPort;
            proto[lanes] = tuple.proto;
            lane_index[lanes] = base + i;
            lanes++;
        }
        uint32_t out[chunk];
        simd::kernels().flowHashBatch(src, dst, ports, proto, out,
                                      lanes);
        for (unsigned lane = 0; lane < lanes; lane++)
            hash[lane_index[lane]] = out[lane];
    }
}

ForwardCheck
rfc1812Check(const Packet &packet)
{
    if (packet.l3Len() < ipv4::minHeaderLen)
        return ForwardCheck::BadHeader;
    Ipv4ConstView ip(packet.l3());
    if (ip.version() != 4 || ip.ihl() < 5)
        return ForwardCheck::BadHeader;
    unsigned hlen = ip.headerLen();
    if (packet.l3Len() < hlen || ip.totalLen() < hlen)
        return ForwardCheck::BadHeader;
    // The checksum covers the whole IHL-derived header, options
    // included (RFC 1812 §5.2.2): verifying only the fixed 20 bytes
    // accepts corrupt option words and rejects valid option-bearing
    // headers whose 20-byte prefix sum happens not to fold to zero.
    if (!verifyIpv4Checksum(packet.l3(), hlen))
        return ForwardCheck::BadChecksum;
    if (ip.ttl() <= 1)
        return ForwardCheck::TtlExpired;
    uint8_t src_top = static_cast<uint8_t>(ip.src() >> 24);
    if (src_top == 0 || src_top == 127)
        return ForwardCheck::MartianSource;
    if ((ip.dst() >> 28) == 0xe) // 224.0.0.0/4
        return ForwardCheck::MulticastDest;
    return ForwardCheck::Ok;
}

std::vector<uint8_t>
buildIpv4Packet(const FiveTuple &tuple, uint16_t total_len, uint8_t ttl,
                uint8_t payload_fill)
{
    if (total_len < ipv4::minHeaderLen + 8)
        fatal("buildIpv4Packet: total_len %u too small", total_len);
    std::vector<uint8_t> bytes(total_len, payload_fill);
    Ipv4View ip(bytes.data());
    ip.setVersionIhl(4, 5);
    bytes[ipv4::offTos] = 0;
    ip.setTotalLen(total_len);
    ip.setIdent(0);
    storeBe16(bytes.data() + ipv4::offFlagsFrag, 0x4000); // DF
    ip.setTtl(ttl);
    ip.setProto(tuple.proto);
    ip.setSrc(tuple.src);
    ip.setDst(tuple.dst);
    fillIpv4Checksum(bytes.data(), ipv4::minHeaderLen);

    uint8_t *l4p = bytes.data() + ipv4::minHeaderLen;
    storeBe16(l4p + l4::offSrcPort, tuple.srcPort);
    storeBe16(l4p + l4::offDstPort, tuple.dstPort);
    // Remaining 4 bytes of the L4 stub: sequence/length field.
    storeBe32(l4p + 4, static_cast<uint32_t>(total_len));
    return bytes;
}

} // namespace pb::net
