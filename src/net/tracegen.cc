/**
 * @file
 * Synthetic trace generator implementation.
 */

#include "tracegen.hh"

#include "common/hash.hh"
#include "net/ipv4.hh"
#include "obs/metrics.hh"
#include "obs/tracing.hh"

namespace pb::net
{

namespace
{

const ProfileInfo profiles[] = {
    // profile, name, link description, link, Table I packets,
    // hosts, mean flow length, pTcp, pUdp, subnets, renumber
    {Profile::MRA, "MRA", "OC-12c (PoS)", LinkType::Raw, 4'643'333,
     40'000, 10, 0.85, 0.12, 0, true},
    {Profile::COS, "COS", "OC-3c (ATM)", LinkType::Raw, 2'183'310,
     15'000, 9, 0.82, 0.14, 0, true},
    {Profile::ODU, "ODU", "OC-3c (ATM)", LinkType::Raw, 784'278,
     6'000, 8, 0.70, 0.26, 0, true},
    {Profile::LAN, "LAN", "100Mbps (Ethernet)", LinkType::Ethernet,
     100'000, 250, 40, 0.90, 0.08, 6, false},
};

const uint16_t wellKnownPorts[] = {80, 443, 53, 25, 110, 8080, 22, 21};

} // namespace

const ProfileInfo &
profileInfo(Profile profile)
{
    for (const auto &info : profiles) {
        if (info.profile == profile)
            return info;
    }
    panic("unknown trace profile");
}

SyntheticTrace::SyntheticTrace(Profile profile, uint32_t count,
                               uint32_t seed)
    : info(profileInfo(profile)),
      rng(mix32(seed, static_cast<uint32_t>(profile) + 1)),
      total(count)
{
    if (count == 0)
        fatal("SyntheticTrace: zero-packet trace requested");
}

uint32_t
SyntheticTrace::hostAddr(uint32_t host_id)
{
    if (info.numSubnets > 0) {
        // LAN: private /24 subnets, 192.168.S.H.
        uint32_t subnet = host_id % info.numSubnets;
        uint32_t host = 1 + (host_id / info.numSubnets) % 250;
        return (192u << 24) | (168u << 16) | (subnet << 8) | host;
    }
    // Backbone: pseudorandom public-looking address, stable per id.
    uint32_t addr = prf32(0x9d5 + static_cast<uint32_t>(info.profile),
                          host_id);
    // Avoid multicast/reserved (top nibble 0xe/0xf) and 0.x.
    uint8_t top = static_cast<uint8_t>(addr >> 24);
    if (top == 0 || top >= 0xe0)
        addr = (addr & 0x1fffffff) | (13u << 24);
    return addr;
}

uint32_t
SyntheticTrace::renumber(uint32_t addr)
{
    auto [it, inserted] = renumberMap.emplace(addr, nextRenumbered);
    if (inserted)
        nextRenumbered++;
    return it->second;
}

SyntheticTrace::Flow
SyntheticTrace::makeFlow()
{
    Flow flow;
    uint32_t src_id = rng.below(info.numHosts);
    uint32_t dst_id = rng.below(info.numHosts);
    if (dst_id == src_id)
        dst_id = (dst_id + 1) % info.numHosts;
    flow.src = hostAddr(src_id);
    flow.dst = hostAddr(dst_id);

    double p = rng.uniform();
    if (p < info.pTcp) {
        flow.proto = static_cast<uint8_t>(IpProto::Tcp);
    } else if (p < info.pTcp + info.pUdp) {
        flow.proto = static_cast<uint8_t>(IpProto::Udp);
    } else {
        flow.proto = static_cast<uint8_t>(IpProto::Icmp);
    }

    if (flow.proto == static_cast<uint8_t>(IpProto::Icmp)) {
        flow.srcPort = 0;
        flow.dstPort = 0;
    } else {
        flow.srcPort = static_cast<uint16_t>(rng.range(1024, 65535));
        flow.dstPort = rng.chance(0.7)
                           ? wellKnownPorts[rng.below(
                                 sizeof(wellKnownPorts) /
                                 sizeof(wellKnownPorts[0]))]
                           : static_cast<uint16_t>(
                                 rng.range(1024, 65535));
    }

    static const uint8_t initial_ttls[] = {32, 64, 128, 255};
    uint8_t hops = static_cast<uint8_t>(rng.range(1, 30));
    flow.ttl = static_cast<uint8_t>(
        initial_ttls[rng.below(4)] - hops);
    // A sliver of traffic arrives with an expiring TTL, as in real
    // backbone traces (traceroutes, routing loops).
    if (rng.chance(0.004))
        flow.ttl = 1;

    // Geometric-ish flow length with mean ~ meanFlowLen.
    flow.remaining =
        1 + rng.geometric(1.0 / info.meanFlowLen, info.meanFlowLen * 20);
    return flow;
}

uint16_t
SyntheticTrace::packetSize(const Flow &flow)
{
    switch (static_cast<IpProto>(flow.proto)) {
      case IpProto::Tcp: {
        double p = rng.uniform();
        if (p < 0.45)
            return 40; // pure ACK
        if (p < 0.75)
            return 1500; // full MSS
        return static_cast<uint16_t>(rng.range(41, 1499));
      }
      case IpProto::Udp:
        return static_cast<uint16_t>(rng.range(28, 512));
      case IpProto::Icmp:
        return 84;
    }
    return 64;
}

std::optional<Packet>
SyntheticTrace::next()
{
    PB_SCOPED_TIMER("phase.trace_read_ns");
    PB_TRACE_SPAN("net", "trace.gen");
    if (emitted >= total)
        return std::nullopt;
    emitted++;

    // Keep a pool of concurrent flows; refresh as they drain.
    const size_t target_active =
        std::max<size_t>(8, info.numHosts / 16);
    if (active.size() < target_active)
        active.push_back(makeFlow());
    size_t idx = rng.below(static_cast<uint32_t>(active.size()));
    Flow &flow = active[idx];

    FiveTuple tuple;
    tuple.src = flow.src;
    tuple.dst = flow.dst;
    tuple.srcPort = flow.srcPort;
    tuple.dstPort = flow.dstPort;
    tuple.proto = flow.proto;
    if (info.nlanrRenumber) {
        tuple.src = renumber(tuple.src);
        tuple.dst = renumber(tuple.dst);
    }

    uint16_t wire_len = packetSize(flow);
    uint16_t captured =
        std::min<uint16_t>(wire_len, syntheticSnapLen);
    if (captured < ipv4::minHeaderLen + 8)
        captured = ipv4::minHeaderLen + 8;
    std::vector<uint8_t> l3 =
        buildIpv4Packet(tuple, captured, flow.ttl, 0x5a);
    // The IP total length reflects the wire length even though we
    // capture only the head of the packet (like a snap-length trace).
    Ipv4View ip(l3.data());
    ip.setTotalLen(std::max(wire_len, captured));
    ip.setIdent(static_cast<uint16_t>(emitted));
    fillIpv4Checksum(l3.data(), ipv4::minHeaderLen);

    Packet packet;
    clockUsec += 1 + rng.below(200);
    packet.tsUsec = clockUsec;
    packet.wireLen = wire_len;
    if (info.link == LinkType::Ethernet) {
        packet.l3Offset = 14;
        packet.bytes.resize(14);
        // Locally administered MACs derived from the addresses.
        packet.bytes[0] = 0x02;
        storeBe32(packet.bytes.data() + 2, tuple.dst);
        packet.bytes[6] = 0x02;
        storeBe32(packet.bytes.data() + 8, tuple.src);
        packet.bytes[12] = 0x08; // EtherType IPv4
        packet.bytes[13] = 0x00;
        packet.bytes.insert(packet.bytes.end(), l3.begin(), l3.end());
        packet.wireLen += 14;
    } else {
        packet.l3Offset = 0;
        packet.bytes = std::move(l3);
    }

    if (--flow.remaining == 0) {
        active[idx] = active.back();
        active.pop_back();
    }
    PB_COUNTER("trace.packets_read");
    PB_COUNTER_ADD("trace.bytes_read", packet.bytes.size());
    return packet;
}

} // namespace pb::net
