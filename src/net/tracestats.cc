/**
 * @file
 * Trace statistics implementation.
 */

#include "tracestats.hh"

#include <unordered_set>

#include "common/hash.hh"
#include "common/strutil.hh"
#include "net/ipv4.hh"

namespace pb::net
{

TraceStats
collectTraceStats(TraceSource &source, uint64_t max_packets)
{
    TraceStats stats;
    std::unordered_set<uint32_t> addrs;
    std::unordered_set<uint32_t> flows; // hashes; collisions benign

    while (max_packets == 0 || stats.packets < max_packets) {
        auto packet = source.next();
        if (!packet)
            break;
        if (stats.packets == 0) {
            stats.firstTsUsec = packet->tsUsec;
            stats.minWireLen = packet->wireLen;
            stats.maxWireLen = packet->wireLen;
        }
        stats.packets++;
        stats.lastTsUsec = packet->tsUsec;
        stats.bytesOnWire += packet->wireLen;
        stats.bytesCaptured += packet->bytes.size();
        stats.minWireLen = std::min(stats.minWireLen, packet->wireLen);
        stats.maxWireLen = std::max(stats.maxWireLen, packet->wireLen);

        FiveTuple tuple;
        if (!parseFiveTuple(*packet, tuple))
            continue;
        stats.ipv4Packets++;
        switch (static_cast<IpProto>(tuple.proto)) {
          case IpProto::Tcp:
            stats.tcp++;
            break;
          case IpProto::Udp:
            stats.udp++;
            break;
          case IpProto::Icmp:
            stats.icmp++;
            break;
          default:
            stats.otherProto++;
            break;
        }
        addrs.insert(tuple.src);
        addrs.insert(tuple.dst);
        uint32_t ports = (static_cast<uint32_t>(tuple.srcPort) << 16) |
                         tuple.dstPort;
        flows.insert(mix32(mix32(tuple.src, tuple.dst),
                           mix32(ports, tuple.proto)));
    }
    stats.distinctAddrs = addrs.size();
    stats.distinctFlows = flows.size();
    return stats;
}

std::string
TraceStats::report(const std::string &name) const
{
    std::string out = strprintf("trace: %s\n", name.c_str());
    out += strprintf("  packets:        %s (%s IPv4)\n",
                     withCommas(packets).c_str(),
                     withCommas(ipv4Packets).c_str());
    out += strprintf("  bytes on wire:  %s (captured %s)\n",
                     withCommas(bytesOnWire).c_str(),
                     withCommas(bytesCaptured).c_str());
    out += strprintf("  wire length:    min %u / mean %.1f / max %u\n",
                     minWireLen, meanWireLen(), maxWireLen);
    out += strprintf("  duration:       %.3f s\n", durationSec());
    if (ipv4Packets) {
        out += strprintf(
            "  protocols:      TCP %.1f%%  UDP %.1f%%  ICMP %.1f%%  "
            "other %.1f%%\n",
            100.0 * tcp / ipv4Packets, 100.0 * udp / ipv4Packets,
            100.0 * icmp / ipv4Packets,
            100.0 * otherProto / ipv4Packets);
    }
    out += strprintf("  distinct addrs: %s\n",
                     withCommas(distinctAddrs).c_str());
    out += strprintf("  distinct flows: %s (approx)\n",
                     withCommas(distinctFlows).c_str());
    return out;
}

} // namespace pb::net
