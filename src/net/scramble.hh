/**
 * @file
 * Bijective IP address scrambler.
 *
 * NLANR anonymizes its traces by renumbering addresses sequentially
 * from 10.0.0.1, which (as the paper's Section IV-B notes) biases
 * routing-table lookups toward one prefix.  The paper scrambles
 * addresses during preprocessing to restore uniform coverage; this
 * class implements that step as a 4-round Feistel network over the
 * 32-bit address space, which is bijective (no two addresses
 * collide) and invertible.
 */

#ifndef PB_NET_SCRAMBLE_HH
#define PB_NET_SCRAMBLE_HH

#include <cstdint>

#include "net/packet.hh"

namespace pb::net
{

/** Keyed bijective 32-bit permutation. */
class AddressScrambler
{
  public:
    explicit AddressScrambler(uint32_t key = 0x5ca1ab1e) : key(key) {}

    /** Forward permutation. */
    uint32_t scramble(uint32_t addr) const;

    /** Inverse permutation: unscramble(scramble(a)) == a. */
    uint32_t unscramble(uint32_t addr) const;

    /**
     * Scramble @p n addresses through the runtime-dispatched SIMD
     * Feistel kernel: out[i] == scramble(in[i]) bit-for-bit.
     * In-place (out == in) is allowed.
     */
    void scrambleBatch(const uint32_t *in, uint32_t *out,
                       unsigned n) const;

    /**
     * Scramble the source and destination addresses of an IPv4
     * packet in place.  When the incoming header checksum verifies
     * (over the full IHL-derived header), it is updated
     * incrementally (RFC 1624) so it stays valid; a checksum that
     * arrived invalid is left invalid rather than repaired, so
     * downstream forwarding checks still see the corruption.
     * No-op for packets without a complete IPv4 header.
     */
    void scramblePacket(Packet &packet) const;

  private:
    static constexpr int rounds = 4;
    uint32_t key;
};

} // namespace pb::net

#endif // PB_NET_SCRAMBLE_HH
