/**
 * @file
 * Synthetic packet-trace generators.
 *
 * The paper evaluates on three NLANR backbone traces (MRA, COS, ODU)
 * and one local LAN trace (Table I).  The NLANR repository is long
 * gone, so these generators synthesize traces with the properties
 * the paper's results actually depend on:
 *
 *  - flow structure (how often a packet belongs to a new flow —
 *    drives the Flow Classification insert/update split),
 *  - address diversity (drives routing-lookup path variation),
 *  - NLANR-style sequential 10.x renumbering for the backbone
 *    traces (drives the paper's Section IV-B scrambling step),
 *  - protocol and size mixes, and link type (header offsets).
 *
 * Real pcap or TSH traces drop in via the same TraceSource API.
 */

#ifndef PB_NET_TRACEGEN_HH
#define PB_NET_TRACEGEN_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "net/trace.hh"

namespace pb::net
{

/** The four trace profiles from the paper's Table I. */
enum class Profile
{
    MRA, ///< OC-12c (PoS) backbone
    COS, ///< OC-3c (ATM) access
    ODU, ///< OC-3c (ATM) access
    LAN, ///< 100 Mbps Ethernet intranet
};

/** All profiles, for parameterized sweeps. */
constexpr Profile allProfiles[] = {Profile::MRA, Profile::COS,
                                   Profile::ODU, Profile::LAN};

/** Static description of a profile. */
struct ProfileInfo
{
    Profile profile;
    std::string_view name;     ///< "MRA", "COS", ...
    std::string_view linkDesc; ///< "OC-12c (PoS)"
    LinkType link;
    uint32_t paperPackets; ///< packet count reported in Table I
    uint32_t numHosts;     ///< distinct end hosts
    uint32_t meanFlowLen;  ///< mean packets per flow
    double pTcp;
    double pUdp;            ///< remainder is ICMP
    uint32_t numSubnets;    ///< >0: hosts clustered in /24 subnets
    bool nlanrRenumber;     ///< sequential 10.x addressing (NLANR)
};

/** Profile metadata lookup. */
const ProfileInfo &profileInfo(Profile profile);

/** Deterministic synthetic trace for one profile. */
class SyntheticTrace : public TraceSource
{
  public:
    /**
     * @param profile which Table I trace to imitate
     * @param count   number of packets to generate
     * @param seed    RNG seed (results are a pure function of
     *                profile, count, seed)
     */
    SyntheticTrace(Profile profile, uint32_t count, uint32_t seed = 1);

    std::optional<Packet> next() override;
    std::string name() const override
    {
        return std::string(info.name);
    }

    /** Number of packets this source will produce. */
    uint32_t count() const { return total; }

    const ProfileInfo &profile() const { return info; }

  private:
    struct Flow
    {
        uint32_t src;
        uint32_t dst;
        uint16_t srcPort;
        uint16_t dstPort;
        uint8_t proto;
        uint8_t ttl;
        uint32_t remaining;
    };

    /** Pick or synthesize an end-host address. */
    uint32_t hostAddr(uint32_t host_id);

    /** Apply NLANR-style sequential renumbering. */
    uint32_t renumber(uint32_t addr);

    Flow makeFlow();
    uint16_t packetSize(const Flow &flow);

    const ProfileInfo &info;
    Rng rng;
    uint32_t total;
    uint32_t emitted = 0;
    uint64_t clockUsec = 1'000'000'000ull;
    std::vector<Flow> active;
    std::unordered_map<uint32_t, uint32_t> renumberMap;
    uint32_t nextRenumbered = 0x0a000001; // 10.0.0.1
};

/** Bytes captured per packet (headers plus a little payload). */
constexpr uint16_t syntheticSnapLen = 96;

} // namespace pb::net

#endif // PB_NET_TRACEGEN_HH
