/**
 * @file
 * IPv4 / TCP / UDP header access and Internet checksum arithmetic.
 *
 * Headers are viewed in place over packet bytes (network byte
 * order), the way a network processor touches them.  The checksum
 * helpers implement RFC 1071 computation and the RFC 1624
 * incremental update used when a router decrements TTL.
 */

#ifndef PB_NET_IPV4_HH
#define PB_NET_IPV4_HH

#include <cstdint>

#include "common/byteorder.hh"
#include "common/hash.hh"
#include "net/packet.hh"

namespace pb::net
{

/** IP protocol numbers used by the workloads. */
enum class IpProto : uint8_t
{
    Icmp = 1,
    Tcp = 6,
    Udp = 17,
};

/** Byte offsets of IPv4 header fields (RFC 791). */
namespace ipv4
{

constexpr unsigned offVerIhl = 0;
constexpr unsigned offTos = 1;
constexpr unsigned offTotalLen = 2;
constexpr unsigned offIdent = 4;
constexpr unsigned offFlagsFrag = 6;
constexpr unsigned offTtl = 8;
constexpr unsigned offProto = 9;
constexpr unsigned offChecksum = 10;
constexpr unsigned offSrc = 12;
constexpr unsigned offDst = 16;
constexpr unsigned minHeaderLen = 20;

} // namespace ipv4

/**
 * Read-write view of an IPv4 header.  The view does not own the
 * bytes; it is a typed window over packet memory.
 */
class Ipv4View
{
  public:
    /** @param data pointer to the first byte of the IPv4 header. */
    explicit Ipv4View(uint8_t *data) : p(data) {}

    uint8_t version() const { return p[ipv4::offVerIhl] >> 4; }
    uint8_t ihl() const { return p[ipv4::offVerIhl] & 0xf; }
    uint8_t headerLen() const { return ihl() * 4; }
    uint16_t totalLen() const { return loadBe16(p + ipv4::offTotalLen); }
    uint8_t ttl() const { return p[ipv4::offTtl]; }
    uint8_t proto() const { return p[ipv4::offProto]; }
    uint16_t checksum() const { return loadBe16(p + ipv4::offChecksum); }
    uint32_t src() const { return loadBe32(p + ipv4::offSrc); }
    uint32_t dst() const { return loadBe32(p + ipv4::offDst); }
    /** Fragment offset in 8-byte units (0 for the first fragment). */
    uint16_t
    fragOffset() const
    {
        return loadBe16(p + ipv4::offFlagsFrag) & 0x1fff;
    }

    void
    setVersionIhl(uint8_t version, uint8_t ihl)
    {
        p[ipv4::offVerIhl] =
            static_cast<uint8_t>((version << 4) | (ihl & 0xf));
    }
    void setTotalLen(uint16_t v) { storeBe16(p + ipv4::offTotalLen, v); }
    void setIdent(uint16_t v) { storeBe16(p + ipv4::offIdent, v); }
    void setTtl(uint8_t v) { p[ipv4::offTtl] = v; }
    void setProto(uint8_t v) { p[ipv4::offProto] = v; }
    void setChecksum(uint16_t v) { storeBe16(p + ipv4::offChecksum, v); }
    void setSrc(uint32_t v) { storeBe32(p + ipv4::offSrc, v); }
    void setDst(uint32_t v) { storeBe32(p + ipv4::offDst, v); }

    /** Raw header bytes. */
    uint8_t *data() { return p; }
    const uint8_t *data() const { return p; }

  private:
    uint8_t *p;
};

/** Const view helper. */
class Ipv4ConstView
{
  public:
    explicit Ipv4ConstView(const uint8_t *data) : p(data) {}

    uint8_t version() const { return p[ipv4::offVerIhl] >> 4; }
    uint8_t ihl() const { return p[ipv4::offVerIhl] & 0xf; }
    uint8_t headerLen() const { return ihl() * 4; }
    uint16_t totalLen() const { return loadBe16(p + ipv4::offTotalLen); }
    uint8_t ttl() const { return p[ipv4::offTtl]; }
    uint8_t proto() const { return p[ipv4::offProto]; }
    uint16_t checksum() const { return loadBe16(p + ipv4::offChecksum); }
    uint32_t src() const { return loadBe32(p + ipv4::offSrc); }
    uint32_t dst() const { return loadBe32(p + ipv4::offDst); }
    /** Fragment offset in 8-byte units (0 for the first fragment). */
    uint16_t
    fragOffset() const
    {
        return loadBe16(p + ipv4::offFlagsFrag) & 0x1fff;
    }

  private:
    const uint8_t *p;
};

/** Byte offsets within a TCP/UDP header for the 5-tuple fields. */
namespace l4
{

constexpr unsigned offSrcPort = 0;
constexpr unsigned offDstPort = 2;

} // namespace l4

/**
 * RFC 1071 Internet checksum over @p len bytes (one's-complement sum
 * of big-endian 16-bit words, final complement).  Odd trailing byte
 * is padded with zero.
 */
uint16_t inetChecksum(const uint8_t *data, unsigned len);

/**
 * Verify an IPv4 header checksum: the checksum over the header
 * including the checksum field must be zero.
 * @return true if the checksum is valid
 */
bool verifyIpv4Checksum(const uint8_t *header, unsigned header_len);

/** Compute and install the header checksum (field zeroed first). */
void fillIpv4Checksum(uint8_t *header, unsigned header_len);

/**
 * RFC 1624 incremental checksum update: given the old checksum and
 * one 16-bit field changing from @p old_val to @p new_val, return the
 * updated checksum.  HC' = ~(~HC + ~m + m').
 */
uint16_t incrementalChecksum(uint16_t old_sum, uint16_t old_val,
                             uint16_t new_val);

/**
 * Parse the 5-tuple of @p packet.  Returns false for non-IPv4 or
 * truncated packets.
 */
struct FiveTuple
{
    uint32_t src = 0;
    uint32_t dst = 0;
    uint16_t srcPort = 0;
    uint16_t dstPort = 0;
    uint8_t proto = 0;

    bool operator==(const FiveTuple &) const = default;
};

bool parseFiveTuple(const Packet &packet, FiveTuple &tuple);

/**
 * Parse and flow-hash @p n packets in one pass: valid[i] reports
 * whether packets[i] parsed (parseFiveTuple semantics) and, when it
 * did, hash[i] == flowHash(its 5-tuple) — computed by the batched
 * SIMD kernel, bit-identical to the scalar form.  Entries with
 * valid[i] == false leave hash[i] unspecified.  The dispatcher's
 * batched front end (core/multicore.cc).
 */
void hashPacketBatch(const Packet *const *packets, unsigned n,
                     uint32_t *hash, bool *valid);

/**
 * The dispatcher's flow hash of a 5-tuple: the value that pins a
 * flow to an engine (core/multicore.hh) and keys its entry in the
 * live top-K flow table (obs/topk.hh).  Independent of the
 * applications' own bucket hashes to avoid correlated imbalance.
 */
constexpr uint32_t
flowHash(const FiveTuple &tuple)
{
    uint32_t ports = (static_cast<uint32_t>(tuple.srcPort) << 16) |
                     tuple.dstPort;
    return mix32(mix32(tuple.src, tuple.dst),
                 mix32(ports, tuple.proto));
}

/**
 * RFC 1812 forwarding verdict (host reference for the forwarding
 * applications): the checks a compliant router applies before the
 * routing lookup, in the order the applications apply them.
 */
enum class ForwardCheck
{
    Ok,              ///< eligible for the routing lookup
    BadHeader,       ///< not IPv4 or IHL < 5
    BadChecksum,     ///< header checksum invalid
    TtlExpired,      ///< TTL <= 1 (would generate ICMP time exceeded)
    MartianSource,   ///< source in 0.0.0.0/8 or 127.0.0.0/8
    MulticastDest,   ///< destination in 224.0.0.0/4 (not forwarded)
};

/** Apply the RFC 1812 ingress checks to @p packet. */
ForwardCheck rfc1812Check(const Packet &packet);

/**
 * Build a minimal IPv4 packet (20-byte header plus an 8-byte L4
 * stub and optional payload padding) for generators and tests.
 *
 * @param tuple       5-tuple to encode
 * @param total_len   total IP length (>= 28)
 * @param ttl         initial TTL
 * @param payload_fill byte used to pad the payload
 */
std::vector<uint8_t> buildIpv4Packet(const FiveTuple &tuple,
                                     uint16_t total_len, uint8_t ttl = 64,
                                     uint8_t payload_fill = 0);

} // namespace pb::net

#endif // PB_NET_IPV4_HH
