/**
 * @file
 * Abstract packet-trace interfaces.
 *
 * PacketBench consumes traces through TraceSource so that real
 * capture files (pcap, NLANR TSH) and synthetic generators are
 * interchangeable, and produces output traces through TraceSink
 * (the paper's write_packet_to_file()).
 */

#ifndef PB_NET_TRACE_HH
#define PB_NET_TRACE_HH

#include <optional>
#include <string>

#include "net/packet.hh"

namespace pb::net
{

/** A sequential source of packets. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Next packet, or nullopt at end of trace. */
    virtual std::optional<Packet> next() = 0;

    /** Human-readable trace name (for reports). */
    virtual std::string name() const = 0;
};

/** A sequential sink for packets. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one packet. */
    virtual void write(const Packet &packet) = 0;
};

} // namespace pb::net

#endif // PB_NET_TRACE_HH
