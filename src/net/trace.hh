/**
 * @file
 * Abstract packet-trace interfaces.
 *
 * PacketBench consumes traces through TraceSource so that real
 * capture files (pcap, NLANR TSH) and synthetic generators are
 * interchangeable, and produces output traces through TraceSink
 * (the paper's write_packet_to_file()).
 */

#ifndef PB_NET_TRACE_HH
#define PB_NET_TRACE_HH

#include <optional>
#include <string>

#include "common/logging.hh"
#include "net/packet.hh"

namespace pb::net
{

/** Malformed or unsupported capture file. */
class TraceFormatError : public Error
{
  public:
    explicit TraceFormatError(const std::string &msg) : Error(msg) {}
};

/**
 * The underlying stream failed (disk error, closed pipe).  Distinct
 * from TraceFormatError: the bytes were never readable at all, so
 * skip-and-count recovery does not apply.
 */
class TraceIoError : public Error
{
  public:
    explicit TraceIoError(const std::string &msg) : Error(msg) {}
};

/**
 * How a trace reader reacts to a malformed record.
 *
 * Real NLANR traces contain runt frames and truncated records; under
 * Skip a reader counts them ("trace.malformed") and resynchronizes
 * to the next record instead of abandoning the remaining millions of
 * packets.  Stream-level I/O errors always throw TraceIoError.
 */
enum class ReadRecovery : uint8_t
{
    Strict, ///< throw TraceFormatError on the first bad record
    Skip,   ///< skip and count bad records, continue reading
};

/** A sequential source of packets. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Next packet, or nullopt at end of trace. */
    virtual std::optional<Packet> next() = 0;

    /** Human-readable trace name (for reports). */
    virtual std::string name() const = 0;
};

/** A sequential sink for packets. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one packet. */
    virtual void write(const Packet &packet) = 0;
};

} // namespace pb::net

#endif // PB_NET_TRACE_HH
