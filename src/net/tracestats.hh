/**
 * @file
 * Trace inspection: aggregate statistics over a packet trace.
 *
 * PacketBench users need to know what a trace looks like before
 * characterizing applications on it (is it header-only? what
 * protocol mix? how many flows?).  TraceStats makes one pass over a
 * TraceSource and reports the paper's Table-I-style facts plus the
 * structure the workload results depend on.
 */

#ifndef PB_NET_TRACESTATS_HH
#define PB_NET_TRACESTATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>

#include "net/trace.hh"

namespace pb::net
{

/** Aggregate facts about one trace. */
struct TraceStats
{
    uint64_t packets = 0;
    uint64_t ipv4Packets = 0;
    uint64_t bytesOnWire = 0;
    uint64_t bytesCaptured = 0;
    uint32_t minWireLen = 0;
    uint32_t maxWireLen = 0;
    uint64_t firstTsUsec = 0;
    uint64_t lastTsUsec = 0;

    uint64_t tcp = 0;
    uint64_t udp = 0;
    uint64_t icmp = 0;
    uint64_t otherProto = 0;

    uint64_t distinctAddrs = 0;
    uint64_t distinctFlows = 0;

    /** Mean wire length, 0 for an empty trace. */
    double meanWireLen() const
    {
        return packets ? static_cast<double>(bytesOnWire) / packets
                       : 0.0;
    }

    /** Trace duration in seconds. */
    double
    durationSec() const
    {
        return lastTsUsec >= firstTsUsec
                   ? (lastTsUsec - firstTsUsec) / 1e6
                   : 0.0;
    }

    /** Render a human-readable report. */
    std::string report(const std::string &name) const;
};

/**
 * Collect statistics from @p source, consuming at most
 * @p max_packets packets (0 = unlimited).
 */
TraceStats collectTraceStats(TraceSource &source,
                             uint64_t max_packets = 0);

} // namespace pb::net

#endif // PB_NET_TRACESTATS_HH
