/**
 * @file
 * TSH format implementation.
 */

#include "tsh.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/byteorder.hh"
#include "net/ipv4.hh"
#include "obs/metrics.hh"
#include "obs/tracing.hh"

namespace pb::net
{

TshReader::TshReader(std::istream &input, std::string trace_name,
                     ReadRecovery recovery_)
    : in(input), traceName(std::move(trace_name)), recovery(recovery_)
{}

void
TshReader::malformedRecord(const std::string &msg)
{
    malformed++;
    PB_COUNTER("trace.malformed");
    if (recovery == ReadRecovery::Strict)
        throw TraceFormatError(msg);
    PB_LOG(Debug, "%s: skipping malformed record: %s",
           traceName.c_str(), msg.c_str());
}

std::optional<Packet>
TshReader::next()
{
    PB_SCOPED_TIMER("phase.trace_read_ns");
    PB_TRACE_SPAN("net", "trace.read");
    for (;;) {
        uint8_t rec[tshRecordLen];
        in.read(reinterpret_cast<char *>(rec), sizeof(rec));
        std::streamsize got = in.gcount();
        if (got == 0) {
            // A zero-byte read is a clean end of trace only on a
            // healthy stream at EOF; on a broken stream it is an I/O
            // error, not a "truncated record".
            if (in.bad() || !in.eof()) {
                throw TraceIoError(strprintf(
                    "%s: stream error reading TSH record #%llu",
                    traceName.c_str(),
                    static_cast<unsigned long long>(packetIndex)));
            }
            return std::nullopt;
        }
        if (static_cast<size_t>(got) != sizeof(rec)) {
            if (in.bad()) {
                throw TraceIoError(strprintf(
                    "%s: stream error mid-record #%llu",
                    traceName.c_str(),
                    static_cast<unsigned long long>(packetIndex)));
            }
            malformedRecord(strprintf(
                "truncated TSH record #%llu: got %zd of %zu bytes",
                static_cast<unsigned long long>(packetIndex), got,
                sizeof(rec)));
            return std::nullopt; // partial tail: nothing follows
        }

        uint32_t sec = loadBe32(rec);
        uint32_t usec = (static_cast<uint32_t>(rec[5]) << 16) |
                        (static_cast<uint32_t>(rec[6]) << 8) | rec[7];

        Packet packet;
        packet.tsUsec = static_cast<uint64_t>(sec) * 1'000'000 + usec;
        packet.bytes.assign(rec + 8, rec + tshRecordLen);
        packet.l3Offset = 0;

        Ipv4ConstView ip(packet.bytes.data());
        if (ip.version() != 4) {
            malformedRecord(strprintf(
                "TSH record #%llu does not contain an IPv4 header",
                static_cast<unsigned long long>(packetIndex)));
            // Fixed-size records resync trivially: read the next one.
            packetIndex++;
            continue;
        }
        packet.wireLen = ip.totalLen();
        packetIndex++;
        PB_COUNTER("trace.packets_read");
        PB_COUNTER_ADD("trace.bytes_read", packet.bytes.size());
        return packet;
    }
}

TshWriter::TshWriter(std::ostream &output) : out(output) {}

void
TshWriter::write(const Packet &packet)
{
    if (packet.l3Len() < ipv4::minHeaderLen)
        fatal("TshWriter: packet has no complete IPv4 header");

    uint8_t rec[tshRecordLen] = {};
    storeBe32(rec, static_cast<uint32_t>(packet.tsUsec / 1'000'000));
    uint32_t usec = static_cast<uint32_t>(packet.tsUsec % 1'000'000);
    rec[4] = 0; // interface number
    rec[5] = static_cast<uint8_t>(usec >> 16);
    rec[6] = static_cast<uint8_t>(usec >> 8);
    rec[7] = static_cast<uint8_t>(usec);

    size_t l3_avail = packet.l3Len();
    size_t copy_len = std::min<size_t>(l3_avail, 36);
    std::memcpy(rec + 8, packet.l3(), copy_len);
    out.write(reinterpret_cast<const char *>(rec), sizeof(rec));
    PB_COUNTER("trace.packets_written");
    if (!out)
        fatal("TSH write failed");
}

namespace
{

class OwningTshReader : public TraceSource
{
  public:
    OwningTshReader(const std::string &path, ReadRecovery recovery)
        : file(path, std::ios::binary)
    {
        if (!file)
            fatal("cannot open TSH file '%s'", path.c_str());
        reader = std::make_unique<TshReader>(file, path, recovery);
    }

    std::optional<Packet> next() override { return reader->next(); }
    std::string name() const override { return reader->name(); }

  private:
    std::ifstream file;
    std::unique_ptr<TshReader> reader;
};

} // namespace

std::unique_ptr<TraceSource>
openTshFile(const std::string &path, ReadRecovery recovery)
{
    return std::make_unique<OwningTshReader>(path, recovery);
}

} // namespace pb::net
