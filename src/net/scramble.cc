/**
 * @file
 * Feistel address scrambler implementation.
 */

#include "scramble.hh"

#include "common/hash.hh"
#include "net/ipv4.hh"

namespace pb::net
{

uint32_t
AddressScrambler::scramble(uint32_t addr) const
{
    uint16_t left = static_cast<uint16_t>(addr >> 16);
    uint16_t right = static_cast<uint16_t>(addr);
    for (int round = 0; round < rounds; round++) {
        uint16_t f = static_cast<uint16_t>(
            prf32(key + static_cast<uint32_t>(round), right));
        uint16_t new_right = static_cast<uint16_t>(left ^ f);
        left = right;
        right = new_right;
    }
    return (static_cast<uint32_t>(left) << 16) | right;
}

uint32_t
AddressScrambler::unscramble(uint32_t addr) const
{
    uint16_t left = static_cast<uint16_t>(addr >> 16);
    uint16_t right = static_cast<uint16_t>(addr);
    for (int round = rounds - 1; round >= 0; round--) {
        uint16_t f = static_cast<uint16_t>(
            prf32(key + static_cast<uint32_t>(round), left));
        uint16_t new_left = static_cast<uint16_t>(right ^ f);
        right = left;
        left = new_left;
    }
    return (static_cast<uint32_t>(left) << 16) | right;
}

void
AddressScrambler::scramblePacket(Packet &packet) const
{
    if (packet.l3Len() < ipv4::minHeaderLen)
        return;
    Ipv4View ip(packet.l3());
    if (ip.version() != 4)
        return;
    ip.setSrc(scramble(ip.src()));
    ip.setDst(scramble(ip.dst()));
    unsigned hlen = ip.headerLen();
    if (hlen >= ipv4::minHeaderLen && hlen <= packet.l3Len())
        fillIpv4Checksum(packet.l3(), hlen);
}

} // namespace pb::net
