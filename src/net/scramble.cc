/**
 * @file
 * Feistel address scrambler implementation.
 */

#include "scramble.hh"

#include "common/hash.hh"
#include "net/ipv4.hh"
#include "net/simd/kernels.hh"

namespace pb::net
{

uint32_t
AddressScrambler::scramble(uint32_t addr) const
{
    uint16_t left = static_cast<uint16_t>(addr >> 16);
    uint16_t right = static_cast<uint16_t>(addr);
    for (int round = 0; round < rounds; round++) {
        uint16_t f = static_cast<uint16_t>(
            prf32(key + static_cast<uint32_t>(round), right));
        uint16_t new_right = static_cast<uint16_t>(left ^ f);
        left = right;
        right = new_right;
    }
    return (static_cast<uint32_t>(left) << 16) | right;
}

void
AddressScrambler::scrambleBatch(const uint32_t *in, uint32_t *out,
                                unsigned n) const
{
    simd::kernels().feistelBatch(in, out, n, key, rounds);
}

uint32_t
AddressScrambler::unscramble(uint32_t addr) const
{
    uint16_t left = static_cast<uint16_t>(addr >> 16);
    uint16_t right = static_cast<uint16_t>(addr);
    for (int round = rounds - 1; round >= 0; round--) {
        uint16_t f = static_cast<uint16_t>(
            prf32(key + static_cast<uint32_t>(round), left));
        uint16_t new_left = static_cast<uint16_t>(right ^ f);
        right = left;
        left = new_left;
    }
    return (static_cast<uint32_t>(left) << 16) | right;
}

void
AddressScrambler::scramblePacket(Packet &packet) const
{
    if (packet.l3Len() < ipv4::minHeaderLen)
        return;
    Ipv4View ip(packet.l3());
    if (ip.version() != 4)
        return;

    // Decide up front whether the incoming checksum verified: a
    // full fillIpv4Checksum() after scrambling would also *repair* a
    // checksum that arrived broken, silently converting packets the
    // forwarding path must drop into forwardable ones.
    unsigned hlen = ip.headerLen();
    bool checksum_ok = hlen >= ipv4::minHeaderLen &&
                       hlen <= packet.l3Len() &&
                       verifyIpv4Checksum(packet.l3(), hlen);

    uint32_t old_src = ip.src();
    uint32_t old_dst = ip.dst();
    uint32_t addrs[2] = {old_src, old_dst};
    scrambleBatch(addrs, addrs, 2);
    ip.setSrc(addrs[0]);
    ip.setDst(addrs[1]);

    if (!checksum_ok)
        return; // leave an invalid checksum invalid
    // RFC 1624 incremental update over the four rewritten halfwords
    // keeps the checksum valid without touching the option bytes.
    uint16_t sum = ip.checksum();
    sum = incrementalChecksum(sum, static_cast<uint16_t>(old_src >> 16),
                              static_cast<uint16_t>(addrs[0] >> 16));
    sum = incrementalChecksum(sum, static_cast<uint16_t>(old_src),
                              static_cast<uint16_t>(addrs[0]));
    sum = incrementalChecksum(sum, static_cast<uint16_t>(old_dst >> 16),
                              static_cast<uint16_t>(addrs[1] >> 16));
    sum = incrementalChecksum(sum, static_cast<uint16_t>(old_dst),
                              static_cast<uint16_t>(addrs[1]));
    ip.setChecksum(sum);
}

} // namespace pb::net
