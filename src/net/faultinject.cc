/**
 * @file
 * Fault-injecting trace source implementation.
 */

#include "faultinject.hh"

#include <algorithm>

#include "common/hash.hh"
#include "obs/metrics.hh"

namespace pb::net
{

const char *
injectedFaultName(InjectedFault kind)
{
    switch (kind) {
      case InjectedFault::None:
        return "none";
      case InjectedFault::BitFlip:
        return "bit-flip";
      case InjectedFault::Truncate:
        return "truncate";
      case InjectedFault::HeaderCorrupt:
        return "header-corrupt";
      case InjectedFault::Oversize:
        return "oversize";
      case InjectedFault::PayloadBloat:
        return "payload-bloat";
    }
    return "unknown";
}

FaultInjectingTraceSource::FaultInjectingTraceSource(
    TraceSource &upstream_, FaultInjectConfig cfg_)
    : upstream(upstream_), cfg(cfg_),
      rng(mix32(cfg_.seed, 0xfa017))
{
}

InjectedFault
FaultInjectingTraceSource::pickKind()
{
    InjectedFault enabled[5];
    uint32_t n = 0;
    if (cfg.bitFlips)
        enabled[n++] = InjectedFault::BitFlip;
    if (cfg.truncation)
        enabled[n++] = InjectedFault::Truncate;
    if (cfg.headerCorruption)
        enabled[n++] = InjectedFault::HeaderCorrupt;
    if (cfg.oversize)
        enabled[n++] = InjectedFault::Oversize;
    if (cfg.payloadBloat)
        enabled[n++] = InjectedFault::PayloadBloat;
    if (n == 0)
        return InjectedFault::None;
    return enabled[rng.below(n)];
}

void
FaultInjectingTraceSource::corrupt(Packet &packet, InjectedFault kind)
{
    switch (kind) {
      case InjectedFault::None:
        break;
      case InjectedFault::BitFlip: {
        if (packet.bytes.empty())
            break;
        uint32_t flips = 1 + rng.below(8);
        for (uint32_t i = 0; i < flips; i++) {
            uint32_t pos = rng.below(
                static_cast<uint32_t>(packet.bytes.size()));
            packet.bytes[pos] ^=
                static_cast<uint8_t>(1u << rng.below(8));
        }
        break;
      }
      case InjectedFault::Truncate: {
        // Keep at most the link-layer bytes: the capture ends before
        // (or at) the L3 offset, so l3Len() is zero — the runt-frame
        // shape real Ethernet traces contain.
        uint32_t keep = rng.below(packet.l3Offset + 1u);
        packet.bytes.resize(std::min<size_t>(packet.bytes.size(),
                                             keep));
        break;
      }
      case InjectedFault::HeaderCorrupt: {
        if (packet.l3Len() == 0)
            break;
        uint8_t *l3 = packet.l3();
        // Garble version/IHL, total length, and protocol — the
        // fields parsers trust first.
        l3[0] = static_cast<uint8_t>(rng.below(256));
        if (packet.l3Len() >= 4) {
            l3[2] = static_cast<uint8_t>(rng.below(256));
            l3[3] = static_cast<uint8_t>(rng.below(256));
        }
        if (packet.l3Len() >= 10)
            l3[9] = static_cast<uint8_t>(rng.below(256));
        break;
      }
      case InjectedFault::Oversize:
        packet.bytes.resize(packet.l3Offset + cfg.oversizeLen, 0xee);
        break;
      case InjectedFault::PayloadBloat:
        packet.bytes.resize(packet.l3Offset + cfg.bloatLen, 0x5a);
        break;
    }
}

std::optional<Packet>
FaultInjectingTraceSource::next()
{
    auto packet = upstream.next();
    if (!packet) {
        last = InjectedFault::None;
        return packet;
    }
    index++;
    last = InjectedFault::None;
    if (cfg.period != 0 && index % cfg.period == 0) {
        InjectedFault kind = pickKind();
        if (kind != InjectedFault::None) {
            corrupt(*packet, kind);
            last = kind;
            injected++;
            PB_COUNTER("trace.injected_faults");
            if (cfg.keepInjected)
                kept.push_back(*packet);
        }
    }
    return packet;
}

} // namespace pb::net
