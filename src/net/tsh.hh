/**
 * @file
 * NLANR Time Sequenced Headers (TSH) trace format.
 *
 * The paper's MRA/COS/ODU traces come from the NLANR PMA repository
 * in TSH format: fixed 44-byte records with no file header.
 *
 *   bytes  0..3   timestamp, seconds (big endian)
 *   byte   4      interface number
 *   bytes  5..7   timestamp, microseconds (24-bit big endian)
 *   bytes  8..27  IPv4 header (20 bytes, network order)
 *   bytes 28..43  first 16 bytes of the TCP header
 *
 * TSH captures only headers, so the reconstructed Packet carries
 * 36 bytes of L3 data; wireLen comes from the IP total-length field.
 */

#ifndef PB_NET_TSH_HH
#define PB_NET_TSH_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "net/trace.hh"

namespace pb::net
{

/** Size of one TSH record in bytes. */
constexpr size_t tshRecordLen = 44;

/**
 * Streaming TSH reader.
 *
 * TSH has no framing beyond its fixed 44-byte records, so recovery
 * from a malformed record (non-IPv4 payload, truncated tail) is
 * trivial: under ReadRecovery::Skip the reader counts it in
 * "trace.malformed" and reads the next record.  Stream-level I/O
 * errors throw TraceIoError, never a misleading "truncated record".
 */
class TshReader : public TraceSource
{
  public:
    /**
     * @param input      stream positioned at the first record
     * @param trace_name name used in reports and error messages
     * @param recovery   how to react to malformed records
     */
    TshReader(std::istream &input, std::string trace_name = "tsh",
              ReadRecovery recovery = ReadRecovery::Strict);

    std::optional<Packet> next() override;
    std::string name() const override { return traceName; }

    /** Malformed records skipped so far (ReadRecovery::Skip). */
    uint64_t malformedRecords() const { return malformed; }

  private:
    /** Count one malformed record; throws under Strict. */
    void malformedRecord(const std::string &msg);

    std::istream &in;
    std::string traceName;
    ReadRecovery recovery;
    uint64_t packetIndex = 0;
    uint64_t malformed = 0;
};

/** Streaming TSH writer (used for round-trip tests and tooling). */
class TshWriter : public TraceSink
{
  public:
    explicit TshWriter(std::ostream &output);

    /**
     * Append one packet.  The packet must carry at least a 20-byte
     * IPv4 header; L4 bytes beyond what is captured are zero-filled.
     */
    void write(const Packet &packet) override;

  private:
    std::ostream &out;
};

/** Open a TSH file for reading (owns the stream). */
std::unique_ptr<TraceSource>
openTshFile(const std::string &path,
            ReadRecovery recovery = ReadRecovery::Strict);

} // namespace pb::net

#endif // PB_NET_TSH_HH
