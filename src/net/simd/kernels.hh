/**
 * @file
 * Runtime-dispatched SIMD kernels for the hot per-packet host work.
 *
 * The host framework's per-packet arithmetic — Internet checksum
 * verify/repair, 5-tuple flow hashing, the Feistel address-scrambler
 * rounds, and packet-memory clearing — used to be scalar.  This layer
 * provides those kernels behind one header with three backends:
 *
 *  - generic: portable scalar C++, the *reference* implementation —
 *    every other backend is pinned bit-identical to it by the
 *    differential suite in tests/net/test_simd.cc;
 *  - sse42:   128-bit vectors (SSE4.1/SSE4.2 instructions);
 *  - avx2:    256-bit vectors.
 *
 * The backend is selected once at runtime by CPUID, overridable with
 * the PB_SIMD environment variable (generic|sse42|avx2; an
 * unsupported request warns and falls back to the best available
 * backend, so a forced CI leg is safe on any host).  Callers obtain
 * the resolved function table with kernels(); benchmarks and
 * differential tests can address any supported backend directly with
 * backendTable().
 *
 * Batch kernels take structure-of-arrays inputs (plain uint32_t
 * lanes) rather than net::FiveTuple so this library sits below
 * pb_net and pb_sim in the link graph: pb_net wraps the AoS->SoA
 * conversion (net::hashPacketBatch), pb_sim routes Memory::reset()
 * dirty-extent clearing through clearBytes.
 */

#ifndef PB_NET_SIMD_KERNELS_HH
#define PB_NET_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace pb::net::simd
{

/** Kernel backend, in increasing order of vector width. */
enum class Backend : uint8_t
{
    Generic = 0,
    Sse42 = 1,
    Avx2 = 2,
};

constexpr unsigned numBackends = 3;

/** Stable lower-case name ("generic", "sse42", "avx2"). */
std::string_view backendName(Backend backend);

/** Parse a backend name (as accepted in PB_SIMD). */
std::optional<Backend> parseBackendName(std::string_view name);

/**
 * One backend's kernel set.  All entries are non-null for every
 * supported backend, and every entry computes bit-identical results
 * to the Generic table's entry on every input.
 */
struct KernelTable
{
    /**
     * RFC 1071 Internet checksum over @p len bytes of big-endian
     * 16-bit words (odd trailing byte zero-padded), fully folded and
     * complemented — the value net::inetChecksum returns.
     */
    uint16_t (*checksum)(const uint8_t *data, unsigned len);

    /**
     * Checksum @p n buffers in one call: out[i] =
     * checksum(data[i], len[i]).  The batched form the dispatcher
     * and benches use; lets a backend pipeline independent headers.
     */
    void (*checksumBatch)(const uint8_t *const *data,
                          const unsigned *len, uint16_t *out,
                          unsigned n);

    /**
     * The dispatcher's 5-tuple flow hash over SoA lanes:
     * out[i] = mix32(mix32(src[i], dst[i]), mix32(ports[i],
     * proto[i])) — bit-identical to net::flowHash with ports packed
     * as (srcPort << 16) | dstPort.
     */
    void (*flowHashBatch)(const uint32_t *src, const uint32_t *dst,
                          const uint32_t *ports,
                          const uint32_t *proto, uint32_t *out,
                          unsigned n);

    /**
     * Feistel scrambler: out[i] = AddressScrambler(key).scramble
     * (in[i]) for @p rounds rounds (net/scramble.hh documents the
     * network).  In-place (out == in) is allowed.
     */
    void (*feistelBatch)(const uint32_t *in, uint32_t *out,
                         unsigned n, uint32_t key, unsigned rounds);

    /** Zero @p len bytes at @p p (packet-memory clear). */
    void (*clearBytes)(uint8_t *p, size_t len);
};

/** Is @p backend runnable on this host? Generic always is. */
bool backendSupported(Backend backend);

/** Best backend this host supports (ignores PB_SIMD). */
Backend bestSupportedBackend();

/**
 * The backend serving this process: the best supported one, unless
 * PB_SIMD forces another.  Resolved once, logged once.
 */
Backend activeBackend();

/**
 * Kernel table of @p backend.  fatal() when the backend is not
 * supported on this host — check backendSupported() first when
 * iterating (benches, differential tests).
 */
const KernelTable &backendTable(Backend backend);

/** Kernel table of activeBackend(). */
const KernelTable &kernels();

namespace detail
{

/** Resolve PB_SIMD against what the host supports (testable core). */
Backend resolveBackend(const char *env_value, Backend best);

} // namespace detail

} // namespace pb::net::simd

#endif // PB_NET_SIMD_KERNELS_HH
