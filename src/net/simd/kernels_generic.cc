/**
 * @file
 * Generic (portable scalar) kernel backend — the reference every
 * vector backend is pinned against.
 */

#include <cstring>

#include "net/simd/kernels.hh"
#include "net/simd/kernels_impl.hh"

namespace pb::net::simd
{

namespace
{

uint16_t
checksumGeneric(const uint8_t *data, unsigned len)
{
    return detail::scalarChecksum(data, len);
}

void
checksumBatchGeneric(const uint8_t *const *data, const unsigned *len,
                     uint16_t *out, unsigned n)
{
    for (unsigned i = 0; i < n; i++)
        out[i] = detail::scalarChecksum(data[i], len[i]);
}

void
flowHashBatchGeneric(const uint32_t *src, const uint32_t *dst,
                     const uint32_t *ports, const uint32_t *proto,
                     uint32_t *out, unsigned n)
{
    for (unsigned i = 0; i < n; i++)
        out[i] = detail::scalarFlowHash(src[i], dst[i], ports[i],
                                        proto[i]);
}

void
feistelBatchGeneric(const uint32_t *in, uint32_t *out, unsigned n,
                    uint32_t key, unsigned rounds)
{
    for (unsigned i = 0; i < n; i++)
        out[i] = detail::scalarFeistel(in[i], key, rounds);
}

void
clearBytesGeneric(uint8_t *p, size_t len)
{
    if (len)
        std::memset(p, 0, len);
}

} // namespace

const KernelTable genericKernels = {
    checksumGeneric,      checksumBatchGeneric,
    flowHashBatchGeneric, feistelBatchGeneric,
    clearBytesGeneric,
};

} // namespace pb::net::simd
