/**
 * @file
 * Internal helpers shared by the SIMD kernel backends.
 *
 * Two checksum formulations live here:
 *
 *  - the big-endian scalar reference (scalarChecksum), byte-for-byte
 *    the historical net::inetChecksum loop, and
 *  - the little-endian accumulation the vector backends use.  The
 *    Internet checksum is endian-symmetric (RFC 1071 §2): summing
 *    native little-endian 16-bit words and byte-swapping the folded
 *    result yields exactly the big-endian sum, because a byte swap
 *    is multiplication by 256 modulo 0xffff, which commutes with
 *    one's-complement addition.  finishLeSum() performs that fold +
 *    swap + complement; the differential suite pins the equivalence
 *    on every length and alignment.
 *
 * Not installed: include only from src/net/simd/ sources.
 */

#ifndef PB_NET_SIMD_KERNELS_IMPL_HH
#define PB_NET_SIMD_KERNELS_IMPL_HH

#include <cstdint>

#include "common/byteorder.hh"
#include "common/hash.hh"
#include "net/simd/kernels.hh"

namespace pb::net::simd
{

/** Backend tables, defined one per kernels_*.cc. */
extern const KernelTable genericKernels;
#if defined(__x86_64__) || defined(__i386__)
extern const KernelTable sse42Kernels;
extern const KernelTable avx2Kernels;
#endif

} // namespace pb::net::simd

namespace pb::net::simd::detail
{

/**
 * Big-endian scalar Internet checksum (the reference kernel).  The
 * accumulator is 64-bit — the historical 32-bit loop silently
 * dropped carries past ~2^17 bytes of 0xffff words; for every
 * header- or packet-sized input the two are bit-identical.
 */
inline uint16_t
scalarChecksum(const uint8_t *data, unsigned len)
{
    uint64_t sum = 0;
    unsigned i = 0;
    for (; i + 1 < len; i += 2)
        sum += loadBe16(data + i);
    if (i < len)
        sum += static_cast<uint32_t>(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<uint16_t>(~sum);
}

/**
 * Add the little-endian 16-bit words of [data, data+len) to @p sum.
 * @p data must start at an even word offset of the buffer being
 * checksummed (vector backends hand over chunk-aligned tails).
 */
inline uint64_t
leSumTail(uint64_t sum, const uint8_t *data, unsigned len)
{
    unsigned i = 0;
    for (; i + 1 < len; i += 2)
        sum += loadLe16(data + i);
    if (i < len)
        sum += data[i]; // odd byte: low half of an LE word
    return sum;
}

/** Fold a little-endian word sum and return the big-endian result. */
inline uint16_t
finishLeSum(uint64_t sum)
{
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<uint16_t>(
        ~bswap16(static_cast<uint16_t>(sum)));
}

/** One scalar flow-hash lane (net::flowHash's formula). */
inline uint32_t
scalarFlowHash(uint32_t src, uint32_t dst, uint32_t ports,
               uint32_t proto)
{
    return mix32(mix32(src, dst), mix32(ports, proto));
}

/** One scalar Feistel lane (AddressScrambler::scramble's network). */
inline uint32_t
scalarFeistel(uint32_t addr, uint32_t key, unsigned rounds)
{
    uint16_t left = static_cast<uint16_t>(addr >> 16);
    uint16_t right = static_cast<uint16_t>(addr);
    for (unsigned round = 0; round < rounds; round++) {
        uint16_t f = static_cast<uint16_t>(prf32(key + round, right));
        uint16_t new_right = static_cast<uint16_t>(left ^ f);
        left = right;
        right = new_right;
    }
    return (static_cast<uint32_t>(left) << 16) | right;
}

} // namespace pb::net::simd::detail

#endif // PB_NET_SIMD_KERNELS_IMPL_HH
