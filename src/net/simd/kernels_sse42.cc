/**
 * @file
 * SSE4.2 kernel backend (128-bit vectors).  Compiled with -msse4.2;
 * only reachable through the dispatch table after a CPUID check, so
 * no instruction here executes on a host without SSE4.2.
 *
 * Bit-identity with the generic backend:
 *  - checksum: little-endian lane accumulation + finishLeSum (the
 *    endian-symmetry argument in kernels_impl.hh);
 *  - flow hash / Feistel: the mix32 pipeline is plain 32-bit integer
 *    arithmetic (xor, shift, mullo), identical per lane.
 */

#if defined(__x86_64__) || defined(__i386__)

#include <algorithm>
#include <cstring>
#include <smmintrin.h>

#include "net/simd/kernels_impl.hh"

namespace pb::net::simd
{

namespace
{

/** Horizontal sum of four u32 lanes into a u64. */
inline uint64_t
hsum32(__m128i v)
{
    uint64_t lanes[2];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(lanes),
                     _mm_add_epi64(_mm_unpacklo_epi32(v, _mm_setzero_si128()),
                                   _mm_unpackhi_epi32(v, _mm_setzero_si128())));
    return lanes[0] + lanes[1];
}

uint16_t
checksumSse42(const uint8_t *data, unsigned len)
{
    uint64_t sum = 0;
    unsigned i = 0;
    while (len - i >= 16) {
        // Drain the 32-bit lane accumulator well before it can wrap
        // (each step adds <= 2 * 0xffff per lane).
        unsigned end = i + std::min<unsigned>(len - i, 1u << 18);
        __m128i acc = _mm_setzero_si128();
        for (; end - i >= 16; i += 16) {
            __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + i));
            acc = _mm_add_epi32(acc, _mm_cvtepu16_epi32(v));
            acc = _mm_add_epi32(
                acc, _mm_cvtepu16_epi32(_mm_srli_si128(v, 8)));
        }
        sum += hsum32(acc);
    }
    sum = detail::leSumTail(sum, data + i, len - i);
    return detail::finishLeSum(sum);
}

void
checksumBatchSse42(const uint8_t *const *data, const unsigned *len,
                   uint16_t *out, unsigned n)
{
    for (unsigned i = 0; i < n; i++)
        out[i] = checksumSse42(data[i], len[i]);
}

/** mix32 (murmur3 finalizer), four lanes. */
inline __m128i
mix32v(__m128i x)
{
    x = _mm_xor_si128(x, _mm_srli_epi32(x, 16));
    x = _mm_mullo_epi32(
        x, _mm_set1_epi32(static_cast<int>(0x85ebca6bu)));
    x = _mm_xor_si128(x, _mm_srli_epi32(x, 13));
    x = _mm_mullo_epi32(
        x, _mm_set1_epi32(static_cast<int>(0xc2b2ae35u)));
    x = _mm_xor_si128(x, _mm_srli_epi32(x, 16));
    return x;
}

/** Two-argument mix32(a, b), four lanes. */
inline __m128i
mix32v2(__m128i a, __m128i b)
{
    __m128i t = _mm_add_epi32(
        mix32v(a), _mm_set1_epi32(static_cast<int>(0x9e3779b9u)));
    t = _mm_add_epi32(t, _mm_slli_epi32(b, 6));
    t = _mm_add_epi32(t, _mm_srli_epi32(b, 2));
    t = _mm_add_epi32(t, b);
    return mix32v(t);
}

/** prf32(key, x), four lanes with a scalar key. */
inline __m128i
prf32v(uint32_t key, __m128i x)
{
    __m128i t = _mm_xor_si128(
        x, _mm_set1_epi32(static_cast<int>(key * 0x9e3779b9u)));
    t = mix32v(t);
    t = _mm_add_epi32(t, _mm_set1_epi32(static_cast<int>(key)));
    return mix32v(t);
}

void
flowHashBatchSse42(const uint32_t *src, const uint32_t *dst,
                   const uint32_t *ports, const uint32_t *proto,
                   uint32_t *out, unsigned n)
{
    unsigned i = 0;
    for (; n - i >= 4; i += 4) {
        __m128i vs = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        __m128i vd = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        __m128i vp = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(ports + i));
        __m128i vr = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(proto + i));
        __m128i h = mix32v2(mix32v2(vs, vd), mix32v2(vp, vr));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), h);
    }
    for (; i < n; i++)
        out[i] = detail::scalarFlowHash(src[i], dst[i], ports[i],
                                        proto[i]);
}

void
feistelBatchSse42(const uint32_t *in, uint32_t *out, unsigned n,
                  uint32_t key, unsigned rounds)
{
    const __m128i mask16 = _mm_set1_epi32(0xffff);
    unsigned i = 0;
    for (; n - i >= 4; i += 4) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + i));
        __m128i left = _mm_srli_epi32(v, 16);
        __m128i right = _mm_and_si128(v, mask16);
        for (unsigned round = 0; round < rounds; round++) {
            __m128i f =
                _mm_and_si128(prf32v(key + round, right), mask16);
            __m128i new_right = _mm_xor_si128(left, f);
            left = right;
            right = new_right;
        }
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + i),
            _mm_or_si128(_mm_slli_epi32(left, 16), right));
    }
    for (; i < n; i++)
        out[i] = detail::scalarFeistel(in[i], key, rounds);
}

void
clearBytesSse42(uint8_t *p, size_t len)
{
    // Large clears: libc memset (ERMS/rep-stos paths) wins; the
    // unrolled stores only pay off on short dirty extents where the
    // call overhead dominates.
    if (len >= 512) {
        std::memset(p, 0, len);
        return;
    }
    const __m128i zero = _mm_setzero_si128();
    while (len >= 64) {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), zero);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 16), zero);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 32), zero);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 48), zero);
        p += 64;
        len -= 64;
    }
    while (len >= 16) {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), zero);
        p += 16;
        len -= 16;
    }
    if (len)
        std::memset(p, 0, len);
}

} // namespace

const KernelTable sse42Kernels = {
    checksumSse42,      checksumBatchSse42, flowHashBatchSse42,
    feistelBatchSse42,  clearBytesSse42,
};

} // namespace pb::net::simd

#endif // x86
