/**
 * @file
 * AVX2 kernel backend (256-bit vectors).  Compiled with -mavx2; only
 * reachable through the dispatch table after a CPUID check.  Same
 * bit-identity arguments as the SSE4.2 backend (kernels_sse42.cc),
 * with twice the lanes.
 */

#if defined(__x86_64__) || defined(__i386__)

#include <algorithm>
#include <cstring>
#include <immintrin.h>

#include "net/simd/kernels_impl.hh"

namespace pb::net::simd
{

namespace
{

/** Horizontal sum of eight u32 lanes into a u64. */
inline uint64_t
hsum32(__m256i v)
{
    __m256i wide = _mm256_add_epi64(
        _mm256_unpacklo_epi32(v, _mm256_setzero_si256()),
        _mm256_unpackhi_epi32(v, _mm256_setzero_si256()));
    uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), wide);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

uint16_t
checksumAvx2(const uint8_t *data, unsigned len)
{
    uint64_t sum = 0;
    unsigned i = 0;
    while (len - i >= 32) {
        // Drain the 32-bit lanes well before they can wrap.
        unsigned end = i + std::min<unsigned>(len - i, 1u << 18);
        __m256i acc = _mm256_setzero_si256();
        for (; end - i >= 32; i += 32) {
            __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(data + i));
            acc = _mm256_add_epi32(
                acc, _mm256_cvtepu16_epi32(
                         _mm256_castsi256_si128(v)));
            acc = _mm256_add_epi32(
                acc, _mm256_cvtepu16_epi32(
                         _mm256_extracti128_si256(v, 1)));
        }
        sum += hsum32(acc);
    }
    if (len - i >= 16) {
        // One 128-bit step so a 20-byte header still vectorizes.
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + i));
        sum += hsum32(_mm256_add_epi32(
            _mm256_cvtepu16_epi32(v), _mm256_setzero_si256()));
        i += 16;
    }
    sum = detail::leSumTail(sum, data + i, len - i);
    return detail::finishLeSum(sum);
}

void
checksumBatchAvx2(const uint8_t *const *data, const unsigned *len,
                  uint16_t *out, unsigned n)
{
    for (unsigned i = 0; i < n; i++)
        out[i] = checksumAvx2(data[i], len[i]);
}

/** mix32 (murmur3 finalizer), eight lanes. */
inline __m256i
mix32v(__m256i x)
{
    x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 16));
    x = _mm256_mullo_epi32(
        x, _mm256_set1_epi32(static_cast<int>(0x85ebca6bu)));
    x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 13));
    x = _mm256_mullo_epi32(
        x, _mm256_set1_epi32(static_cast<int>(0xc2b2ae35u)));
    x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 16));
    return x;
}

/** Two-argument mix32(a, b), eight lanes. */
inline __m256i
mix32v2(__m256i a, __m256i b)
{
    __m256i t = _mm256_add_epi32(
        mix32v(a),
        _mm256_set1_epi32(static_cast<int>(0x9e3779b9u)));
    t = _mm256_add_epi32(t, _mm256_slli_epi32(b, 6));
    t = _mm256_add_epi32(t, _mm256_srli_epi32(b, 2));
    t = _mm256_add_epi32(t, b);
    return mix32v(t);
}

/** prf32(key, x), eight lanes with a scalar key. */
inline __m256i
prf32v(uint32_t key, __m256i x)
{
    __m256i t = _mm256_xor_si256(
        x, _mm256_set1_epi32(static_cast<int>(key * 0x9e3779b9u)));
    t = mix32v(t);
    t = _mm256_add_epi32(t,
                         _mm256_set1_epi32(static_cast<int>(key)));
    return mix32v(t);
}

void
flowHashBatchAvx2(const uint32_t *src, const uint32_t *dst,
                  const uint32_t *ports, const uint32_t *proto,
                  uint32_t *out, unsigned n)
{
    unsigned i = 0;
    for (; n - i >= 8; i += 8) {
        __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i vd = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        __m256i vp = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ports + i));
        __m256i vr = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(proto + i));
        __m256i h = mix32v2(mix32v2(vs, vd), mix32v2(vp, vr));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), h);
    }
    for (; i < n; i++)
        out[i] = detail::scalarFlowHash(src[i], dst[i], ports[i],
                                        proto[i]);
}

void
feistelBatchAvx2(const uint32_t *in, uint32_t *out, unsigned n,
                 uint32_t key, unsigned rounds)
{
    const __m256i mask16 = _mm256_set1_epi32(0xffff);
    unsigned i = 0;
    for (; n - i >= 8; i += 8) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        __m256i left = _mm256_srli_epi32(v, 16);
        __m256i right = _mm256_and_si256(v, mask16);
        for (unsigned round = 0; round < rounds; round++) {
            __m256i f = _mm256_and_si256(prf32v(key + round, right),
                                         mask16);
            __m256i new_right = _mm256_xor_si256(left, f);
            left = right;
            right = new_right;
        }
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + i),
            _mm256_or_si256(_mm256_slli_epi32(left, 16), right));
    }
    for (; i < n; i++)
        out[i] = detail::scalarFeistel(in[i], key, rounds);
}

void
clearBytesAvx2(uint8_t *p, size_t len)
{
    // Large clears: libc memset (ERMS/rep-stos paths) wins; the
    // unrolled stores only pay off on short dirty extents where the
    // call overhead dominates.
    if (len >= 512) {
        std::memset(p, 0, len);
        return;
    }
    const __m256i zero = _mm256_setzero_si256();
    while (len >= 128) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), zero);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 32),
                            zero);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 64),
                            zero);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 96),
                            zero);
        p += 128;
        len -= 128;
    }
    while (len >= 32) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), zero);
        p += 32;
        len -= 32;
    }
    if (len)
        std::memset(p, 0, len);
}

} // namespace

const KernelTable avx2Kernels = {
    checksumAvx2,     checksumBatchAvx2, flowHashBatchAvx2,
    feistelBatchAvx2, clearBytesAvx2,
};

} // namespace pb::net::simd

#endif // x86
