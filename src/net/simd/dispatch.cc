/**
 * @file
 * Runtime backend selection: CPUID detection, the PB_SIMD override,
 * and the resolved kernel table.
 */

#include <cstdlib>

#include "common/logging.hh"
#include "net/simd/kernels_impl.hh"

namespace pb::net::simd
{

std::string_view
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Generic:
        return "generic";
      case Backend::Sse42:
        return "sse42";
      case Backend::Avx2:
        return "avx2";
    }
    return "generic";
}

std::optional<Backend>
parseBackendName(std::string_view name)
{
    if (name == "generic")
        return Backend::Generic;
    if (name == "sse42")
        return Backend::Sse42;
    if (name == "avx2")
        return Backend::Avx2;
    return std::nullopt;
}

bool
backendSupported(Backend backend)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (backend) {
      case Backend::Generic:
        return true;
      case Backend::Sse42:
        return __builtin_cpu_supports("sse4.2") != 0;
      case Backend::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
    }
    return false;
#else
    return backend == Backend::Generic;
#endif
}

Backend
bestSupportedBackend()
{
    if (backendSupported(Backend::Avx2))
        return Backend::Avx2;
    if (backendSupported(Backend::Sse42))
        return Backend::Sse42;
    return Backend::Generic;
}

namespace detail
{

Backend
resolveBackend(const char *env_value, Backend best)
{
    if (!env_value || !*env_value)
        return best;
    std::optional<Backend> forced = parseBackendName(env_value);
    if (!forced) {
        warn("PB_SIMD='%s' is not generic|sse42|avx2; using %s",
             env_value,
             std::string(backendName(best)).c_str());
        return best;
    }
    if (!backendSupported(*forced)) {
        // A forced-but-unavailable backend degrades instead of
        // failing, so a PB_SIMD CI matrix leg is safe on any host.
        warn("PB_SIMD=%s not supported by this CPU; using %s",
             env_value, std::string(backendName(best)).c_str());
        return best;
    }
    return *forced;
}

} // namespace detail

Backend
activeBackend()
{
    static const Backend resolved = [] {
        Backend backend = detail::resolveBackend(
            std::getenv("PB_SIMD"), bestSupportedBackend());
        PB_LOG(Info, "simd: %s kernel backend (best supported: %s)",
               std::string(backendName(backend)).c_str(),
               std::string(backendName(bestSupportedBackend()))
                   .c_str());
        return backend;
    }();
    return resolved;
}

const KernelTable &
backendTable(Backend backend)
{
#if defined(__x86_64__) || defined(__i386__)
    if (!backendSupported(backend))
        fatal("simd backend %s not supported on this host",
              std::string(backendName(backend)).c_str());
    switch (backend) {
      case Backend::Generic:
        return genericKernels;
      case Backend::Sse42:
        return sse42Kernels;
      case Backend::Avx2:
        return avx2Kernels;
    }
    return genericKernels;
#else
    if (backend != Backend::Generic)
        fatal("simd backend %s not supported on this host",
              std::string(backendName(backend)).c_str());
    return genericKernels;
#endif
}

const KernelTable &
kernels()
{
    static const KernelTable &table = backendTable(activeBackend());
    return table;
}

} // namespace pb::net::simd
