/**
 * @file
 * Opcode metadata table.
 */

#include "opcodes.hh"

#include <array>
#include <unordered_map>

namespace pb::isa
{

namespace
{

constexpr OpInfo table[] = {
    {Op::ADD,   "add",   Format::RType,   InstClass::IntAlu},
    {Op::SUB,   "sub",   Format::RType,   InstClass::IntAlu},
    {Op::AND,   "and",   Format::RType,   InstClass::IntAlu},
    {Op::OR,    "or",    Format::RType,   InstClass::IntAlu},
    {Op::XOR,   "xor",   Format::RType,   InstClass::IntAlu},
    {Op::SLL,   "sll",   Format::RType,   InstClass::IntAlu},
    {Op::SRL,   "srl",   Format::RType,   InstClass::IntAlu},
    {Op::SRA,   "sra",   Format::RType,   InstClass::IntAlu},
    {Op::MUL,   "mul",   Format::RType,   InstClass::IntMul},
    {Op::SLT,   "slt",   Format::RType,   InstClass::IntAlu},
    {Op::SLTU,  "sltu",  Format::RType,   InstClass::IntAlu},
    {Op::ADDI,  "addi",  Format::IType,   InstClass::IntAlu},
    {Op::ANDI,  "andi",  Format::IType,   InstClass::IntAlu},
    {Op::ORI,   "ori",   Format::IType,   InstClass::IntAlu},
    {Op::XORI,  "xori",  Format::IType,   InstClass::IntAlu},
    {Op::SLLI,  "slli",  Format::IType,   InstClass::IntAlu},
    {Op::SRLI,  "srli",  Format::IType,   InstClass::IntAlu},
    {Op::SRAI,  "srai",  Format::IType,   InstClass::IntAlu},
    {Op::SLTI,  "slti",  Format::IType,   InstClass::IntAlu},
    {Op::SLTIU, "sltiu", Format::IType,   InstClass::IntAlu},
    {Op::LUI,   "lui",   Format::IType,   InstClass::IntAlu},
    {Op::LW,    "lw",    Format::Load,    InstClass::Load},
    {Op::LH,    "lh",    Format::Load,    InstClass::Load},
    {Op::LHU,   "lhu",   Format::Load,    InstClass::Load},
    {Op::LB,    "lb",    Format::Load,    InstClass::Load},
    {Op::LBU,   "lbu",   Format::Load,    InstClass::Load},
    {Op::SW,    "sw",    Format::Store,   InstClass::Store},
    {Op::SH,    "sh",    Format::Store,   InstClass::Store},
    {Op::SB,    "sb",    Format::Store,   InstClass::Store},
    {Op::BEQ,   "beq",   Format::Branch,  InstClass::Branch},
    {Op::BNE,   "bne",   Format::Branch,  InstClass::Branch},
    {Op::BLT,   "blt",   Format::Branch,  InstClass::Branch},
    {Op::BGE,   "bge",   Format::Branch,  InstClass::Branch},
    {Op::BLTU,  "bltu",  Format::Branch,  InstClass::Branch},
    {Op::BGEU,  "bgeu",  Format::Branch,  InstClass::Branch},
    {Op::J,     "j",     Format::Jump,    InstClass::Jump},
    {Op::JAL,   "jal",   Format::Jump,    InstClass::Jump},
    {Op::JR,    "jr",    Format::JumpReg, InstClass::Jump},
    {Op::JALR,  "jalr",  Format::JumpReg, InstClass::Jump},
    {Op::SYS,   "sys",   Format::Sys,     InstClass::Sys},
};

constexpr OpInfo invalidInfo =
    {Op::INVALID, "<invalid>", Format::None, InstClass::Invalid};

/** Dense opcode -> metadata index, built once. */
std::array<const OpInfo *, 256>
makeIndex()
{
    std::array<const OpInfo *, 256> idx;
    idx.fill(&invalidInfo);
    for (const auto &info : table)
        idx[static_cast<uint8_t>(info.op)] = &info;
    return idx;
}

const std::array<const OpInfo *, 256> opIndex = makeIndex();

std::unordered_map<std::string_view, Op>
makeMnemonicMap()
{
    std::unordered_map<std::string_view, Op> map;
    for (const auto &info : table)
        map.emplace(info.mnemonic, info.op);
    return map;
}

const std::unordered_map<std::string_view, Op> mnemonicMap =
    makeMnemonicMap();

} // namespace

const OpInfo &
opInfo(Op op)
{
    return *opIndex[static_cast<uint8_t>(op)];
}

Op
opFromMnemonic(std::string_view mnemonic)
{
    auto it = mnemonicMap.find(mnemonic);
    return it == mnemonicMap.end() ? Op::INVALID : it->second;
}

} // namespace pb::isa
