/**
 * @file
 * NPE32 instruction set definition.
 *
 * NPE32 is the 32-bit RISC ISA executed by PacketBench's processor
 * simulator.  It stands in for the paper's SimpleScalar/ARM target:
 * a small load/store architecture in the same family as the cores on
 * the Intel IXP2400 that the paper models.
 *
 * Encoding (fixed 4-byte, word aligned):
 *
 *   R-type   [op:8][rd:4][rs:4][rt:4][0:12]     op rd, rs, rt
 *   I-type   [op:8][rd:4][rs:4][imm:16]         op rd, rs, imm
 *   Load     [op:8][rd:4][rs:4][imm:16]         op rd, imm(rs)
 *   Store    [op:8][rd:4][rs:4][imm:16]         op rd, imm(rs)
 *   Branch   [op:8][rs:4][rt:4][imm:16]         op rs, rt, target
 *   Jump     [op:8][imm:24]                     op target
 *   Sys      [op:8][0:8][imm:16]                sys imm
 *
 * Branch/jump immediates are signed word offsets relative to PC+4.
 * ADDI/SLTI and load/store offsets sign-extend; ANDI/ORI/XORI
 * zero-extend; shift immediates use the low 5 bits.
 */

#ifndef PB_ISA_OPCODES_HH
#define PB_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace pb::isa
{

/** Number of architectural registers. r0 is hardwired to zero. */
constexpr unsigned numRegs = 16;

/** Register conventions (see assembler for the symbolic names). */
constexpr unsigned regZero = 0;  ///< always zero
constexpr unsigned regA0 = 1;    ///< first argument / return value
constexpr unsigned regA1 = 2;
constexpr unsigned regA2 = 3;
constexpr unsigned regA3 = 4;
constexpr unsigned regSp = 13;   ///< stack pointer
constexpr unsigned regLr = 14;   ///< link register
constexpr unsigned regAt = 15;   ///< assembler temporary

/** Opcode values.  Stable — encoded into program binaries. */
enum class Op : uint8_t
{
    // R-type ALU
    ADD = 0x01, SUB, AND, OR, XOR, SLL, SRL, SRA, MUL, SLT, SLTU,
    // I-type ALU
    ADDI = 0x10, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU, LUI,
    // Loads / stores
    LW = 0x20, LH, LHU, LB, LBU, SW, SH, SB,
    // Branches
    BEQ = 0x30, BNE, BLT, BGE, BLTU, BGEU,
    // Jumps
    J = 0x40, JAL, JR, JALR,
    // System
    SYS = 0x50,

    INVALID = 0xff,
};

/** Encoding format of an opcode. */
enum class Format : uint8_t
{
    RType,   ///< rd, rs, rt
    IType,   ///< rd, rs, imm16
    Load,    ///< rd, imm16(rs)
    Store,   ///< rd, imm16(rs)
    Branch,  ///< rs, rt, pc-rel imm16
    Jump,    ///< pc-rel imm24
    JumpReg, ///< rd, rs (JALR) or rs (JR)
    Sys,     ///< imm16
    None,
};

/** Instruction class for instruction-mix statistics. */
enum class InstClass : uint8_t
{
    IntAlu,
    IntMul,
    Load,
    Store,
    Branch,  ///< conditional control flow
    Jump,    ///< unconditional control flow
    Sys,
    Invalid,
};

/** Static properties of one opcode. */
struct OpInfo
{
    Op op;
    std::string_view mnemonic;
    Format format;
    InstClass cls;
};

/** Look up opcode metadata; returns the INVALID entry if unknown. */
const OpInfo &opInfo(Op op);

/** Look up an opcode by mnemonic (lower case); INVALID if unknown. */
Op opFromMnemonic(std::string_view mnemonic);

/** All valid opcodes, for exhaustive tests. */
constexpr Op allOps[] = {
    Op::ADD, Op::SUB, Op::AND, Op::OR, Op::XOR, Op::SLL, Op::SRL,
    Op::SRA, Op::MUL, Op::SLT, Op::SLTU,
    Op::ADDI, Op::ANDI, Op::ORI, Op::XORI, Op::SLLI, Op::SRLI,
    Op::SRAI, Op::SLTI, Op::SLTIU, Op::LUI,
    Op::LW, Op::LH, Op::LHU, Op::LB, Op::LBU, Op::SW, Op::SH, Op::SB,
    Op::BEQ, Op::BNE, Op::BLT, Op::BGE, Op::BLTU, Op::BGEU,
    Op::J, Op::JAL, Op::JR, Op::JALR,
    Op::SYS,
};

/** System-call codes understood by the PacketBench framework. */
enum class SysCode : uint16_t
{
    Done = 0,  ///< packet handler finished (no verdict change)
    Send = 1,  ///< emit the packet on the interface in a1
    Drop = 2,  ///< drop the packet
    Halt = 3,  ///< stop the core (used by bare test programs)
};

} // namespace pb::isa

#endif // PB_ISA_OPCODES_HH
