/**
 * @file
 * Decoded NPE32 instruction representation and binary encode/decode.
 */

#ifndef PB_ISA_INST_HH
#define PB_ISA_INST_HH

#include <cstdint>

#include "common/bitops.hh"
#include "isa/opcodes.hh"

namespace pb::isa
{

/**
 * A decoded instruction.  Immediates are stored sign- or zero-
 * extended according to the opcode's semantics, so the executor can
 * use them directly.
 */
struct Inst
{
    Op op = Op::INVALID;
    uint8_t rd = 0;  ///< destination (source for stores)
    uint8_t rs = 0;  ///< first source / base register
    uint8_t rt = 0;  ///< second source
    int32_t imm = 0; ///< immediate / branch word offset

    bool operator==(const Inst &) const = default;
};

/**
 * Encode an instruction to its 32-bit binary form.
 * Branch/jump immediates must already be word offsets; range is
 * checked by the assembler, not here.
 */
uint32_t encode(const Inst &inst);

/** Decode a 32-bit word.  Unknown opcodes yield op == Op::INVALID. */
Inst decode(uint32_t word);

/**
 * True when @p op transfers control: branches, jumps, and SYS.
 * Shared by static basic-block discovery (sim/bblock.cc) and the
 * interpreter's block-stepped dispatch (sim/cpu.cc), so both agree
 * on what ends a straight-line run.
 */
inline bool
isControlFlow(Op op)
{
    const Format fmt = opInfo(op).format;
    return fmt == Format::Branch || fmt == Format::Jump ||
           fmt == Format::JumpReg || op == Op::SYS;
}

/** True if @p imm fits in a signed 16-bit immediate. */
constexpr bool
fitsSimm16(int64_t imm)
{
    return imm >= -32768 && imm <= 32767;
}

/** True if @p imm fits in an unsigned 16-bit immediate. */
constexpr bool
fitsUimm16(int64_t imm)
{
    return imm >= 0 && imm <= 65535;
}

/** True if @p imm fits in a signed 24-bit immediate. */
constexpr bool
fitsSimm24(int64_t imm)
{
    return imm >= -(1 << 23) && imm < (1 << 23);
}

} // namespace pb::isa

#endif // PB_ISA_INST_HH
