/**
 * @file
 * Disassembler implementation.
 */

#include "disasm.hh"

#include "common/logging.hh"

namespace pb::isa
{

std::string
regName(unsigned reg)
{
    static const char *names[numRegs] = {
        "zero", "a0", "a1", "a2", "a3", "t0", "t1", "t2",
        "t3", "t4", "t5", "s0", "s1", "sp", "lr", "at",
    };
    if (reg >= numRegs)
        return strprintf("r%u?", reg);
    return names[reg];
}

std::string
disassemble(const Inst &inst, uint32_t addr)
{
    const OpInfo &info = opInfo(inst.op);
    const std::string m(info.mnemonic);
    switch (info.format) {
      case Format::RType:
        return strprintf("%-6s %s, %s, %s", m.c_str(),
                         regName(inst.rd).c_str(),
                         regName(inst.rs).c_str(),
                         regName(inst.rt).c_str());
      case Format::IType:
        if (inst.op == Op::LUI) {
            return strprintf("%-6s %s, 0x%x", m.c_str(),
                             regName(inst.rd).c_str(),
                             static_cast<unsigned>(inst.imm));
        }
        return strprintf("%-6s %s, %s, %d", m.c_str(),
                         regName(inst.rd).c_str(),
                         regName(inst.rs).c_str(), inst.imm);
      case Format::Load:
      case Format::Store:
        return strprintf("%-6s %s, %d(%s)", m.c_str(),
                         regName(inst.rd).c_str(), inst.imm,
                         regName(inst.rs).c_str());
      case Format::Branch:
        return strprintf("%-6s %s, %s, 0x%x", m.c_str(),
                         regName(inst.rs).c_str(),
                         regName(inst.rt).c_str(),
                         addr + 4 + static_cast<uint32_t>(inst.imm) * 4);
      case Format::Jump:
        return strprintf("%-6s 0x%x", m.c_str(),
                         addr + 4 + static_cast<uint32_t>(inst.imm) * 4);
      case Format::JumpReg:
        if (inst.op == Op::JR) {
            return strprintf("%-6s %s", m.c_str(),
                             regName(inst.rs).c_str());
        }
        return strprintf("%-6s %s, %s", m.c_str(),
                         regName(inst.rd).c_str(),
                         regName(inst.rs).c_str());
      case Format::Sys:
        return strprintf("%-6s %d", m.c_str(), inst.imm);
      case Format::None:
        return "<invalid>";
    }
    return "<invalid>";
}

std::string
disassemble(const Program &prog)
{
    // Invert the symbol table so labels print above their addresses.
    std::map<uint32_t, std::string> label_at;
    for (const auto &[name, sym_addr] : prog.symbols)
        label_at[sym_addr] = name;

    std::string out;
    for (size_t i = 0; i < prog.words.size(); i++) {
        uint32_t addr = prog.baseAddr + static_cast<uint32_t>(i) * 4;
        auto it = label_at.find(addr);
        if (it != label_at.end())
            out += it->second + ":\n";
        out += strprintf("  %08x:  %08x  %s\n", addr, prog.words[i],
                         disassemble(decode(prog.words[i]), addr).c_str());
    }
    return out;
}

} // namespace pb::isa
