/**
 * @file
 * NPE32 binary encoding and decoding.
 */

#include "inst.hh"

namespace pb::isa
{

namespace
{

/** True if this opcode's 16-bit immediate is sign-extended. */
bool
immIsSigned(Op op)
{
    switch (op) {
      case Op::ADDI:
      case Op::SLTI:
      case Op::LW:
      case Op::LH:
      case Op::LHU:
      case Op::LB:
      case Op::LBU:
      case Op::SW:
      case Op::SH:
      case Op::SB:
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BGE:
      case Op::BLTU:
      case Op::BGEU:
        return true;
      default:
        return false;
    }
}

} // namespace

uint32_t
encode(const Inst &inst)
{
    uint32_t op = static_cast<uint32_t>(inst.op) << 24;
    const Format fmt = opInfo(inst.op).format;
    switch (fmt) {
      case Format::RType:
        return op | (inst.rd & 0xfu) << 20 | (inst.rs & 0xfu) << 16 |
               (inst.rt & 0xfu) << 12;
      case Format::IType:
      case Format::Load:
      case Format::Store:
        return op | (inst.rd & 0xfu) << 20 | (inst.rs & 0xfu) << 16 |
               (static_cast<uint32_t>(inst.imm) & 0xffffu);
      case Format::Branch:
        return op | (inst.rs & 0xfu) << 20 | (inst.rt & 0xfu) << 16 |
               (static_cast<uint32_t>(inst.imm) & 0xffffu);
      case Format::Jump:
        return op | (static_cast<uint32_t>(inst.imm) & 0xffffffu);
      case Format::JumpReg:
        return op | (inst.rd & 0xfu) << 20 | (inst.rs & 0xfu) << 16;
      case Format::Sys:
        return op | (static_cast<uint32_t>(inst.imm) & 0xffffu);
      case Format::None:
        return 0xff000000u;
    }
    return 0xff000000u;
}

Inst
decode(uint32_t word)
{
    Inst inst;
    inst.op = static_cast<Op>(word >> 24);
    const OpInfo &info = opInfo(inst.op);
    if (info.format == Format::None) {
        inst.op = Op::INVALID;
        return inst;
    }

    uint32_t f1 = bits(word, 20, 4);
    uint32_t f2 = bits(word, 16, 4);
    uint32_t imm16 = bits(word, 0, 16);

    switch (info.format) {
      case Format::RType:
        inst.rd = static_cast<uint8_t>(f1);
        inst.rs = static_cast<uint8_t>(f2);
        inst.rt = static_cast<uint8_t>(bits(word, 12, 4));
        break;
      case Format::IType:
      case Format::Load:
      case Format::Store:
        inst.rd = static_cast<uint8_t>(f1);
        inst.rs = static_cast<uint8_t>(f2);
        inst.imm = immIsSigned(inst.op) ? sext(imm16, 16)
                                        : static_cast<int32_t>(imm16);
        break;
      case Format::Branch:
        inst.rs = static_cast<uint8_t>(f1);
        inst.rt = static_cast<uint8_t>(f2);
        inst.imm = sext(imm16, 16);
        break;
      case Format::Jump:
        inst.imm = sext(bits(word, 0, 24), 24);
        break;
      case Format::JumpReg:
        inst.rd = static_cast<uint8_t>(f1);
        inst.rs = static_cast<uint8_t>(f2);
        break;
      case Format::Sys:
        inst.imm = static_cast<int32_t>(imm16);
        break;
      case Format::None:
        break;
    }
    return inst;
}

} // namespace pb::isa
