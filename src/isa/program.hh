/**
 * @file
 * An assembled NPE32 program image.
 */

#ifndef PB_ISA_PROGRAM_HH
#define PB_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace pb::isa
{

/**
 * The output of the assembler: a contiguous block of instruction
 * words plus the symbol table and per-word source line numbers used
 * for diagnostics and for mapping simulation results back to source.
 */
struct Program
{
    /** Byte address of words[0] in simulated memory. */
    uint32_t baseAddr = 0;

    /** Instruction words, in memory order. */
    std::vector<uint32_t> words;

    /** Label name -> byte address. */
    std::map<std::string, uint32_t> symbols;

    /** words[i] was produced by source line lines[i] (1-based). */
    std::vector<int> lines;

    /** Size of the image in bytes. */
    uint32_t sizeBytes() const
    {
        return static_cast<uint32_t>(words.size() * 4);
    }

    /** One past the last byte address. */
    uint32_t endAddr() const { return baseAddr + sizeBytes(); }

    /**
     * Entry point: the address of the label @p name.
     * @throws FatalError if the label does not exist.
     */
    uint32_t
    entry(const std::string &name = "main") const
    {
        auto it = symbols.find(name);
        if (it == symbols.end())
            fatal("program has no '%s' label", name.c_str());
        return it->second;
    }

    /** True if the program defines label @p name. */
    bool
    hasSymbol(const std::string &name) const
    {
        return symbols.find(name) != symbols.end();
    }
};

} // namespace pb::isa

#endif // PB_ISA_PROGRAM_HH
