/**
 * @file
 * Two-pass assembler for NPE32.
 *
 * Applications in this repository — like the four PacketBench
 * workloads — are written in NPE32 assembly and assembled at startup.
 * The assembler supports labels, .equ constants, a handful of
 * pseudo-instructions, and +/- constant expressions in operands.
 *
 * Syntax overview:
 *
 *     # comment            ; comment
 *     .equ NODE_SIZE, 16
 *     main:
 *         lw   t0, IP_DST(a0)     # operands may be expressions
 *         li   t1, 0x12345678     # expands to lui+ori when needed
 *         la   t2, table          # load a label address
 *         beqz t0, drop
 *         ...
 *     drop:
 *         sys  SYS_DROP
 *
 * Registers: r0..r15 or symbolic zero, a0-a3, t0-t5, s0, s1, sp, lr,
 * at.  The 'at' register (r15) is reserved for pseudo-instruction
 * expansion.
 */

#ifndef PB_ISA_ASSEMBLER_HH
#define PB_ISA_ASSEMBLER_HH

#include <string>
#include <string_view>

#include "common/logging.hh"
#include "isa/program.hh"

namespace pb::isa
{

/** Error in assembly source; message includes unit and line number. */
class AsmError : public Error
{
  public:
    AsmError(const std::string &unit, int line, const std::string &msg)
        : Error(unit + ":" + std::to_string(line) + ": " + msg),
          line(line)
    {}

    int line;
};

/** Two-pass NPE32 assembler. */
class Assembler
{
  public:
    /** @param base_addr byte address where the image will be loaded. */
    explicit Assembler(uint32_t base_addr = 0x1000);

    /**
     * Assemble @p source into a program image.
     *
     * @param source complete assembly source text
     * @param unit_name name used in error messages
     * @throws AsmError on any syntax or range error
     */
    Program assemble(std::string_view source,
                     const std::string &unit_name = "<asm>") const;

  private:
    uint32_t baseAddr;
};

/**
 * Parse a register operand ("r4", "a0", "sp", ...).
 * @return register number, or -1 if @p token is not a register.
 */
int parseRegister(std::string_view token);

} // namespace pb::isa

#endif // PB_ISA_ASSEMBLER_HH
