/**
 * @file
 * NPE32 disassembler, used in diagnostics and tests.
 */

#ifndef PB_ISA_DISASM_HH
#define PB_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"
#include "isa/program.hh"

namespace pb::isa
{

/**
 * Render one instruction as text.
 *
 * @param inst decoded instruction
 * @param addr byte address of the instruction (used to render branch
 *             and jump targets as absolute addresses)
 */
std::string disassemble(const Inst &inst, uint32_t addr);

/** Render a whole program, one line per word, with addresses. */
std::string disassemble(const Program &prog);

/** Symbolic register name (a0, t3, sp, ...). */
std::string regName(unsigned reg);

} // namespace pb::isa

#endif // PB_ISA_DISASM_HH
