/**
 * @file
 * Two-pass assembler implementation.
 */

#include "assembler.hh"

#include <cctype>
#include <unordered_map>

#include "common/strutil.hh"
#include "isa/inst.hh"

namespace pb::isa
{

namespace
{

/** One parsed source statement. */
struct Statement
{
    int line = 0;
    std::string mnemonic;              // lower case, may be a directive
    std::vector<std::string> operands; // comma-separated, trimmed
    unsigned sizeWords = 0;            // fixed by pass 1
};

const std::unordered_map<std::string, int> regNames = {
    {"zero", 0}, {"a0", 1}, {"a1", 2}, {"a2", 3}, {"a3", 4},
    {"t0", 5}, {"t1", 6}, {"t2", 7}, {"t3", 8}, {"t4", 9}, {"t5", 10},
    {"s0", 11}, {"s1", 12}, {"sp", 13}, {"lr", 14}, {"at", 15},
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentifier(std::string_view s)
{
    if (s.empty())
        return false;
    if (std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    for (char c : s) {
        if (!isIdentChar(c))
            return false;
    }
    return true;
}

/**
 * Evaluate a +/- expression of integers and symbol names.
 *
 * @param expr       the expression text
 * @param symbols    name -> value map
 * @param[out] value result on success
 * @param[out] missing first undefined symbol name, if any
 * @return true on success
 */
bool
evalExpr(std::string_view expr,
         const std::map<std::string, uint32_t> &symbols, int64_t &value,
         std::string &missing)
{
    expr = trim(expr);
    if (expr.empty())
        return false;

    size_t i = 0;
    int64_t total = 0;
    int sign = 1;
    bool first = true;

    while (i < expr.size()) {
        while (i < expr.size() &&
               std::isspace(static_cast<unsigned char>(expr[i])))
            i++;
        if (i >= expr.size())
            return false;

        if (!first || expr[i] == '+' || expr[i] == '-') {
            if (expr[i] == '+') {
                sign = 1;
                i++;
            } else if (expr[i] == '-') {
                sign = -1;
                i++;
            } else if (!first) {
                return false; // two terms with no operator
            }
            while (i < expr.size() &&
                   std::isspace(static_cast<unsigned char>(expr[i])))
                i++;
            if (i >= expr.size())
                return false;
        }
        first = false;

        size_t start = i;
        while (i < expr.size() && isIdentChar(expr[i]))
            i++;
        if (i == start)
            return false;
        std::string_view term = expr.substr(start, i - start);

        int64_t term_value;
        if (std::isdigit(static_cast<unsigned char>(term[0]))) {
            auto v = parseInt(term);
            if (!v)
                return false;
            term_value = *v;
        } else {
            auto it = symbols.find(std::string(term));
            if (it == symbols.end()) {
                missing = std::string(term);
                return false;
            }
            term_value = it->second;
        }
        total += sign * term_value;
        sign = 1;
    }
    value = total;
    return true;
}

} // namespace

int
parseRegister(std::string_view token)
{
    auto it = regNames.find(std::string(token));
    if (it != regNames.end())
        return it->second;
    if (token.size() >= 2 && (token[0] == 'r' || token[0] == 'R')) {
        auto v = parseInt(token.substr(1));
        if (v && *v >= 0 && *v < static_cast<int64_t>(numRegs))
            return static_cast<int>(*v);
    }
    return -1;
}

Assembler::Assembler(uint32_t base_addr) : baseAddr(base_addr)
{
    if (!isAligned(base_addr, 4))
        fatal("assembler base address 0x%x is not word aligned",
              base_addr);
}

Program
Assembler::assemble(std::string_view source,
                    const std::string &unit_name) const
{
    Program prog;
    prog.baseAddr = baseAddr;

    std::vector<Statement> stmts;
    std::map<std::string, uint32_t> equs;
    // Label addresses land directly in the program symbol table.
    std::map<std::string, uint32_t> &labels = prog.symbols;

    auto err = [&](int line, const std::string &msg) -> AsmError {
        return AsmError(unit_name, line, msg);
    };

    // ---------------- Pass 1: parse, size, collect symbols ----------
    uint32_t word_count = 0;
    int line_no = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
        size_t eol = source.find('\n', pos);
        std::string_view raw = (eol == std::string_view::npos)
                                   ? source.substr(pos)
                                   : source.substr(pos, eol - pos);
        pos = (eol == std::string_view::npos) ? source.size() + 1 : eol + 1;
        line_no++;

        // Strip comments.
        size_t cmt = raw.find_first_of("#;");
        if (cmt != std::string_view::npos)
            raw = raw.substr(0, cmt);
        std::string_view text = trim(raw);

        // Peel off any leading labels.
        while (true) {
            size_t colon = text.find(':');
            if (colon == std::string_view::npos)
                break;
            std::string_view name = trim(text.substr(0, colon));
            if (!isIdentifier(name))
                throw err(line_no, "bad label name '" +
                                       std::string(name) + "'");
            std::string label(name);
            if (labels.count(label) || equs.count(label))
                throw err(line_no, "duplicate symbol '" + label + "'");
            labels[label] = baseAddr + word_count * 4;
            text = trim(text.substr(colon + 1));
        }
        if (text.empty())
            continue;

        // Split mnemonic from operand list.
        size_t sp = text.find_first_of(" \t");
        Statement stmt;
        stmt.line = line_no;
        stmt.mnemonic = toLower(text.substr(
            0, sp == std::string_view::npos ? text.size() : sp));
        if (sp != std::string_view::npos) {
            for (const auto &part : split(text.substr(sp + 1), ',')) {
                std::string operand(trim(part));
                if (operand.empty())
                    throw err(line_no, "empty operand");
                stmt.operands.push_back(std::move(operand));
            }
        }

        // Directives.
        if (stmt.mnemonic == ".equ") {
            if (stmt.operands.size() != 2)
                throw err(line_no, ".equ needs a name and a value");
            const std::string &name = stmt.operands[0];
            if (!isIdentifier(name) || name[0] == '.')
                throw err(line_no, "bad .equ name '" + name + "'");
            if (labels.count(name) || equs.count(name))
                throw err(line_no, "duplicate symbol '" + name + "'");
            int64_t value;
            std::string missing;
            if (!evalExpr(stmt.operands[1], equs, value, missing)) {
                throw err(line_no,
                          missing.empty()
                              ? "bad .equ expression"
                              : ".equ references undefined symbol '" +
                                    missing + "'");
            }
            equs[name] = static_cast<uint32_t>(value);
            continue;
        }

        // Size the statement.
        if (stmt.mnemonic == "la") {
            stmt.sizeWords = 2;
        } else if (stmt.mnemonic == "li") {
            if (stmt.operands.size() != 2)
                throw err(line_no, "li needs a register and a value");
            int64_t value;
            std::string missing;
            if (evalExpr(stmt.operands[1], equs, value, missing)) {
                stmt.sizeWords =
                    (fitsSimm16(value) || fitsUimm16(value)) ? 1 : 2;
            } else if (!missing.empty()) {
                stmt.sizeWords = 2; // label address: full 32 bits
            } else {
                throw err(line_no, "bad li operand '" +
                                       stmt.operands[1] + "'");
            }
        } else if (stmt.mnemonic == ".word") {
            stmt.sizeWords = 1;
        } else {
            stmt.sizeWords = 1;
        }

        word_count += stmt.sizeWords;
        stmts.push_back(std::move(stmt));
    }

    // Merge equs into the symbol space used for operand evaluation.
    std::map<std::string, uint32_t> all_symbols = labels;
    all_symbols.insert(equs.begin(), equs.end());

    // ---------------- Pass 2: encode -------------------------------
    prog.words.reserve(word_count);
    prog.lines.reserve(word_count);

    auto emit = [&](const Inst &inst, int line) {
        prog.words.push_back(encode(inst));
        prog.lines.push_back(line);
    };

    for (const auto &stmt : stmts) {
        const int line = stmt.line;
        const uint32_t addr =
            baseAddr + static_cast<uint32_t>(prog.words.size()) * 4;

        auto want = [&](size_t n) {
            if (stmt.operands.size() != n)
                throw err(line, "'" + stmt.mnemonic + "' takes " +
                                    std::to_string(n) + " operand(s), got " +
                                    std::to_string(stmt.operands.size()));
        };
        auto reg = [&](size_t idx) -> uint8_t {
            int r = parseRegister(stmt.operands[idx]);
            if (r < 0)
                throw err(line, "'" + stmt.operands[idx] +
                                    "' is not a register");
            return static_cast<uint8_t>(r);
        };
        auto value = [&](const std::string &expr) -> int64_t {
            int64_t v;
            std::string missing;
            if (!evalExpr(expr, all_symbols, v, missing)) {
                throw err(line, missing.empty()
                                    ? "bad expression '" + expr + "'"
                                    : "undefined symbol '" + missing + "'");
            }
            return v;
        };
        auto branchOffset = [&](const std::string &expr) -> int32_t {
            int64_t target = value(expr);
            int64_t delta = target - (static_cast<int64_t>(addr) + 4);
            if (delta % 4 != 0)
                throw err(line, "branch target not word aligned");
            int64_t words = delta / 4;
            if (!fitsSimm16(words))
                throw err(line, "branch target out of range");
            return static_cast<int32_t>(words);
        };
        auto jumpOffset = [&](const std::string &expr) -> int32_t {
            int64_t target = value(expr);
            int64_t delta = target - (static_cast<int64_t>(addr) + 4);
            if (delta % 4 != 0)
                throw err(line, "jump target not word aligned");
            int64_t words = delta / 4;
            if (!fitsSimm24(words))
                throw err(line, "jump target out of range");
            return static_cast<int32_t>(words);
        };
        /** Parse "expr(reg)" or "expr" memory operands. */
        auto memOperand = [&](const std::string &operand, uint8_t &base,
                              int32_t &offset) {
            size_t paren = operand.find('(');
            std::string expr;
            if (paren == std::string::npos) {
                base = regZero;
                expr = operand;
            } else {
                if (operand.back() != ')')
                    throw err(line, "bad memory operand '" + operand + "'");
                std::string reg_text(trim(std::string_view(operand).substr(
                    paren + 1, operand.size() - paren - 2)));
                int r = parseRegister(reg_text);
                if (r < 0)
                    throw err(line, "'" + reg_text + "' is not a register");
                base = static_cast<uint8_t>(r);
                expr = std::string(
                    trim(std::string_view(operand).substr(0, paren)));
            }
            int64_t v = expr.empty() ? 0 : value(expr);
            if (!fitsSimm16(v))
                throw err(line, "memory offset out of range");
            offset = static_cast<int32_t>(v);
        };
        auto checkSimm16 = [&](int64_t v) -> int32_t {
            if (!fitsSimm16(v))
                throw err(line, "immediate " + std::to_string(v) +
                                    " out of signed 16-bit range");
            return static_cast<int32_t>(v);
        };
        auto checkUimm16 = [&](int64_t v) -> int32_t {
            if (!fitsUimm16(v))
                throw err(line, "immediate " + std::to_string(v) +
                                    " out of unsigned 16-bit range");
            return static_cast<int32_t>(v);
        };
        auto checkShift = [&](int64_t v) -> int32_t {
            if (v < 0 || v > 31)
                throw err(line, "shift amount must be 0..31");
            return static_cast<int32_t>(v);
        };

        // ---- pseudo-instructions and directives ----
        const std::string &m = stmt.mnemonic;
        if (m == ".word") {
            want(1);
            prog.words.push_back(
                static_cast<uint32_t>(value(stmt.operands[0])));
            prog.lines.push_back(line);
            continue;
        }
        if (m == "nop") {
            want(0);
            emit({Op::ADD, 0, 0, 0, 0}, line);
            continue;
        }
        if (m == "move") {
            want(2);
            emit({Op::ADD, reg(0), reg(1), regZero, 0}, line);
            continue;
        }
        if (m == "li" || m == "la") {
            want(2);
            uint8_t rd = reg(0);
            uint32_t v = static_cast<uint32_t>(value(stmt.operands[1]));
            if (stmt.sizeWords == 1) {
                int64_t sv = static_cast<int64_t>(
                    static_cast<int32_t>(v));
                if (fitsSimm16(sv)) {
                    emit({Op::ADDI, rd, regZero, 0,
                          static_cast<int32_t>(sv)}, line);
                } else {
                    emit({Op::ORI, rd, regZero, 0,
                          static_cast<int32_t>(v & 0xffff)}, line);
                }
            } else {
                emit({Op::LUI, rd, 0, 0,
                      static_cast<int32_t>(v >> 16)}, line);
                emit({Op::ORI, rd, rd, 0,
                      static_cast<int32_t>(v & 0xffff)}, line);
            }
            continue;
        }
        if (m == "b") {
            want(1);
            emit({Op::BEQ, 0, 0, 0, branchOffset(stmt.operands[0])},
                 line);
            continue;
        }
        if (m == "beqz" || m == "bnez") {
            want(2);
            Op op = (m == "beqz") ? Op::BEQ : Op::BNE;
            Inst inst{op, 0, reg(0), regZero,
                      branchOffset(stmt.operands[1])};
            // Branch encoding stores rs/rt in the top fields.
            inst.rd = 0;
            emit(inst, line);
            continue;
        }
        if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
            want(3);
            Op op = (m == "bgt") ? Op::BLT
                    : (m == "ble") ? Op::BGE
                    : (m == "bgtu") ? Op::BLTU
                                    : Op::BGEU;
            // Swap operands: bgt a,b = blt b,a.
            emit({op, 0, reg(1), reg(0), branchOffset(stmt.operands[2])},
                 line);
            continue;
        }
        if (m == "call") {
            want(1);
            emit({Op::JAL, 0, 0, 0, jumpOffset(stmt.operands[0])}, line);
            continue;
        }
        if (m == "ret") {
            want(0);
            emit({Op::JR, 0, regLr, 0, 0}, line);
            continue;
        }
        if (m == "subi") {
            want(3);
            emit({Op::ADDI, reg(0), reg(1), 0,
                  checkSimm16(-value(stmt.operands[2]))}, line);
            continue;
        }

        // ---- real instructions ----
        Op op = opFromMnemonic(m);
        if (op == Op::INVALID)
            throw err(line, "unknown instruction '" + m + "'");
        const OpInfo &info = opInfo(op);
        Inst inst;
        inst.op = op;

        switch (info.format) {
          case Format::RType:
            want(3);
            inst.rd = reg(0);
            inst.rs = reg(1);
            inst.rt = reg(2);
            break;
          case Format::IType:
            if (op == Op::LUI) {
                want(2);
                inst.rd = reg(0);
                inst.imm = checkUimm16(value(stmt.operands[1]));
            } else {
                want(3);
                inst.rd = reg(0);
                inst.rs = reg(1);
                int64_t v = value(stmt.operands[2]);
                if (op == Op::SLLI || op == Op::SRLI || op == Op::SRAI)
                    inst.imm = checkShift(v);
                else if (op == Op::ADDI || op == Op::SLTI)
                    inst.imm = checkSimm16(v);
                else
                    inst.imm = checkUimm16(v);
            }
            break;
          case Format::Load:
          case Format::Store:
            want(2);
            inst.rd = reg(0);
            memOperand(stmt.operands[1], inst.rs, inst.imm);
            break;
          case Format::Branch:
            want(3);
            inst.rs = reg(0);
            inst.rt = reg(1);
            inst.imm = branchOffset(stmt.operands[2]);
            break;
          case Format::Jump:
            want(1);
            inst.imm = jumpOffset(stmt.operands[0]);
            break;
          case Format::JumpReg:
            if (op == Op::JR) {
                want(1);
                inst.rs = reg(0);
            } else { // JALR rd, rs  (or jalr rs with rd = lr)
                if (stmt.operands.size() == 1) {
                    inst.rd = regLr;
                    inst.rs = reg(0);
                } else {
                    want(2);
                    inst.rd = reg(0);
                    inst.rs = reg(1);
                }
            }
            break;
          case Format::Sys:
            want(1);
            inst.imm = checkUimm16(value(stmt.operands[0]));
            break;
          case Format::None:
            throw err(line, "unknown instruction '" + m + "'");
        }
        emit(inst, line);
    }

    if (prog.words.size() != word_count)
        panic("assembler pass disagreement: sized %u words, emitted %zu",
              word_count, prog.words.size());
    return prog;
}

} // namespace pb::isa
