/**
 * @file
 * Linear-scan longest-prefix match.
 *
 * The simplest possible correct LPM: scan every entry and keep the
 * longest match.  Used as the ground-truth comparator in the
 * three-way differential tests against the radix tree and LC-trie,
 * and as the naive baseline in the table-size ablation bench.
 */

#ifndef PB_ROUTE_LINEAR_HH
#define PB_ROUTE_LINEAR_HH

#include <cstddef>

#include "route/prefix.hh"

namespace pb::route
{

/** O(n)-per-lookup reference LPM. */
class LinearLpm
{
  public:
    explicit LinearLpm(std::vector<RouteEntry> entries)
        : table(std::move(entries))
    {}

    /** Next hop for @p addr, or noRoute if nothing matches. */
    uint32_t lookup(uint32_t addr) const;

    size_t size() const { return table.size(); }

  private:
    std::vector<RouteEntry> table;
};

} // namespace pb::route

#endif // PB_ROUTE_LINEAR_HH
