/**
 * @file
 * Routing-table entries and synthetic table generation.
 *
 * The paper uses a MAE-WEST snapshot for IPv4-radix and "a small
 * routing table" for IPv4-trie.  MAE-WEST snapshots are no longer
 * distributed, so we synthesize tables with a realistic BGP-like
 * prefix-length distribution (peaked at /24) plus a default route.
 */

#ifndef PB_ROUTE_PREFIX_HH
#define PB_ROUTE_PREFIX_HH

#include <cstdint>
#include <vector>

namespace pb::route
{

/** One routing-table entry. */
struct RouteEntry
{
    uint32_t prefix = 0; ///< network-order address; low bits zero
    uint8_t len = 0;     ///< prefix length, 0..32
    uint32_t nextHop = 0; ///< outgoing interface id

    bool operator==(const RouteEntry &) const = default;
};

/** Next-hop value returned when no prefix matches. */
constexpr uint32_t noRoute = 0xffffffff;

/**
 * Generate a core-router-like table (for IPv4-radix).
 *
 * Contains a default route, all /8s (so every lookup resolves), and
 * @p n additional prefixes with a /24-peaked length distribution.
 * Deterministic in @p seed.
 */
std::vector<RouteEntry> generateCoreTable(uint32_t n, uint32_t seed);

/**
 * Generate a small edge-router table (for IPv4-trie, following the
 * paper's note that a small table was used there): a default route
 * plus @p n prefixes between /8 and /24.
 */
std::vector<RouteEntry> generateSmallTable(uint32_t n, uint32_t seed);

/** Number of distinct next-hop interfaces the generators use. */
constexpr uint32_t numInterfaces = 16;

} // namespace pb::route

#endif // PB_ROUTE_PREFIX_HH
