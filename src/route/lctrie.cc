/**
 * @file
 * LC-trie construction and lookup.
 */

#include "lctrie.hh"

#include <algorithm>
#include <map>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace pb::route
{

using namespace lclayout;

namespace
{

/** Extract @p n bits of @p key starting at bit position @p pos
 *  (position 0 = most significant). */
constexpr uint32_t
extractTop(uint32_t key, unsigned pos, unsigned n)
{
    if (n == 0)
        return 0;
    return (key << pos) >> (32 - n);
}

/** Simple binary trie used for leaf pushing. */
struct BinNode
{
    int32_t left = -1;
    int32_t right = -1;
    bool hasRoute = false;
    uint32_t nextHop = 0;
};

} // namespace

uint32_t
LcTrie::internLeaf(const Leaf &leaf)
{
    // Deduplicate: a short leaf can cover several partitions and
    // would otherwise be stored once per partition.
    for (size_t i = leaves.size(); i-- > 0;) {
        if (leaves[i].key == leaf.key && leaves[i].len == leaf.len)
            return static_cast<uint32_t>(i);
        // Only the most recent few can repeat; don't scan forever.
        if (leaves.size() - i > 64)
            break;
    }
    leaves.push_back(leaf);
    return static_cast<uint32_t>(leaves.size() - 1);
}

LcTrie::LcTrie(const std::vector<RouteEntry> &entries)
{
    // ---- 1. binary trie ----
    std::vector<BinNode> bin(1);
    for (const auto &entry : entries) {
        if (entry.len > 32)
            fatal("lctrie: prefix length %u out of range", entry.len);
        int32_t at = 0;
        for (unsigned depth = 0; depth < entry.len; depth++) {
            bool right = bit(entry.prefix, 31 - depth) != 0;
            int32_t &child = right ? bin[at].right : bin[at].left;
            if (child < 0) {
                child = static_cast<int32_t>(bin.size());
                int32_t fresh = child;
                bin.push_back(BinNode{});
                at = fresh;
            } else {
                at = child;
            }
        }
        bin[at].hasRoute = true;
        bin[at].nextHop = entry.nextHop;
    }

    // ---- 2. leaf pushing: disjoint complete cover ----
    std::vector<Leaf> cover;
    // Explicit stack to avoid deep recursion.
    struct Item
    {
        int32_t node;
        uint8_t depth;
        uint32_t bits;
        uint32_t inheritedHop;
    };
    std::vector<Item> stack{{0, 0, 0, noRoute}};
    while (!stack.empty()) {
        Item item = stack.back();
        stack.pop_back();
        const BinNode &node = bin[item.node];
        uint32_t eff =
            node.hasRoute ? node.nextHop : item.inheritedHop;
        if (node.left < 0 && node.right < 0) {
            cover.push_back({item.bits, item.depth, eff});
            continue;
        }
        for (int side = 0; side < 2; side++) {
            int32_t child = side ? node.right : node.left;
            uint32_t child_bits =
                side ? item.bits | (1u << (31 - item.depth))
                     : item.bits;
            uint8_t child_depth = static_cast<uint8_t>(item.depth + 1);
            if (child >= 0) {
                stack.push_back({child, child_depth, child_bits, eff});
            } else {
                cover.push_back({child_bits, child_depth, eff});
            }
        }
    }

    // ---- 3. LC compression ----
    std::sort(cover.begin(), cover.end(),
              [](const Leaf &a, const Leaf &b) { return a.key < b.key; });
    nodes.resize(1);
    build(std::move(cover), 0, 0);
    if (nodes.size() >= (1u << adrBits))
        fatal("lctrie: node count %zu exceeds the 20-bit adr field",
              nodes.size());
}

void
LcTrie::build(std::vector<Leaf> cover, unsigned pre, size_t slot)
{
    if (cover.empty())
        panic("lctrie: empty cover (completeness invariant broken)");
    if (cover.size() == 1) {
        nodes[slot] = packNode(0, 0, internLeaf(cover[0]));
        return;
    }

    // Path compression: position of the first bit where keys differ.
    unsigned pos = 32;
    for (size_t i = 1; i < cover.size(); i++) {
        pos = std::min(pos, commonPrefixLen(cover[0].key, cover[i].key));
    }
    if (pos < pre)
        panic("lctrie: keys differ above the agreed prefix");
    unsigned skip = pos - pre;
    if (skip > 0x7f)
        panic("lctrie: skip %u exceeds the 7-bit field", skip);

    // Level compression: branch on as many bits as the population
    // supports (fill factor 1 after leaf pushing).
    unsigned branch = 1;
    while (branch < maxBranch && pos + branch < 32 &&
           (1u << (branch + 1)) <= cover.size()) {
        branch++;
    }

    size_t first_child = nodes.size();
    nodes.resize(first_child + (1u << branch));
    nodes[slot] =
        packNode(branch, skip, static_cast<uint32_t>(first_child));

    std::vector<std::vector<Leaf>> parts(1u << branch);
    for (const auto &leaf : cover) {
        if (leaf.len >= pos + branch) {
            parts[extractTop(leaf.key, pos, branch)].push_back(leaf);
        } else {
            // Short leaf: covers a span of partitions; disjointness
            // guarantees it is alone in each of them.
            unsigned have = leaf.len - pos;
            uint32_t head = extractTop(leaf.key, pos, have);
            uint32_t span = 1u << (branch - have);
            for (uint32_t k = head * span; k < (head + 1) * span; k++)
                parts[k].push_back(leaf);
        }
    }
    for (uint32_t k = 0; k < (1u << branch); k++)
        build(std::move(parts[k]), pos + branch, first_child + k);
}

uint32_t
LcTrie::lookup(uint32_t addr) const
{
    uint32_t node = nodes[0];
    unsigned pos = nodeSkip(node);
    while (nodeBranch(node) != 0) {
        unsigned branch = nodeBranch(node);
        node = nodes[nodeAdr(node) + extractTop(addr, pos, branch)];
        pos += branch + nodeSkip(node);
    }
    const Leaf &leaf = leaves[nodeAdr(node)];
    if ((addr & prefixMask(leaf.len)) == leaf.key)
        return leaf.nextHop;
    return noRoute;
}

double
LcTrie::averageDepth() const
{
    uint64_t total = 0;
    uint64_t count = 0;
    struct Item
    {
        uint32_t node;
        unsigned depth;
    };
    std::vector<Item> stack{{0, 1}};
    while (!stack.empty()) {
        Item item = stack.back();
        stack.pop_back();
        uint32_t word = nodes[item.node];
        if (nodeBranch(word) == 0) {
            total += item.depth;
            count++;
            continue;
        }
        for (uint32_t k = 0; k < (1u << nodeBranch(word)); k++)
            stack.push_back({nodeAdr(word) + k, item.depth + 1});
    }
    return count ? static_cast<double>(total) / count : 0.0;
}

std::vector<uint32_t>
LcTrie::packImage(uint32_t base_addr, uint32_t &leaf_base_addr) const
{
    std::vector<uint32_t> words = nodes;
    while ((words.size() * 4) % 16 != 0)
        words.push_back(0);
    leaf_base_addr = base_addr + static_cast<uint32_t>(words.size()) * 4;
    for (const auto &leaf : leaves) {
        words.push_back(leaf.key);
        words.push_back(leaf.len);
        words.push_back(leaf.nextHop);
        words.push_back(0);
    }
    return words;
}

} // namespace pb::route
