/**
 * @file
 * Level- and path-compressed trie (LC-trie) for longest-prefix match,
 * after Nilsson & Karlsson, "IP-address lookup using LC-tries" — the
 * data structure behind the paper's IPv4-trie workload.
 *
 * The table is first expanded into a disjoint, complete set of leaf
 * prefixes (leaf pushing; holes get an explicit no-route leaf), then
 * compressed:
 *  - path compression: chains with no branching are skipped,
 *  - level compression: a node branches on `branch` bits at once,
 *    with all 2^branch children stored contiguously.
 *
 * Node encoding (one 32-bit word, same in host and simulated memory):
 *     [31:27] branch   (0 = leaf)
 *     [26:20] skip
 *     [19:0]  adr      (first-child node index, or leaf-table index)
 *
 * Leaf-table entry (16 bytes in simulated memory):
 *     +0 key   +4 prefix length   +8 next hop   +12 pad
 */

#ifndef PB_ROUTE_LCTRIE_HH
#define PB_ROUTE_LCTRIE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "route/prefix.hh"

namespace pb::route
{

/** Field layout of the packed LC-trie. */
namespace lclayout
{

constexpr unsigned branchBits = 5;
constexpr unsigned skipBits = 7;
constexpr unsigned adrBits = 20;
constexpr unsigned maxBranch = 16;

constexpr uint32_t leafOffKey = 0;
constexpr uint32_t leafOffLen = 4;
constexpr uint32_t leafOffNextHop = 8;
constexpr uint32_t leafSize = 16;

/** Pack a node word. */
constexpr uint32_t
packNode(uint32_t branch, uint32_t skip, uint32_t adr)
{
    return (branch << 27) | (skip << 20) | adr;
}

constexpr uint32_t nodeBranch(uint32_t node) { return node >> 27; }
constexpr uint32_t nodeSkip(uint32_t node)
{
    return (node >> 20) & 0x7f;
}
constexpr uint32_t nodeAdr(uint32_t node) { return node & 0xfffff; }

} // namespace lclayout

/** LC-trie with host lookup and sim-image export. */
class LcTrie
{
  public:
    /** Build from @p entries (need not contain a default route). */
    explicit LcTrie(const std::vector<RouteEntry> &entries);

    /** Longest-prefix match; noRoute if nothing matches. */
    uint32_t lookup(uint32_t addr) const;

    size_t numNodes() const { return nodes.size(); }
    size_t numLeaves() const { return leaves.size(); }

    /** Average depth (node visits) over all leaves, for reports. */
    double averageDepth() const;

    /**
     * Pack the trie for simulated memory: node words followed by the
     * leaf table (16-byte records), leaf table aligned to 16 bytes.
     *
     * @param base_addr            address of the first node word
     * @param[out] leaf_base_addr  address of the first leaf record
     */
    std::vector<uint32_t> packImage(uint32_t base_addr,
                                    uint32_t &leaf_base_addr) const;

  private:
    struct Leaf
    {
        uint32_t key;
        uint8_t len;
        uint32_t nextHop;
    };

    /** Recursive build over a disjoint complete leaf cover. */
    void build(std::vector<Leaf> cover, unsigned pre, size_t slot);

    /** Intern a leaf record, deduplicating repeats. */
    uint32_t internLeaf(const Leaf &leaf);

    std::vector<uint32_t> nodes; ///< packed node words
    std::vector<Leaf> leaves;
};

} // namespace pb::route

#endif // PB_ROUTE_LCTRIE_HH
