/**
 * @file
 * Binary radix trie for longest-prefix match (the IPv4-radix
 * workload's data structure).
 *
 * This mirrors the paper's use of the BSD radix code in its
 * "straightforward, not particularly optimized" role: a one-bit-at-
 * a-time radix trie descent, one node per tested bit, with the
 * longest matching route remembered along the way.  (The BSD tree's
 * path compression is deliberately absent — the paper contrasts this
 * implementation against the compressed LC-trie, and the per-packet
 * cost of the radix workload comes from walking one node per bit.)
 *
 * The same node layout is used host-side (index arena) and inside
 * simulated memory (packed image), so the host lookup is a
 * bit-exact reference for the NPE32 application.
 *
 * Simulated node layout (16 bytes, word-aligned):
 *   +0  left child address  (0 = none)
 *   +4  right child address (0 = none)
 *   +8  route valid flag    (0 / 1)
 *   +12 next hop
 */

#ifndef PB_ROUTE_RADIX_HH
#define PB_ROUTE_RADIX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "route/prefix.hh"

namespace pb::route
{

/** Byte offsets of the packed radix node fields. */
namespace radixlayout
{

constexpr uint32_t offLeft = 0;
constexpr uint32_t offRight = 4;
constexpr uint32_t offValid = 8;
constexpr uint32_t offNextHop = 12;
constexpr uint32_t nodeSize = 16;

} // namespace radixlayout

/** Binary radix trie with host lookup and sim-image export. */
class RadixTable
{
  public:
    /** Build the trie from @p entries. */
    explicit RadixTable(const std::vector<RouteEntry> &entries);

    /** Longest-prefix match; noRoute if nothing matches. */
    uint32_t lookup(uint32_t addr) const;

    /** Number of trie nodes. */
    size_t numNodes() const { return nodes.size(); }

    /**
     * Pack the trie into 32-bit words for simulated memory.
     *
     * @param base_addr address words[0] will occupy; child pointers
     *                  in the image are absolute simulated addresses
     * @return packed words; the root node is at @p base_addr
     */
    std::vector<uint32_t> packImage(uint32_t base_addr) const;

  private:
    struct Node
    {
        int32_t left = -1;
        int32_t right = -1;
        bool hasRoute = false;
        uint32_t nextHop = 0;
    };

    std::vector<Node> nodes;
};

} // namespace pb::route

#endif // PB_ROUTE_RADIX_HH
