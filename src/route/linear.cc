/**
 * @file
 * Linear-scan LPM implementation.
 */

#include "linear.hh"

#include "common/bitops.hh"

namespace pb::route
{

uint32_t
LinearLpm::lookup(uint32_t addr) const
{
    int best_len = -1;
    uint32_t best_hop = noRoute;
    for (const auto &entry : table) {
        if ((addr & prefixMask(entry.len)) == entry.prefix &&
            static_cast<int>(entry.len) > best_len) {
            best_len = entry.len;
            best_hop = entry.nextHop;
        }
    }
    return best_hop;
}

} // namespace pb::route
