/**
 * @file
 * Synthetic routing-table generation.
 */

#include "prefix.hh"

#include <set>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace pb::route
{

namespace
{

/**
 * BGP-like prefix length distribution: strongly peaked at /24, with
 * mass at /16 and /19-/22, a little at /8 and /28+.
 */
uint8_t
sampleLen(Rng &rng)
{
    static const std::vector<double> weights = {
        // len:  8    9   10   11   12   13   14   15   16
        0.5, 0.2, 0.3, 0.4, 0.8, 1.0, 1.2, 1.5, 8.0,
        // len: 17   18   19   20   21   22   23   24
        2.0, 3.0, 6.0, 5.0, 4.5, 5.5, 4.0, 55.0,
        // len: 25   26   27   28   29   30
        0.5, 0.4, 0.3, 0.3, 0.2, 0.1,
    };
    return static_cast<uint8_t>(8 + rng.weighted(weights));
}

std::vector<RouteEntry>
generate(uint32_t n, uint32_t seed, uint8_t min_len, uint8_t max_len,
         bool all_slash8)
{
    Rng rng(seed ^ 0x0a11e57u);
    std::vector<RouteEntry> table;
    std::set<std::pair<uint32_t, uint8_t>> seen;

    auto add = [&](uint32_t prefix, uint8_t len) -> bool {
        prefix &= pb::prefixMask(len);
        if (!seen.emplace(prefix, len).second)
            return false;
        table.push_back(
            {prefix, len, 1 + rng.below(numInterfaces)});
        return true;
    };

    // Default route so every address resolves.
    add(0, 0);
    if (all_slash8) {
        for (uint32_t top = 0; top < 256; top++)
            add(top << 24, 8);
    }

    uint32_t added = 0;
    while (added < n) {
        uint8_t len = sampleLen(rng);
        if (len < min_len)
            len = min_len;
        if (len > max_len)
            len = max_len;
        if (add(rng.next(), len))
            added++;
    }
    return table;
}

} // namespace

std::vector<RouteEntry>
generateCoreTable(uint32_t n, uint32_t seed)
{
    return generate(n, seed, 8, 30, true);
}

std::vector<RouteEntry>
generateSmallTable(uint32_t n, uint32_t seed)
{
    return generate(n, seed, 8, 24, false);
}

} // namespace pb::route
