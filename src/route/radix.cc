/**
 * @file
 * Binary radix trie implementation.
 */

#include "radix.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace pb::route
{

RadixTable::RadixTable(const std::vector<RouteEntry> &entries)
{
    nodes.push_back(Node{}); // root

    for (const auto &entry : entries) {
        if (entry.len > 32)
            fatal("radix: prefix length %u out of range", entry.len);
        if ((entry.prefix & ~prefixMask(entry.len)) != 0)
            fatal("radix: prefix has bits below its mask");
        int32_t at = 0;
        for (unsigned depth = 0; depth < entry.len; depth++) {
            bool right = bit(entry.prefix, 31 - depth) != 0;
            int32_t &child = right ? nodes[at].right : nodes[at].left;
            if (child < 0) {
                child = static_cast<int32_t>(nodes.size());
                // NOTE: `child` may dangle after push_back; re-read.
                int32_t fresh = child;
                nodes.push_back(Node{});
                at = fresh;
            } else {
                at = child;
            }
        }
        nodes[at].hasRoute = true;
        nodes[at].nextHop = entry.nextHop;
    }
}

uint32_t
RadixTable::lookup(uint32_t addr) const
{
    uint32_t best = noRoute;
    int32_t at = 0;
    unsigned depth = 0;
    while (at >= 0) {
        const Node &node = nodes[at];
        if (node.hasRoute)
            best = node.nextHop;
        if (depth >= 32)
            break;
        at = bit(addr, 31 - depth) ? node.right : node.left;
        depth++;
    }
    return best;
}

std::vector<uint32_t>
RadixTable::packImage(uint32_t base_addr) const
{
    using namespace radixlayout;
    std::vector<uint32_t> words(nodes.size() * (nodeSize / 4), 0);
    auto addr_of = [&](int32_t idx) -> uint32_t {
        return idx < 0 ? 0
                       : base_addr + static_cast<uint32_t>(idx) * nodeSize;
    };
    for (size_t i = 0; i < nodes.size(); i++) {
        size_t w = i * (nodeSize / 4);
        words[w + offLeft / 4] = addr_of(nodes[i].left);
        words[w + offRight / 4] = addr_of(nodes[i].right);
        words[w + offValid / 4] = nodes[i].hasRoute ? 1 : 0;
        words[w + offNextHop / 4] = nodes[i].nextHop;
    }
    return words;
}

} // namespace pb::route
