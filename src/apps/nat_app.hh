/**
 * @file
 * NAT — network address and port translation (NAPT), one of the
 * paper's motivating router functions (Section II, RFC 1631).
 *
 * The application rewrites the source address of outgoing TCP/UDP
 * packets to one external address and the source port to a
 * per-binding external port, maintaining the binding table in
 * simulated memory with the same hash-and-chain structure as Flow
 * Classification.  Non-TCP/UDP IPv4 packets pass through unchanged.
 */

#ifndef PB_APPS_NAT_APP_HH
#define PB_APPS_NAT_APP_HH

#include "core/app.hh"
#include "flow/nat.hh"

namespace pb::apps
{

/** Source-NAT application. */
class NatApp : public core::Application
{
  public:
    /**
     * @param external_addr the NAT's public address
     * @param port_base     first external port handed out
     * @param num_buckets   binding hash buckets (power of two)
     */
    explicit NatApp(uint32_t external_addr = 0xc6336401, // 198.51.100.1
                    uint16_t port_base = 20000,
                    uint32_t num_buckets = 1024);

    std::string name() const override { return "nat"; }
    isa::Program setup(sim::Memory &mem) override;

    /** Host reference translator (bind order matches the program). */
    flow::NatTable &reference() { return table; }

    /** Bindings the simulated table currently holds. */
    uint32_t simBindingCount(const sim::Memory &mem) const;

  private:
    uint32_t extAddr;
    uint16_t portBase;
    uint32_t numBuckets;
    flow::NatTable table;
};

} // namespace pb::apps

#endif // PB_APPS_NAT_APP_HH
