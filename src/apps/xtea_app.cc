/**
 * @file
 * XTEA payload-encryption application.
 *
 * The payload is everything after the IP header, clamped to the
 * captured bytes; whole 8-byte blocks are encrypted in place (ECB),
 * a trailing fragment is passed through unmodified.
 */

#include "xtea_app.hh"

#include "apps/asmdefs.hh"
#include "isa/assembler.hh"
#include "net/ipv4.hh"

namespace pb::apps
{

XteaApp::XteaApp(std::array<uint32_t, 4> key) : xtea(key) {}

isa::Program
XteaApp::setup(sim::Memory &mem)
{
    for (unsigned i = 0; i < 4; i++)
        mem.write32(appDataBase + i * 4, xtea.keyWords()[i]);

    std::string src = asmPreamble();
    src += strprintf(".equ KEY_BASE, 0x%08x\n", appDataBase);
    src += R"(
main:
        # ---- locate the payload ----
        lbu  t0, 0(a0)
        srli t5, t0, 4
        li   at, 4
        bne  t5, at, drop
        andi t0, t0, 15
        slli t0, t0, 2          # header length
        lbu  t1, 2(a0)          # IP total length
        slli t1, t1, 8
        lbu  at, 3(a0)
        or   t1, t1, at
        bleu t1, a1, len_ok     # clamp to the captured bytes
        move t1, a1
len_ok:
        sub  t1, t1, t0         # payload length
        blt  t1, zero, drop
        add  t2, a0, t0         # payload pointer
        # ---- encrypt whole 8-byte blocks in place ----
blk_loop:
        li   at, 8
        blt  t1, at, done
        lw   s0, 0(t2)
        lw   s1, 4(t2)
        call encrypt_block
        sw   s0, 0(t2)
        sw   s1, 4(t2)
        addi t2, t2, 8
        addi t1, t1, -8
        b    blk_loop
done:
        li   a1, 0
        sys  SYS_SEND
drop:
        sys  SYS_DROP

        # encrypt_block: (s0, s1) -> XTEA(s0, s1).
        # Clobbers t3, t4, a2, a3, at.  Leaf function.
encrypt_block:
        li   t3, 0              # sum
        li   t4, 32             # rounds
round_loop:
        # v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3])
        slli a2, s1, 4
        srli a3, s1, 5
        xor  a2, a2, a3
        add  a2, a2, s1
        andi a3, t3, 3
        slli a3, a3, 2
        li   at, KEY_BASE
        add  a3, a3, at
        lw   a3, 0(a3)
        add  a3, a3, t3
        xor  a2, a2, a3
        add  s0, s0, a2
        # sum += delta
        li   at, 0x9e3779b9
        add  t3, t3, at
        # v1 += (((v0 << 4) ^ (v0 >> 5)) + v0)
        #       ^ (sum + key[(sum >> 11) & 3])
        slli a2, s0, 4
        srli a3, s0, 5
        xor  a2, a2, a3
        add  a2, a2, s0
        srli a3, t3, 11
        andi a3, a3, 3
        slli a3, a3, 2
        li   at, KEY_BASE
        add  a3, a3, at
        lw   a3, 0(a3)
        add  a3, a3, t3
        xor  a2, a2, a3
        add  s1, s1, a2
        addi t4, t4, -1
        bnez t4, round_loop
        ret
)";

    return isa::Assembler(sim::layout::textBase)
        .assemble(src, "xtea.s");
}

void
XteaApp::referenceProcess(net::Packet &packet) const
{
    if (packet.l3Len() < net::ipv4::minHeaderLen)
        return;
    net::Ipv4ConstView ip(packet.l3());
    if (ip.version() != 4)
        return;
    unsigned hlen = ip.headerLen();
    unsigned avail = std::min<unsigned>(ip.totalLen(), packet.l3Len());
    if (avail < hlen)
        return;
    xtea.encryptBuffer(packet.l3() + hlen, avail - hlen);
}

} // namespace pb::apps
