/**
 * @file
 * TSA application: anonymization tables in simulated memory plus the
 * NPE32 handler.
 *
 * Data layout (from appDataBase):
 *   +0                          top table (2^16 x 2 bytes)
 *   +topBytes                   replicated subtree bitmap (8 KiB)
 *   +topBytes+subtreeBytes      record write pointer (1 word)
 *   +topBytes+subtreeBytes+4    header records, 44-byte stride
 */

#include "tsa_app.hh"

#include "apps/asmdefs.hh"
#include "isa/assembler.hh"

namespace pb::apps
{

using namespace anon::tsalayout;

TsaApp::TsaApp(uint32_t key, uint32_t record_slots)
    : tsa(key), slots(record_slots)
{
    if (record_slots == 0)
        fatal("TsaApp: record ring needs at least one slot");
}

uint32_t
TsaApp::topBase() const
{
    return appDataBase;
}

uint32_t
TsaApp::subtreeBase() const
{
    return topBase() + topBytes;
}

uint32_t
TsaApp::recCtrl() const
{
    return subtreeBase() + subtreeBytes;
}

uint32_t
TsaApp::recCount() const
{
    return recCtrl() + 4;
}

uint32_t
TsaApp::recBase() const
{
    return recCtrl() + 8;
}

isa::Program
TsaApp::setup(sim::Memory &mem)
{
    // Top table: little-endian 16-bit entries (lhu loads them).
    const auto &top = tsa.topTable();
    std::vector<uint8_t> top_bytes(topBytes);
    for (size_t i = 0; i < top.size(); i++) {
        top_bytes[i * 2] = static_cast<uint8_t>(top[i]);
        top_bytes[i * 2 + 1] = static_cast<uint8_t>(top[i] >> 8);
    }
    mem.writeBlock(topBase(), top_bytes.data(), topBytes);
    mem.writeBlock(subtreeBase(), tsa.subtree().data(), subtreeBytes);
    mem.write32(recCtrl(), recBase());
    mem.write32(recCount(), 0);

    // The ring wraps after `slots` records (a measurement host
    // drains it in a real deployment).
    uint32_t rec_limit = recBase() + slots * recordStride;

    std::string src = asmPreamble();
    src += strprintf(".equ TOP_BASE, 0x%08x\n"
                     ".equ SUBTREE_BASE, 0x%08x\n"
                     ".equ REC_CTRL, 0x%08x\n"
                     ".equ REC_COUNT, 0x%08x\n"
                     ".equ REC_BASE, 0x%08x\n"
                     ".equ REC_LIMIT, 0x%08x\n"
                     ".equ REC_STRIDE, %u\n",
                     topBase(), subtreeBase(), recCtrl(), recCount(),
                     recBase(), rec_limit, recordStride);
    src += R"(
main:
        # ---- IPv4 sanity ----
        lbu  t0, 0(a0)
        srli t0, t0, 4
        li   at, 4
        bne  t0, at, drop
        # ---- anonymize source address ----
        lbu  t0, 12(a0)
        slli t0, t0, 8
        lbu  at, 13(a0)
        or   t0, t0, at
        slli t0, t0, 8
        lbu  at, 14(a0)
        or   t0, t0, at
        slli t0, t0, 8
        lbu  at, 15(a0)
        or   t0, t0, at
        call anonymize
        srli at, t1, 24
        sb   at, 12(a0)
        srli at, t1, 16
        sb   at, 13(a0)
        srli at, t1, 8
        sb   at, 14(a0)
        sb   t1, 15(a0)
        # ---- anonymize destination address ----
        lbu  t0, 16(a0)
        slli t0, t0, 8
        lbu  at, 17(a0)
        or   t0, t0, at
        slli t0, t0, 8
        lbu  at, 18(a0)
        or   t0, t0, at
        slli t0, t0, 8
        lbu  at, 19(a0)
        or   t0, t0, at
        call anonymize
        srli at, t1, 24
        sb   at, 16(a0)
        srli at, t1, 16
        sb   at, 17(a0)
        srli at, t1, 8
        sb   at, 18(a0)
        sb   t1, 19(a0)
        # ---- collect layer 3/4 headers ----
        li   t2, REC_CTRL
        lw   t3, 0(t2)          # record address
        lbu  t4, 9(a0)          # protocol decides L4 bytes kept
        li   at, 6
        li   t5, 36             # TCP: 20 + 16
        beq  t4, at, have_len
        li   at, 17
        li   t5, 28             # UDP: 20 + 8
        beq  t4, at, have_len
        li   t5, 24             # other: 20 + 4
have_len:
        sw   t5, 0(t3)          # record length word
        li   t4, 0
copy_loop:
        bge  t4, t5, copy_done
        add  at, a0, t4
        lw   s0, 0(at)
        add  at, t3, t4
        sw   s0, 4(at)
        addi t4, t4, 4
        b    copy_loop
copy_done:
        li   t4, REC_COUNT      # total records written
        lw   t5, 0(t4)
        addi t5, t5, 1
        sw   t5, 0(t4)
        addi t3, t3, REC_STRIDE
        li   at, REC_LIMIT
        blt  t3, at, rec_ok
        li   t3, REC_BASE       # ring wraps
rec_ok:
        sw   t3, 0(t2)
        li   a1, 0
        sys  SYS_SEND
drop:
        sys  SYS_DROP

        # anonymize: t0 = address -> t1 = anonymized address.
        # Clobbers t2-t5, s0, s1, a2, a3, at.  Leaf function.
anonymize:
        srli t1, t0, 16
        slli t1, t1, 1
        li   at, TOP_BASE
        add  t1, t1, at
        lhu  t1, 0(t1)          # anonymized top half
        andi t2, t0, 0xffff     # original bottom half
        li   t3, 0              # path of original bits
        li   t4, 0              # level base: (1 << level) - 1
        li   t5, 15             # bit position, 15 .. 0
        li   s1, 0              # anonymized bottom accumulator
anon_loop:
        srl  s0, t2, t5
        andi s0, s0, 1          # original bit
        add  a2, t4, t3         # subtree bit index
        srli a3, a2, 3
        li   at, SUBTREE_BASE
        add  a3, a3, at
        lbu  a3, 0(a3)
        andi a2, a2, 7
        srl  a3, a3, a2
        andi a3, a3, 1          # flip bit
        xor  a3, s0, a3
        slli s1, s1, 1
        or   s1, s1, a3
        slli t3, t3, 1
        or   t3, t3, s0
        slli t4, t4, 1
        addi t4, t4, 1
        addi t5, t5, -1
        bge  t5, zero, anon_loop
        slli t1, t1, 16
        or   t1, t1, s1
        ret
)";

    return isa::Assembler(sim::layout::textBase)
        .assemble(src, "tsa.s");
}

uint32_t
TsaApp::simRecordCount(const sim::Memory &mem) const
{
    return mem.read32(recCount());
}

uint32_t
TsaApp::simRecordLen(const sim::Memory &mem, uint32_t index) const
{
    return mem.read32(recBase() + index * recordStride);
}

std::vector<uint8_t>
TsaApp::simRecordData(const sim::Memory &mem, uint32_t index) const
{
    uint32_t len = simRecordLen(mem, index);
    std::vector<uint8_t> data(len);
    mem.readBlock(recBase() + index * recordStride + 4, data.data(),
                  len);
    return data;
}

} // namespace pb::apps
