/**
 * @file
 * IPv4-trie application: table image construction and NPE32 program.
 */

#include "ipv4_trie.hh"

#include "apps/asmdefs.hh"
#include "isa/assembler.hh"

namespace pb::apps
{

Ipv4TrieApp::Ipv4TrieApp(std::vector<route::RouteEntry> entries)
    : lcTrie(entries)
{}

isa::Program
Ipv4TrieApp::setup(sim::Memory &mem)
{
    uint32_t leaf_base = 0;
    std::vector<uint32_t> image =
        lcTrie.packImage(appDataBase, leaf_base);
    for (size_t i = 0; i < image.size(); i++) {
        mem.write32(appDataBase + static_cast<uint32_t>(i) * 4,
                    image[i]);
    }

    std::string src = asmPreamble();
    src += strprintf(".equ TRIE_BASE, 0x%08x\n"
                     ".equ LEAF_BASE, 0x%08x\n",
                     appDataBase, leaf_base);
    src += "main:\n";
    src += asmRfc1812Validate();
    // t1 = destination address.  LC-trie lookup:
    src += R"(
        # ---- LC-trie lookup ----
        li   t2, TRIE_BASE
        lw   t3, 0(t2)          # root node word
        srli t4, t3, 20
        andi t4, t4, 0x7f       # pos = skip(root)
trie_walk:
        srli t5, t3, 27         # branch
        beqz t5, trie_leaf
        sll  s0, t1, t4         # addr << pos
        li   at, 32
        sub  at, at, t5
        srl  s0, s0, at         # child index within this node
        li   at, 0xfffff
        and  s1, t3, at         # adr = first child node index
        add  s1, s1, s0
        slli s1, s1, 2
        li   at, TRIE_BASE
        add  s1, s1, at
        lw   t3, 0(s1)          # child node word
        add  t4, t4, t5         # pos += branch
        srli at, t3, 20
        andi at, at, 0x7f
        add  t4, t4, at         # pos += skip(child)
        b    trie_walk
trie_leaf:
        li   at, 0xfffff
        and  s0, t3, at         # leaf index
        slli s0, s0, 4
        li   at, LEAF_BASE
        add  s0, s0, at
        lw   t2, 0(s0)          # key
        lw   t3, 4(s0)          # prefix length
        lw   a1, 8(s0)          # next hop
        beqz t3, check_hop      # /0 matches everything
        li   at, 32
        sub  at, at, t3
        li   s1, -1
        sll  s1, s1, at         # prefix mask
        and  at, t1, s1
        bne  at, t2, drop       # covered by a no-route hole
check_hop:
        li   at, -1
        beq  a1, at, drop       # explicit no-route
)";
    src += asmRfc1812Forward();

    return isa::Assembler(sim::layout::textBase)
        .assemble(src, "ipv4_trie.s");
}

} // namespace pb::apps
