/**
 * @file
 * NAT application: binding table in simulated memory plus the NPE32
 * translation handler.
 */

#include "nat_app.hh"

#include "apps/asmdefs.hh"
#include "isa/assembler.hh"

namespace pb::apps
{

using namespace flow::natlayout;

NatApp::NatApp(uint32_t external_addr, uint16_t port_base,
               uint32_t num_buckets)
    : extAddr(external_addr),
      portBase(port_base),
      numBuckets(num_buckets),
      table(external_addr, port_base)
{
    if (num_buckets == 0 || (num_buckets & (num_buckets - 1)) != 0)
        fatal("NatApp: bucket count must be a power of two");
}

isa::Program
NatApp::setup(sim::Memory &mem)
{
    uint32_t buckets_addr = appDataBase + offBuckets;
    uint32_t heap_addr = buckets_addr + numBuckets * 4;
    mem.write32(appDataBase + offAllocNext, heap_addr);
    mem.write32(appDataBase + offBindingCount, 0);
    mem.write32(appDataBase + offNextPort, portBase);

    std::string src = asmPreamble();
    src += strprintf(".equ NAT_CTRL, 0x%08x\n"
                     ".equ NAT_COUNT, 0x%08x\n"
                     ".equ NAT_NEXTPORT, 0x%08x\n"
                     ".equ BUCKETS_BASE, 0x%08x\n"
                     ".equ BUCKET_MASK, %u\n"
                     ".equ EXT_IP, 0x%08x\n",
                     appDataBase, appDataBase + offBindingCount,
                     appDataBase + offNextPort, buckets_addr,
                     numBuckets - 1, extAddr);
    src += R"(
main:
        # Translate only canonical (IHL=5) TCP/UDP IPv4; everything
        # else passes through unchanged.
        lbu  t0, 0(a0)
        li   at, 0x45
        bne  t0, at, pass
        lbu  t4, 9(a0)          # protocol
        li   at, 6
        beq  t4, at, do_nat
        li   at, 17
        beq  t4, at, do_nat
pass:
        li   a1, 0
        sys  SYS_SEND
do_nat:
        # ---- binding key: source address + (port << 16 | proto) ----
        lbu  t3, 12(a0)
        slli t3, t3, 8
        lbu  at, 13(a0)
        or   t3, t3, at
        slli t3, t3, 8
        lbu  at, 14(a0)
        or   t3, t3, at
        slli t3, t3, 8
        lbu  at, 15(a0)
        or   t3, t3, at         # source address
        lbu  t5, 20(a0)
        slli t5, t5, 8
        lbu  at, 21(a0)
        or   t5, t5, at         # source port
        slli t5, t5, 16
        or   t5, t5, t4         # (port << 16) | proto
        # ---- hash into the binding buckets ----
        xor  t1, t3, t5
        srli at, t1, 16
        xor  t1, t1, at
        srli at, t1, 8
        xor  t1, t1, at
        li   at, BUCKET_MASK
        and  t1, t1, at
        slli t1, t1, 2
        li   at, BUCKETS_BASE
        add  t1, t1, at         # &bucket head
        lw   t2, 0(t1)
chain_loop:
        beqz t2, new_binding
        lw   at, 0(t2)
        bne  at, t3, next_node
        lw   at, 4(t2)
        bne  at, t5, next_node
        lw   s0, 8(t2)          # existing external port
        b    rewrite
next_node:
        lw   t2, 12(t2)
        b    chain_loop
new_binding:
        li   at, NAT_CTRL
        lw   t2, 0(at)          # allocNext
        sw   t3, 0(t2)
        sw   t5, 4(t2)
        li   at, NAT_NEXTPORT
        lw   s0, 0(at)          # allocate the next external port
        addi s1, s0, 1
        sw   s1, 0(at)
        sw   s0, 8(t2)
        lw   s1, 0(t1)          # link at the bucket head
        sw   s1, 12(t2)
        sw   t2, 0(t1)
        addi s1, t2, 16
        li   at, NAT_CTRL
        sw   s1, 0(at)
        li   at, NAT_COUNT
        lw   s1, 0(at)
        addi s1, s1, 1
        sw   s1, 0(at)
rewrite:
        # ---- source address <- EXT_IP ----
        li   t2, EXT_IP
        srli at, t2, 24
        sb   at, 12(a0)
        srli at, t2, 16
        sb   at, 13(a0)
        srli at, t2, 8
        sb   at, 14(a0)
        sb   t2, 15(a0)
        # ---- source port <- external port ----
        srli at, s0, 8
        sb   at, 20(a0)
        sb   s0, 21(a0)
        # ---- recompute the IP header checksum ----
        sb   zero, 10(a0)
        sb   zero, 11(a0)
        li   t0, 0
        li   t2, 0
        move t3, a0
nat_cksum:
        lhu  at, 0(t3)
        add  t0, t0, at
        addi t3, t3, 2
        addi t2, t2, 1
        li   at, 10
        blt  t2, at, nat_cksum
        srli at, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, at
        srli at, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, at
        li   at, 0xffff
        xor  t0, t0, at
        sh   t0, 10(a0)
        li   a1, 0
        sys  SYS_SEND
)";

    return isa::Assembler(sim::layout::textBase)
        .assemble(src, "nat.s");
}

uint32_t
NatApp::simBindingCount(const sim::Memory &mem) const
{
    return mem.read32(appDataBase + offBindingCount);
}

} // namespace pb::apps
