/**
 * @file
 * IPv4-trie: RFC1812 packet forwarding with an LC-trie routing table
 * (the paper's efficient forwarding workload, derived from Nilsson &
 * Karlsson).
 */

#ifndef PB_APPS_IPV4_TRIE_HH
#define PB_APPS_IPV4_TRIE_HH

#include "core/app.hh"
#include "route/lctrie.hh"

namespace pb::apps
{

/** LC-trie forwarding application. */
class Ipv4TrieApp : public core::Application
{
  public:
    /**
     * @param entries routing table (the paper used a small table for
     *                this application)
     */
    explicit Ipv4TrieApp(std::vector<route::RouteEntry> entries);

    std::string name() const override { return "ipv4-trie"; }
    isa::Program setup(sim::Memory &mem) override;

    /** Host-side reference lookup (bit-exact with the program). */
    const route::LcTrie &trie() const { return lcTrie; }

  private:
    route::LcTrie lcTrie;
};

} // namespace pb::apps

#endif // PB_APPS_IPV4_TRIE_HH
