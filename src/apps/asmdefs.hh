/**
 * @file
 * Shared assembly fragments and constants for the PacketBench
 * applications.
 *
 * Every application program is NPE32 assembly generated at setup()
 * time; the .equ constants are emitted from the same C++ constants
 * the host-side builders use, so the two sides cannot drift.
 */

#ifndef PB_APPS_ASMDEFS_HH
#define PB_APPS_ASMDEFS_HH

#include <string>

#include "common/logging.hh"
#include "sim/memmap.hh"

namespace pb::apps
{

/** Base address where applications place their tables. */
constexpr uint32_t appDataBase = sim::layout::dataBase;

/** Common .equ preamble: SYS codes and the packet memory base. */
inline std::string
asmPreamble()
{
    return strprintf(
        ".equ SYS_SEND, 1\n"
        ".equ SYS_DROP, 2\n"
        ".equ PKT, 0x%08x\n",
        sim::layout::packetBase);
}

/**
 * RFC 1812 ingress validation shared by the forwarding apps
 * (optimized style, used by IPv4-trie):
 *  - IPv4 version and IHL check,
 *  - full header-checksum verification,
 *  - TTL > 1 check,
 *  - destination address extraction.
 *
 * On fall-through: t1 = destination address (host order), packet
 * valid.  Jumps to `drop` otherwise.  Clobbers t0, t2, t3, at.
 */
inline std::string
asmRfc1812Validate()
{
    return R"(
        # ---- RFC1812: version / IHL ----
        lbu  t0, 0(a0)
        srli t2, t0, 4
        li   at, 4
        bne  t2, at, drop
        andi t2, t0, 15
        li   at, 5
        blt  t2, at, drop
        # ---- RFC1812: verify header checksum ----
        li   t0, 0              # sum
        li   t2, 0              # i
        move t3, a0
cksum_verify:
        lhu  at, 0(t3)
        add  t0, t0, at
        addi t3, t3, 2
        addi t2, t2, 1
        li   at, 10
        blt  t2, at, cksum_verify
        srli at, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, at
        srli at, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, at
        li   at, 0xffff
        bne  t0, at, drop
        # ---- RFC1812: TTL must be > 1 ----
        lbu  t0, 8(a0)
        li   at, 1
        bleu t0, at, drop
        # ---- RFC1812: martian source (0/8, 127/8) ----
        lbu  t0, 12(a0)
        beqz t0, drop
        li   at, 127
        beq  t0, at, drop
        # ---- destination address (network byte order) ----
        lbu  t1, 16(a0)
        slli t1, t1, 8
        lbu  at, 17(a0)
        or   t1, t1, at
        slli t1, t1, 8
        lbu  at, 18(a0)
        or   t1, t1, at
        slli t1, t1, 8
        lbu  at, 19(a0)
        or   t1, t1, at
        # ---- RFC1812: do not forward multicast (224/4) ----
        srli t0, t1, 28
        li   at, 0xe
        beq  t0, at, drop
)";
}

/**
 * RFC 1812 egress: decrement TTL and recompute the header checksum,
 * then send on the interface in a1.  Clobbers t0, t2, t3, at.
 */
inline std::string
asmRfc1812Forward()
{
    return R"(
        # ---- decrement TTL ----
        lbu  t0, 8(a0)
        addi t0, t0, -1
        sb   t0, 8(a0)
        # ---- recompute header checksum ----
        sb   zero, 10(a0)
        sb   zero, 11(a0)
        li   t0, 0
        li   t2, 0
        move t3, a0
cksum_fill:
        lhu  at, 0(t3)
        add  t0, t0, at
        addi t3, t3, 2
        addi t2, t2, 1
        li   at, 10
        blt  t2, at, cksum_fill
        srli at, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, at
        srli at, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, at
        li   at, 0xffff
        xor  t0, t0, at         # one's complement
        sh   t0, 10(a0)
        sys  SYS_SEND
drop:
        sys  SYS_DROP
)";
}

} // namespace pb::apps

#endif // PB_APPS_ASMDEFS_HH
