/**
 * @file
 * CRC-32 payload application: table-driven, byte at a time, exactly
 * the host pb::crc32() algorithm.
 */

#include "crc_app.hh"

#include "apps/asmdefs.hh"
#include "common/hash.hh"
#include "isa/assembler.hh"

namespace pb::apps
{

uint32_t
CrcApp::tableBase() const
{
    return appDataBase;
}

uint32_t
CrcApp::resultAddr() const
{
    return appDataBase + 256 * 4;
}

isa::Program
CrcApp::setup(sim::Memory &mem)
{
    const uint32_t *table = crc32Table();
    for (unsigned i = 0; i < 256; i++)
        mem.write32(tableBase() + i * 4, table[i]);
    mem.write32(resultAddr(), 0);

    std::string src = asmPreamble();
    src += strprintf(".equ CRCTAB, 0x%08x\n"
                     ".equ RESULT, 0x%08x\n",
                     tableBase(), resultAddr());
    src += R"(
main:
        # crc = 0xffffffff; over all captured bytes (a1 of them)
        li   t0, -1
        li   t1, 0
crc_loop:
        bge  t1, a1, crc_done
        add  at, a0, t1
        lbu  t2, 0(at)
        xor  t2, t2, t0
        andi t2, t2, 0xff
        slli t2, t2, 2
        li   at, CRCTAB
        add  t2, t2, at
        lw   t2, 0(t2)
        srli t0, t0, 8
        xor  t0, t0, t2
        addi t1, t1, 1
        b    crc_loop
crc_done:
        li   at, -1
        xor  t0, t0, at
        li   at, RESULT
        sw   t0, 0(at)
        li   a1, 0
        sys  SYS_SEND
)";

    return isa::Assembler(sim::layout::textBase)
        .assemble(src, "crc32.s");
}

uint32_t
CrcApp::simResult(const sim::Memory &mem) const
{
    return mem.read32(resultAddr());
}

} // namespace pb::apps
