/**
 * @file
 * Flow classification application.
 *
 * The handler copies the 5-tuple bytes onto the stack, hashes them
 * with Jenkins one-at-a-time (the same function the host reference
 * uses), indexes the bucket array, walks the chain, and either
 * updates the matching flow's counters or allocates a new node from
 * the bump heap.
 */

#include "flow_class.hh"

#include "apps/asmdefs.hh"
#include "isa/assembler.hh"

namespace pb::apps
{

using namespace flow::flowlayout;

FlowClassApp::FlowClassApp(uint32_t num_buckets)
    : numBuckets(num_buckets)
{
    if (num_buckets == 0 || (num_buckets & (num_buckets - 1)) != 0)
        fatal("FlowClassApp: bucket count must be a power of two");
}

uint32_t
FlowClassApp::bucketsAddr() const
{
    return appDataBase + offBuckets;
}

uint32_t
FlowClassApp::heapAddr() const
{
    return bucketsAddr() + numBuckets * 4;
}

isa::Program
FlowClassApp::setup(sim::Memory &mem)
{
    // Control block: bump-allocator pointer and flow counter.
    mem.write32(appDataBase + offAllocNext, heapAddr());
    mem.write32(appDataBase + offFlowCount, 0);

    std::string src = asmPreamble();
    src += strprintf(".equ FLOW_CTRL, 0x%08x\n"
                     ".equ BUCKETS_BASE, 0x%08x\n"
                     ".equ BUCKET_MASK, %u\n",
                     appDataBase, bucketsAddr(), numBuckets - 1);
    src += R"(
main:
        addi sp, sp, -16        # 4-word tuple struct
        # ---- IPv4 sanity ----
        lbu  t0, 0(a0)
        srli t2, t0, 4
        li   at, 4
        bne  t2, at, drop
        andi t5, t0, 15
        slli t5, t5, 2          # header length in bytes
        # ---- extract the 5-tuple into a stack struct ----
        lbu  s1, 12(a0)         # source address
        lbu  at, 13(a0)
        slli s1, s1, 8
        or   s1, s1, at
        lbu  at, 14(a0)
        slli s1, s1, 8
        or   s1, s1, at
        lbu  at, 15(a0)
        slli s1, s1, 8
        or   s1, s1, at
        sw   s1, 0(sp)
        lbu  a2, 16(a0)         # destination address
        lbu  at, 17(a0)
        slli a2, a2, 8
        or   a2, a2, at
        lbu  at, 18(a0)
        slli a2, a2, 8
        or   a2, a2, at
        lbu  at, 19(a0)
        slli a2, a2, 8
        or   a2, a2, at
        sw   a2, 4(sp)
        lbu  t4, 9(a0)          # protocol
        sw   t4, 12(sp)
        li   a3, 0              # ports word (0 unless TCP/UDP)
        li   at, 6
        beq  t4, at, have_ports
        li   at, 17
        beq  t4, at, have_ports
        b    ports_done
have_ports:
        add  t3, a0, t5
        lbu  a3, 0(t3)
        lbu  at, 1(t3)
        slli a3, a3, 8
        or   a3, a3, at
        lbu  at, 2(t3)
        slli a3, a3, 8
        or   a3, a3, at
        lbu  at, 3(t3)
        slli a3, a3, 8
        or   a3, a3, at
ports_done:
        sw   a3, 8(sp)
        # ---- total length (for the byte counter) -> s0 ----
        lbu  s0, 2(a0)
        slli s0, s0, 8
        lbu  at, 3(a0)
        or   s0, s0, at
        # ---- Jenkins one-at-a-time over the 4 tuple words ----
        li   t1, 0              # hash
        li   t2, 0              # byte offset
jloop:
        add  t0, sp, t2
        lw   t0, 0(t0)
        add  t1, t1, t0
        slli at, t1, 10
        add  t1, t1, at
        srli at, t1, 6
        xor  t1, t1, at
        addi t2, t2, 4
        li   at, 16
        blt  t2, at, jloop
        slli at, t1, 3
        add  t1, t1, at
        srli at, t1, 11
        xor  t1, t1, at
        slli at, t1, 15
        add  t1, t1, at
        # ---- bucket ----
        li   at, BUCKET_MASK
        and  t1, t1, at
        slli t1, t1, 2
        li   at, BUCKETS_BASE
        add  t1, t1, at         # &bucket head
        lw   t3, 0(t1)          # chain node
chain_loop:
        beqz t3, new_flow
        lw   at, 0(t3)
        bne  at, s1, next_node
        lw   at, 4(t3)
        bne  at, a2, next_node
        lw   at, 8(t3)
        bne  at, a3, next_node
        lw   at, 12(t3)
        bne  at, t4, next_node
        # ---- existing flow: update counters ----
        lw   at, 16(t3)
        addi at, at, 1
        sw   at, 16(t3)
        lw   at, 20(t3)
        add  at, at, s0
        sw   at, 20(t3)
        b    send_ok
next_node:
        lw   t3, 24(t3)
        b    chain_loop
new_flow:
        # ---- allocate and link a node ----
        li   at, FLOW_CTRL
        lw   t3, 0(at)          # allocNext
        sw   s1, 0(t3)
        sw   a2, 4(t3)
        sw   a3, 8(t3)
        sw   t4, 12(t3)
        li   t0, 1
        sw   t0, 16(t3)
        sw   s0, 20(t3)
        sw   zero, 28(t3)       # clear the reserved word
        lw   t0, 0(t1)          # old head
        sw   t0, 24(t3)
        sw   t3, 0(t1)          # bucket head = node
        addi t0, t3, 32
        li   at, FLOW_CTRL
        sw   t0, 0(at)
        li   at, FLOW_CTRL
        lw   t0, 4(at)
        addi t0, t0, 1
        sw   t0, 4(at)
send_ok:
        addi sp, sp, 16
        li   a1, 0
        sys  SYS_SEND
drop:
        addi sp, sp, 16
        sys  SYS_DROP
)";

    return isa::Assembler(sim::layout::textBase)
        .assemble(src, "flow_class.s");
}

uint32_t
FlowClassApp::simFlowCount(const sim::Memory &mem) const
{
    return mem.read32(appDataBase + offFlowCount);
}

flow::FlowStats
FlowClassApp::simLookup(const sim::Memory &mem,
                        const net::FiveTuple &tuple) const
{
    uint32_t bucket = flow::hashTuple(tuple) & (numBuckets - 1);
    uint32_t node = mem.read32(bucketsAddr() + bucket * 4);
    uint32_t ports =
        (static_cast<uint32_t>(tuple.srcPort) << 16) | tuple.dstPort;
    while (node != 0) {
        if (mem.read32(node + nodeOffSrc) == tuple.src &&
            mem.read32(node + nodeOffDst) == tuple.dst &&
            mem.read32(node + nodeOffPorts) == ports &&
            mem.read32(node + nodeOffProto) == tuple.proto) {
            return {mem.read32(node + nodeOffPackets),
                    mem.read32(node + nodeOffBytes)};
        }
        node = mem.read32(node + nodeOffNext);
    }
    return {};
}

} // namespace pb::apps
