/**
 * @file
 * XTEA payload encryption — a payload-processing application (PPA).
 *
 * The paper focuses its evaluation on header-processing applications
 * but notes PacketBench equally characterizes payload processing
 * (CommBench's PPA class).  This application encrypts the packet
 * payload in place with XTEA; its cost scales with payload size —
 * the defining PPA property the extension bench demonstrates.
 */

#ifndef PB_APPS_XTEA_APP_HH
#define PB_APPS_XTEA_APP_HH

#include "core/app.hh"
#include "net/packet.hh"
#include "payload/xtea.hh"

namespace pb::apps
{

/** Payload-encryption application. */
class XteaApp : public core::Application
{
  public:
    /** @param key 128-bit key as four words. */
    explicit XteaApp(std::array<uint32_t, 4> key = {0x00010203,
                                                    0x04050607,
                                                    0x08090a0b,
                                                    0x0c0d0e0f});

    std::string name() const override { return "xtea-enc"; }
    isa::Program setup(sim::Memory &mem) override;

    /** Host reference: apply the identical transform to @p packet. */
    void referenceProcess(net::Packet &packet) const;

    const payload::Xtea &cipher() const { return xtea; }

  private:
    payload::Xtea xtea;
};

} // namespace pb::apps

#endif // PB_APPS_XTEA_APP_HH
