/**
 * @file
 * IPv4-radix application: table image construction and NPE32
 * program in unoptimized-compiler style.
 *
 * Stack frame of main (64 bytes):
 *   0(sp)  p       packet pointer
 *   4(sp)  sum     checksum accumulator
 *   8(sp)  i       loop counter
 *  12(sp)  ttl
 *  16(sp)  dstb[4] destination address bytes, one word each
 *  32(sp)  node    current radix node address
 *  36(sp)  best    best next hop so far (-1 = none)
 *  40(sp)  depth
 *  44(sp)  b       current address bit
 *  48(sp)  saved lr
 */

#include "ipv4_radix.hh"

#include "apps/asmdefs.hh"
#include "isa/assembler.hh"

namespace pb::apps
{

Ipv4RadixApp::Ipv4RadixApp(std::vector<route::RouteEntry> entries)
    : table(entries)
{}

isa::Program
Ipv4RadixApp::setup(sim::Memory &mem)
{
    std::vector<uint32_t> image = table.packImage(appDataBase);
    if (image.size() * 4 > sim::layout::dataSize / 2)
        fatal("radix image too large for the data region");
    for (size_t i = 0; i < image.size(); i++) {
        mem.write32(appDataBase + static_cast<uint32_t>(i) * 4,
                    image[i]);
    }

    std::string src = asmPreamble();
    src += strprintf(".equ RADIX_ROOT, 0x%08x\n", appDataBase);
    src += R"(
main:
        addi sp, sp, -64
        sw   lr, 48(sp)
        sw   a0, 0(sp)
        # ---- version / IHL (locals on stack, -O0 style) ----
        lw   t0, 0(sp)
        lbu  t1, 0(t0)
        srli t2, t1, 4
        li   at, 4
        bne  t2, at, drop_frame
        lw   t0, 0(sp)
        lbu  t1, 0(t0)
        andi t2, t1, 15
        li   at, 5
        blt  t2, at, drop_frame
        # ---- verify header checksum ----
        sw   zero, 4(sp)
        sw   zero, 8(sp)
vloop:
        lw   t0, 8(sp)
        li   at, 10
        bge  t0, at, vdone
        lw   t0, 0(sp)
        lw   t1, 8(sp)
        slli t1, t1, 1
        add  t0, t0, t1
        lhu  t2, 0(t0)
        lw   t3, 4(sp)
        add  t3, t3, t2
        sw   t3, 4(sp)
        lw   t0, 8(sp)
        addi t0, t0, 1
        sw   t0, 8(sp)
        b    vloop
vdone:
        lw   t0, 4(sp)
        srli t1, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, t1
        srli t1, t0, 16
        andi t0, t0, 0xffff
        add  t0, t0, t1
        li   at, 0xffff
        bne  t0, at, drop_frame
        # ---- TTL > 1 ----
        lw   t0, 0(sp)
        lbu  t1, 8(t0)
        sw   t1, 12(sp)
        lw   t1, 12(sp)
        li   at, 1
        bleu t1, at, drop_frame
        # ---- martian source (0/8, 127/8) ----
        lw   t0, 0(sp)
        lbu  t1, 12(t0)
        beqz t1, drop_frame
        li   at, 127
        beq  t1, at, drop_frame
        # ---- destination bytes (BSD keys are byte strings) ----
        lw   t0, 0(sp)
        lbu  t1, 16(t0)
        sw   t1, 16(sp)
        lw   t0, 0(sp)
        lbu  t1, 17(t0)
        sw   t1, 20(sp)
        lw   t0, 0(sp)
        lbu  t1, 18(t0)
        sw   t1, 24(sp)
        lw   t0, 0(sp)
        lbu  t1, 19(t0)
        sw   t1, 28(sp)
        # ---- no multicast forwarding (224/4) ----
        lw   t0, 16(sp)
        srli t0, t0, 4
        li   at, 0xe
        beq  t0, at, drop_frame
        # ---- radix walk: node=root, best=-1, depth=0 ----
        li   t0, RADIX_ROOT
        sw   t0, 32(sp)
        li   t0, -1
        sw   t0, 36(sp)
        sw   zero, 40(sp)
walk_loop:
        lw   t0, 32(sp)
        beqz t0, walk_done
        # if (node->valid) best = node->hop
        lw   t0, 32(sp)
        lw   t1, 8(t0)
        beqz t1, walk_novalid
        lw   t0, 32(sp)
        lw   t1, 12(t0)
        sw   t1, 36(sp)
walk_novalid:
        # if (depth >= 32) break
        lw   t0, 40(sp)
        li   at, 32
        bge  t0, at, walk_done
        # b = (dstb[depth >> 3] >> (7 - (depth & 7))) & 1
        lw   t0, 40(sp)
        srli t1, t0, 3
        slli t1, t1, 2
        addi t2, sp, 16
        add  t2, t2, t1
        lw   t3, 0(t2)
        lw   t0, 40(sp)
        andi t0, t0, 7
        li   t1, 7
        sub  t1, t1, t0
        srl  t3, t3, t1
        andi t3, t3, 1
        sw   t3, 44(sp)
        # node = radix_step(node, b)
        lw   a0, 32(sp)
        lw   a1, 44(sp)
        call radix_step
        sw   a0, 32(sp)
        # depth++
        lw   t0, 40(sp)
        addi t0, t0, 1
        sw   t0, 40(sp)
        b    walk_loop
walk_done:
        lw   a1, 36(sp)
        li   at, -1
        beq  a1, at, drop_frame
        # restore and forward
        lw   a0, 0(sp)
        lw   lr, 48(sp)
        addi sp, sp, 64
)";
    src += asmRfc1812Forward();
    src += R"(
drop_frame:
        lw   lr, 48(sp)
        addi sp, sp, 64
        sys  SYS_DROP

        # child = bit ? node->right : node->left, with its own
        # frame, the way unoptimized compiled C calls behave.
radix_step:
        addi sp, sp, -16
        sw   a0, 0(sp)
        sw   a1, 4(sp)
        lw   at, 4(sp)
        beqz at, step_left
        lw   at, 0(sp)
        lw   a0, 4(at)
        b    step_done
step_left:
        lw   at, 0(sp)
        lw   a0, 0(at)
step_done:
        addi sp, sp, 16
        ret
)";

    return isa::Assembler(sim::layout::textBase)
        .assemble(src, "ipv4_radix.s");
}

} // namespace pb::apps
