/**
 * @file
 * IPv4-radix: RFC1812 packet forwarding with a binary radix-trie
 * routing table (the paper's straightforward, unoptimized forwarding
 * workload, modeled on the BSD radix code).
 *
 * The paper compiled the BSD implementation essentially as-is, so
 * this program is written the way unoptimized compiled C behaves:
 * every local lives in a stack slot and is re-loaded around each
 * use, the per-node step is a helper function with its own frame,
 * and the address is consulted byte-wise (BSD keys are byte
 * strings).  That style — not the trie algorithm itself — is what
 * makes IPv4-radix an order of magnitude heavier than IPv4-trie,
 * exactly the contrast the paper draws.
 */

#ifndef PB_APPS_IPV4_RADIX_HH
#define PB_APPS_IPV4_RADIX_HH

#include "core/app.hh"
#include "route/radix.hh"

namespace pb::apps
{

/** Radix-trie forwarding application. */
class Ipv4RadixApp : public core::Application
{
  public:
    /** @param entries routing table (MAE-WEST-sized in the paper). */
    explicit Ipv4RadixApp(std::vector<route::RouteEntry> entries);

    std::string name() const override { return "ipv4-radix"; }
    isa::Program setup(sim::Memory &mem) override;

    /** Host-side reference lookup (bit-exact with the program). */
    const route::RadixTable &radix() const { return table; }

  private:
    route::RadixTable table;
};

} // namespace pb::apps

#endif // PB_APPS_IPV4_RADIX_HH
