/**
 * @file
 * Flow Classification: packets are classified into flows by their
 * 5-tuple, which is hashed into a bucket array with chained
 * collision resolution (the paper's firewall / NAT / monitoring
 * kernel).
 */

#ifndef PB_APPS_FLOW_CLASS_HH
#define PB_APPS_FLOW_CLASS_HH

#include "core/app.hh"
#include "flow/flowtable.hh"

namespace pb::apps
{

/** Flow classification application. */
class FlowClassApp : public core::Application
{
  public:
    /** @param num_buckets hash bucket count (power of two). */
    explicit FlowClassApp(uint32_t num_buckets = 4096);

    std::string name() const override { return "flow-class"; }
    isa::Program setup(sim::Memory &mem) override;

    uint32_t bucketCount() const { return numBuckets; }

    /** @name Simulated-state readers (for tests and analyses). @{ */
    /** Number of flows the simulated table currently holds. */
    uint32_t simFlowCount(const sim::Memory &mem) const;
    /** Look up a flow in simulated memory; packets==0 if absent. */
    flow::FlowStats simLookup(const sim::Memory &mem,
                              const net::FiveTuple &tuple) const;
    /** @} */

  private:
    uint32_t numBuckets;
    uint32_t bucketsAddr() const;
    uint32_t heapAddr() const;
};

} // namespace pb::apps

#endif // PB_APPS_FLOW_CLASS_HH
