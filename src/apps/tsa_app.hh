/**
 * @file
 * TSA: top-hashed subtree-replicated prefix-preserving IP address
 * anonymization, plus per-packet layer 3/4 header collection (the
 * paper's measurement-infrastructure workload).
 */

#ifndef PB_APPS_TSA_APP_HH
#define PB_APPS_TSA_APP_HH

#include "anon/tsa.hh"
#include "core/app.hh"

namespace pb::apps
{

/** TSA anonymization application. */
class TsaApp : public core::Application
{
  public:
    /**
     * @param key anonymization key (tables derive from it)
     * @param record_slots size of the on-chip header-record ring.
     *        Collected headers are drained by the measurement host
     *        in a real deployment, so the ring stays small — this
     *        is what keeps TSA's data footprint tiny in the paper's
     *        Table IV.
     */
    explicit TsaApp(uint32_t key = 0x7e57a0ff,
                    uint32_t record_slots = 64);

    std::string name() const override { return "tsa"; }
    isa::Program setup(sim::Memory &mem) override;

    /** Host-side reference anonymizer (bit-exact). */
    const anon::TsaAnonymizer &anonymizer() const { return tsa; }

    /** @name Simulated header-record readers. @{ */
    /** Total records the simulated app has written (may exceed the
     *  ring size; older records are overwritten). */
    uint32_t simRecordCount(const sim::Memory &mem) const;
    /** Length word of ring slot @p index (index < recordSlots). */
    uint32_t simRecordLen(const sim::Memory &mem, uint32_t index) const;
    /** Read the payload bytes of ring slot @p index. */
    std::vector<uint8_t> simRecordData(const sim::Memory &mem,
                                       uint32_t index) const;
    /** @} */

    /** Record stride in simulated memory (length word + data). */
    static constexpr uint32_t recordStride = 44;

    /** Size of the record ring. */
    uint32_t recordSlots() const { return slots; }

  private:
    uint32_t topBase() const;
    uint32_t subtreeBase() const;
    uint32_t recCtrl() const;
    uint32_t recCount() const;
    uint32_t recBase() const;

    anon::TsaAnonymizer tsa;
    uint32_t slots;
};

} // namespace pb::apps

#endif // PB_APPS_TSA_APP_HH
