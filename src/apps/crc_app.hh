/**
 * @file
 * CRC-32 — a payload-processing application (PPA).
 *
 * CommBench's checksum kernel: the application computes the IEEE
 * CRC-32 over the captured packet bytes with a 256-entry lookup
 * table in simulated data memory, and stores the result in a result
 * word.  Per-packet cost scales linearly with packet size.
 */

#ifndef PB_APPS_CRC_APP_HH
#define PB_APPS_CRC_APP_HH

#include "core/app.hh"

namespace pb::apps
{

/** CRC-32 payload application. */
class CrcApp : public core::Application
{
  public:
    CrcApp() = default;

    std::string name() const override { return "crc32"; }
    isa::Program setup(sim::Memory &mem) override;

    /** The CRC the simulated app computed for the last packet. */
    uint32_t simResult(const sim::Memory &mem) const;

  private:
    uint32_t tableBase() const;
    uint32_t resultAddr() const;
};

} // namespace pb::apps

#endif // PB_APPS_CRC_APP_HH
