/**
 * @file
 * Structured run report implementation.
 *
 * The writer streams JSON directly (instead of building a JsonValue)
 * so uint64 counters serialize exactly over the full range.
 */

#include "report.hh"

#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace pb::obs
{

RunMeta
RunMeta::fromArgv(int argc, char **argv)
{
    RunMeta meta;
    if (argc > 0 && argv[0]) {
        std::string path = argv[0];
        size_t slash = path.find_last_of('/');
        meta.tool = slash == std::string::npos
                        ? path
                        : path.substr(slash + 1);
    }
    for (int i = 1; i < argc; i++)
        meta.args.emplace_back(argv[i]);
    return meta;
}

std::string
gitDescribe()
{
    FILE *pipe = popen(
        "git describe --always --dirty 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[128] = {};
    std::string out;
    if (fgets(buf, sizeof(buf), pipe))
        out = buf;
    pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

std::string
isoTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

namespace
{

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
gaugeToJson(double v)
{
    // JSON has no inf/nan; gauges are ratios and rates, so clamp to
    // null rather than emit an invalid document.
    if (v != v || v - v != 0.0)
        return "null";
    return strprintf("%.17g", v);
}

void
writeHistogram(std::ostream &out, const Histogram::Snapshot &hist,
               const char *pad)
{
    out << "{\n";
    out << pad << "  \"count\": " << hist.count << ",\n";
    out << pad << "  \"sum\": " << hist.sum << ",\n";
    out << pad << "  \"min\": " << hist.min << ",\n";
    out << pad << "  \"max\": " << hist.max << ",\n";
    out << pad << "  \"mean\": "
        << strprintf("%.17g", hist.mean()) << ",\n";
    out << pad << "  \"p50\": " << hist.quantile(0.5) << ",\n";
    out << pad << "  \"p99\": " << hist.quantile(0.99) << ",\n";
    out << pad << "  \"buckets\": [";
    for (size_t i = 0; i < hist.buckets.size(); i++) {
        if (i)
            out << ", ";
        out << "{\"le\": " << Histogram::bucketUpperBound(i)
            << ", \"count\": " << hist.buckets[i] << "}";
    }
    out << "]\n" << pad << "}";
}

void
writeSection(std::ostream &out, const char *name, MetricKind kind,
             const std::vector<Registry::Entry> &entries, bool last)
{
    out << "  \"" << name << "\": {";
    bool first = true;
    for (const Registry::Entry &e : entries) {
        if (e.kind != kind)
            continue;
        if (!first)
            out << ",";
        first = false;
        out << "\n    " << quoted(e.name) << ": ";
        switch (kind) {
          case MetricKind::Counter:
            out << e.counter;
            break;
          case MetricKind::Gauge:
            out << gaugeToJson(e.gauge);
            break;
          case MetricKind::Histogram:
            writeHistogram(out, e.hist, "    ");
            break;
        }
    }
    out << (first ? "}" : "\n  }") << (last ? "\n" : ",\n");
}

} // namespace

void
writeRunReport(std::ostream &out, const RunMeta &meta,
               const Registry &registry)
{
    std::vector<Registry::Entry> entries = registry.snapshot();

    out << "{\n";
    out << "  \"schema\": \"packetbench.report.v1\",\n";
    out << "  \"meta\": {\n";
    out << "    \"tool\": " << quoted(meta.tool) << ",\n";
    out << "    \"args\": [";
    for (size_t i = 0; i < meta.args.size(); i++) {
        if (i)
            out << ", ";
        out << quoted(meta.args[i]);
    }
    out << "],\n";
    out << "    \"created\": " << quoted(isoTimestamp()) << ",\n";
    out << "    \"git\": " << quoted(gitDescribe()) << ",\n";
    out << "    \"wall_seconds\": "
        << strprintf("%.6f", meta.wallSeconds);
    for (const auto &[key, value] : meta.extra)
        out << ",\n    " << quoted(key) << ": " << quoted(value);
    out << "\n  },\n";
    writeSection(out, "counters", MetricKind::Counter, entries,
                 false);
    writeSection(out, "gauges", MetricKind::Gauge, entries, false);
    writeSection(out, "histograms", MetricKind::Histogram, entries,
                 true);
    out << "}\n";
}

std::string
renderRunReport(const RunMeta &meta, const Registry &registry)
{
    std::ostringstream out;
    writeRunReport(out, meta, registry);
    return out.str();
}

void
writeRunReportFile(const std::string &path, const RunMeta &meta,
                   const Registry &registry)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write report to '%s'", path.c_str());
    writeRunReport(out, meta, registry);
}

} // namespace pb::obs
