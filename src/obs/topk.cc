/**
 * @file
 * Space-saving top-K implementation.
 */

#include "topk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pb::obs
{

std::string
formatFlowId(const FlowId &id)
{
    return strprintf("%u.%u.%u.%u:%u > %u.%u.%u.%u:%u/%u",
                     id.src >> 24, (id.src >> 16) & 0xff,
                     (id.src >> 8) & 0xff, id.src & 0xff, id.srcPort,
                     id.dst >> 24, (id.dst >> 16) & 0xff,
                     (id.dst >> 8) & 0xff, id.dst & 0xff, id.dstPort,
                     id.proto);
}

FlowTopK::FlowTopK(uint32_t capacity) : cap(std::max(capacity, 1u))
{
    entries.reserve(cap);
}

void
FlowTopK::observe(uint64_t key, const FlowId &id, uint64_t bytes,
                  bool fault)
{
    std::lock_guard<std::mutex> lock(mu);
    observed++;
    auto it = index.find(key);
    if (it != index.end()) {
        Entry &e = entries[it->second];
        e.packets++;
        e.bytes += bytes;
        if (fault)
            e.faults++;
        return;
    }
    if (entries.size() < cap) {
        Entry e;
        e.key = key;
        e.id = id;
        e.packets = 1;
        e.bytes = bytes;
        e.faults = fault ? 1 : 0;
        index.emplace(key, entries.size());
        entries.push_back(e);
        return;
    }
    // Table full: evict the minimum-count entry and let the newcomer
    // inherit its count (the space-saving overestimate).  The evicted
    // count becomes the newcomer's error bound; bytes and faults are
    // not inherited — they restart as exact since-takeover values.
    // The linear min scan runs only on a miss with a full table and
    // cap is small (tens), so the cost stays bounded per packet.
    size_t min_at = 0;
    for (size_t i = 1; i < entries.size(); i++) {
        if (entries[i].packets < entries[min_at].packets)
            min_at = i;
    }
    Entry &slot = entries[min_at];
    index.erase(slot.key);
    index.emplace(key, min_at);
    slot.key = key;
    slot.id = id;
    slot.error = slot.packets;
    slot.packets++;
    slot.bytes = bytes;
    slot.faults = fault ? 1 : 0;
}

std::vector<FlowTopK::Entry>
FlowTopK::top(size_t n) const
{
    std::vector<Entry> out;
    {
        std::lock_guard<std::mutex> lock(mu);
        out = entries;
    }
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.packets != b.packets)
                      return a.packets > b.packets;
                  return a.key < b.key; // deterministic ties
              });
    if (n && out.size() > n)
        out.resize(n);
    return out;
}

uint64_t
FlowTopK::observedPackets() const
{
    std::lock_guard<std::mutex> lock(mu);
    return observed;
}

void
FlowTopK::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    index.clear();
    observed = 0;
}

} // namespace pb::obs
