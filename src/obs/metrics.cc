/**
 * @file
 * Metrics registry implementation.
 */

#include "metrics.hh"

#include <bit>
#include <cmath>
#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace pb::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

namespace
{

size_t
bucketOf(uint64_t sample)
{
    // Power-of-two upper edges: 0 | 1 | 2 | (2,4] | (4,8] | ...
    // bit_width(sample - 1) + 1 maps 2^k onto the bucket whose
    // inclusive upper edge is 2^k (bucketing bit_width(sample)
    // directly would push exact powers of two one bucket too high).
    if (sample == 0)
        return 0;
    return static_cast<size_t>(std::bit_width(sample - 1)) + 1;
}

} // namespace

void
Histogram::observe(uint64_t sample)
{
    std::lock_guard<std::mutex> lock(mu);
    if (count == 0 || sample < min)
        min = sample;
    if (sample > max)
        max = sample;
    count++;
    sum += sample;
    buckets[bucketOf(sample)]++;
}

uint64_t
Histogram::bucketUpperBound(size_t index)
{
    if (index == 0)
        return 0;
    if (index >= 65)
        return UINT64_MAX; // true edge 2^64 does not fit in uint64
    return uint64_t{1} << (index - 1);
}

uint64_t
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile sample, 1-based.
    uint64_t rank = static_cast<uint64_t>(q * (count - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); i++) {
        seen += buckets[i];
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return max;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    Snapshot snap;
    snap.count = count;
    snap.sum = sum;
    snap.min = min;
    snap.max = max;
    size_t last = 0;
    for (size_t i = 0; i < numBuckets; i++) {
        if (buckets[i])
            last = i + 1;
    }
    snap.buckets.assign(buckets, buckets + last);
    return snap;
}

Registry::Slot &
Registry::slot(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = slots.find(name);
    if (it == slots.end()) {
        Slot s;
        s.kind = kind;
        switch (kind) {
          case MetricKind::Counter:
            s.c = std::make_unique<Counter>();
            break;
          case MetricKind::Gauge:
            s.g = std::make_unique<Gauge>();
            break;
          case MetricKind::Histogram:
            s.h = std::make_unique<Histogram>();
            break;
        }
        it = slots.emplace(name, std::move(s)).first;
    } else if (it->second.kind != kind) {
        panic("metric '%s' is a %s, requested as %s", name.c_str(),
              metricKindName(it->second.kind), metricKindName(kind));
    }
    return it->second;
}

Counter &
Registry::counter(const std::string &name)
{
    return *slot(name, MetricKind::Counter).c;
}

Gauge &
Registry::gauge(const std::string &name)
{
    return *slot(name, MetricKind::Gauge).g;
}

Histogram &
Registry::histogram(const std::string &name)
{
    return *slot(name, MetricKind::Histogram).h;
}

std::vector<Registry::Entry>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<Entry> entries;
    entries.reserve(slots.size());
    // std::map iterates in name order, so the snapshot is already
    // deterministic.
    for (const auto &[name, s] : slots) {
        Entry e;
        e.name = name;
        e.kind = s.kind;
        switch (s.kind) {
          case MetricKind::Counter:
            e.counter = s.c->value();
            break;
          case MetricKind::Gauge:
            e.gauge = s.g->value();
            break;
          case MetricKind::Histogram:
            e.hist = s.h->snapshot();
            break;
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return slots.size();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, s] : slots) {
        switch (s.kind) {
          case MetricKind::Counter:
            s.c->value_.store(0, std::memory_order_relaxed);
            break;
          case MetricKind::Gauge:
            s.g->value_.store(0.0, std::memory_order_relaxed);
            break;
          case MetricKind::Histogram: {
            std::lock_guard<std::mutex> hlock(s.h->mu);
            s.h->count = s.h->sum = s.h->min = s.h->max = 0;
            for (auto &bucket : s.h->buckets)
                bucket = 0;
            break;
          }
        }
    }
}

namespace
{

/** Flatten a dotted metric name into [a-zA-Z0-9_:]. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/** Render a gauge value; Prometheus allows NaN and +/-Inf. */
std::string
promValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return strprintf("%.17g", v);
}

} // namespace

void
Registry::writePrometheus(std::ostream &out) const
{
    for (const Entry &e : snapshot()) {
        std::string name = promName(e.name);
        out << "# TYPE " << name << " "
            << metricKindName(e.kind) << "\n";
        switch (e.kind) {
          case MetricKind::Counter:
            out << name << " " << e.counter << "\n";
            break;
          case MetricKind::Gauge:
            out << name << " " << promValue(e.gauge) << "\n";
            break;
          case MetricKind::Histogram: {
            // Prometheus histogram buckets are cumulative and end
            // with +Inf; the snapshot's are per-bucket and trimmed.
            uint64_t cumulative = 0;
            for (size_t i = 0; i < e.hist.buckets.size(); i++) {
                cumulative += e.hist.buckets[i];
                out << name << "_bucket{le=\""
                    << Histogram::bucketUpperBound(i) << "\"} "
                    << cumulative << "\n";
            }
            out << name << "_bucket{le=\"+Inf\"} " << e.hist.count
                << "\n";
            out << name << "_sum " << e.hist.sum << "\n";
            out << name << "_count " << e.hist.count << "\n";
            break;
          }
        }
    }
}

Registry &
defaultRegistry()
{
    static Registry registry;
    return registry;
}

void
writePrometheusFile(const std::string &path, const Registry &registry)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write metrics to '%s'", path.c_str());
    registry.writePrometheus(out);
}

} // namespace pb::obs
