/**
 * @file
 * Metrics registry implementation.
 */

#include "metrics.hh"

#include <bit>

#include "common/logging.hh"

namespace pb::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

namespace
{

size_t
bucketOf(uint64_t sample)
{
    return static_cast<size_t>(std::bit_width(sample));
}

} // namespace

void
Histogram::observe(uint64_t sample)
{
    std::lock_guard<std::mutex> lock(mu);
    if (count == 0 || sample < min)
        min = sample;
    if (sample > max)
        max = sample;
    count++;
    sum += sample;
    buckets[bucketOf(sample)]++;
}

uint64_t
Histogram::bucketUpperBound(size_t index)
{
    if (index == 0)
        return 0;
    if (index >= 64)
        return UINT64_MAX;
    return (uint64_t{1} << index) - 1;
}

uint64_t
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile sample, 1-based.
    uint64_t rank = static_cast<uint64_t>(q * (count - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); i++) {
        seen += buckets[i];
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return max;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    Snapshot snap;
    snap.count = count;
    snap.sum = sum;
    snap.min = min;
    snap.max = max;
    size_t last = 0;
    for (size_t i = 0; i < numBuckets; i++) {
        if (buckets[i])
            last = i + 1;
    }
    snap.buckets.assign(buckets, buckets + last);
    return snap;
}

Registry::Slot &
Registry::slot(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = slots.find(name);
    if (it == slots.end()) {
        Slot s;
        s.kind = kind;
        switch (kind) {
          case MetricKind::Counter:
            s.c = std::make_unique<Counter>();
            break;
          case MetricKind::Gauge:
            s.g = std::make_unique<Gauge>();
            break;
          case MetricKind::Histogram:
            s.h = std::make_unique<Histogram>();
            break;
        }
        it = slots.emplace(name, std::move(s)).first;
    } else if (it->second.kind != kind) {
        panic("metric '%s' is a %s, requested as %s", name.c_str(),
              metricKindName(it->second.kind), metricKindName(kind));
    }
    return it->second;
}

Counter &
Registry::counter(const std::string &name)
{
    return *slot(name, MetricKind::Counter).c;
}

Gauge &
Registry::gauge(const std::string &name)
{
    return *slot(name, MetricKind::Gauge).g;
}

Histogram &
Registry::histogram(const std::string &name)
{
    return *slot(name, MetricKind::Histogram).h;
}

std::vector<Registry::Entry>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<Entry> entries;
    entries.reserve(slots.size());
    // std::map iterates in name order, so the snapshot is already
    // deterministic.
    for (const auto &[name, s] : slots) {
        Entry e;
        e.name = name;
        e.kind = s.kind;
        switch (s.kind) {
          case MetricKind::Counter:
            e.counter = s.c->value();
            break;
          case MetricKind::Gauge:
            e.gauge = s.g->value();
            break;
          case MetricKind::Histogram:
            e.hist = s.h->snapshot();
            break;
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return slots.size();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, s] : slots) {
        switch (s.kind) {
          case MetricKind::Counter:
            s.c->value_.store(0, std::memory_order_relaxed);
            break;
          case MetricKind::Gauge:
            s.g->value_.store(0.0, std::memory_order_relaxed);
            break;
          case MetricKind::Histogram: {
            std::lock_guard<std::mutex> hlock(s.h->mu);
            s.h->count = s.h->sum = s.h->min = s.h->max = 0;
            for (auto &bucket : s.h->buckets)
                bucket = 0;
            break;
          }
        }
    }
}

Registry &
defaultRegistry()
{
    static Registry registry;
    return registry;
}

} // namespace pb::obs
