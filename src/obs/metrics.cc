/**
 * @file
 * Metrics registry implementation.
 */

#include "metrics.hh"

#include <bit>
#include <cmath>
#include <fstream>
#include <ostream>
#include <string_view>

#include "common/logging.hh"

namespace pb::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

namespace
{

size_t
bucketOf(uint64_t sample)
{
    // Power-of-two upper edges: 0 | 1 | 2 | (2,4] | (4,8] | ...
    // bit_width(sample - 1) + 1 maps 2^k onto the bucket whose
    // inclusive upper edge is 2^k (bucketing bit_width(sample)
    // directly would push exact powers of two one bucket too high).
    if (sample == 0)
        return 0;
    return static_cast<size_t>(std::bit_width(sample - 1)) + 1;
}

} // namespace

void
Histogram::observe(uint64_t sample)
{
    std::lock_guard<std::mutex> lock(mu);
    if (count == 0 || sample < min)
        min = sample;
    if (sample > max)
        max = sample;
    count++;
    sum += sample;
    buckets[bucketOf(sample)]++;
}

size_t
Histogram::bucketIndex(uint64_t sample)
{
    return bucketOf(sample);
}

uint64_t
Histogram::bucketUpperBound(size_t index)
{
    if (index == 0)
        return 0;
    if (index >= 65)
        return UINT64_MAX; // true edge 2^64 does not fit in uint64
    return uint64_t{1} << (index - 1);
}

uint64_t
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile sample, 1-based.
    uint64_t rank = static_cast<uint64_t>(q * (count - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); i++) {
        seen += buckets[i];
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return max;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    Snapshot snap;
    snap.count = count;
    snap.sum = sum;
    snap.min = min;
    snap.max = max;
    size_t last = 0;
    for (size_t i = 0; i < numBuckets; i++) {
        if (buckets[i])
            last = i + 1;
    }
    snap.buckets.assign(buckets, buckets + last);
    return snap;
}

Registry::Slot &
Registry::slot(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = slots.find(name);
    if (it == slots.end()) {
        Slot s;
        s.kind = kind;
        switch (kind) {
          case MetricKind::Counter:
            s.c = std::make_unique<Counter>();
            break;
          case MetricKind::Gauge:
            s.g = std::make_unique<Gauge>();
            break;
          case MetricKind::Histogram:
            s.h = std::make_unique<Histogram>();
            break;
        }
        it = slots.emplace(name, std::move(s)).first;
    } else if (it->second.kind != kind) {
        panic("metric '%s' is a %s, requested as %s", name.c_str(),
              metricKindName(it->second.kind), metricKindName(kind));
    }
    return it->second;
}

Counter &
Registry::counter(const std::string &name)
{
    return *slot(name, MetricKind::Counter).c;
}

Gauge &
Registry::gauge(const std::string &name)
{
    return *slot(name, MetricKind::Gauge).g;
}

Histogram &
Registry::histogram(const std::string &name)
{
    return *slot(name, MetricKind::Histogram).h;
}

std::vector<Registry::Entry>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<Entry> entries;
    entries.reserve(slots.size());
    // std::map iterates in name order, so the snapshot is already
    // deterministic.
    for (const auto &[name, s] : slots) {
        Entry e;
        e.name = name;
        e.kind = s.kind;
        switch (s.kind) {
          case MetricKind::Counter:
            e.counter = s.c->value();
            break;
          case MetricKind::Gauge:
            e.gauge = s.g->value();
            break;
          case MetricKind::Histogram:
            e.hist = s.h->snapshot();
            break;
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return slots.size();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, s] : slots) {
        switch (s.kind) {
          case MetricKind::Counter:
            s.c->value_.store(0, std::memory_order_relaxed);
            break;
          case MetricKind::Gauge:
            s.g->value_.store(0.0, std::memory_order_relaxed);
            break;
          case MetricKind::Histogram: {
            std::lock_guard<std::mutex> hlock(s.h->mu);
            s.h->count = s.h->sum = s.h->min = s.h->max = 0;
            for (auto &bucket : s.h->buckets)
                bucket = 0;
            break;
          }
        }
    }
}

namespace
{

/** Flatten a dotted metric name into [a-zA-Z0-9_:]. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/** Render a gauge value; Prometheus allows NaN and +/-Inf. */
std::string
promValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return strprintf("%.17g", v);
}

/** One help-table row: exact metric name (or family prefix). */
struct HelpRow
{
    std::string_view name;
    std::string_view help;
    bool prefix = false;
};

/**
 * HELP strings for every series the framework publishes.  Numbered
 * per-engine families (mc.engine0.packets, stats.engine1.pps,
 * mc.queue3, ...) match by prefix; anything not listed falls back to
 * a generic line so every series still carries # HELP.
 */
constexpr HelpRow helpTable[] = {
    {"pb.packets", "Packets processed by the framework"},
    {"pb.insts", "NPE32 instructions executed (selective accounting)"},
    {"pb.sent", "Packets the application accepted (SYS SEND)"},
    {"pb.dropped", "Packets the application dropped (SYS DROP)"},
    {"pb.faults.total", "Faulted packets across all fault kinds"},
    {"pb.faults.malformed", "Packets rejected before the handler ran"},
    {"pb.faults.sim", "Simulator faults inside the handler"},
    {"pb.faults.budget", "Packets that blew the instruction budget"},
    {"pb.faults.quarantined",
     "Faulted packets written to the quarantine trace"},
    {"pb.sim_ns", "Wall nanoseconds spent inside the simulator"},
    {"pb.sim_mips",
     "Simulated MIPS (instructions per wall microsecond)"},
    {"pb.insts_per_packet",
     "Per-packet instruction counts (paper Table 2)"},
    {"pb.unique_insts_per_packet",
     "Per-packet unique static instructions touched"},
    {"pb.cycles_per_packet", "Modeled pipeline cycles per packet"},
    {"pb.program_bytes", "Loaded NPE32 program size in bytes"},
    {"pb.static_blocks", "Static basic blocks in the loaded program"},
    {"sim.interp.mips", "Interpreter throughput in simulated MIPS"},
    {"sim.interp.blocks", "Distinct basic blocks executed"},
    {"sim.interp.block_len", "Mean executed basic-block length"},
    {"mc.packets", "Packets dispatched across all engines"},
    {"mc.batches", "Dispatcher-to-worker batch hand-offs"},
    {"mc.engines", "Engines in the multi-core configuration"},
    {"mc.imbalance", "Max over mean per-engine instruction load"},
    {"mc.speedup", "Ideal parallel speedup from the load split"},
    {"mc.parallel", "1 when the run used the parallel path"},
    {"mc.wall_ns", "Multi-core run wall time in nanoseconds"},
    {"mc.dispatch.no_tuple",
     "Packets without a 5-tuple (round-robin dispatched)"},
    {"mc.engine", "Per-engine load split from the last run", true},
    {"mc.queue", "Per-engine dispatch queue occupancy", true},
    {"trace.packets_read", "Packets read from trace sources"},
    {"trace.packets_written", "Packets written to trace sinks"},
    {"trace.bytes_read", "Bytes read from trace sources"},
    {"trace.malformed", "Malformed records seen by trace sources"},
    {"trace.gen", "Synthetic trace generator output", true},
    {"trace.injected_faults",
     "Faults injected by the fault-injection trace source"},
    {"trace.dropped",
     "Trace events dropped by the ring (capacity pressure)"},
    {"uarch.icache.hits", "Instruction cache hits"},
    {"uarch.icache.misses", "Instruction cache misses"},
    {"uarch.icache.miss_rate", "Instruction cache miss rate"},
    {"uarch.dcache.hits", "Data cache hits"},
    {"uarch.dcache.misses", "Data cache misses"},
    {"uarch.dcache.miss_rate", "Data cache miss rate"},
    {"uarch.branch.lookups", "Branch predictor lookups"},
    {"uarch.branch.mispredicts", "Branch mispredictions"},
    {"uarch.branch.mispredict_rate", "Branch misprediction rate"},
    {"obs.stats.records", "NDJSON records emitted by the stats pump"},
    {"obs.stats.snapshot_ns",
     "Wall nanoseconds the stats pump spent snapshotting"},
    {"stats.engine",
     "Live windowed per-engine telemetry (stats pump)", true},
};

/** HELP text for @p name (dotted registry name, pre-sanitization). */
std::string_view
promHelp(const std::string &name)
{
    for (const HelpRow &row : helpTable) {
        if (row.prefix ? name.compare(0, row.name.size(), row.name) == 0
                       : name == row.name)
            return row.help;
    }
    return "PacketBench metric";
}

} // namespace

void
Registry::writePrometheus(std::ostream &out) const
{
    for (const Entry &e : snapshot()) {
        std::string name = promName(e.name);
        out << "# HELP " << name << " " << promHelp(e.name) << "\n";
        out << "# TYPE " << name << " "
            << metricKindName(e.kind) << "\n";
        switch (e.kind) {
          case MetricKind::Counter:
            out << name << " " << e.counter << "\n";
            break;
          case MetricKind::Gauge:
            out << name << " " << promValue(e.gauge) << "\n";
            break;
          case MetricKind::Histogram: {
            // Prometheus histogram buckets are cumulative and end
            // with +Inf; the snapshot's are per-bucket and trimmed.
            uint64_t cumulative = 0;
            for (size_t i = 0; i < e.hist.buckets.size(); i++) {
                cumulative += e.hist.buckets[i];
                out << name << "_bucket{le=\""
                    << Histogram::bucketUpperBound(i) << "\"} "
                    << cumulative << "\n";
            }
            out << name << "_bucket{le=\"+Inf\"} " << e.hist.count
                << "\n";
            out << name << "_sum " << e.hist.sum << "\n";
            out << name << "_count " << e.hist.count << "\n";
            break;
          }
        }
    }
}

Registry &
defaultRegistry()
{
    static Registry registry;
    return registry;
}

void
writePrometheusFile(const std::string &path, const Registry &registry)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write metrics to '%s'", path.c_str());
    registry.writePrometheus(out);
}

} // namespace pb::obs
