/**
 * @file
 * Live telemetry plane: per-engine windowed state and the streaming
 * stats pump.
 *
 * Everything the registry (obs/metrics.hh) exports is
 * cumulative-since-start and written once at process exit; this
 * module makes the run observable *while it happens*:
 *
 *  - Telemetry is the process-global hub of per-engine
 *    EngineTelemetry records: sliding-window rates (packets, bytes,
 *    instructions, faults — obs/window.hh), a rolling
 *    instructions-per-packet histogram, a space-saving top-K flow
 *    table (obs/topk.hh), and the dispatcher's queue-occupancy
 *    sample.  While a pump runs, PacketBench feeds its engine's
 *    record on every packet and the dispatcher samples queue depth
 *    per batch.
 *
 *  - StatsPump is a background thread that, every PB_STATS_MS
 *    milliseconds (default 1000), snapshots the registry plus the
 *    hub and appends one NDJSON record (schema packetbench.stats.v1,
 *    one JSON object per line) to the file named by the `--stats`
 *    bench flag, and optionally rewrites the `--prom` Prometheus
 *    snapshot in place so scrapers see live values mid-run.
 *
 * Record schema (one line each):
 *
 *   {"schema": "packetbench.stats.v1", "seq": 3, "wall_ns": ...,
 *    "interval_ns": ..., "snapshot_ns": ...,
 *    "process": {"packets": N, "pps": r, "insts": N, "mips": r,
 *                "sent": N, "dropped": N, "faults": N,
 *                "fault_pps": r, "trace_dropped": N},
 *    "engines": [
 *      {"engine": 0, "packets": N, "pps": r, "bps": r, "mips": r,
 *       "faults": N, "fault_pps": r, "queue_depth": n,
 *       "insts_per_packet": {"p50": n, "p99": n, "mean": r},
 *       "topk": [{"flow": "a:p > b:q/proto", "hash": h,
 *                 "packets": N, "bytes": N, "faults": N,
 *                 "error": N}, ...]} ...]}
 *
 * All rates are windowed (obs/window.hh, one-second window), not
 * since-start averages; process pps/fault_pps are deltas over the
 * pump interval.  wall_ns counts from pump start and is strictly
 * monotone across records; ci/check_stats.py validates a stream.
 *
 * Cost contract: with no pump running, statsEnabled() is false and
 * the entire per-packet hook — windowed records and flow accounting
 * alike — is one relaxed atomic load plus a branch (same bar as
 * tracing, enforced by the StatsOverhead test).  Enabled, the
 * windowed rate updates reuse timestamps the framework already
 * takes, so the pump adds no clock reads to the hot path.
 */

#ifndef PB_OBS_STATS_HH
#define PB_OBS_STATS_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/topk.hh"
#include "obs/window.hh"

namespace pb::obs
{

namespace detail
{
/** Global flow-accounting gate; read on every per-packet hook. */
extern std::atomic<bool> statsEnabledFlag;
} // namespace detail

/** True while a StatsPump is running (one relaxed load). */
inline bool
statsEnabled()
{
    return detail::statsEnabledFlag.load(std::memory_order_relaxed);
}

/**
 * Raise or lower the per-packet telemetry gate directly.  StatsPump
 * toggles it around start()/stop(); the service daemon raises it
 * without a pump so its live speed reporter can read the windowed
 * rates even when no `--stats` stream was requested.
 */
inline void
setStatsEnabled(bool on)
{
    detail::statsEnabledFlag.store(on, std::memory_order_relaxed);
}

/** Nanoseconds on the telemetry clock (steady, process-wide). */
inline uint64_t
telemetryNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * One engine's live state.  Written by the engine's worker thread
 * (or the single bench thread), read concurrently by the pump; all
 * members are individually thread-safe, so no outer lock exists to
 * contend on the per-packet path.
 */
struct EngineTelemetry
{
    uint32_t engineId = 0;

    WindowedRate packets;
    WindowedRate bytes;
    WindowedRate insts;
    WindowedRate faults;
    WindowedHistogram instsPerPacket;

    /** Dispatcher queue occupancy in batches (parallel runs). */
    std::atomic<uint64_t> queueDepth{0};

    FlowTopK topk;

    /**
     * Windowed per-packet accounting — called by PacketBench for
     * every completed or faulted packet while a pump runs, with the
     * timestamp it already took for sim-time accounting.
     */
    void
    record(uint64_t now_ns, uint64_t insts_n, uint64_t bytes_n,
           bool fault)
    {
        packets.add(1, now_ns);
        bytes.add(bytes_n, now_ns);
        insts.add(insts_n, now_ns);
        if (fault)
            faults.add(1, now_ns);
        instsPerPacket.observe(insts_n, now_ns);
    }

    /** Zero every window and the flow table (test hook). */
    void reset();
};

/**
 * Process-global hub of per-engine telemetry.  engine(id) is
 * find-or-create and the returned reference is stable for the
 * process lifetime, so engines resolve it once at construction.
 * One writer owns an id at a time (MultiCoreBench gives each worker
 * a distinct id; sequential owners are ordered by thread joins).
 */
class Telemetry
{
  public:
    static Telemetry &instance();

    /** The record for engine @p id (find-or-create, stable ref). */
    EngineTelemetry &engine(uint32_t id);

    /** Every registered engine, ordered by id. */
    std::vector<EngineTelemetry *> engines() const;

    /** reset() every engine record (test hook). */
    void reset();

  private:
    Telemetry() = default;

    mutable std::mutex mu;
    std::vector<std::unique_ptr<EngineTelemetry>> records;
};

/**
 * Background stats streamer.  start() spawns the pump thread and
 * raises statsEnabled(); stop() (or destruction) writes one final
 * record and joins.  The pump publishes its own cost as
 * obs.stats.snapshot_ns / obs.stats.records in the default registry,
 * so the run report shows what observing the run cost.
 */
class StatsPump
{
  public:
    // Out of line: members reference std::ofstream, which is
    // deliberately incomplete here (<iosfwd>).
    StatsPump();
    ~StatsPump();

    StatsPump(const StatsPump &) = delete;
    StatsPump &operator=(const StatsPump &) = delete;

    /** PB_STATS_MS from the environment (1000 when unset; min 10). */
    static uint32_t defaultIntervalMs();

    /**
     * Also rewrite this Prometheus snapshot on every tick (the
     * `--prom` path) via write-to-temp-then-rename, so a concurrent
     * scraper never reads a half-written file.  The temp name is
     * pid-qualified so two processes sharing a promPath never
     * clobber each other's staging file; a failed write or rename
     * warns, unlinks the temp, and counts into
     * obs.stats.prom_fail (successes count obs.stats.prom_writes).
     * Call before start().
     */
    void setPromPath(const std::string &path);

    /**
     * Begin streaming NDJSON records to @p path every
     * @p interval_ms.  fatal() when the file cannot be created.
     */
    void start(const std::string &path, uint32_t interval_ms);

    /** Write a final record, stop the thread, close the stream. */
    void stop();

    /** Records written so far. */
    uint64_t
    records() const
    {
        return written.load(std::memory_order_relaxed);
    }

  private:
    void loop();
    void emitRecord();

    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    bool running = false;

    std::string statsPath;
    std::string promPath;
    uint32_t intervalMs = 1000;
    uint64_t startNs = 0;
    uint64_t seq = 0;
    uint64_t lastWallNs = 0;

    /** Previous registry totals, for interval-delta process rates. */
    uint64_t prevPackets = 0;
    uint64_t prevFaults = 0;

    std::atomic<uint64_t> written{0};
    std::unique_ptr<std::ofstream> out;
};

} // namespace pb::obs

#endif // PB_OBS_STATS_HH
