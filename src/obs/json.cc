/**
 * @file
 * JSON parser and serializer implementation.
 */

#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace pb::obs
{

bool
JsonValue::asBool() const
{
    if (!isBool())
        fatal("JSON value is not a bool");
    return std::get<bool>(v);
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        fatal("JSON value is not a number");
    return std::get<double>(v);
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        fatal("JSON value is not a string");
    return std::get<std::string>(v);
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (!isArray())
        fatal("JSON value is not an array");
    return std::get<Array>(v);
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (!isObject())
        fatal("JSON value is not an object");
    return std::get<Object>(v);
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const Member &m : std::get<Object>(v)) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *member = find(key);
    if (!member)
        fatal("JSON object has no member '%.*s'",
              static_cast<int>(key.size()), key.data());
    return *member;
}

// ---------------------------------------------------------------- parse

namespace
{

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("JSON parse error at offset %zu: %s", pos, what);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        pos++;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text.substr(pos, lit.size()) != lit)
            return false;
        pos += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return JsonValue(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return JsonValue(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue(nullptr);
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue::Object obj;
        skipSpace();
        if (peek() == '}') {
            pos++;
            return JsonValue(std::move(obj));
        }
        while (true) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            obj.emplace_back(std::move(key), parseValue());
            skipSpace();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return JsonValue(std::move(obj));
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue::Array arr;
        skipSpace();
        if (peek() == ']') {
            pos++;
            return JsonValue(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return JsonValue(std::move(arr));
        }
    }

    void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    uint32_t
    parseHex4()
    {
        uint32_t value = 0;
        for (int i = 0; i < 4; i++) {
            char c = peek();
            pos++;
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<uint32_t>(c - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = peek();
            pos++;
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = peek();
            pos++;
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                uint32_t cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // UTF-16 surrogate pair.
                    if (!consumeLiteral("\\u"))
                        fail("lone high surrogate");
                    uint32_t lo = parseHex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            pos++;
        std::string token(text.substr(start, pos - start));
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (token.empty() || end != token.c_str() + token.size())
            fail("bad number");
        return JsonValue(value);
    }

    std::string_view text;
    size_t pos = 0;
};

} // namespace

JsonValue
JsonValue::parse(std::string_view text)
{
    return Parser(text).document();
}

// ----------------------------------------------------------------- dump

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x",
                                 static_cast<unsigned char>(c));
            else
                out += c;
        }
    }
    return out;
}

namespace
{

std::string
numberToString(double d)
{
    if (!std::isfinite(d))
        return "null"; // JSON has no inf/nan
    // Integers (the common case: counters) print without a decimal
    // point; %.17g round-trips every other double.
    if (d == std::floor(d) && std::fabs(d) < 1e15)
        return strprintf("%.0f", d);
    return strprintf("%.17g", d);
}

void
dumpValue(const JsonValue &value, std::string &out, unsigned indent,
          unsigned depth)
{
    auto newline = [&](unsigned d) {
        if (indent) {
            out += '\n';
            out.append(static_cast<size_t>(indent) * d, ' ');
        }
    };

    if (value.isNull()) {
        out += "null";
    } else if (value.isBool()) {
        out += value.asBool() ? "true" : "false";
    } else if (value.isNumber()) {
        out += numberToString(value.asNumber());
    } else if (value.isString()) {
        out += '"';
        out += jsonEscape(value.asString());
        out += '"';
    } else if (value.isArray()) {
        const auto &arr = value.asArray();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (size_t i = 0; i < arr.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            dumpValue(arr[i], out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
    } else {
        const auto &obj = value.asObject();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (size_t i = 0; i < obj.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += jsonEscape(obj[i].first);
            out += "\":";
            if (indent)
                out += ' ';
            dumpValue(obj[i].second, out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
    }
}

} // namespace

std::string
JsonValue::dump(unsigned indent) const
{
    std::string out;
    dumpValue(*this, out, indent, 0);
    return out;
}

} // namespace pb::obs
