/**
 * @file
 * Telemetry hub and stats-pump implementation.
 *
 * NDJSON is streamed directly (like obs/report.cc) so uint64
 * counters serialize exactly; every record is one line, flushed as
 * written, so a consumer tailing the file sees complete records.
 */

#include "stats.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace pb::obs
{

namespace detail
{
std::atomic<bool> statsEnabledFlag{false};
} // namespace detail

void
EngineTelemetry::reset()
{
    packets.reset();
    bytes.reset();
    insts.reset();
    faults.reset();
    instsPerPacket.reset();
    queueDepth.store(0, std::memory_order_relaxed);
    topk.reset();
}

Telemetry &
Telemetry::instance()
{
    static Telemetry hub;
    return hub;
}

EngineTelemetry &
Telemetry::engine(uint32_t id)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &record : records) {
        if (record->engineId == id)
            return *record;
    }
    records.push_back(std::make_unique<EngineTelemetry>());
    records.back()->engineId = id;
    return *records.back();
}

std::vector<EngineTelemetry *>
Telemetry::engines() const
{
    std::vector<EngineTelemetry *> out;
    {
        std::lock_guard<std::mutex> lock(mu);
        out.reserve(records.size());
        for (const auto &record : records)
            out.push_back(record.get());
    }
    std::sort(out.begin(), out.end(),
              [](const EngineTelemetry *a, const EngineTelemetry *b) {
                  return a->engineId < b->engineId;
              });
    return out;
}

void
Telemetry::reset()
{
    for (EngineTelemetry *engine : engines())
        engine->reset();
}

uint32_t
StatsPump::defaultIntervalMs()
{
    static const uint32_t cached = [] {
        const char *env = std::getenv("PB_STATS_MS");
        if (!env)
            return 1000u;
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (!end || *end != '\0' || v == 0 || v > UINT32_MAX) {
            warn("ignoring malformed PB_STATS_MS='%s'", env);
            return 1000u;
        }
        return std::max(static_cast<uint32_t>(v), 10u);
    }();
    return cached;
}

StatsPump::StatsPump() = default;

StatsPump::~StatsPump()
{
    stop();
}

void
StatsPump::setPromPath(const std::string &path)
{
    promPath = path;
}

void
StatsPump::start(const std::string &path, uint32_t interval_ms)
{
    if (running)
        panic("StatsPump::start() while already running");
    out = std::make_unique<std::ofstream>(path);
    if (!*out)
        fatal("cannot write stats to '%s'", path.c_str());
    statsPath = path;
    intervalMs = std::max(interval_ms, 1u);
    startNs = telemetryNowNs();
    seq = 0;
    lastWallNs = 0;
    prevPackets = 0;
    prevFaults = 0;
    written.store(0, std::memory_order_relaxed);
    // Register the self-cost counters up front so the end-of-run
    // report shows them even for a run too short for one tick.
    defaultRegistry().counter("obs.stats.snapshot_ns");
    defaultRegistry().counter("obs.stats.records");
    if (!promPath.empty()) {
        defaultRegistry().counter("obs.stats.prom_writes");
        defaultRegistry().counter("obs.stats.prom_fail");
    }
    stopping = false;
    running = true;
    detail::statsEnabledFlag.store(true, std::memory_order_relaxed);
    thread = std::thread([this] { loop(); });
}

void
StatsPump::stop()
{
    if (!running)
        return;
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    thread.join();
    detail::statsEnabledFlag.store(false, std::memory_order_relaxed);
    running = false;
    out.reset();
}

void
StatsPump::loop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        bool stop_now = cv.wait_for(
            lock, std::chrono::milliseconds(intervalMs),
            [this] { return stopping; });
        // Emit on every tick and once more on the way out, so even
        // a run shorter than one interval produces a final record.
        lock.unlock();
        emitRecord();
        lock.lock();
        if (stop_now)
            return;
    }
}

namespace
{

/** Finite JSON number (rates can divide by ~0 wall time). */
std::string
jsonRate(double v)
{
    if (v != v || v - v != 0.0)
        return "0";
    return strprintf("%.6g", v);
}

} // namespace

void
StatsPump::emitRecord()
{
    uint64_t snap_start = telemetryNowNs();
    uint64_t now = snap_start;
    uint64_t wall = now - startNs;
    if (wall <= lastWallNs)
        wall = lastWallNs + 1; // keep wall_ns strictly monotone
    uint64_t interval_ns = wall - lastWallNs;
    lastWallNs = wall;
    seq++;

    Registry &reg = defaultRegistry();
    uint64_t packets = reg.counter("pb.packets").value();
    uint64_t faults = reg.counter("pb.faults.total").value();
    double dt_s = static_cast<double>(interval_ns) / 1e9;
    double process_pps =
        dt_s > 0.0
            ? static_cast<double>(packets - prevPackets) / dt_s
            : 0.0;
    double process_fault_pps =
        dt_s > 0.0 ? static_cast<double>(faults - prevFaults) / dt_s
                   : 0.0;
    prevPackets = packets;
    prevFaults = faults;

    std::vector<EngineTelemetry *> engines =
        Telemetry::instance().engines();
    double process_mips = 0.0;
    for (const EngineTelemetry *e : engines)
        process_mips += e->insts.rate(now) / 1e6;

    std::ostringstream line;
    line << "{\"schema\": \"packetbench.stats.v1\""
         << ", \"seq\": " << seq << ", \"wall_ns\": " << wall
         << ", \"interval_ns\": " << interval_ns;

    line << ", \"process\": {\"packets\": " << packets
         << ", \"pps\": " << jsonRate(process_pps)
         << ", \"insts\": " << reg.counter("pb.insts").value()
         << ", \"mips\": " << jsonRate(process_mips)
         << ", \"sent\": " << reg.counter("pb.sent").value()
         << ", \"dropped\": " << reg.counter("pb.dropped").value()
         << ", \"faults\": " << faults
         << ", \"fault_pps\": " << jsonRate(process_fault_pps)
         << ", \"trace_dropped\": "
         << reg.counter("trace.dropped").value() << "}";

    line << ", \"engines\": [";
    bool first = true;
    for (EngineTelemetry *e : engines) {
        double pps = e->packets.rate(now);
        double bps = e->bytes.rate(now) * 8.0;
        double mips = e->insts.rate(now) / 1e6;
        double fault_pps = e->faults.rate(now);
        Histogram::Snapshot ipp = e->instsPerPacket.snapshot(now);
        if (!first)
            line << ", ";
        first = false;
        line << "{\"engine\": " << e->engineId
             << ", \"packets\": " << e->packets.total()
             << ", \"pps\": " << jsonRate(pps)
             << ", \"bps\": " << jsonRate(bps)
             << ", \"mips\": " << jsonRate(mips)
             << ", \"faults\": " << e->faults.total()
             << ", \"fault_pps\": " << jsonRate(fault_pps)
             << ", \"queue_depth\": "
             << e->queueDepth.load(std::memory_order_relaxed)
             << ", \"insts_per_packet\": {\"count\": " << ipp.count
             << ", \"mean\": " << jsonRate(ipp.mean())
             << ", \"p50\": " << ipp.quantile(0.5)
             << ", \"p99\": " << ipp.quantile(0.99) << "}";
        line << ", \"topk\": [";
        std::vector<FlowTopK::Entry> top = e->topk.top(10);
        for (size_t i = 0; i < top.size(); i++) {
            const FlowTopK::Entry &f = top[i];
            if (i)
                line << ", ";
            line << "{\"flow\": \""
                 << jsonEscape(formatFlowId(f.id)) << "\""
                 << ", \"hash\": " << f.key
                 << ", \"packets\": " << f.packets
                 << ", \"bytes\": " << f.bytes
                 << ", \"faults\": " << f.faults
                 << ", \"error\": " << f.error << "}";
        }
        line << "]}";

        // Mirror the windowed view into registry gauges so the live
        // Prometheus rewrite (and the final report) carries it too.
        reg.gauge(strprintf("stats.engine%u.pps", e->engineId))
            .set(pps);
        reg.gauge(strprintf("stats.engine%u.bps", e->engineId))
            .set(bps);
        reg.gauge(strprintf("stats.engine%u.mips", e->engineId))
            .set(mips);
        reg.gauge(strprintf("stats.engine%u.queue_depth",
                            e->engineId))
            .set(static_cast<double>(
                e->queueDepth.load(std::memory_order_relaxed)));
    }
    line << "]";

    // Close the record with its own cost, measured up to here; the
    // file write and prom rewrite below are part of the next gap.
    uint64_t snapshot_ns = telemetryNowNs() - snap_start;
    line << ", \"snapshot_ns\": " << snapshot_ns << "}";
    reg.counter("obs.stats.snapshot_ns").add(snapshot_ns);
    reg.counter("obs.stats.records").add(1);

    *out << line.str() << "\n";
    out->flush();
    written.fetch_add(1, std::memory_order_relaxed);

    if (!promPath.empty()) {
        // Write-then-rename: a scraper reading promPath never sees a
        // torn snapshot.  The temp name carries the pid so two
        // processes told to expose at the same promPath stage in
        // distinct files instead of clobbering each other; a failed
        // write or rename must not leak the staging file, and is
        // counted so the run report shows the exposure ever broke.
        std::string tmp = strprintf("%s.tmp.%ld", promPath.c_str(),
                                    static_cast<long>(getpid()));
        bool ok = false;
        try {
            writePrometheusFile(tmp, reg);
            ok = std::rename(tmp.c_str(), promPath.c_str()) == 0;
            if (!ok)
                warn("stats pump: cannot rename '%s' to '%s'",
                     tmp.c_str(), promPath.c_str());
        } catch (const Error &e) {
            // writePrometheusFile fatal()s when the temp cannot be
            // created; the pump must outlive one bad tick.
            warn("stats pump: %s", e.what());
        }
        if (ok) {
            reg.counter("obs.stats.prom_writes").add(1);
        } else {
            std::remove(tmp.c_str());
            reg.counter("obs.stats.prom_fail").add(1);
        }
    }
}

} // namespace pb::obs
