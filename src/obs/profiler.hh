/**
 * @file
 * NPE32 hot-spot profiler.
 *
 * An ExecObserver that accumulates a flat per-PC execution profile
 * over any number of packets and ranks basic blocks by the work they
 * absorb — the simulated-code analogue of gprof's flat profile.  The
 * paper's block-level results (Figs. 7-8) show that a handful of
 * blocks dominate every application; this profiler turns that
 * observation into an operational tool: after any run, render() names
 * the hot inner loops (e.g. the radix-walk vs. trie-step bodies) with
 * exact instruction counts and annotated disassembly.
 *
 * When a PipelineTimer observes the same execution stream *after*
 * the profiler in the fanout, attachTimer() additionally attributes
 * modeled cycles to each PC: the timer cycles that accumulate
 * between two consecutive profiler observations are exactly the
 * previous instruction's base cost plus its stall penalties, and are
 * charged to it (call flush() at the end of a run to attribute the
 * final instruction).  Without a timer the cycle columns equal the
 * instruction counts (CPI 1).
 */

#ifndef PB_OBS_PROFILER_HH
#define PB_OBS_PROFILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/bblock.hh"
#include "sim/cpu.hh"
#include "sim/timing.hh"

namespace pb::obs
{

/** Per-PC / per-block execution profile of one simulated program. */
class HotSpotProfiler : public sim::ExecObserver
{
  public:
    /**
     * Profile executions of @p prog.  Both references must outlive
     * the profiler.
     */
    HotSpotProfiler(const isa::Program &prog,
                    const sim::BlockMap &blocks);

    /**
     * Attribute modeled cycles from @p timer (may be nullptr to
     * detach).  The timer must observe the same execution stream and
     * must sit *after* this profiler in the fanout order.
     */
    void attachTimer(const sim::PipelineTimer *timer);

    /**
     * Attribute any cycles still pending for the last observed
     * instruction (end-of-run bookkeeping; harmless without a
     * timer).
     */
    void flush();

    void onInst(uint32_t addr, const isa::Inst &inst) override;

    /** Executions of the instruction at @p addr. */
    uint64_t instCount(uint32_t addr) const;

    /** Modeled cycles attributed to the instruction at @p addr. */
    uint64_t cycleCount(uint32_t addr) const;

    /** Total instructions observed. */
    uint64_t totalInsts() const { return total; }

    /** Total cycles attributed (== totalInsts() without a timer). */
    uint64_t totalCycles() const;

    /** One basic block's share of the run. */
    struct BlockProfile
    {
        uint32_t blockId;
        uint32_t startAddr;
        uint32_t numInsts; ///< static size of the block
        uint64_t insts;    ///< dynamic instructions executed in it
        uint64_t cycles;   ///< modeled cycles attributed to it
        uint64_t entries;  ///< times control entered at its head
    };

    /**
     * Executed blocks ranked hottest-first (by cycles, then
     * instructions, then block id for determinism).
     */
    std::vector<BlockProfile> rankedBlocks() const;

    /**
     * gprof-style report: summary line, ranked block table, and
     * per-instruction annotated disassembly of the @p top_blocks
     * hottest blocks.
     */
    std::string render(size_t top_blocks = 10) const;

    /** Forget all accumulated samples. */
    void reset();

  private:
    size_t indexOf(uint32_t addr) const;

    const isa::Program &prog;
    const sim::BlockMap &blockMap;
    const sim::PipelineTimer *timer = nullptr;

    std::vector<uint64_t> perPcInsts;  ///< indexed by word offset
    std::vector<uint64_t> perPcCycles; ///< empty until a timer ticks
    std::vector<uint64_t> blockEntries;
    uint64_t total = 0;

    // Cycle attribution state: charge the delta observed at inst N+1
    // to inst N.
    uint64_t lastCycles = 0;
    size_t lastIndex = 0;
    bool havePrev = false;
};

} // namespace pb::obs

#endif // PB_OBS_PROFILER_HH
