/**
 * @file
 * Space-saving top-K heavy-hitter tracking for per-flow accounting.
 *
 * A network processor's load is dominated by its heaviest flows, and
 * the live telemetry plane (obs/stats.hh) must report them while
 * traffic flows — without a per-flow hash table that grows with the
 * flow count.  FlowTopK implements the space-saving algorithm
 * (Metwally et al.): a fixed set of counters; a hit increments its
 * counter, a miss on a full table evicts the minimum counter and the
 * newcomer inherits its count as an overestimate, with the inherited
 * amount recorded as the entry's error bound.  Guarantees:
 *
 *  - est - error <= true count <= est for every tracked flow,
 *  - any flow whose true count exceeds N/capacity is in the table
 *    (N = packets observed), so genuinely heavy flows on skewed
 *    traffic are reported exactly (error 0 once they never evict).
 *
 * Flows are keyed by the dispatcher's 5-tuple hash (net::flowHash —
 * the same value that pins a flow to an engine), and each entry
 * remembers the 5-tuple fields for human-readable reporting.  The
 * obs layer sits below net in the library graph, so the tuple is
 * mirrored here as a plain FlowId rather than a net::FiveTuple.
 *
 * Threading: observe() is called by the owning engine's worker
 * thread, top() by the stats pump; a plain mutex guards the table.
 * The per-packet cost is an uncontended lock plus one hash lookup
 * (the pump takes the lock a few times per second for a copy of at
 * most `capacity` entries), and callers gate observe() behind
 * statsEnabled() so the disabled path costs one relaxed load.
 */

#ifndef PB_OBS_TOPK_HH
#define PB_OBS_TOPK_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pb::obs
{

/** 5-tuple mirror (host byte order), for reporting only. */
struct FlowId
{
    uint32_t src = 0;
    uint32_t dst = 0;
    uint16_t srcPort = 0;
    uint16_t dstPort = 0;
    uint8_t proto = 0;
};

/** "a.b.c.d:p > e.f.g.h:q/proto" rendering of a FlowId. */
std::string formatFlowId(const FlowId &id);

/** Space-saving top-K tracker of per-flow packets/bytes/faults. */
class FlowTopK
{
  public:
    /** One tracked flow. */
    struct Entry
    {
        uint64_t key = 0; ///< dispatcher 5-tuple hash
        FlowId id;
        uint64_t packets = 0; ///< estimate (may overcount by error)
        uint64_t bytes = 0;   ///< since this key entered the table
        uint64_t faults = 0;  ///< since this key entered the table
        uint64_t error = 0;   ///< max overcount inherited on entry
    };

    /** @param capacity counters kept (the K in top-K) */
    explicit FlowTopK(uint32_t capacity = 64);

    /** Account one packet of flow @p key. */
    void observe(uint64_t key, const FlowId &id, uint64_t bytes,
                 bool fault);

    /**
     * The tracked flows, heaviest (by packet estimate) first,
     * at most @p n entries (0 = all).
     */
    std::vector<Entry> top(size_t n = 0) const;

    /** Packets observed in total (tracked or not). */
    uint64_t observedPackets() const;

    uint32_t capacity() const { return cap; }

    /** Drop all tracked flows (test hook). */
    void reset();

  private:
    const uint32_t cap;
    mutable std::mutex mu;
    std::vector<Entry> entries;
    std::unordered_map<uint64_t, size_t> index; ///< key -> entries[]
    uint64_t observed = 0;
};

} // namespace pb::obs

#endif // PB_OBS_TOPK_HH
