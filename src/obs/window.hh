/**
 * @file
 * Time-windowed aggregation: sliding-window rate estimators and
 * rolling log2-histogram quantiles.
 *
 * The metrics registry (obs/metrics.hh) is cumulative-since-start;
 * that answers "how much happened" but not "how fast is it happening
 * *now*", which is the quantity a live telemetry plane (obs/stats.hh)
 * and the run heartbeat need.  Both classes here follow the same
 * scheme: wall time is divided into fixed sub-window buckets arranged
 * in a ring, an update lands in the bucket covering its timestamp
 * (O(1): one division plus a few relaxed atomic adds), and a reader
 * aggregates exactly the buckets whose time slot still falls inside
 * the sliding window — so idle periods age out without any timer
 * thread touching the estimator.
 *
 * Threading contract: one writer at a time (the owning engine's
 * thread; successive owners are fine when a join/handoff orders
 * them), any number of concurrent readers (the stats pump).  Every
 * mutable field is an atomic accessed with relaxed
 * ordering, so concurrent snapshots are data-race-free under TSan;
 * a sequence counter (even = stable, odd = bucket rotation in
 * progress) lets readers retry across the only multi-field update.
 * Readers give up after a bounded number of retries and return the
 * slightly-torn sums instead of spinning — acceptable for rate
 * estimation, and immune to writer stalls.
 *
 * Timestamps are caller-provided nanoseconds from any monotonic
 * origin (telemetryNowNs() in obs/stats.hh); taking them as
 * parameters keeps the hot path free of extra clock reads (callers
 * reuse timestamps they already took) and makes the classes testable
 * with a simulated clock.
 */

#ifndef PB_OBS_WINDOW_HH
#define PB_OBS_WINDOW_HH

#include <atomic>
#include <cstdint>

#include "obs/metrics.hh"

namespace pb::obs
{

/**
 * Sliding-window event-rate estimator.
 *
 * add(n, now) records @p n events at time @p now; rate(now) returns
 * events per second over the trailing window.  The window is split
 * into numBuckets sub-windows; the estimate covers the full window
 * length, so a burst decays linearly over one window after the
 * stream goes idle and the reported rate reaches zero once the
 * window has fully slid past it.
 */
class WindowedRate
{
  public:
    static constexpr uint32_t numBuckets = 16;

    /** @param window_ns sliding-window length (default one second) */
    explicit WindowedRate(uint64_t window_ns = 1'000'000'000);

    /** Record @p n events at @p now_ns (single writer). */
    void add(uint64_t n, uint64_t now_ns);

    /** Events per second over the window ending at @p now_ns. */
    double rate(uint64_t now_ns) const;

    /** Events inside the window ending at @p now_ns. */
    uint64_t windowCount(uint64_t now_ns) const;

    /** Events ever recorded (since-start total). */
    uint64_t
    total() const
    {
        return total_.load(std::memory_order_relaxed);
    }

    uint64_t windowNs() const { return bucketNs * numBuckets; }

    /** Zero all state (test hook; requires quiescent writer). */
    void reset();

  private:
    /** Ring slot covering absolute time slot @p slot. */
    struct Bucket
    {
        std::atomic<uint64_t> slot{0}; ///< now_ns / bucketNs when live
        std::atomic<uint64_t> count{0};
    };

    void rotateTo(uint64_t slot);

    uint64_t bucketNs;
    Bucket buckets[numBuckets];
    std::atomic<uint64_t> total_{0};
    /** Even = stable; odd while rotateTo() reassigns a bucket. */
    std::atomic<uint64_t> seq{0};
};

/**
 * Rolling log2 histogram: the distribution of samples observed
 * inside a sliding window, with the same bucket edges as
 * obs::Histogram so snapshots reuse Histogram::Snapshot (and its
 * quantile()).  Where the registry histogram answers "p99 since
 * start", this answers "p99 over the last second" — the two diverge
 * as soon as the workload shifts, which is exactly what a live view
 * must show.
 */
class WindowedHistogram
{
  public:
    /** Sub-windows in the ring; granularity = window / slices. */
    static constexpr uint32_t numSlices = 8;

    explicit WindowedHistogram(uint64_t window_ns = 1'000'000'000);

    /** Record one sample at @p now_ns (single writer). */
    void observe(uint64_t sample, uint64_t now_ns);

    /**
     * Distribution over the window ending at @p now_ns, merged
     * across in-window slices.  Exact up to slice granularity at the
     * window edge: a sample leaves the estimate only when its whole
     * slice slides out.
     */
    Histogram::Snapshot snapshot(uint64_t now_ns) const;

    uint64_t windowNs() const { return sliceNs * numSlices; }

    /** Zero all state (test hook; requires quiescent writer). */
    void reset();

  private:
    struct Slice
    {
        std::atomic<uint64_t> slot{0};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sum{0};
        std::atomic<uint64_t> min{0};
        std::atomic<uint64_t> max{0};
        std::atomic<uint64_t> buckets[Histogram::numBuckets]{};
    };

    void rotateTo(uint64_t slot);

    uint64_t sliceNs;
    Slice slices[numSlices];
    std::atomic<uint64_t> seq{0};
};

} // namespace pb::obs

#endif // PB_OBS_WINDOW_HH
