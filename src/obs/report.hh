/**
 * @file
 * Structured run reports.
 *
 * Serializes a metrics Registry plus run metadata (tool, arguments,
 * application/trace labels, git revision, wall time) as one JSON
 * document, so every bench binary and example produces a comparable,
 * machine-readable artifact.  Schema (version packetbench.report.v1):
 *
 *   {
 *     "schema": "packetbench.report.v1",
 *     "meta": {
 *       "tool": "bench_table2_complexity",
 *       "args": ["--packets=1000"],
 *       "created": "2026-08-05T12:00:00Z",
 *       "git": "695c6f6",
 *       "wall_seconds": 1.25,
 *       ...caller-provided extra string pairs (app, trace, config)
 *     },
 *     "counters":   { "pb.packets": 1000, ... },
 *     "gauges":     { "pb.sim_mips": 112.4, ... },
 *     "histograms": {
 *       "pb.insts_per_packet": {
 *         "count": 1000, "sum": 204000, "min": 150, "max": 5100,
 *         "mean": 204.0, "p50": 256, "p99": 8192,
 *         "buckets": [{"le": 0, "count": 0}, ...]
 *       }
 *     }
 *   }
 *
 * Counters serialize as exact integers; histogram bucket bounds are
 * the inclusive upper edges of the log2 buckets (obs/metrics.hh).
 */

#ifndef PB_OBS_REPORT_HH
#define PB_OBS_REPORT_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"

namespace pb::obs
{

/** Metadata describing one tool run. */
struct RunMeta
{
    /** Tool name (binary basename or experiment id). */
    std::string tool;

    /** Command-line arguments, in order, without argv[0]. */
    std::vector<std::string> args;

    /** End-to-end wall time of the run, in seconds. */
    double wallSeconds = 0.0;

    /** Extra string pairs ("app", "trace", "config", ...). */
    std::vector<std::pair<std::string, std::string>> extra;

    /** Convenience: append one extra pair. */
    void
    set(const std::string &key, const std::string &value)
    {
        extra.emplace_back(key, value);
    }

    /** Build from main()'s arguments (tool = basename(argv[0])). */
    static RunMeta fromArgv(int argc, char **argv);
};

/** `git describe --always --dirty`, or "unknown" outside a repo. */
std::string gitDescribe();

/** Current UTC time as "YYYY-MM-DDThh:mm:ssZ". */
std::string isoTimestamp();

/** The report as a pretty-printed JSON string. */
std::string renderRunReport(const RunMeta &meta,
                            const Registry &registry);

/** Write the report to @p out. */
void writeRunReport(std::ostream &out, const RunMeta &meta,
                    const Registry &registry);

/**
 * Write the report to @p path (fatal() when the file cannot be
 * created).
 */
void writeRunReportFile(const std::string &path, const RunMeta &meta,
                        const Registry &registry);

} // namespace pb::obs

#endif // PB_OBS_REPORT_HH
