/**
 * @file
 * Low-overhead event tracing with Chrome trace-event JSON export.
 *
 * Where the metrics registry (obs/metrics.hh) aggregates, the tracer
 * records *when*: scoped spans, instant events, and counter samples
 * flow into per-thread single-writer ring buffers and export as a
 * Chrome trace-event JSON file that loads directly in Perfetto or
 * `chrome://tracing`.  The instrumented pipeline shows trace read and
 * decode (src/net), dispatcher batching and queue occupancy
 * (core/multicore), one span per processed packet on each engine
 * (core/packetbench), and — opt-in, sampled — the NPE32 instruction
 * and memory event stream of individual packets (the paper's Fig. 9
 * intra-packet access sequences as a zoomable timeline).
 *
 * Cost model:
 *  - tracing disabled (default): every instrumentation point reduces
 *    to one relaxed atomic load and a predictable branch — no
 *    allocation, no locks, no stores;
 *  - tracing enabled: an event is a timestamp read plus a few word
 *    stores into a thread-local ring slot and one release store of
 *    the ring head.  No locks on the emission path; registration of
 *    a new thread's buffer takes the registry lock once per thread.
 *
 * Ring overflow keeps the *newest* events (old slots are
 * overwritten) and the number of overwritten events is published as
 * the "trace.dropped" counter when the tracer stops.
 *
 * Event strings (names, categories, argument keys) must be string
 * literals or pointers interned via Tracer::intern(); the ring
 * stores only the pointer.
 *
 * Threading contract: emission is safe from any number of threads
 * concurrently (buffers are per-thread).  collect(), writeJson(),
 * and reset() require emission to be quiescent — in practice they
 * run after worker threads have been joined, which is how
 * MultiCoreBench::run() and benchMain() sequence them.
 */

#ifndef PB_OBS_TRACING_HH
#define PB_OBS_TRACING_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hh" // PB_OBS_CAT; trace.dropped lives there
#include "sim/accounting.hh"
#include "sim/cpu.hh"

namespace pb::obs
{

namespace detail
{
/** Global emission gate; read on every instrumentation point. */
extern std::atomic<bool> traceEnabledFlag;
} // namespace detail

/** True while the tracer is recording (one relaxed load). */
inline bool
traceEnabled()
{
    return detail::traceEnabledFlag.load(std::memory_order_relaxed);
}

/**
 * One key/value annotation on an event.  Trivially constructible so
 * ring slots and span scopes carry no initialization cost.
 */
struct TraceArg
{
    enum class Kind : uint8_t
    {
        None = 0,
        U64,
        Str,
    };

    const char *key;
    union
    {
        uint64_t u64;
        const char *str;
    };
    Kind kind;
};

/** Chrome trace-event phases the tracer emits. */
enum class TracePhase : uint8_t
{
    Complete, ///< "X": a span with ts and dur
    Instant,  ///< "i": a point in time
    Counter,  ///< "C": a sampled numeric series
};

/** One fixed-size trace event (a ring-buffer slot). */
struct TraceEvent
{
    static constexpr size_t maxArgs = 6;

    uint64_t ts;  ///< ns since the tracer epoch
    uint64_t dur; ///< ns; Complete events only
    const char *name;
    const char *cat;
    TraceArg args[maxArgs];
    uint32_t tid;
    TracePhase phase;
    uint8_t numArgs;
};

/**
 * Per-thread single-writer ring of trace events.  Only the owning
 * thread writes; the head counter is released so a quiescent reader
 * (Tracer::collect) sees fully written slots.
 */
class TraceRing
{
  public:
    TraceRing(uint32_t tid, size_t capacity);

    /** Append one event (owning thread only). */
    void emit(const TraceEvent &event);

    uint32_t tid() const { return tid_; }
    size_t capacity() const { return ring.size(); }

    /** Events overwritten so far (newest-kept overflow). */
    uint64_t
    dropped() const
    {
        uint64_t n = head.load(std::memory_order_acquire);
        return n > ring.size() ? n - ring.size() : 0;
    }

  private:
    friend class Tracer;
    const uint32_t tid_;
    std::vector<TraceEvent> ring;
    std::atomic<uint64_t> head{0};
};

/**
 * The process-global tracer: owns every thread's ring, the interned
 * strings, and the export path.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Default ring capacity, in events per thread. */
    static constexpr size_t defaultCapacity = 1 << 16;

    /**
     * Start recording: re-arms the epoch and enables emission.
     * Previously recorded events are kept (start/stop pairs nest a
     * run); call reset() first for a clean slate.
     */
    void start();

    /**
     * Stop recording: disables emission and folds every ring's
     * overwrite count into the "trace.dropped" counter of the
     * default metrics registry (delta since the last stop).
     */
    void stop();

    /**
     * Per-thread ring capacity for rings created after this call
     * (existing rings keep theirs); clamped to at least 16.  Also
     * settable via the PB_TRACE_CAP environment variable.
     */
    void setCapacity(size_t events_per_thread);

    /**
     * NPE32 sampling period: every Nth packet of each engine records
     * its full instruction/memory event stream (0 = off).  Also
     * settable via the PB_TRACE_SAMPLE environment variable.
     */
    void setNpeSamplePeriod(uint64_t period);
    uint64_t
    npeSamplePeriod() const
    {
        return npePeriod.load(std::memory_order_relaxed);
    }

    /** Apply PB_TRACE_CAP / PB_TRACE_SAMPLE from the environment. */
    void configureFromEnv();

    /** The calling thread's ring (created on first use). */
    TraceRing &threadRing();

    /** Label the calling thread's timeline row ("engine 3"). */
    void setThreadName(const std::string &name);

    /**
     * Intern @p s and return a pointer that stays valid for the
     * process lifetime (interned strings survive reset()).
     */
    const char *intern(const std::string &s);

    /** Nanoseconds since the tracer epoch. */
    uint64_t nowNs() const;

    /**
     * Merged copy of every ring's events, sorted by timestamp.
     * Requires quiescent emission.
     */
    std::vector<TraceEvent> collect() const;

    /** Sum of every ring's overwritten-event counts. */
    uint64_t droppedEvents() const;

    /**
     * Write the recorded events as Chrome trace-event JSON
     * ({"traceEvents": [...]}, timestamps in microseconds).
     * Requires quiescent emission.
     */
    void writeJson(std::ostream &out) const;

    /** writeJson() to @p path; fatal() when the file can't open. */
    void writeJsonFile(const std::string &path) const;

    /**
     * Discard all rings, thread registrations, and thread names
     * (test hook).  Interned strings are kept so cached pointers
     * never dangle.  Requires quiescent emission.
     */
    void reset();

  private:
    Tracer();

    mutable std::mutex mu;
    std::vector<std::unique_ptr<TraceRing>> rings;
    std::map<uint32_t, std::string> threadNames;
    std::set<std::string> interned;
    std::atomic<uint64_t> generation{1};
    std::atomic<uint64_t> npePeriod{0};
    size_t ringCapacity = defaultCapacity;
    uint64_t epochNs = 0;
    uint64_t droppedPublished = 0;
};

/**
 * RAII span: records one Complete event covering its scope.  When
 * tracing is disabled construction is a single relaxed-atomic branch
 * and the destructor a predictable branch; no fields beyond the
 * live flag are touched.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, const char *name)
        : live(false)
    {
        if (traceEnabled())
            begin(category, name);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (live)
            end();
    }

    /** True when this span is recording (annotations will stick). */
    bool active() const { return live; }

    /** @name Annotations (no-ops when inactive). @{ */
    void
    arg(const char *key, uint64_t value)
    {
        if (live && numArgs < TraceEvent::maxArgs) {
            args[numArgs].key = key;
            args[numArgs].u64 = value;
            args[numArgs].kind = TraceArg::Kind::U64;
            numArgs++;
        }
    }

    void
    arg(const char *key, const char *value)
    {
        if (live && numArgs < TraceEvent::maxArgs) {
            args[numArgs].key = key;
            args[numArgs].str = value;
            args[numArgs].kind = TraceArg::Kind::Str;
            numArgs++;
        }
    }
    /** @} */

  private:
    void begin(const char *category, const char *name);
    void end();

    bool live;
    uint8_t numArgs;
    const char *cat;
    const char *name;
    uint64_t startNs;
    TraceArg args[TraceEvent::maxArgs];
};

/** Emit one instant event (call only when traceEnabled()). */
void traceInstant(const char *category, const char *name);

/** Instant event with one numeric argument. */
void traceInstant(const char *category, const char *name,
                  const char *key, uint64_t value);

/** Instant event with one string argument. */
void traceInstant(const char *category, const char *name,
                  const char *key, const char *value);

/** Emit one counter sample (call only when traceEnabled()). */
void traceCounter(const char *category, const char *name,
                  uint64_t value);

/**
 * ExecObserver that streams a sampled packet's NPE32 execution into
 * the tracer: a "npe.pc" counter series (the instruction timeline),
 * per-region "npe.mem.*" counter series of accessed addresses (the
 * paper's Fig. 9 access sequences), and "npe.branch" instants.
 * PacketBench attaches it only for sampled packets
 * (Tracer::npeSamplePeriod), so the interpreter's hot loop pays
 * nothing for unsampled packets.
 */
class NpeTraceSampler : public sim::ExecObserver
{
  public:
    void onInst(uint32_t addr, const isa::Inst &inst) override;
    void onMemAccess(const sim::MemAccessEvent &event) override;
    void onBranch(uint32_t addr, bool taken,
                  uint32_t target) override;
};

} // namespace pb::obs

/**
 * Span over the rest of the enclosing scope.  Category and name must
 * be string literals (or interned pointers).
 */
#define PB_TRACE_SPAN(category, name)                                  \
    pb::obs::TraceSpan PB_OBS_CAT(pb_trace_span_,                      \
                                  __LINE__)(category, name)

/**
 * Named span: PB_TRACE_SPAN_NAMED(span, "core", "pb.packet") then
 * span.arg("engine", 3) to annotate.
 */
#define PB_TRACE_SPAN_NAMED(var, category, name)                       \
    pb::obs::TraceSpan var(category, name)

/** Instant event; extra args forward to traceInstant overloads. */
#define PB_TRACE_INSTANT(category, name, ...)                          \
    do {                                                               \
        if (pb::obs::traceEnabled())                                   \
            pb::obs::traceInstant(category, name, ##__VA_ARGS__);      \
    } while (0)

/** Counter sample. */
#define PB_TRACE_COUNTER(category, name, value)                        \
    do {                                                               \
        if (pb::obs::traceEnabled())                                   \
            pb::obs::traceCounter(category, name,                      \
                                  static_cast<uint64_t>(value));       \
    } while (0)

#endif // PB_OBS_TRACING_HH
