/**
 * @file
 * Run-wide metrics registry.
 *
 * The paper's contribution is measurement, and this module gives the
 * reproduction the same discipline about *itself*: every layer
 * (framework, trace I/O, microarch models, analyses) publishes named
 * counters, gauges, and log-scale histograms into a process-global
 * registry.  A snapshot of the registry is deterministic (sorted by
 * name) and serializes into the structured run report
 * (obs/report.hh), so every bench binary emits comparable artifacts.
 *
 * Conventions:
 *  - names are dotted paths ("pb.packets", "uarch.icache.misses"),
 *  - wall-clock phase timers are counters in nanoseconds with a
 *    "_ns" suffix ("phase.simulate_ns"),
 *  - a metric's kind is fixed at first registration; re-registering
 *    the same name with a different kind is a panic.
 *
 * All metric updates are thread-safe and cheap (relaxed atomics);
 * registration takes a lock, so hot paths should resolve a metric
 * once and keep the reference (see PB_COUNTER / PB_SCOPED_TIMER for
 * the cached-static idiom).
 */

#ifndef PB_OBS_METRICS_HH
#define PB_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pb::obs
{

/** The metric kinds a registry can hold. */
enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** Kind name for reports ("counter", "gauge", "histogram"). */
const char *metricKindName(MetricKind kind);

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<uint64_t> value_{0};
};

/** Last-written instantaneous value (rates, sizes, ratios). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<double> value_{0.0};
};

/**
 * Log2-bucketed histogram of non-negative integer samples.
 *
 * Bucket edges are exact powers of two, inclusive on the upper
 * side: bucket 0 holds zeros, bucket 1 holds {1}, and bucket i
 * (i >= 2) holds (2^(i-2), 2^(i-1)] — so a sample of exactly 2^k
 * lands in the bucket whose upper edge is 2^k, not in the next
 * decade up.  (An earlier revision bucketed by raw bit width, which
 * put power-of-two samples one bucket too high and reported "le"
 * edges of 2^i - 1.)  66 buckets cover the full uint64 domain, so
 * observe() never saturates or clips; the last bucket's upper edge
 * (2^64) is reported as UINT64_MAX.
 */
class Histogram
{
  public:
    static constexpr size_t numBuckets = 66;

    /** Record one sample. */
    void observe(uint64_t sample);

    /** Point-in-time copy of the distribution. */
    struct Snapshot
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t min = 0; ///< 0 when count == 0
        uint64_t max = 0;
        /** Per-bucket counts, trimmed after the last non-zero. */
        std::vector<uint64_t> buckets;

        double
        mean() const
        {
            return count ? static_cast<double>(sum) / count : 0.0;
        }

        /**
         * Upper bound of the bucket holding the q-quantile sample
         * (q in [0, 1]); 0 when the histogram is empty.
         */
        uint64_t quantile(double q) const;
    };

    Snapshot snapshot() const;

    /** Inclusive upper bound of bucket @p index. */
    static uint64_t bucketUpperBound(size_t index);

    /**
     * Index of the bucket holding @p sample (the inverse of
     * bucketUpperBound, shared with obs::WindowedHistogram so the
     * rolling and since-start views use identical edges).
     */
    static size_t bucketIndex(uint64_t sample);

  private:
    friend class Registry;
    mutable std::mutex mu;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t buckets[numBuckets] = {};
};

/**
 * Named metrics, one namespace per registry.
 *
 * Lookup creates the metric on first use and returns a reference
 * whose address is stable for the registry's lifetime.  Values can
 * be zeroed (reset()) but metrics are never removed, so cached
 * references never dangle.
 */
class Registry
{
  public:
    /** Find-or-create; panics if @p name exists with another kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** One metric in a snapshot; only the matching field is valid. */
    struct Entry
    {
        std::string name;
        MetricKind kind;
        uint64_t counter = 0;
        double gauge = 0.0;
        Histogram::Snapshot hist;
    };

    /** Deterministic (name-sorted) copy of all metrics. */
    std::vector<Entry> snapshot() const;

    /**
     * Prometheus text exposition (version 0.0.4) of every metric:
     * counters and gauges as single samples, histograms as
     * cumulative `_bucket{le="..."}` series plus `_sum` and
     * `_count`.  Dotted metric names are flattened to legal
     * Prometheus names ("pb.faults.total" -> "pb_faults_total"),
     * so scrapers see the registry without parsing JSON reports.
     */
    void writePrometheus(std::ostream &out) const;

    /** Number of registered metrics. */
    size_t size() const;

    /** Zero every value, keeping all registrations (test hook). */
    void reset();

  private:
    struct Slot
    {
        MetricKind kind;
        std::unique_ptr<Counter> c;
        std::unique_ptr<Gauge> g;
        std::unique_ptr<Histogram> h;
    };

    Slot &slot(const std::string &name, MetricKind kind);

    mutable std::mutex mu;
    std::map<std::string, Slot> slots;
};

/** The process-global registry every layer publishes into. */
Registry &defaultRegistry();

/**
 * Registry::writePrometheus() to @p path (fatal() when the file
 * cannot be created) — the `--prom=FILE` bench flag lands here.
 */
void writePrometheusFile(const std::string &path,
                         const Registry &registry);

/**
 * Adds elapsed wall-clock nanoseconds to a counter when destroyed.
 * Used for phase accounting ("phase.trace_read_ns", ...).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Counter &ns_counter)
        : target(ns_counter), start(std::chrono::steady_clock::now())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { target.add(elapsedNs()); }

    /** Nanoseconds since construction. */
    uint64_t
    elapsedNs() const
    {
        auto dt = std::chrono::steady_clock::now() - start;
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count());
    }

  private:
    Counter &target;
    std::chrono::steady_clock::time_point start;
};

} // namespace pb::obs

#define PB_OBS_CAT2(a, b) a##b
#define PB_OBS_CAT(a, b) PB_OBS_CAT2(a, b)

/**
 * Bump a default-registry counter by @p delta.  The lookup happens
 * once per call site (cached static reference), so this is safe on
 * per-packet paths.
 */
#define PB_COUNTER_ADD(name, delta)                                    \
    do {                                                               \
        static pb::obs::Counter &pb_counter_ref_ =                     \
            pb::obs::defaultRegistry().counter(name);                  \
        pb_counter_ref_.add(delta);                                    \
    } while (0)

/** Bump a default-registry counter by one. */
#define PB_COUNTER(name) PB_COUNTER_ADD(name, 1)

/**
 * Time the rest of the enclosing scope into a nanosecond counter in
 * the default registry.
 */
#define PB_SCOPED_TIMER(name)                                          \
    static pb::obs::Counter &PB_OBS_CAT(pb_timer_ref_, __LINE__) =     \
        pb::obs::defaultRegistry().counter(name);                      \
    pb::obs::ScopedTimer PB_OBS_CAT(pb_timer_, __LINE__)(              \
        PB_OBS_CAT(pb_timer_ref_, __LINE__))

#endif // PB_OBS_METRICS_HH
