/**
 * @file
 * Hot-spot profiler implementation.
 */

#include "profiler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/disasm.hh"

namespace pb::obs
{

HotSpotProfiler::HotSpotProfiler(const isa::Program &prog_,
                                 const sim::BlockMap &blocks_)
    : prog(prog_), blockMap(blocks_)
{
    perPcInsts.assign(prog.words.size(), 0);
    blockEntries.assign(blockMap.numBlocks(), 0);
}

void
HotSpotProfiler::attachTimer(const sim::PipelineTimer *timer_)
{
    timer = timer_;
    if (timer) {
        perPcCycles.assign(prog.words.size(), 0);
        lastCycles = timer->cycles();
        havePrev = false;
    }
}

size_t
HotSpotProfiler::indexOf(uint32_t addr) const
{
    size_t index = (addr - prog.baseAddr) / 4;
    if (addr < prog.baseAddr || index >= perPcInsts.size())
        panic("profiler observed pc 0x%08x outside the program",
              addr);
    return index;
}

void
HotSpotProfiler::onInst(uint32_t addr, const isa::Inst &inst)
{
    (void)inst;
    size_t index = indexOf(addr);
    perPcInsts[index]++;
    total++;

    const sim::BasicBlock &block =
        blockMap.block(blockMap.blockOf(addr));
    if (addr == block.startAddr)
        blockEntries[block.id]++;

    if (timer) {
        // The timer has finished accounting the *previous*
        // instruction (it runs after us in the fanout), so the
        // cycles accumulated since our last observation are its
        // full cost.
        uint64_t now = timer->cycles();
        if (havePrev)
            perPcCycles[lastIndex] += now - lastCycles;
        lastCycles = now;
        lastIndex = index;
        havePrev = true;
    }
}

void
HotSpotProfiler::flush()
{
    if (!timer || !havePrev)
        return;
    uint64_t now = timer->cycles();
    perPcCycles[lastIndex] += now - lastCycles;
    lastCycles = now;
    havePrev = false;
}

uint64_t
HotSpotProfiler::instCount(uint32_t addr) const
{
    return perPcInsts[indexOf(addr)];
}

uint64_t
HotSpotProfiler::cycleCount(uint32_t addr) const
{
    size_t index = indexOf(addr);
    return perPcCycles.empty() ? perPcInsts[index]
                               : perPcCycles[index];
}

uint64_t
HotSpotProfiler::totalCycles() const
{
    if (perPcCycles.empty())
        return total;
    uint64_t cycles = 0;
    for (uint64_t c : perPcCycles)
        cycles += c;
    return cycles;
}

std::vector<HotSpotProfiler::BlockProfile>
HotSpotProfiler::rankedBlocks() const
{
    std::vector<BlockProfile> ranked;
    for (const sim::BasicBlock &block : blockMap.blocks()) {
        BlockProfile profile;
        profile.blockId = block.id;
        profile.startAddr = block.startAddr;
        profile.numInsts = block.numInsts;
        profile.entries = blockEntries[block.id];
        profile.insts = 0;
        profile.cycles = 0;
        size_t first = (block.startAddr - prog.baseAddr) / 4;
        for (uint32_t i = 0; i < block.numInsts; i++) {
            profile.insts += perPcInsts[first + i];
            profile.cycles += perPcCycles.empty()
                                  ? perPcInsts[first + i]
                                  : perPcCycles[first + i];
        }
        if (profile.insts)
            ranked.push_back(profile);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const BlockProfile &a, const BlockProfile &b) {
                  if (a.cycles != b.cycles)
                      return a.cycles > b.cycles;
                  if (a.insts != b.insts)
                      return a.insts > b.insts;
                  return a.blockId < b.blockId;
              });
    return ranked;
}

std::string
HotSpotProfiler::render(size_t top_blocks) const
{
    std::vector<BlockProfile> ranked = rankedBlocks();
    uint64_t cycles = totalCycles();

    std::string out = strprintf(
        "NPE32 hot-spot profile: %llu insts, %llu cycles%s, "
        "%zu of %u blocks executed\n",
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(cycles),
        perPcCycles.empty() ? " (CPI 1, no timing model)" : "",
        ranked.size(), blockMap.numBlocks());
    if (total == 0)
        return out;

    out += strprintf("%5s %7s %7s %12s %12s %10s  %s\n", "rank",
                     "%cyc", "%cum", "cycles", "insts", "entries",
                     "block");
    double cum = 0.0;
    for (size_t i = 0; i < ranked.size(); i++) {
        const BlockProfile &b = ranked[i];
        double pct =
            cycles ? 100.0 * static_cast<double>(b.cycles) /
                         static_cast<double>(cycles)
                   : 0.0;
        cum += pct;
        out += strprintf(
            "%5zu %6.1f%% %6.1f%% %12llu %12llu %10llu  "
            "#%u @0x%08x (%u insts)\n",
            i + 1, pct, cum,
            static_cast<unsigned long long>(b.cycles),
            static_cast<unsigned long long>(b.insts),
            static_cast<unsigned long long>(b.entries), b.blockId,
            b.startAddr, b.numInsts);
    }

    size_t annotate = std::min(top_blocks, ranked.size());
    for (size_t i = 0; i < annotate; i++) {
        const BlockProfile &b = ranked[i];
        out += strprintf("\nblock #%u @0x%08x — %llu insts, "
                         "%llu cycles:\n",
                         b.blockId, b.startAddr,
                         static_cast<unsigned long long>(b.insts),
                         static_cast<unsigned long long>(b.cycles));
        size_t first = (b.startAddr - prog.baseAddr) / 4;
        for (uint32_t w = 0; w < b.numInsts; w++) {
            uint32_t addr = b.startAddr + w * 4;
            isa::Inst inst = isa::decode(prog.words[first + w]);
            out += strprintf(
                "  0x%08x %10llu %10llu  %s\n", addr,
                static_cast<unsigned long long>(
                    perPcInsts[first + w]),
                static_cast<unsigned long long>(
                    perPcCycles.empty() ? perPcInsts[first + w]
                                        : perPcCycles[first + w]),
                isa::disassemble(inst, addr).c_str());
        }
    }
    return out;
}

void
HotSpotProfiler::reset()
{
    std::fill(perPcInsts.begin(), perPcInsts.end(), 0);
    std::fill(perPcCycles.begin(), perPcCycles.end(), 0);
    std::fill(blockEntries.begin(), blockEntries.end(), 0);
    total = 0;
    havePrev = false;
    if (timer)
        lastCycles = timer->cycles();
}

} // namespace pb::obs
