/**
 * @file
 * Minimal JSON value type: parse, build, and serialize.
 *
 * The run report (obs/report.hh) is JSON so that downstream tooling
 * (trajectory tracking, plotting, CI diffing) can consume bench
 * artifacts without custom parsers.  This module is dependency-free
 * and deliberately small: a variant value type, a recursive-descent
 * parser, and a serializer.  Objects preserve insertion order so
 * serialization is deterministic.
 *
 * Numbers are stored as double; integer counters up to 2^53 survive
 * a round trip exactly, which covers every metric this repository
 * produces.  (The report *writer* streams uint64 counters directly
 * and is exact for the full range.)
 */

#ifndef PB_OBS_JSON_HH
#define PB_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pb::obs
{

/** One JSON value (null, bool, number, string, array, or object). */
class JsonValue
{
  public:
    using Array = std::vector<JsonValue>;
    using Member = std::pair<std::string, JsonValue>;
    using Object = std::vector<Member>;

    JsonValue() : v(nullptr) {}
    JsonValue(std::nullptr_t) : v(nullptr) {}
    JsonValue(bool b) : v(b) {}
    JsonValue(double d) : v(d) {}
    JsonValue(int i) : v(static_cast<double>(i)) {}
    JsonValue(uint64_t u) : v(static_cast<double>(u)) {}
    JsonValue(int64_t i) : v(static_cast<double>(i)) {}
    JsonValue(const char *s) : v(std::string(s)) {}
    JsonValue(std::string s) : v(std::move(s)) {}
    JsonValue(Array a) : v(std::move(a)) {}
    JsonValue(Object o) : v(std::move(o)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(v); }
    bool isBool() const { return std::holds_alternative<bool>(v); }
    bool isNumber() const { return std::holds_alternative<double>(v); }
    bool isString() const { return std::holds_alternative<std::string>(v); }
    bool isArray() const { return std::holds_alternative<Array>(v); }
    bool isObject() const { return std::holds_alternative<Object>(v); }

    /** @name Typed accessors; fatal() on a kind mismatch. @{ */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;
    /** @} */

    /** Object member by key, or nullptr when absent / not an object. */
    const JsonValue *find(std::string_view key) const;

    /**
     * Member by key; fatal() when absent.  Chains nicely when
     * asserting on report structure: j.at("meta").at("tool").
     */
    const JsonValue &at(std::string_view key) const;

    /**
     * Parse one JSON document (with optional surrounding
     * whitespace); trailing garbage and malformed input fatal().
     */
    static JsonValue parse(std::string_view text);

    /**
     * Serialize.  @p indent 0 emits one compact line; otherwise
     * nested values are pretty-printed with that many spaces per
     * level.
     */
    std::string dump(unsigned indent = 0) const;

  private:
    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        v;
};

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

} // namespace pb::obs

#endif // PB_OBS_JSON_HH
