/**
 * @file
 * Event tracer implementation: rings, export, NPE32 sampler.
 */

#include "tracing.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/logging.hh"
#include "obs/json.hh"
#include "sim/memmap.hh"

namespace pb::obs
{

namespace detail
{
std::atomic<bool> traceEnabledFlag{false};
} // namespace detail

namespace
{

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Thread-local ring pointer, revalidated against the tracer
 * generation so reset() (which frees all rings) can't leave a
 * dangling cache in other test cases on the same thread.
 */
struct RingCache
{
    TraceRing *ring = nullptr;
    uint64_t generation = 0;
};

thread_local RingCache tlsRing;

} // namespace

TraceRing::TraceRing(uint32_t tid, size_t capacity)
    : tid_(tid), ring(std::max<size_t>(capacity, 16))
{
}

void
TraceRing::emit(const TraceEvent &event)
{
    uint64_t h = head.load(std::memory_order_relaxed);
    TraceEvent &slot = ring[h % ring.size()];
    slot = event;
    slot.tid = tid_;
    head.store(h + 1, std::memory_order_release);
}

Tracer::Tracer() : epochNs(steadyNowNs()) {}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::start()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (epochNs == 0)
            epochNs = steadyNowNs();
    }
    detail::traceEnabledFlag.store(true, std::memory_order_release);
}

void
Tracer::stop()
{
    detail::traceEnabledFlag.store(false, std::memory_order_release);
    // Publish the overwrite count as a delta so repeated start/stop
    // cycles don't double-count.  Always touch the counter so a
    // clean run reports trace.dropped = 0 instead of omitting the
    // series from reports and scrapes.
    uint64_t total = droppedEvents();
    std::lock_guard<std::mutex> lock(mu);
    Counter &dropped = defaultRegistry().counter("trace.dropped");
    if (total > droppedPublished) {
        dropped.add(total - droppedPublished);
        droppedPublished = total;
    }
}

void
Tracer::setCapacity(size_t events_per_thread)
{
    std::lock_guard<std::mutex> lock(mu);
    ringCapacity = std::max<size_t>(events_per_thread, 16);
}

void
Tracer::setNpeSamplePeriod(uint64_t period)
{
    npePeriod.store(period, std::memory_order_relaxed);
}

void
Tracer::configureFromEnv()
{
    if (const char *cap = std::getenv("PB_TRACE_CAP")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(cap, &end, 10);
        if (end && *end == '\0' && v > 0)
            setCapacity(static_cast<size_t>(v));
        else
            warn("ignoring malformed PB_TRACE_CAP='%s'", cap);
    }
    if (const char *sample = std::getenv("PB_TRACE_SAMPLE")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(sample, &end, 10);
        if (end && *end == '\0')
            setNpeSamplePeriod(v);
        else
            warn("ignoring malformed PB_TRACE_SAMPLE='%s'", sample);
    }
}

TraceRing &
Tracer::threadRing()
{
    uint64_t gen = generation.load(std::memory_order_acquire);
    if (tlsRing.ring && tlsRing.generation == gen)
        return *tlsRing.ring;
    std::lock_guard<std::mutex> lock(mu);
    auto ring = std::make_unique<TraceRing>(
        static_cast<uint32_t>(rings.size()), ringCapacity);
    tlsRing.ring = ring.get();
    tlsRing.generation = gen;
    rings.push_back(std::move(ring));
    return *tlsRing.ring;
}

void
Tracer::setThreadName(const std::string &name)
{
    uint32_t tid = threadRing().tid();
    std::lock_guard<std::mutex> lock(mu);
    threadNames[tid] = name;
}

const char *
Tracer::intern(const std::string &s)
{
    std::lock_guard<std::mutex> lock(mu);
    return interned.insert(s).first->c_str();
}

uint64_t
Tracer::nowNs() const
{
    return steadyNowNs() - epochNs;
}

std::vector<TraceEvent>
Tracer::collect() const
{
    std::vector<TraceEvent> events;
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &ring : rings) {
        uint64_t n = ring->head.load(std::memory_order_acquire);
        size_t cap = ring->ring.size();
        uint64_t first = n > cap ? n - cap : 0;
        for (uint64_t i = first; i < n; i++)
            events.push_back(ring->ring[i % cap]);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts < b.ts;
                     });
    return events;
}

uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t total = 0;
    for (const auto &ring : rings)
        total += ring->dropped();
    return total;
}

namespace
{

void
writeArgs(std::ostream &out, const TraceArg *args, size_t count)
{
    out << "{";
    for (size_t i = 0; i < count; i++) {
        if (i)
            out << ",";
        out << "\"" << jsonEscape(args[i].key) << "\":";
        if (args[i].kind == TraceArg::Kind::Str)
            out << "\"" << jsonEscape(args[i].str) << "\"";
        else
            out << args[i].u64;
    }
    out << "}";
}

} // namespace

void
Tracer::writeJson(std::ostream &out) const
{
    std::vector<TraceEvent> events = collect();
    std::map<uint32_t, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu);
        names = threadNames;
    }

    out << "{\"traceEvents\":[\n";
    bool first = true;
    // Metadata rows: process name plus any named thread timelines.
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
           "\"process_name\",\"args\":{\"name\":\"packetbench\"}}";
    first = false;
    for (const auto &[tid, name] : names) {
        out << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << jsonEscape(name.c_str()) << "\"}}";
    }
    for (const TraceEvent &e : events) {
        if (!first)
            out << ",\n";
        first = false;
        // Chrome trace timestamps are microseconds; keep ns
        // precision in the fraction.
        out << "{\"ph\":\"";
        switch (e.phase) {
          case TracePhase::Complete:
            out << 'X';
            break;
          case TracePhase::Instant:
            out << 'i';
            break;
          case TracePhase::Counter:
            out << 'C';
            break;
        }
        out << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":"
            << strprintf("%llu.%03u",
                         static_cast<unsigned long long>(e.ts / 1000),
                         static_cast<unsigned>(e.ts % 1000));
        if (e.phase == TracePhase::Complete)
            out << ",\"dur\":"
                << strprintf(
                       "%llu.%03u",
                       static_cast<unsigned long long>(e.dur / 1000),
                       static_cast<unsigned>(e.dur % 1000));
        if (e.phase == TracePhase::Instant)
            out << ",\"s\":\"t\"";
        out << ",\"cat\":\"" << jsonEscape(e.cat)
            << "\",\"name\":\"" << jsonEscape(e.name) << "\"";
        if (e.numArgs) {
            out << ",\"args\":";
            writeArgs(out, e.args, e.numArgs);
        }
        out << "}";
    }
    out << "\n]}\n";
}

void
Tracer::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace to '%s'", path.c_str());
    writeJson(out);
}

void
Tracer::reset()
{
    detail::traceEnabledFlag.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu);
    rings.clear();
    threadNames.clear();
    droppedPublished = 0;
    epochNs = steadyNowNs();
    // Invalidate every thread's cached ring pointer.
    generation.fetch_add(1, std::memory_order_release);
}

void
TraceSpan::begin(const char *category, const char *name_)
{
    live = true;
    numArgs = 0;
    cat = category;
    name = name_;
    startNs = Tracer::instance().nowNs();
}

void
TraceSpan::end()
{
    Tracer &tracer = Tracer::instance();
    TraceEvent event;
    event.ts = startNs;
    event.dur = tracer.nowNs() - startNs;
    event.name = name;
    event.cat = cat;
    event.phase = TracePhase::Complete;
    event.numArgs = numArgs;
    for (uint8_t i = 0; i < numArgs; i++)
        event.args[i] = args[i];
    tracer.threadRing().emit(event);
}

namespace
{

void
emitSimple(TracePhase phase, const char *category, const char *name,
           const TraceArg *args, uint8_t num_args)
{
    Tracer &tracer = Tracer::instance();
    TraceEvent event;
    event.ts = tracer.nowNs();
    event.dur = 0;
    event.name = name;
    event.cat = category;
    event.phase = phase;
    event.numArgs = num_args;
    for (uint8_t i = 0; i < num_args; i++)
        event.args[i] = args[i];
    tracer.threadRing().emit(event);
}

} // namespace

void
traceInstant(const char *category, const char *name)
{
    emitSimple(TracePhase::Instant, category, name, nullptr, 0);
}

void
traceInstant(const char *category, const char *name, const char *key,
             uint64_t value)
{
    TraceArg arg;
    arg.key = key;
    arg.u64 = value;
    arg.kind = TraceArg::Kind::U64;
    emitSimple(TracePhase::Instant, category, name, &arg, 1);
}

void
traceInstant(const char *category, const char *name, const char *key,
             const char *value)
{
    TraceArg arg;
    arg.key = key;
    arg.str = value;
    arg.kind = TraceArg::Kind::Str;
    emitSimple(TracePhase::Instant, category, name, &arg, 1);
}

void
traceCounter(const char *category, const char *name, uint64_t value)
{
    TraceArg arg;
    arg.key = "value";
    arg.u64 = value;
    arg.kind = TraceArg::Kind::U64;
    emitSimple(TracePhase::Counter, category, name, &arg, 1);
}

void
NpeTraceSampler::onInst(uint32_t addr, const isa::Inst &inst)
{
    (void)inst;
    if (traceEnabled())
        traceCounter("npe", "npe.pc", addr);
}

void
NpeTraceSampler::onMemAccess(const sim::MemAccessEvent &event)
{
    if (!traceEnabled())
        return;
    // One counter series per region so packet vs. non-packet access
    // sequences (paper Fig. 9) separate into distinct tracks.
    const char *name;
    switch (event.region) {
      case sim::MemRegion::Packet:
        name = "npe.mem.packet";
        break;
      case sim::MemRegion::Data:
        name = "npe.mem.data";
        break;
      case sim::MemRegion::Stack:
        name = "npe.mem.stack";
        break;
      default:
        name = "npe.mem.other";
        break;
    }
    traceCounter("npe", name, event.addr);
}

void
NpeTraceSampler::onBranch(uint32_t addr, bool taken, uint32_t target)
{
    if (traceEnabled())
        traceInstant("npe", taken ? "npe.branch.taken"
                                  : "npe.branch.not_taken",
                     "target", taken ? target : addr + 4);
}

} // namespace pb::obs
