/**
 * @file
 * Sliding-window rate and rolling-histogram implementation.
 */

#include "window.hh"

namespace pb::obs
{

namespace
{

constexpr int maxSnapshotRetries = 8;

/**
 * First absolute time slot still inside a window of @p n slots
 * ending at @p now_slot.
 */
uint64_t
windowCutoff(uint64_t now_slot, uint64_t n)
{
    return now_slot >= n - 1 ? now_slot - (n - 1) : 0;
}

} // namespace

WindowedRate::WindowedRate(uint64_t window_ns)
{
    bucketNs = window_ns / numBuckets;
    if (bucketNs == 0)
        bucketNs = 1;
}

void
WindowedRate::rotateTo(uint64_t slot)
{
    // The only multi-field update: reassign the ring slot the new
    // time slot maps to.  Readers treat an odd seq as "mid-rotation"
    // and retry, so they never pair the old slot with the new count
    // or vice versa.  Intermediate slots skipped over an idle gap
    // are left stale; readers filter them by slot, so they cost
    // nothing to skip — the update stays O(1) however long the gap.
    Bucket &b = buckets[slot % numBuckets];
    seq.fetch_add(1, std::memory_order_acq_rel);
    b.slot.store(slot, std::memory_order_relaxed);
    b.count.store(0, std::memory_order_relaxed);
    seq.fetch_add(1, std::memory_order_release);
}

void
WindowedRate::add(uint64_t n, uint64_t now_ns)
{
    uint64_t slot = now_ns / bucketNs;
    Bucket &b = buckets[slot % numBuckets];
    if (b.slot.load(std::memory_order_relaxed) != slot)
        rotateTo(slot);
    b.count.fetch_add(n, std::memory_order_relaxed);
    total_.fetch_add(n, std::memory_order_relaxed);
}

uint64_t
WindowedRate::windowCount(uint64_t now_ns) const
{
    uint64_t now_slot = now_ns / bucketNs;
    uint64_t cutoff = windowCutoff(now_slot, numBuckets);
    uint64_t sum = 0;
    for (int attempt = 0; attempt < maxSnapshotRetries; attempt++) {
        uint64_t s1 = seq.load(std::memory_order_acquire);
        sum = 0;
        for (const Bucket &b : buckets) {
            uint64_t slot = b.slot.load(std::memory_order_relaxed);
            if (slot >= cutoff && slot <= now_slot)
                sum += b.count.load(std::memory_order_relaxed);
        }
        uint64_t s2 = seq.load(std::memory_order_acquire);
        if (s1 == s2 && (s1 & 1) == 0)
            break;
        // Else a rotation raced the scan; retry (bounded — a torn
        // sum misattributes at most one bucket of a rate estimate).
    }
    return sum;
}

double
WindowedRate::rate(uint64_t now_ns) const
{
    return static_cast<double>(windowCount(now_ns)) * 1e9 /
           static_cast<double>(windowNs());
}

void
WindowedRate::reset()
{
    for (Bucket &b : buckets) {
        b.slot.store(0, std::memory_order_relaxed);
        b.count.store(0, std::memory_order_relaxed);
    }
    total_.store(0, std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(uint64_t window_ns)
{
    sliceNs = window_ns / numSlices;
    if (sliceNs == 0)
        sliceNs = 1;
}

void
WindowedHistogram::rotateTo(uint64_t slot)
{
    Slice &s = slices[slot % numSlices];
    seq.fetch_add(1, std::memory_order_acq_rel);
    s.slot.store(slot, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto &bucket : s.buckets)
        bucket.store(0, std::memory_order_relaxed);
    seq.fetch_add(1, std::memory_order_release);
}

void
WindowedHistogram::observe(uint64_t sample, uint64_t now_ns)
{
    uint64_t slot = now_ns / sliceNs;
    Slice &s = slices[slot % numSlices];
    if (s.slot.load(std::memory_order_relaxed) != slot)
        rotateTo(slot);
    // Single writer: plain load-then-store min/max updates are safe.
    uint64_t count = s.count.load(std::memory_order_relaxed);
    if (count == 0 || sample < s.min.load(std::memory_order_relaxed))
        s.min.store(sample, std::memory_order_relaxed);
    if (sample > s.max.load(std::memory_order_relaxed))
        s.max.store(sample, std::memory_order_relaxed);
    s.count.store(count + 1, std::memory_order_relaxed);
    s.sum.fetch_add(sample, std::memory_order_relaxed);
    s.buckets[Histogram::bucketIndex(sample)].fetch_add(
        1, std::memory_order_relaxed);
}

Histogram::Snapshot
WindowedHistogram::snapshot(uint64_t now_ns) const
{
    uint64_t now_slot = now_ns / sliceNs;
    uint64_t cutoff = windowCutoff(now_slot, numSlices);
    uint64_t merged[Histogram::numBuckets];
    Histogram::Snapshot snap;
    for (int attempt = 0; attempt < maxSnapshotRetries; attempt++) {
        uint64_t s1 = seq.load(std::memory_order_acquire);
        snap = Histogram::Snapshot{};
        for (auto &bucket : merged)
            bucket = 0;
        for (const Slice &s : slices) {
            uint64_t slot = s.slot.load(std::memory_order_relaxed);
            if (slot < cutoff || slot > now_slot)
                continue;
            uint64_t count =
                s.count.load(std::memory_order_relaxed);
            if (count == 0)
                continue;
            uint64_t mn = s.min.load(std::memory_order_relaxed);
            uint64_t mx = s.max.load(std::memory_order_relaxed);
            if (snap.count == 0 || mn < snap.min)
                snap.min = mn;
            if (mx > snap.max)
                snap.max = mx;
            snap.count += count;
            snap.sum += s.sum.load(std::memory_order_relaxed);
            for (size_t i = 0; i < Histogram::numBuckets; i++)
                merged[i] +=
                    s.buckets[i].load(std::memory_order_relaxed);
        }
        uint64_t s2 = seq.load(std::memory_order_acquire);
        if (s1 == s2 && (s1 & 1) == 0)
            break;
    }
    size_t last = 0;
    for (size_t i = 0; i < Histogram::numBuckets; i++) {
        if (merged[i])
            last = i + 1;
    }
    snap.buckets.assign(merged, merged + last);
    return snap;
}

void
WindowedHistogram::reset()
{
    for (Slice &s : slices) {
        s.slot.store(0, std::memory_order_relaxed);
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        s.min.store(0, std::memory_order_relaxed);
        s.max.store(0, std::memory_order_relaxed);
        for (auto &bucket : s.buckets)
            bucket.store(0, std::memory_order_relaxed);
    }
}

} // namespace pb::obs
