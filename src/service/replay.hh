/**
 * @file
 * Rate-controlled trace replayer: the daemon's built-in packet
 * producer.
 *
 * TraceReplayer owns a producer thread that pulls packets from a
 * TraceSource (fresh instance per pass, via a factory, so `--loop`
 * can recycle a finite corpus indefinitely), paces them through a
 * TokenBucket (service/ratelimit.hh), and feeds them into an
 * IngestRing (service/ingest.hh).  When the corpus is exhausted (or
 * maxPackets reached, or stop()/shutdown requested) it closes the
 * ring, which is the end-of-input signal the consumer side
 * (IngestSource) turns into end-of-trace.
 *
 * Overrun policy: by default the replayer blocks on a full ring
 * (back-pressure — no packet is lost, the effective rate degrades to
 * what the engines sustain).  With dropWhenFull it uses tryPush()
 * instead — NIC semantics: the offered rate is held and overruns are
 * counted as drops ("service.ingest.dropped").
 */

#ifndef PB_SERVICE_REPLAY_HH
#define PB_SERVICE_REPLAY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "net/trace.hh"
#include "service/ingest.hh"

namespace pb::service
{

/** Producer-side configuration for TraceReplayer. */
struct ReplayConfig
{
    /** Target offered rate in packets/second; 0 = as fast as the
     *  ring accepts. */
    uint64_t ratePps = 0;

    /** Token-bucket depth: max back-to-back burst at rate > 0. */
    uint64_t burst = 64;

    /** Recycle the corpus when it runs out (a fresh source per
     *  pass), until stopped or maxPackets is hit. */
    bool loop = false;

    /** Stop after this many packets offered; 0 = unbounded. */
    uint64_t maxPackets = 0;

    /** Full ring: drop-and-count (true) vs block (false). */
    bool dropWhenFull = false;
};

/** Background thread replaying a trace into an IngestRing. */
class TraceReplayer
{
  public:
    /** Creates one trace pass; called again for each `loop` pass. */
    using SourceFactory =
        std::function<std::unique_ptr<net::TraceSource>()>;

    /**
     * @param factory per-pass trace source factory
     * @param ring    destination ring (not owned; must outlive join)
     * @param cfg     pacing/looping policy
     */
    TraceReplayer(SourceFactory factory, IngestRing &ring,
                  ReplayConfig cfg);

    ~TraceReplayer();

    TraceReplayer(const TraceReplayer &) = delete;
    TraceReplayer &operator=(const TraceReplayer &) = delete;

    /** Spawn the producer thread (once). */
    void start();

    /** Ask the producer to finish after the in-flight packet. */
    void stop();

    /**
     * Wait for the producer to finish and close the ring.  Always
     * safe to call; returns immediately when never started.
     */
    void join();

    /** Packets offered to the ring so far. */
    uint64_t packets() const
    {
        return sent.load(std::memory_order_relaxed);
    }

    /** Completed passes over the corpus so far. */
    uint64_t loops() const
    {
        return passes.load(std::memory_order_relaxed);
    }

  private:
    void run();

    SourceFactory factory;
    IngestRing &ring;
    ReplayConfig cfg;

    std::thread thread;
    std::atomic<bool> started{false};
    std::atomic<bool> stopRequested{false};
    std::atomic<uint64_t> sent{0};
    std::atomic<uint64_t> passes{0};
};

} // namespace pb::service

#endif // PB_SERVICE_REPLAY_HH
