/**
 * @file
 * Token-bucket pacing for rate-controlled replay.
 *
 * The replayer (service/replay.hh) must offer packets at a target
 * rate, not as fast as the disk or generator can produce them — the
 * daemon's whole point is sustained load, and the paper's workloads
 * are characterized at line rates, not burst rates.  A token bucket
 * gives the classic shape: long-run average of `ratePps` packets per
 * second with bursts up to `burst` packets, which absorbs scheduler
 * jitter on the producer thread without letting the average drift.
 *
 * acquire() sleeps in bounded slices and polls the process shutdown
 * flag, so a producer pacing at 10 pps still tears down within one
 * slice of a SIGTERM.
 */

#ifndef PB_SERVICE_RATELIMIT_HH
#define PB_SERVICE_RATELIMIT_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/shutdown.hh"

namespace pb::service
{

/** Token bucket over a steady clock; rate 0 means unlimited. */
class TokenBucket
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @param rate_pps tokens added per second (0 = no limiting:
     *                 every acquire succeeds immediately)
     * @param burst    bucket depth — maximum tokens banked while
     *                 idle, hence maximum back-to-back burst
     */
    explicit TokenBucket(uint64_t rate_pps, uint64_t burst = 64)
        : ratePps(rate_pps), burst(std::max<uint64_t>(burst, 1)),
          tokens(static_cast<double>(this->burst)),
          last(Clock::now())
    {
    }

    /** Take one token now if available; never blocks or sleeps. */
    bool
    tryAcquire()
    {
        if (ratePps == 0)
            return true;
        refill();
        if (tokens < 1.0)
            return false;
        tokens -= 1.0;
        return true;
    }

    /**
     * Block until one token is available and take it.  Returns false
     * without a token when a process shutdown is requested while
     * waiting; at daemon rates the sleep slices are sub-millisecond,
     * and they are capped so even extreme rates stay responsive.
     */
    bool
    acquire()
    {
        while (!tryAcquire()) {
            if (shutdownRequested())
                return false;
            std::this_thread::sleep_for(sliceUntilToken());
        }
        return true;
    }

    /** Configured rate (0 = unlimited). */
    uint64_t rate() const { return ratePps; }

  private:
    void
    refill()
    {
        Clock::time_point now = Clock::now();
        double dt =
            std::chrono::duration<double>(now - last).count();
        last = now;
        tokens = std::min(
            static_cast<double>(burst),
            tokens + dt * static_cast<double>(ratePps));
    }

    /** Time until the next whole token, capped for shutdown polls. */
    std::chrono::nanoseconds
    sliceUntilToken() const
    {
        double need = 1.0 - tokens;
        double secs = need / static_cast<double>(ratePps);
        auto ns = std::chrono::nanoseconds(
            static_cast<int64_t>(secs * 1e9) + 1);
        return std::min(
            ns, std::chrono::nanoseconds(
                    std::chrono::milliseconds(50)));
    }

    const uint64_t ratePps;
    const uint64_t burst;
    double tokens;
    Clock::time_point last;
};

} // namespace pb::service

#endif // PB_SERVICE_RATELIMIT_HH
