/**
 * @file
 * TraceReplayer implementation.
 *
 * Termination paths all converge on closing the ring from run():
 * corpus exhausted (non-loop), maxPackets reached, stop() called, or
 * process shutdown requested.  The consumer then drains what is
 * queued and sees end-of-trace, so no packet accepted into the ring
 * is ever lost to teardown.
 */

#include "replay.hh"

#include <utility>

#include "common/shutdown.hh"
#include "obs/metrics.hh"
#include "service/ratelimit.hh"

namespace pb::service
{

TraceReplayer::TraceReplayer(SourceFactory factory, IngestRing &ring,
                             ReplayConfig cfg)
    : factory(std::move(factory)), ring(ring), cfg(cfg)
{
}

TraceReplayer::~TraceReplayer()
{
    stop();
    join();
}

void
TraceReplayer::start()
{
    bool expected = false;
    if (!started.compare_exchange_strong(expected, true))
        return;
    thread = std::thread([this] { run(); });
}

void
TraceReplayer::stop()
{
    stopRequested.store(true, std::memory_order_relaxed);
}

void
TraceReplayer::join()
{
    if (thread.joinable())
        thread.join();
}

void
TraceReplayer::run()
{
    TokenBucket bucket(cfg.ratePps, cfg.burst);
    bool done = false;
    while (!done) {
        std::unique_ptr<net::TraceSource> source = factory();
        if (!source)
            break;
        bool pass_complete = true;
        for (;;) {
            if (stopRequested.load(std::memory_order_relaxed) ||
                shutdownRequested()) {
                done = true;
                pass_complete = false;
                break;
            }
            if (cfg.maxPackets &&
                sent.load(std::memory_order_relaxed) >=
                    cfg.maxPackets) {
                done = true;
                pass_complete = false;
                break;
            }
            std::optional<net::Packet> packet = source->next();
            if (!packet)
                break; // corpus exhausted: maybe loop
            if (!bucket.acquire()) {
                done = true; // shutdown while pacing
                pass_complete = false;
                break;
            }
            bool accepted =
                cfg.dropWhenFull
                    ? ring.tryPush(std::move(*packet))
                    : ring.push(std::move(*packet));
            if (!accepted && !cfg.dropWhenFull) {
                done = true; // ring closed under us, or shutdown
                pass_complete = false;
                break;
            }
            sent.fetch_add(1, std::memory_order_relaxed);
            PB_COUNTER("service.replay.packets");
        }
        if (pass_complete) {
            passes.fetch_add(1, std::memory_order_relaxed);
            PB_COUNTER("service.replay.loops");
            if (!cfg.loop)
                done = true;
        }
    }
    ring.close();
}

} // namespace pb::service
