/**
 * @file
 * Packet-ingest ring: the boundary between packet producers and the
 * processing engines in service mode.
 *
 * A persistent daemon (service/daemon.hh) does not own its input the
 * way a batch run owns a trace file: packets arrive continuously
 * from whoever produces them — the built-in rate-controlled trace
 * replayer (service/replay.hh) today, sockets or shared-memory
 * producers tomorrow.  IngestRing is that boundary: a bounded MPMC
 * queue of packets that any number of producer threads feed and any
 * number of consumers drain (the daemon runs one consumer, the
 * MultiCoreBench dispatcher, which preserves arrival order into the
 * flow-ordered per-engine queues).
 *
 * Semantics:
 *  - push() blocks while the ring is full (back-pressure onto the
 *    producer — replay pacing), and returns false once the ring is
 *    closed or a process shutdown is requested, so a parked producer
 *    can never deadlock a terminating daemon;
 *  - tryPush() never blocks: a full ring drops the packet and counts
 *    it ("service.ingest.dropped"), which is NIC semantics for an
 *    overrun — the mode for producers that must not stall;
 *  - pop() blocks while the ring is empty and returns false once the
 *    ring is closed *and* drained (close() wakes all waiters);
 *  - IngestSource adapts the consumer side to net::TraceSource, so
 *    the whole existing engine/bench stack runs off a live ring
 *    unchanged.
 *
 * The ring is mutex-based — ingest hand-off is per-packet at service
 * rates (not per-batch at simulator-bench rates), and a lock +
 * condvar keeps parked producers/consumers at near-zero CPU, which
 * is the daemon's idle contract.
 */

#ifndef PB_SERVICE_INGEST_HH
#define PB_SERVICE_INGEST_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "net/trace.hh"

namespace pb::service
{

/** Bounded MPMC packet queue between producers and the dispatcher. */
class IngestRing
{
  public:
    /** @param capacity maximum queued packets (back-pressure bound) */
    explicit IngestRing(size_t capacity);

    IngestRing(const IngestRing &) = delete;
    IngestRing &operator=(const IngestRing &) = delete;

    /**
     * Enqueue @p packet, blocking while the ring is full.  Returns
     * false — without enqueuing — once the ring is closed or a
     * graceful shutdown is requested (common/shutdown.hh), so a
     * producer parked on a full ring always unblocks on teardown.
     */
    bool push(net::Packet &&packet);

    /**
     * Non-blocking enqueue.  A full (or closed) ring refuses the
     * packet and counts it into dropped() /
     * "service.ingest.dropped".
     */
    bool tryPush(net::Packet &&packet);

    /**
     * Dequeue into @p out, blocking while the ring is empty.
     * Returns false once the ring is closed and fully drained.
     */
    bool pop(net::Packet &out);

    /** Non-blocking dequeue; false when nothing was available. */
    bool tryPop(net::Packet &out);

    /**
     * No further pushes will be accepted; wakes every parked
     * producer and consumer.  Consumers still drain queued packets.
     */
    void close();

    /** True once close() was called (packets may still be queued). */
    bool closed() const;

    /** Current occupancy. */
    size_t size() const;

    /** Maximum occupancy. */
    size_t capacity() const { return cap; }

    /** Packets accepted into the ring so far. */
    uint64_t
    accepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

    /** Packets refused by tryPush() on a full ring so far. */
    uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    mutable std::mutex mu;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::deque<net::Packet> items;
    const size_t cap;
    bool closed_ = false;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> dropped_{0};
};

/**
 * TraceSource view of an IngestRing's consumer side: next() blocks
 * on the live ring and reports end-of-trace when the ring is closed
 * and drained.  This is what lets MultiCoreBench::run() — and with
 * it every dispatch, fault, and telemetry behavior of the batch path
 * — serve continuous ingest unchanged.
 */
class IngestSource : public net::TraceSource
{
  public:
    explicit IngestSource(IngestRing &ring,
                          std::string label = "ingest")
        : ring(ring), label(std::move(label))
    {
    }

    std::optional<net::Packet> next() override;
    std::string name() const override { return label; }

  private:
    IngestRing &ring;
    std::string label;
};

} // namespace pb::service

#endif // PB_SERVICE_INGEST_HH
