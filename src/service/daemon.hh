/**
 * @file
 * packetbenchd core: a persistent packet-processing service built
 * from the batch-bench pieces.
 *
 * PacketBenchd wires together, for one service run:
 *
 *   TraceReplayer --> IngestRing --> IngestSource --> MultiCoreBench
 *     (producer        (bounded       (TraceSource      (dispatcher +
 *      thread,          MPMC           adapter)           N engine
 *      paced)           buffer)                           workers)
 *
 * plus a speed-reporter thread that prints a periodic console line
 * (Mpps / Gbps / MIPS, aggregate and per engine) from the live
 * telemetry hub (obs/stats.hh).  The reporter raises the per-packet
 * telemetry gate itself, so the daemon shows live rates even when no
 * `--stats` pump is running, and restores the gate's prior state on
 * exit.
 *
 * Shutdown: SIGINT/SIGTERM (installed by the binary via
 * common/shutdown.hh) stops the replayer, closes the ring, lets the
 * dispatcher drain every queued packet through the engines, and
 * returns normally from run() — so the caller's flush paths (stats,
 * trace, prom, report) all execute and the process exits 0.
 */

#ifndef PB_SERVICE_DAEMON_HH
#define PB_SERVICE_DAEMON_HH

#include <cstdint>

#include "core/multicore.hh"
#include "service/ingest.hh"
#include "service/replay.hh"

namespace pb::service
{

/** Everything a service run needs beyond the app factory. */
struct ServiceConfig
{
    /** Number of processing engines (worker threads in parallel
     *  mode). */
    uint32_t engines = 1;

    /** Per-engine framework config (parallel, dispatch policy,
     *  batch, queue depth, fault policy...). */
    core::BenchConfig bench;

    /** IngestRing capacity in packets. */
    size_t ringCapacity = 4096;

    /** Producer pacing/looping policy. */
    ReplayConfig replay;

    /** Console speed-line period; 0 disables the reporter. */
    uint32_t speedIntervalMs = 1000;
};

/** Outcome of one service run. */
struct ServiceResult
{
    /** Per-engine totals, exactly as a batch run would report. */
    core::MultiCoreResult mc;

    /** Packets the replayer offered to the ring. */
    uint64_t replayed = 0;

    /** Complete passes over the corpus. */
    uint64_t loops = 0;

    /** Packets dropped at the ring (dropWhenFull overruns). */
    uint64_t ringDropped = 0;

    /** Host wall-clock of the whole run. */
    double wallSeconds = 0.0;

    /** True when the run ended because of SIGINT/SIGTERM. */
    bool shutdownBySignal = false;
};

/** The persistent service: replayer + ring + engines + reporter. */
class PacketBenchd
{
  public:
    /**
     * @param factory per-engine application factory (each engine
     *                owns independent state, as in MultiCoreBench)
     * @param cfg     service topology and pacing
     */
    PacketBenchd(core::MultiCoreBench::AppFactory factory,
                 ServiceConfig cfg);

    /**
     * Run the service until the producer finishes (corpus exhausted
     * without `loop`, maxPackets reached) or a shutdown is
     * requested.  Blocks the calling thread; the engines, producer,
     * and reporter run on their own threads per cfg.
     *
     * @param source_factory creates one trace pass for the replayer
     *                       (called once per loop pass)
     */
    ServiceResult
    run(TraceReplayer::SourceFactory source_factory);

    /** The engine array (state inspection in tests). */
    core::MultiCoreBench &bench() { return mc; }

  private:
    ServiceConfig cfg;
    core::MultiCoreBench mc;
};

} // namespace pb::service

#endif // PB_SERVICE_DAEMON_HH
