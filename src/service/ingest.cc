/**
 * @file
 * IngestRing / IngestSource implementation.
 *
 * Blocking waits use a bounded wait_for so a parked thread re-checks
 * the process shutdown flag (common/shutdown.hh) even if it misses a
 * wakeup; close() and shutdown both resolve every waiter promptly.
 */

#include "ingest.hh"

#include <chrono>
#include <utility>

#include "common/shutdown.hh"
#include "obs/metrics.hh"

namespace pb::service
{

namespace
{
/** Backstop for blocking waits; shutdown poll period when parked. */
constexpr std::chrono::milliseconds kParkSlice{50};
} // namespace

IngestRing::IngestRing(size_t capacity)
    : cap(capacity ? capacity : 1)
{
}

bool
IngestRing::push(net::Packet &&packet)
{
    std::unique_lock<std::mutex> lock(mu);
    while (items.size() >= cap && !closed_) {
        if (shutdownRequested())
            return false;
        notFull.wait_for(lock, kParkSlice);
    }
    if (closed_ || shutdownRequested())
        return false;
    items.push_back(std::move(packet));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    PB_COUNTER("service.ingest.accepted");
    lock.unlock();
    notEmpty.notify_one();
    return true;
}

bool
IngestRing::tryPush(net::Packet &&packet)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (closed_ || items.size() >= cap) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            PB_COUNTER("service.ingest.dropped");
            return false;
        }
        items.push_back(std::move(packet));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        PB_COUNTER("service.ingest.accepted");
    }
    notEmpty.notify_one();
    return true;
}

bool
IngestRing::pop(net::Packet &out)
{
    std::unique_lock<std::mutex> lock(mu);
    while (items.empty()) {
        if (closed_)
            return false;
        notEmpty.wait_for(lock, kParkSlice);
    }
    out = std::move(items.front());
    items.pop_front();
    lock.unlock();
    notFull.notify_one();
    return true;
}

bool
IngestRing::tryPop(net::Packet &out)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (items.empty())
            return false;
        out = std::move(items.front());
        items.pop_front();
    }
    notFull.notify_one();
    return true;
}

void
IngestRing::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        closed_ = true;
    }
    notFull.notify_all();
    notEmpty.notify_all();
}

bool
IngestRing::closed() const
{
    std::lock_guard<std::mutex> lock(mu);
    return closed_;
}

size_t
IngestRing::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return items.size();
}

std::optional<net::Packet>
IngestSource::next()
{
    net::Packet packet;
    if (!ring.pop(packet))
        return std::nullopt;
    return packet;
}

} // namespace pb::service
