/**
 * @file
 * PacketBenchd implementation: run-loop wiring and the console
 * speed reporter.
 */

#include "daemon.hh"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/shutdown.hh"
#include "obs/stats.hh"

namespace pb::service
{

namespace
{

/**
 * Periodic console speed line from the live telemetry hub, in the
 * spirit of per-core Mpps/Gbps lines from packet-analytics daemons.
 * Runs on its own thread; stop() wakes and joins it.
 */
class SpeedReporter
{
  public:
    SpeedReporter(const IngestRing &ring,
                  const TraceReplayer &replayer,
                  uint32_t interval_ms)
        : ring(ring), replayer(replayer), intervalMs(interval_ms)
    {
        thread = std::thread([this] { loop(); });
    }

    ~SpeedReporter() { stop(); }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                return;
            stopping = true;
        }
        cv.notify_all();
        thread.join();
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu);
        while (!cv.wait_for(
            lock, std::chrono::milliseconds(intervalMs),
            [this] { return stopping; })) {
            lock.unlock();
            emit();
            lock.lock();
        }
    }

    void
    emit()
    {
        uint64_t now = obs::telemetryNowNs();
        double pps = 0.0, bps = 0.0, mips = 0.0;
        std::string per_engine;
        for (const obs::EngineTelemetry *e :
             obs::Telemetry::instance().engines()) {
            double epps = e->packets.rate(now);
            pps += epps;
            bps += e->bytes.rate(now) * 8.0;
            mips += e->insts.rate(now) / 1e6;
            per_engine += strprintf(" e%u=%.2f", e->engineId,
                                    epps / 1e6);
        }
        fprintf(stderr,
                "[packetbenchd] %.3f Mpps %.3f Gbps %.1f MIPS |%s"
                " | ring %zu/%zu | replayed %llu (%llu loops,"
                " %llu dropped)\n",
                pps / 1e6, bps / 1e9, mips,
                per_engine.empty() ? " idle" : per_engine.c_str(),
                ring.size(), ring.capacity(),
                static_cast<unsigned long long>(replayer.packets()),
                static_cast<unsigned long long>(replayer.loops()),
                static_cast<unsigned long long>(ring.dropped()));
        fflush(stderr);
    }

    const IngestRing &ring;
    const TraceReplayer &replayer;
    uint32_t intervalMs;

    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace

PacketBenchd::PacketBenchd(core::MultiCoreBench::AppFactory factory,
                           ServiceConfig cfg_in)
    : cfg(std::move(cfg_in)),
      mc(factory, cfg.engines ? cfg.engines : 1, cfg.bench)
{
}

ServiceResult
PacketBenchd::run(TraceReplayer::SourceFactory source_factory)
{
    IngestRing ring(cfg.ringCapacity);
    TraceReplayer replayer(std::move(source_factory), ring,
                           cfg.replay);

    // Light the per-packet telemetry gate so the reporter's windowed
    // rates are fed even without a --stats pump; restore the prior
    // state (a pump may own it) on every exit path.
    bool prev_stats = obs::statsEnabled();
    obs::setStatsEnabled(true);

    auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<SpeedReporter> reporter;
    if (cfg.speedIntervalMs)
        reporter = std::make_unique<SpeedReporter>(
            ring, replayer, cfg.speedIntervalMs);

    ServiceResult res;
    replayer.start();
    IngestSource source(ring, "ingest");
    try {
        res.mc = mc.run(source, UINT32_MAX);
    } catch (...) {
        // An engine failed: release the producer (push() observes
        // the closed ring) and the reporter before rethrowing, so
        // the process dies from the engine's error, not a hang.
        ring.close();
        replayer.stop();
        replayer.join();
        if (reporter)
            reporter->stop();
        obs::setStatsEnabled(prev_stats);
        throw;
    }

    // run() came back: either the replayer closed the ring (corpus
    // done) or a shutdown broke the dispatcher loop.  Either way the
    // producer unblocks promptly (push() polls the shutdown flag).
    replayer.stop();
    replayer.join();
    if (reporter)
        reporter->stop();

    res.replayed = replayer.packets();
    res.loops = replayer.loops();
    res.ringDropped = ring.dropped();
    res.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    res.shutdownBySignal = shutdownRequested();
    obs::setStatsEnabled(prev_stats);
    return res;
}

} // namespace pb::service
