/**
 * @file
 * Small string utilities used by the assembler, table loaders, and
 * command-line parsing in benches and examples.
 */

#ifndef PB_COMMON_STRUTIL_HH
#define PB_COMMON_STRUTIL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pb
{

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a single character delimiter; empty fields preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; no empty fields. */
std::vector<std::string> splitWs(std::string_view s);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/**
 * Parse an integer with optional 0x prefix and optional leading '-'.
 * Returns nullopt on any malformed input or overflow past 64 bits.
 */
std::optional<int64_t> parseInt(std::string_view s);

/** Parse a dotted-quad IPv4 address into host byte order. */
std::optional<uint32_t> parseIpv4(std::string_view s);

/** Format a host-order IPv4 address as a dotted quad. */
std::string formatIpv4(uint32_t addr);

/** Thousands-separated decimal formatting, e.g. 4643333 -> 4,643,333. */
std::string withCommas(uint64_t value);

} // namespace pb

#endif // PB_COMMON_STRUTIL_HH
