/**
 * @file
 * Byte-order helpers for serializing and parsing packet headers and
 * trace files.  Packets are big-endian on the wire; pcap files use
 * the byte order recorded in their magic number.
 */

#ifndef PB_COMMON_BYTEORDER_HH
#define PB_COMMON_BYTEORDER_HH

#include <cstdint>
#include <cstring>

namespace pb
{

/** Read a big-endian 16-bit value from a byte buffer. */
inline uint16_t
loadBe16(const uint8_t *p)
{
    return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

/** Read a big-endian 32-bit value from a byte buffer. */
inline uint32_t
loadBe32(const uint8_t *p)
{
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) |
           static_cast<uint32_t>(p[3]);
}

/** Write a big-endian 16-bit value to a byte buffer. */
inline void
storeBe16(uint8_t *p, uint16_t v)
{
    p[0] = static_cast<uint8_t>(v >> 8);
    p[1] = static_cast<uint8_t>(v);
}

/** Write a big-endian 32-bit value to a byte buffer. */
inline void
storeBe32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v >> 24);
    p[1] = static_cast<uint8_t>(v >> 16);
    p[2] = static_cast<uint8_t>(v >> 8);
    p[3] = static_cast<uint8_t>(v);
}

/** Read a little-endian 16-bit value from a byte buffer. */
inline uint16_t
loadLe16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

/** Read a little-endian 32-bit value from a byte buffer. */
inline uint32_t
loadLe32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

/** Write a little-endian 16-bit value to a byte buffer. */
inline void
storeLe16(uint8_t *p, uint16_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
}

/** Write a little-endian 32-bit value to a byte buffer. */
inline void
storeLe32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

/** Byte-swap a 16-bit value. */
constexpr uint16_t
bswap16(uint16_t v)
{
    return static_cast<uint16_t>((v << 8) | (v >> 8));
}

/** Byte-swap a 32-bit value. */
constexpr uint32_t
bswap32(uint32_t v)
{
    return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
           ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

} // namespace pb

#endif // PB_COMMON_BYTEORDER_HH
