/**
 * @file
 * Text table renderer implementation.
 */

#include "texttable.hh"

#include "logging.hh"

namespace pb
{

TextTable::TextTable(std::vector<Align> aligns_) : aligns(std::move(aligns_))
{
    if (aligns.empty())
        panic("TextTable: no columns");
}

TextTable::TextTable(size_t ncols)
{
    if (ncols == 0)
        panic("TextTable: no columns");
    aligns.assign(ncols, Align::Right);
    aligns[0] = Align::Left;
}

void
TextTable::header(std::vector<std::string> cells)
{
    if (cells.size() != aligns.size())
        panic("TextTable::header: got %zu cells, want %zu", cells.size(),
              aligns.size());
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    if (cells.size() != aligns.size())
        panic("TextTable::row: got %zu cells, want %zu", cells.size(),
              aligns.size());
    rows.push_back({std::move(cells), false});
}

void
TextTable::rule()
{
    rows.push_back({{}, true});
}

std::string
TextTable::render() const
{
    size_t ncols = aligns.size();
    std::vector<size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); i++)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!head.empty())
        measure(head);
    for (const auto &r : rows) {
        if (!r.isRule)
            measure(r.cells);
    }

    size_t total = 0;
    for (size_t w : widths)
        total += w;
    total += 2 * (ncols - 1);

    auto renderRow = [&](const std::vector<std::string> &cells,
                         std::string &out) {
        for (size_t i = 0; i < ncols; i++) {
            size_t pad = widths[i] - cells[i].size();
            if (aligns[i] == Align::Right)
                out.append(pad, ' ');
            out += cells[i];
            if (aligns[i] == Align::Left && i + 1 < ncols)
                out.append(pad, ' ');
            if (i + 1 < ncols)
                out.append(2, ' ');
        }
        out += '\n';
    };

    std::string out;
    if (!head.empty()) {
        renderRow(head, out);
        out.append(total, '-');
        out += '\n';
    }
    for (const auto &r : rows) {
        if (r.isRule) {
            out.append(total, '-');
            out += '\n';
        } else {
            renderRow(r.cells, out);
        }
    }
    return out;
}

} // namespace pb
