/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All synthetic workloads (trace generators, routing-table generator,
 * test inputs) draw from this generator so that every experiment is
 * reproducible from its seed alone.  The core is xoshiro128**.
 */

#ifndef PB_COMMON_RNG_HH
#define PB_COMMON_RNG_HH

#include <cstdint>
#include <vector>

#include "hash.hh"
#include "logging.hh"

namespace pb
{

/** Small, fast, seedable PRNG (xoshiro128**). */
class Rng
{
  public:
    /** Seed via splitmix-style expansion of a single 32-bit value. */
    explicit Rng(uint32_t seed = 1)
    {
        // mix32 is bijective, so distinct seeds give distinct states;
        // the OR makes an all-zero state impossible.
        state[0] = mix32(seed ^ 0xa5a5a5a5u) | 1u;
        state[1] = mix32(seed + 0x9e3779b9u);
        state[2] = mix32(seed + 0x3c6ef372u);
        state[3] = mix32(seed + 0xdaa66d2bu);
    }

    /** Next raw 32-bit value. */
    uint32_t
    next()
    {
        uint32_t result = rotl(state[1] * 5u, 7) * 9u;
        uint32_t t = state[1] << 9;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 11);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint32_t
    below(uint32_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound 0");
        // Lemire's multiply-shift rejection method.
        uint64_t m = static_cast<uint64_t>(next()) * bound;
        uint32_t lo = static_cast<uint32_t>(m);
        if (lo < bound) {
            uint32_t threshold = (0u - bound) % bound;
            while (lo < threshold) {
                m = static_cast<uint64_t>(next()) * bound;
                lo = static_cast<uint32_t>(m);
            }
        }
        return static_cast<uint32_t>(m >> 32);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint32_t
    range(uint32_t lo, uint32_t hi)
    {
        if (hi < lo)
            panic("Rng::range: hi < lo");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Sample an index from a discrete distribution given by
     * (unnormalized, nonnegative) weights.
     */
    size_t
    weighted(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        if (total <= 0.0)
            panic("Rng::weighted: nonpositive total weight");
        double x = uniform() * total;
        for (size_t i = 0; i < weights.size(); i++) {
            x -= weights[i];
            if (x < 0.0)
                return i;
        }
        return weights.size() - 1;
    }

    /**
     * Bounded geometric-ish sample: repeatedly flip a coin with
     * success probability @p p; returns number of failures before the
     * first success, capped at @p cap.  Used for bursty flow lengths.
     */
    uint32_t
    geometric(double p, uint32_t cap)
    {
        uint32_t n = 0;
        while (n < cap && !chance(p))
            n++;
        return n;
    }

  private:
    static constexpr uint32_t
    rotl(uint32_t x, int k)
    {
        return (x << k) | (x >> (32 - k));
    }

    uint32_t state[4];
};

} // namespace pb

#endif // PB_COMMON_RNG_HH
