/**
 * @file
 * String utility implementations.
 */

#include "strutil.hh"

#include <cctype>
#include <cstdlib>

#include "logging.hh"

namespace pb
{

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        b++;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        e--;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWs(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            i++;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            i++;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<int64_t>
parseInt(std::string_view s)
{
    s = trim(s);
    if (s.empty())
        return std::nullopt;
    bool neg = false;
    if (s[0] == '-') {
        neg = true;
        s.remove_prefix(1);
        if (s.empty())
            return std::nullopt;
    }
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
    }
    uint64_t value = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return std::nullopt;
        uint64_t next = value * base + static_cast<uint64_t>(digit);
        if (next < value) // overflow
            return std::nullopt;
        value = next;
    }
    if (value > static_cast<uint64_t>(INT64_MAX))
        return std::nullopt;
    int64_t signed_value = static_cast<int64_t>(value);
    return neg ? -signed_value : signed_value;
}

std::optional<uint32_t>
parseIpv4(std::string_view s)
{
    auto parts = split(s, '.');
    if (parts.size() != 4)
        return std::nullopt;
    uint32_t addr = 0;
    for (const auto &part : parts) {
        auto v = parseInt(part);
        if (!v || *v < 0 || *v > 255)
            return std::nullopt;
        addr = (addr << 8) | static_cast<uint32_t>(*v);
    }
    return addr;
}

std::string
formatIpv4(uint32_t addr)
{
    return strprintf("%u.%u.%u.%u", (addr >> 24) & 0xff,
                     (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
}

std::string
withCommas(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        count++;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace pb
