/**
 * @file
 * Cooperative graceful-shutdown flag.
 *
 * A batch bench killed by SIGINT/SIGTERM historically died mid-run
 * and lost the final `--report`/`--stats`/`--trace` records; a
 * persistent daemon (service/daemon.hh) cannot work that way at all.
 * This module turns those signals into a process-wide request flag
 * that every packet loop polls:
 *
 *  - installShutdownHandlers() arms SIGINT and SIGTERM (idempotent;
 *    benchMain() calls it for every bench binary),
 *  - the handler performs two relaxed atomic stores (async-signal
 *    safe) and restores the default disposition, so a *second*
 *    signal kills a wedged process the traditional way,
 *  - run loops (PacketBench::run, the MultiCoreBench dispatcher, the
 *    replayer) poll shutdownRequested() — one relaxed load per
 *    packet — drain their queues, and return normally, so all
 *    telemetry flushing downstream of the loop still happens and the
 *    process exits 0 with a complete, valid output stream.
 *
 * requestShutdown() raises the same flag programmatically (the
 * daemon's `--duration` timer, tests); resetShutdownForTest() clears
 * it so one test process can exercise the path repeatedly.
 */

#ifndef PB_COMMON_SHUTDOWN_HH
#define PB_COMMON_SHUTDOWN_HH

namespace pb
{

/** True once a shutdown was requested (one relaxed atomic load). */
bool shutdownRequested();

/** The signal that requested shutdown (0 for programmatic/none). */
int shutdownSignal();

/** Raise the shutdown flag without a signal (timers, tests). */
void requestShutdown(int signal = 0);

/**
 * Arm graceful-shutdown handlers for SIGINT and SIGTERM.  Safe to
 * call repeatedly (it simply re-arms); the first delivered signal
 * sets the flag and restores the default disposition, so a second
 * signal of the same kind terminates the process immediately.
 */
void installShutdownHandlers();

/** Clear the flag so a test can run the shutdown path again. */
void resetShutdownForTest();

} // namespace pb

#endif // PB_COMMON_SHUTDOWN_HH
