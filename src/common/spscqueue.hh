/**
 * @file
 * Bounded single-producer/single-consumer queue.
 *
 * The parallel multi-engine run loop (core/multicore.hh) hands
 * batches of packets from one dispatcher thread to one worker thread
 * per engine.  That pairing is exactly SPSC, so the queue needs no
 * locks: a ring buffer with an acquire/release head/tail pair is
 * enough, and the bounded capacity provides back-pressure when the
 * dispatcher outruns a worker.
 *
 * Contract:
 *  - exactly one thread calls push()/close(), exactly one calls pop(),
 *  - push() blocks (yielding) while the queue is full,
 *  - pop() blocks while the queue is empty and not closed, and
 *    returns false once the queue is closed *and* drained,
 *  - close() is called by the producer after its last push().
 */

#ifndef PB_COMMON_SPSCQUEUE_HH
#define PB_COMMON_SPSCQUEUE_HH

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace pb
{

/** Bounded SPSC ring buffer holding up to @p capacity items. */
template <typename T>
class SpscQueue
{
  public:
    explicit SpscQueue(size_t capacity) : slots(capacity + 1) {}

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer: enqueue @p item, waiting while the queue is full. */
    void
    push(T &&item)
    {
        size_t h = head.load(std::memory_order_relaxed);
        size_t nh = next(h);
        while (nh == tail.load(std::memory_order_acquire))
            std::this_thread::yield();
        slots[h] = std::move(item);
        head.store(nh, std::memory_order_release);
    }

    /**
     * Consumer: dequeue into @p out, waiting while the queue is
     * empty.  Returns false once the producer has close()d the queue
     * and every item has been drained.
     */
    bool
    pop(T &out)
    {
        size_t t = tail.load(std::memory_order_relaxed);
        while (t == head.load(std::memory_order_acquire)) {
            if (closed_.load(std::memory_order_acquire) &&
                t == head.load(std::memory_order_acquire))
                return false;
            std::this_thread::yield();
        }
        out = std::move(slots[t]);
        tail.store(next(t), std::memory_order_release);
        return true;
    }

    /** Producer: no further push() calls will follow. */
    void close() { closed_.store(true, std::memory_order_release); }

    /** True once close() was called (items may still be queued). */
    bool closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

    /** Maximum number of queued items. */
    size_t capacity() const { return slots.size() - 1; }

    /**
     * Approximate occupancy (racy by nature: either index may move
     * while we read).  Good enough for back-pressure telemetry —
     * the dispatcher samples it into queue-occupancy trace events.
     */
    size_t
    size() const
    {
        size_t h = head.load(std::memory_order_acquire);
        size_t t = tail.load(std::memory_order_acquire);
        return h >= t ? h - t : h + slots.size() - t;
    }

  private:
    size_t
    next(size_t i) const
    {
        return i + 1 == slots.size() ? 0 : i + 1;
    }

    std::vector<T> slots;
    std::atomic<size_t> head{0}; ///< producer-owned write index
    std::atomic<size_t> tail{0}; ///< consumer-owned read index
    std::atomic<bool> closed_{false};
};

} // namespace pb

#endif // PB_COMMON_SPSCQUEUE_HH
