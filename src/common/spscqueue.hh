/**
 * @file
 * Bounded single-producer/single-consumer queue.
 *
 * The parallel multi-engine run loop (core/multicore.hh) hands
 * batches of packets from one dispatcher thread to one worker thread
 * per engine.  That pairing is exactly SPSC, so the queue needs no
 * locks on the fast path: a ring buffer with an acquire/release
 * head/tail pair is enough, and the bounded capacity provides
 * back-pressure when the dispatcher outruns a worker.
 *
 * Waiting is spin -> backoff -> park.  A pure yield() spin was fine
 * for finite batch runs, but a persistent daemon (service/daemon.hh)
 * pins one core per *idle* worker at 100% with it.  A blocked side
 * now spins briefly (cheap when the peer is actively streaming),
 * backs off with yields, then parks on a condition variable; the
 * peer wakes it only when someone is actually parked, so the
 * streaming fast path stays a pair of atomic ops plus one fence and
 * an un-contended flag load.
 *
 * Contract:
 *  - exactly one thread calls push()/close(), exactly one calls pop(),
 *  - push() blocks (parking when idle) while the queue is full,
 *  - pop() blocks while the queue is empty and not closed, and
 *    returns false once the queue is closed *and* drained,
 *  - close() is called by the producer after its last push().
 */

#ifndef PB_COMMON_SPSCQUEUE_HH
#define PB_COMMON_SPSCQUEUE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace pb
{

namespace detail
{

/** One polite spin-wait iteration for the pre-park phase. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

} // namespace detail

/** Bounded SPSC ring buffer holding up to @p capacity items. */
template <typename T>
class SpscQueue
{
  public:
    explicit SpscQueue(size_t capacity) : slots(capacity + 1) {}

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer: enqueue @p item, waiting while the queue is full. */
    void
    push(T &&item)
    {
        size_t h = head.load(std::memory_order_relaxed);
        size_t nh = next(h);
        if (nh == tail.load(std::memory_order_acquire))
            waitNotFull(nh);
        slots[h] = std::move(item);
        head.store(nh, std::memory_order_release);
        wakePeer();
    }

    /**
     * Consumer: dequeue into @p out, waiting while the queue is
     * empty.  Returns false once the producer has close()d the queue
     * and every item has been drained.
     */
    bool
    pop(T &out)
    {
        size_t t = tail.load(std::memory_order_relaxed);
        if (t == head.load(std::memory_order_acquire)) {
            if (!waitNotEmpty(t))
                return false;
        }
        out = std::move(slots[t]);
        tail.store(next(t), std::memory_order_release);
        wakePeer();
        return true;
    }

    /** Producer: no further push() calls will follow. */
    void
    close()
    {
        closed_.store(true, std::memory_order_release);
        // Always lock-and-notify: a consumer parked on an empty
        // queue must observe closed and return false.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
    }

    /** True once close() was called (items may still be queued). */
    bool closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

    /** Maximum number of queued items. */
    size_t capacity() const { return slots.size() - 1; }

    /**
     * Approximate occupancy (racy by nature: either index may move
     * while we read).  Good enough for back-pressure telemetry —
     * the dispatcher samples it into queue-occupancy trace events.
     */
    size_t
    size() const
    {
        size_t h = head.load(std::memory_order_acquire);
        size_t t = tail.load(std::memory_order_acquire);
        return h >= t ? h - t : h + slots.size() - t;
    }

  private:
    /// Pause-loop iterations before escalating to yield().
    static constexpr int pauseSpins = 256;
    /// Total spin iterations (pause + yield) before parking.
    static constexpr int maxSpins = 2048;

    size_t
    next(size_t i) const
    {
        return i + 1 == slots.size() ? 0 : i + 1;
    }

    /**
     * Dekker-style wake: the caller's index store (release) must be
     * ordered before the sleeper-flag load, and the sleeper's flag
     * store before its index re-check; the seq_cst fences on both
     * sides guarantee at least one thread sees the other.  Notify
     * under the mutex so a wake cannot slip between the sleeper's
     * final re-check and its wait.
     */
    void
    wakePeer()
    {
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (sleepers.load(std::memory_order_relaxed) == 0)
            return;
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
    }

    /** Producer-side wait until slot @p nh is free. */
    void
    waitNotFull(size_t nh)
    {
        for (int i = 0; i < maxSpins; i++) {
            if (nh != tail.load(std::memory_order_acquire))
                return;
            if (i < pauseSpins)
                detail::cpuRelax();
            else
                std::this_thread::yield();
        }
        std::unique_lock<std::mutex> lock(mu);
        sleepers.fetch_add(1, std::memory_order_seq_cst);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        while (nh == tail.load(std::memory_order_acquire)) {
            // Bounded wait as a belt-and-braces backstop; the fence
            // protocol above makes a lost wake impossible, so this
            // only turns "impossible" into "100 ms hiccup".
            cv.wait_for(lock, std::chrono::milliseconds(100));
        }
        sleepers.fetch_sub(1, std::memory_order_relaxed);
    }

    /**
     * Consumer-side wait until an item exists at @p t or the queue
     * is closed and drained; true when an item is ready.
     */
    bool
    waitNotEmpty(size_t t)
    {
        for (int i = 0; i < maxSpins; i++) {
            if (t != head.load(std::memory_order_acquire))
                return true;
            if (closed_.load(std::memory_order_acquire))
                return t != head.load(std::memory_order_acquire);
            if (i < pauseSpins)
                detail::cpuRelax();
            else
                std::this_thread::yield();
        }
        std::unique_lock<std::mutex> lock(mu);
        sleepers.fetch_add(1, std::memory_order_seq_cst);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        while (t == head.load(std::memory_order_acquire) &&
               !closed_.load(std::memory_order_acquire)) {
            cv.wait_for(lock, std::chrono::milliseconds(100));
        }
        sleepers.fetch_sub(1, std::memory_order_relaxed);
        return t != head.load(std::memory_order_acquire);
    }

    std::vector<T> slots;
    std::atomic<size_t> head{0}; ///< producer-owned write index
    std::atomic<size_t> tail{0}; ///< consumer-owned read index
    std::atomic<bool> closed_{false};

    /** Threads parked (or about to park) on cv. */
    std::atomic<uint32_t> sleepers{0};
    std::mutex mu;
    std::condition_variable cv;
};

} // namespace pb

#endif // PB_COMMON_SPSCQUEUE_HH
