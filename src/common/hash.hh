/**
 * @file
 * Deterministic hash functions.
 *
 * These are used (a) by the flow classifier for 5-tuple hashing,
 * (b) by the TSA anonymizer as its pseudo-random function, and
 * (c) by the address scrambler's Feistel rounds.  All are portable
 * and seed-stable so that simulation results are reproducible.
 */

#ifndef PB_COMMON_HASH_HH
#define PB_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>

namespace pb
{

/** Jenkins one-at-a-time hash over a byte buffer. */
uint32_t jenkinsOaat(const uint8_t *data, size_t len, uint32_t seed = 0);

/** FNV-1a 32-bit hash over a byte buffer. */
uint32_t fnv1a32(const uint8_t *data, size_t len);

/** CRC-32 (IEEE 802.3 polynomial, reflected) over a byte buffer. */
uint32_t crc32(const uint8_t *data, size_t len, uint32_t seed = 0);

/**
 * The 256-entry lookup table crc32() uses (reflected IEEE
 * polynomial).  Exposed so the CRC payload application can install
 * the identical table in simulated memory.
 */
const uint32_t *crc32Table();

/**
 * Strong 32-bit integer mixer (murmur3 finalizer).  Bijective — every
 * 32-bit input maps to a distinct output — which makes it suitable as
 * a Feistel round function input conditioner and as a cheap PRF core.
 */
constexpr uint32_t
mix32(uint32_t x)
{
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    x *= 0xc2b2ae35u;
    x ^= x >> 16;
    return x;
}

/** Mix two 32-bit values into one (order-sensitive). */
constexpr uint32_t
mix32(uint32_t a, uint32_t b)
{
    return mix32(mix32(a) + 0x9e3779b9u + (b << 6) + (b >> 2) + b);
}

/**
 * Keyed pseudo-random function: PRF_key(x).  Not cryptographic, but
 * statistically well distributed and deterministic; used where the
 * paper's TSA algorithm calls for a keyed hash.
 */
constexpr uint32_t
prf32(uint32_t key, uint32_t x)
{
    return mix32(mix32(x ^ (key * 0x9e3779b9u)) + key);
}

} // namespace pb

#endif // PB_COMMON_HASH_HH
