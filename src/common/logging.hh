/**
 * @file
 * Error handling and status-message helpers for PacketBench.
 *
 * Two kinds of failure, following the gem5 convention:
 *  - fatal(): the user did something wrong (bad trace file, bad CLI
 *    argument).  Raises FatalError, which tool main()s catch and turn
 *    into exit(1).
 *  - panic(): PacketBench itself is broken (violated internal
 *    invariant).  Raises PanicError.
 *
 * Library code that detects recoverable, typed problems (e.g. a
 * simulated program touching unmapped memory) should throw a domain
 * error derived from pb::Error instead, so tests can assert on it.
 */

#ifndef PB_COMMON_LOGGING_HH
#define PB_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pb
{

/** Base class for all PacketBench errors. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** User-caused, unrecoverable error (bad input, bad configuration). */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg) : Error(msg) {}
};

/** Internal invariant violation — a PacketBench bug. */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &msg) : Error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list flavour of strprintf(). */
std::string vstrprintf(const char *fmt, va_list ap);

/** Report a user error and throw FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and throw PanicError. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message on stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

/**
 * @name Leveled diagnostics
 *
 * PB_LOG(level, fmt, ...) gives framework code a uniform way to emit
 * progress, heartbeat, and debug lines without printf scatter.  The
 * threshold comes from the PB_LOG_LEVEL environment variable (a name
 * — "error", "warn", "info", "debug", "trace" — or the numeric value
 * 0-4) and defaults to Warn, so Info and below are silent unless the
 * user opts in.  setLogLevel() overrides the environment (tests).
 * @{
 */

/** Diagnostic verbosity levels, most severe first. */
enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Parse a level name or digit; @p fallback on anything else. */
LogLevel parseLogLevel(std::string_view text, LogLevel fallback);

/** Current threshold (PB_LOG_LEVEL, unless overridden). */
LogLevel logLevel();

/** Override the threshold, winning over the environment. */
void setLogLevel(LogLevel level);

/** True when messages at @p level are emitted. */
bool logEnabled(LogLevel level);

/** Emit one leveled message on stderr ("pb[info]: ..."). */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** @} */

} // namespace pb

/**
 * Leveled diagnostic: PB_LOG(Info, "did %d things", n).  The level
 * is a bare LogLevel enumerator name; arguments are not evaluated
 * when the level is filtered out.
 */
#define PB_LOG(level, ...)                                             \
    do {                                                               \
        if (pb::logEnabled(pb::LogLevel::level))                       \
            pb::logMessage(pb::LogLevel::level, __VA_ARGS__);          \
    } while (0)

#endif // PB_COMMON_LOGGING_HH
