/**
 * @file
 * Hash function implementations.
 */

#include "hash.hh"

#include <array>

namespace pb
{

uint32_t
jenkinsOaat(const uint8_t *data, size_t len, uint32_t seed)
{
    uint32_t hash = seed;
    for (size_t i = 0; i < len; i++) {
        hash += data[i];
        hash += hash << 10;
        hash ^= hash >> 6;
    }
    hash += hash << 3;
    hash ^= hash >> 11;
    hash += hash << 15;
    return hash;
}

uint32_t
fnv1a32(const uint8_t *data, size_t len)
{
    uint32_t hash = 0x811c9dc5u;
    for (size_t i = 0; i < len; i++) {
        hash ^= data[i];
        hash *= 0x01000193u;
    }
    return hash;
}

namespace
{

/** Build the reflected CRC-32 lookup table at static-init time. */
std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; i++) {
        uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> crcTable = makeCrcTable();

} // namespace

const uint32_t *
crc32Table()
{
    return crcTable.data();
}

uint32_t
crc32(const uint8_t *data, size_t len, uint32_t seed)
{
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; i++)
        c = crcTable[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace pb
