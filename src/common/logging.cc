/**
 * @file
 * Implementation of error and status-message helpers.
 */

#include "logging.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace pb
{

namespace
{

bool quietMode = false;

/** -1 = not overridden; otherwise a LogLevel value. */
int logLevelOverride = -1;

LogLevel
envLogLevel()
{
    static LogLevel level = [] {
        const char *env = std::getenv("PB_LOG_LEVEL");
        return parseLogLevel(env ? env : "", LogLevel::Warn);
    }();
    return level;
}

} // namespace

LogLevel
parseLogLevel(std::string_view text, LogLevel fallback)
{
    std::string lower(text);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "error" || lower == "0")
        return LogLevel::Error;
    if (lower == "warn" || lower == "warning" || lower == "1")
        return LogLevel::Warn;
    if (lower == "info" || lower == "2")
        return LogLevel::Info;
    if (lower == "debug" || lower == "3")
        return LogLevel::Debug;
    if (lower == "trace" || lower == "4")
        return LogLevel::Trace;
    return fallback;
}

LogLevel
logLevel()
{
    if (logLevelOverride >= 0)
        return static_cast<LogLevel>(logLevelOverride);
    return envLogLevel();
}

void
setLogLevel(LogLevel level)
{
    logLevelOverride = static_cast<int>(level);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    static const char *names[] = {"error", "warn", "info", "debug",
                                  "trace"};
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "pb[%s]: %s\n",
                 names[static_cast<int>(level)], msg.c_str());
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::string buf(static_cast<size_t>(n), '\0');
    std::vsnprintf(buf.data(), buf.size() + 1, fmt, ap);
    return buf;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw FatalError("fatal: " + msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw PanicError("panic: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace pb
