/**
 * @file
 * Implementation of error and status-message helpers.
 */

#include "logging.hh"

#include <cstdio>

namespace pb
{

namespace
{
bool quietMode = false;
} // namespace

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::string buf(static_cast<size_t>(n), '\0');
    std::vsnprintf(buf.data(), buf.size() + 1, fmt, ap);
    return buf;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw FatalError("fatal: " + msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw PanicError("panic: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace pb
