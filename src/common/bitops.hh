/**
 * @file
 * Bit-manipulation helpers used across the ISA, routing, and
 * anonymization code.
 */

#ifndef PB_COMMON_BITOPS_HH
#define PB_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace pb
{

/**
 * Extract the bit field [lo, lo+len) from @p value, counting bit 0 as
 * the least-significant bit.
 */
constexpr uint32_t
bits(uint32_t value, unsigned lo, unsigned len)
{
    if (len == 0)
        return 0;
    if (len >= 32)
        return value >> lo;
    return (value >> lo) & ((1u << len) - 1);
}

/** Extract a single bit. */
constexpr uint32_t
bit(uint32_t value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Insert @p field into bits [lo, lo+len) of @p value. */
constexpr uint32_t
insertBits(uint32_t value, unsigned lo, unsigned len, uint32_t field)
{
    uint32_t mask = (len >= 32) ? ~0u : ((1u << len) - 1u);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p len bits of @p value to 32 bits. */
constexpr int32_t
sext(uint32_t value, unsigned len)
{
    unsigned shift = 32 - len;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** True if @p value is a multiple of @p align (align must be pow2). */
constexpr bool
isAligned(uint32_t value, uint32_t align)
{
    return (value & (align - 1)) == 0;
}

/** Round @p value up to the next multiple of @p align (pow2). */
constexpr uint32_t
roundUp(uint32_t value, uint32_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/**
 * Network-prefix mask: the 32-bit mask with the top @p len bits set.
 * prefixMask(0) == 0, prefixMask(32) == 0xffffffff.
 */
constexpr uint32_t
prefixMask(unsigned len)
{
    return len == 0 ? 0u : ~0u << (32 - len);
}

/**
 * Length of the longest common prefix of two 32-bit values, viewing
 * bit 31 as the first bit (network order).
 */
constexpr unsigned
commonPrefixLen(uint32_t a, uint32_t b)
{
    uint32_t diff = a ^ b;
    return diff == 0 ? 32 : static_cast<unsigned>(std::countl_zero(diff));
}

/** Number of set bits. */
constexpr unsigned
popCount(uint32_t value)
{
    return static_cast<unsigned>(std::popcount(value));
}

} // namespace pb

#endif // PB_COMMON_BITOPS_HH
