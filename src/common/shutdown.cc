/**
 * @file
 * Graceful-shutdown flag implementation.
 */

#include "shutdown.hh"

#include <atomic>
#include <csignal>

namespace pb
{

namespace
{

std::atomic<bool> requested{false};
std::atomic<int> signalNo{0};

extern "C" void
onShutdownSignal(int sig)
{
    // Async-signal-safe: two relaxed stores and a disposition reset.
    // Restoring SIG_DFL means a second signal kills the process the
    // traditional way — the escape hatch when a drain wedges.
    signalNo.store(sig, std::memory_order_relaxed);
    requested.store(true, std::memory_order_relaxed);
    std::signal(sig, SIG_DFL);
}

} // namespace

bool
shutdownRequested()
{
    return requested.load(std::memory_order_relaxed);
}

int
shutdownSignal()
{
    return signalNo.load(std::memory_order_relaxed);
}

void
requestShutdown(int signal)
{
    signalNo.store(signal, std::memory_order_relaxed);
    requested.store(true, std::memory_order_relaxed);
}

void
installShutdownHandlers()
{
    // Re-arm every call: a handler that already fired reset its
    // disposition to default, and tests re-install between runs.
    struct sigaction sa = {};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
resetShutdownForTest()
{
    requested.store(false, std::memory_order_relaxed);
    signalNo.store(0, std::memory_order_relaxed);
}

} // namespace pb
