/**
 * @file
 * Plain-text table renderer.
 *
 * The benchmark harness reproduces the paper's tables as aligned text
 * on stdout; this class handles column sizing and alignment.
 */

#ifndef PB_COMMON_TEXTTABLE_HH
#define PB_COMMON_TEXTTABLE_HH

#include <string>
#include <vector>

namespace pb
{

/** Column-aligned text table with an optional header rule. */
class TextTable
{
  public:
    /** Column alignment. */
    enum class Align { Left, Right };

    /** Create a table with one alignment entry per column. */
    explicit TextTable(std::vector<Align> aligns);

    /** Convenience: @p ncols columns, first left, rest right. */
    explicit TextTable(size_t ncols);

    /** Set the header row (rendered with a separator rule below). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the column count. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal rule. */
    void rule();

    /** Render the table to a string. */
    std::string render() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isRule = false;
    };

    std::vector<Align> aligns;
    std::vector<std::string> head;
    std::vector<Row> rows;
};

} // namespace pb

#endif // PB_COMMON_TEXTTABLE_HH
