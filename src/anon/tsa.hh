/**
 * @file
 * Prefix-preserving IP address anonymization.
 *
 * Two schemes:
 *
 *  - TsaAnonymizer: top-hashed subtree-replicated anonymization (the
 *    paper's TSA workload, reference [26]).  The top 16 bits are
 *    anonymized by one direct-indexed table; the bottom 16 bits walk
 *    a single precomputed "replicated subtree" of per-level flip
 *    bits shared by all top prefixes.  Per-address cost: one table
 *    load plus 16 bit lookups — fast and constant.
 *
 *  - CryptoPanPp: the full per-bit prefix-preserving scheme of
 *    Xu et al. (reference [27]) that TSA optimizes: every one of the
 *    32 output bits requires a fresh PRF evaluation over the
 *    preceding prefix.  Used as the ablation baseline.
 *
 * Both are prefix-preserving: if two addresses share their first k
 * bits, their anonymized forms also share exactly their first k bits
 * (property-tested).
 */

#ifndef PB_ANON_TSA_HH
#define PB_ANON_TSA_HH

#include <cstdint>
#include <vector>

namespace pb::anon
{

/** Layout constants shared with the NPE32 TSA application. */
namespace tsalayout
{

/** Top-table: 2^16 x 2-byte anonymized top halves. */
constexpr uint32_t topEntries = 1u << 16;
constexpr uint32_t topBytes = topEntries * 2;

/** Replicated subtree: (2^16 - 1) flip bits, packed 8 per byte. */
constexpr uint32_t subtreeBits = (1u << 16) - 1;
constexpr uint32_t subtreeBytes = (subtreeBits + 7) / 8;

/**
 * Record written per packet by the TSA application when collecting
 * layer 3/4 headers: 40 bytes (20 IP + 16 L4 + 4 length).
 */
constexpr uint32_t recordSize = 40;

} // namespace tsalayout

/** Top-hashed subtree-replicated anonymizer. */
class TsaAnonymizer
{
  public:
    /** Precompute the top table and subtree from @p key. */
    explicit TsaAnonymizer(uint32_t key);

    /** Anonymize one address (host reference). */
    uint32_t anonymize(uint32_t addr) const;

    /** The 2^16-entry top-half mapping (prefix-preserving). */
    const std::vector<uint16_t> &topTable() const { return top; }

    /** Packed per-level flip bits for the bottom half. */
    const std::vector<uint8_t> &subtree() const { return tree; }

    /**
     * Flip bit for bottom level @p level (0..15) given the @p path
     * of original bottom bits consumed so far.
     */
    bool
    subtreeBit(unsigned level, uint32_t path) const
    {
        uint32_t index = ((1u << level) - 1) + path;
        return (tree[index >> 3] >> (index & 7)) & 1;
    }

  private:
    std::vector<uint16_t> top;
    std::vector<uint8_t> tree;
};

/** Full per-bit prefix-preserving anonymizer (Xu et al. style). */
class CryptoPanPp
{
  public:
    explicit CryptoPanPp(uint32_t key) : key(key) {}

    /** Anonymize one address; 32 PRF evaluations. */
    uint32_t anonymize(uint32_t addr) const;

  private:
    uint32_t key;
};

} // namespace pb::anon

#endif // PB_ANON_TSA_HH
