/**
 * @file
 * TSA and full prefix-preserving anonymizer implementations.
 */

#include "tsa.hh"

#include "common/hash.hh"

namespace pb::anon
{

using namespace tsalayout;

TsaAnonymizer::TsaAnonymizer(uint32_t key)
{
    // Top table: apply the Xu et al. per-bit construction over the
    // 16-bit top half, exhaustively precomputed.  The flip for bit i
    // depends only on the preceding i bits, so the table is
    // prefix-preserving by construction.
    top.resize(topEntries);
    for (uint32_t t = 0; t < topEntries; t++) {
        uint32_t anon = 0;
        uint32_t path = 0;
        for (unsigned i = 0; i < 16; i++) {
            uint32_t orig_bit = (t >> (15 - i)) & 1;
            uint32_t flip =
                prf32(key ^ 0x70700000u, ((1u << i) - 1) + path) & 1;
            anon = (anon << 1) | (orig_bit ^ flip);
            path = (path << 1) | orig_bit;
        }
        top[t] = static_cast<uint16_t>(anon);
    }

    // Replicated subtree for the bottom half: one flip bit per
    // (level, path) pair, shared across all top prefixes.
    tree.assign(subtreeBytes, 0);
    for (unsigned level = 0; level < 16; level++) {
        for (uint32_t path = 0; path < (1u << level); path++) {
            uint32_t index = ((1u << level) - 1) + path;
            uint32_t flip = prf32(key ^ 0xb0770000u, index) & 1;
            if (flip)
                tree[index >> 3] |= static_cast<uint8_t>(1u << (index & 7));
        }
    }
}

uint32_t
TsaAnonymizer::anonymize(uint32_t addr) const
{
    uint32_t anon_top = top[addr >> 16];
    uint32_t bottom = addr & 0xffff;
    uint32_t anon_bottom = 0;
    uint32_t path = 0;
    for (unsigned i = 0; i < 16; i++) {
        uint32_t orig_bit = (bottom >> (15 - i)) & 1;
        uint32_t flip = subtreeBit(i, path) ? 1 : 0;
        anon_bottom = (anon_bottom << 1) | (orig_bit ^ flip);
        path = (path << 1) | orig_bit;
    }
    return (anon_top << 16) | anon_bottom;
}

uint32_t
CryptoPanPp::anonymize(uint32_t addr) const
{
    uint32_t anon = 0;
    uint32_t path = 0;
    for (unsigned i = 0; i < 32; i++) {
        uint32_t orig_bit = (addr >> (31 - i)) & 1;
        // Fresh PRF per bit over (level, preceding path).
        uint32_t flip = prf32(key + i, path) & 1;
        anon = (anon << 1) | (orig_bit ^ flip);
        path = (path << 1) | orig_bit;
    }
    return anon;
}

} // namespace pb::anon
