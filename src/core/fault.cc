/**
 * @file
 * Fault-isolation name tables.
 */

#include "fault.hh"

namespace pb::core
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::MalformedPacket:
        return "malformed-packet";
      case FaultKind::SimFault:
        return "sim-fault";
      case FaultKind::BudgetExceeded:
        return "budget-exceeded";
    }
    return "unknown";
}

const char *
faultPolicyName(FaultPolicy policy)
{
    switch (policy) {
      case FaultPolicy::Abort:
        return "abort";
      case FaultPolicy::Drop:
        return "drop";
      case FaultPolicy::Quarantine:
        return "quarantine";
    }
    return "unknown";
}

} // namespace pb::core
