/**
 * @file
 * Per-packet fault isolation.
 *
 * Real traces contain malformed packets and real applications have
 * bugs; neither should kill a multi-million-packet run.  This header
 * defines what the framework records when a packet cannot be
 * processed (FaultKind), what it does about it (FaultPolicy), and the
 * thread-safe quarantine sink that captures the offending packets for
 * offline reproduction.
 *
 * A faulted packet leaves its engine clean: registers reset, the
 * observer detached, the packet-memory extent tracking correct —
 * packet N+1 simulates exactly as if packet N had never existed.
 */

#ifndef PB_CORE_FAULT_HH
#define PB_CORE_FAULT_HH

#include <cstdint>
#include <mutex>

#include "net/trace.hh"

namespace pb::core
{

/** Why a packet could not be processed. */
enum class FaultKind : uint8_t
{
    None = 0,       ///< packet processed normally
    MalformedPacket, ///< no L3 bytes, or larger than packet memory
    SimFault,       ///< the handler faulted (bad access, bad opcode)
    BudgetExceeded, ///< the handler blew its instruction budget
};

/** Human-readable fault-kind name. */
const char *faultKindName(FaultKind kind);

/** What the framework does with a faulting packet. */
enum class FaultPolicy : uint8_t
{
    /**
     * Throw / fatal() as before: the first fault ends the run.  The
     * default — a clean trace that faults indicates a framework or
     * application bug, and hiding that would corrupt results.
     */
    Abort,

    /** Record the fault in the outcome and metrics, then continue. */
    Drop,

    /**
     * Like Drop, and additionally write the offending packet to
     * BenchConfig::quarantine for offline reproduction.
     */
    Quarantine,
};

/** Human-readable fault-policy name. */
const char *faultPolicyName(FaultPolicy policy);

/**
 * Thread-safe quarantine capture: wraps any TraceSink (typically a
 * PcapWriter) behind a mutex so the engines of a parallel
 * MultiCoreBench run can share one quarantine file.  Packets are
 * written in fault order, which under parallel execution is a valid
 * interleaving rather than trace order — each packet is
 * byte-identical to what the faulting engine saw.
 */
class QuarantineSink : public net::TraceSink
{
  public:
    /** @param downstream sink that receives the packets; must
     *                    outlive this object. */
    explicit QuarantineSink(net::TraceSink &downstream)
        : sink(downstream)
    {}

    void
    write(const net::Packet &packet) override
    {
        std::lock_guard<std::mutex> lock(mu);
        sink.write(packet);
        count++;
    }

    /** Packets quarantined so far. */
    uint64_t
    quarantined() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return count;
    }

  private:
    net::TraceSink &sink;
    mutable std::mutex mu;
    uint64_t count = 0;
};

} // namespace pb::core

#endif // PB_CORE_FAULT_HH
