/**
 * @file
 * PacketBench framework implementation.
 */

#include "packetbench.hh"

#include "sim/memmap.hh"

namespace pb::core
{

PacketBench::PacketBench(Application &app_, BenchConfig cfg_)
    : app(app_), cpu(mem), scrambler(cfg_.scrambleKey)
{
    cfg = cfg_;
    // init(): application builds its tables (unaccounted).
    isa::Program prog = app.setup(mem);
    cpu.loadProgram(prog);
    entry = prog.entry("main");

    blockMap = std::make_unique<sim::BlockMap>(prog);
    rec = std::make_unique<sim::PacketRecorder>(prog, *blockMap,
                                                cfg.recorder);
    fanout.add(rec.get());
    if (cfg.microArch) {
        uarch = std::make_unique<sim::MicroArchModel>();
        fanout.add(uarch.get());
    }
    if (cfg.timing) {
        timer = std::make_unique<sim::PipelineTimer>(cfg.timingParams);
        fanout.add(timer.get());
    }
}

PacketOutcome
PacketBench::processPacket(net::Packet &packet)
{
    if (cfg.scramble)
        scrambler.scramblePacket(packet);

    // Place the packet (from the L3 header onwards) into simulated
    // packet memory.  Framework work: not accounted.
    uint16_t l3_len = packet.l3Len();
    if (l3_len == 0)
        fatal("packet with no layer-3 bytes reached the framework");
    if (l3_len > sim::layout::packetSize)
        fatal("packet larger than simulated packet memory");
    mem.fill(sim::layout::packetBase,
             std::min<uint32_t>(sim::layout::packetSize, 2048));
    mem.writeBlock(sim::layout::packetBase, packet.l3(), l3_len);

    // Selective accounting: the observer is active only while the
    // application's handler runs.
    cpu.resetRegs();
    cpu.setReg(isa::regA0, sim::layout::packetBase);
    cpu.setReg(isa::regA1, l3_len);
    cpu.setObserver(&fanout);
    rec->beginPacket();
    if (timer)
        timer->mark();
    sim::RunResult result = cpu.run(entry, cfg.instBudget);
    PacketOutcome outcome;
    outcome.stats = rec->endPacket();
    if (timer)
        outcome.cycles = timer->cyclesSinceMark();
    cpu.setObserver(nullptr);

    outcome.verdict = result.stopCode;
    outcome.outInterface = result.stopArg;
    packetCount++;

    if (outcome.verdict == isa::SysCode::Send) {
        // Copy the (possibly rewritten) packet back out.
        mem.readBlock(sim::layout::packetBase, packet.l3(), l3_len);
    }
    return outcome;
}

std::vector<PacketOutcome>
PacketBench::run(net::TraceSource &source, uint32_t max_packets,
                 net::TraceSink *sink)
{
    std::vector<PacketOutcome> outcomes;
    outcomes.reserve(max_packets);
    for (uint32_t i = 0; i < max_packets; i++) {
        auto packet = source.next();
        if (!packet)
            break;
        outcomes.push_back(processPacket(*packet));
        if (sink && outcomes.back().verdict == isa::SysCode::Send)
            sink->write(*packet);
    }
    return outcomes;
}

} // namespace pb::core
