/**
 * @file
 * PacketBench framework implementation.
 */

#include "packetbench.hh"

#include <chrono>
#include <cstdlib>

#include "common/shutdown.hh"
#include "net/simd/kernels.hh"
#include "sim/memmap.hh"
#include "sim/simerror.hh"

namespace pb::core
{

uint32_t
defaultHeartbeatMs()
{
    static const uint32_t cached = [] {
        const char *env = std::getenv("PB_HEARTBEAT_MS");
        if (!env)
            return 5000u;
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (!end || *end != '\0' || v > UINT32_MAX) {
            warn("ignoring malformed PB_HEARTBEAT_MS='%s'", env);
            return 5000u;
        }
        return static_cast<uint32_t>(v);
    }();
    return cached;
}

namespace
{

/** net::FiveTuple -> obs::FlowId (obs sits below net and mirrors). */
obs::FlowId
toFlowId(const net::FiveTuple &tuple)
{
    obs::FlowId id;
    id.src = tuple.src;
    id.dst = tuple.dst;
    id.srcPort = tuple.srcPort;
    id.dstPort = tuple.dstPort;
    id.proto = tuple.proto;
    return id;
}

/** Detaches a per-packet observer on every exit path. */
struct ScopedObserver
{
    sim::FanoutObserver &fanout;
    sim::ExecObserver *observer;

    ScopedObserver(sim::FanoutObserver &fanout_,
                   sim::ExecObserver *observer_)
        : fanout(fanout_), observer(observer_)
    {
        if (observer)
            fanout.add(observer);
    }

    ~ScopedObserver()
    {
        if (observer)
            fanout.remove(observer);
    }
};

} // namespace

PacketBench::PacketBench(Application &app_, BenchConfig cfg_)
    : app(app_), cpu(mem), scrambler(cfg_.scrambleKey)
{
    cfg = cfg_;
    cpu.setDispatchMode(cfg.dispatch);
    // init(): application builds its tables (unaccounted).
    isa::Program prog = app.setup(mem);
    cpu.loadProgram(prog);
    entry = prog.entry("main");

    blockMap = std::make_unique<sim::BlockMap>(prog);
    rec = std::make_unique<sim::PacketRecorder>(prog, *blockMap,
                                                cfg.recorder);
    fanout.add(rec.get());
    if (cfg.microArch) {
        uarch = std::make_unique<sim::MicroArchModel>();
        fanout.add(uarch.get());
    }
    if (cfg.profile) {
        prof = std::make_unique<obs::HotSpotProfiler>(cpu.program(),
                                                      *blockMap);
        // Ahead of the timer, so cycle attribution sees each
        // instruction before its cost is accounted.
        fanout.add(prof.get());
    }
    if (cfg.timing) {
        timer = std::make_unique<sim::PipelineTimer>(cfg.timingParams);
        fanout.add(timer.get());
        if (prof)
            prof->attachTimer(timer.get());
    }

    obs::Registry &reg = obs::defaultRegistry();
    packetsCtr = &reg.counter("pb.packets");
    instsCtr = &reg.counter("pb.insts");
    sentCtr = &reg.counter("pb.sent");
    droppedCtr = &reg.counter("pb.dropped");
    faultsTotalCtr = &reg.counter("pb.faults.total");
    faultsMalformedCtr = &reg.counter("pb.faults.malformed");
    faultsSimCtr = &reg.counter("pb.faults.sim");
    faultsBudgetCtr = &reg.counter("pb.faults.budget");
    faultsQuarantinedCtr = &reg.counter("pb.faults.quarantined");
    simNsCtr = &reg.counter("phase.simulate_ns");
    mipsGauge = &reg.gauge("pb.sim_mips");
    interpMipsGauge = &reg.gauge("sim.interp.mips");
    interpBlocksGauge = &reg.gauge("sim.interp.blocks");
    interpBlockLenGauge = &reg.gauge("sim.interp.block_len");
    instHist = &reg.histogram("pb.insts_per_packet");
    uniqueHist = &reg.histogram("pb.unique_insts_per_packet");
    if (cfg.timing)
        cycleHist = &reg.histogram("pb.cycles_per_packet");
    if (cfg.microArch) {
        uarchIcacheHitsCtr = &reg.counter("uarch.icache.hits");
        uarchIcacheMissesCtr = &reg.counter("uarch.icache.misses");
        uarchDcacheHitsCtr = &reg.counter("uarch.dcache.hits");
        uarchDcacheMissesCtr = &reg.counter("uarch.dcache.misses");
        uarchBranchLookupsCtr = &reg.counter("uarch.branch.lookups");
        uarchBranchMispredictsCtr =
            &reg.counter("uarch.branch.mispredicts");
        uarchIcacheRateGauge = &reg.gauge("uarch.icache.miss_rate");
        uarchDcacheRateGauge = &reg.gauge("uarch.dcache.miss_rate");
        uarchBranchRateGauge =
            &reg.gauge("uarch.branch.mispredict_rate");
    }
    reg.gauge("pb.static_blocks")
        .set(static_cast<double>(blockMap->numBlocks()));
    reg.gauge("pb.program_bytes")
        .set(static_cast<double>(cpu.program().sizeBytes()));
    // Resolved SIMD kernel backend serving the host hot paths
    // (0 = generic, 1 = sse42, 2 = avx2; docs/PERFORMANCE.md).
    reg.gauge("sim.simd.backend")
        .set(static_cast<double>(
            static_cast<uint8_t>(net::simd::activeBackend())));

    // Interned once: span annotation needs a pointer that stays valid
    // for the tracer's lifetime, not the app's std::string buffer.
    tracedAppName = obs::Tracer::instance().intern(app.name());

    // Live telemetry record for this engine (stable reference).
    telem = &obs::Telemetry::instance().engine(cfg.engineId);
}

void
PacketBench::publishUarchMetrics()
{
    UarchSnapshot now;
    now.icacheAccesses = uarch->icache().accesses();
    now.icacheMisses = uarch->icache().misses();
    now.dcacheAccesses = uarch->dcache().accesses();
    now.dcacheMisses = uarch->dcache().misses();
    now.branchLookups = uarch->predictor().lookups();
    now.branchMispredicts = uarch->predictor().mispredicts();

    // The models count cumulatively; publish deltas so the global
    // counters stay correct with several PacketBench instances.
    uarchIcacheHitsCtr->add(
        (now.icacheAccesses - prevUarch.icacheAccesses) -
        (now.icacheMisses - prevUarch.icacheMisses));
    uarchIcacheMissesCtr->add(now.icacheMisses -
                              prevUarch.icacheMisses);
    uarchDcacheHitsCtr->add(
        (now.dcacheAccesses - prevUarch.dcacheAccesses) -
        (now.dcacheMisses - prevUarch.dcacheMisses));
    uarchDcacheMissesCtr->add(now.dcacheMisses -
                              prevUarch.dcacheMisses);
    uarchBranchLookupsCtr->add(now.branchLookups -
                               prevUarch.branchLookups);
    uarchBranchMispredictsCtr->add(now.branchMispredicts -
                                   prevUarch.branchMispredicts);
    prevUarch = now;

    uarchIcacheRateGauge->set(uarch->icache().missRate());
    uarchDcacheRateGauge->set(uarch->dcache().missRate());
    uarchBranchRateGauge->set(uarch->predictor().mispredictRate());
}

void
PacketBench::publishInterpMetrics()
{
    // Interpreter-level view of the same run: simulated MIPS plus the
    // block-stepped loop's shape (straight-line runs entered and mean
    // instructions per run).  blocks stays 0 in Reference mode.
    if (mySimNs > 0)
        interpMipsGauge->set(static_cast<double>(myInsts) * 1e3 /
                             static_cast<double>(mySimNs));
    uint64_t blocks = cpu.totalBlockCount();
    interpBlocksGauge->set(static_cast<double>(blocks));
    interpBlockLenGauge->set(
        blocks ? static_cast<double>(cpu.totalInstCount()) /
                     static_cast<double>(blocks)
               : 0.0);
}

PacketOutcome
PacketBench::recordFault(const net::Packet &capture, FaultKind kind,
                         std::string message, sim::PacketStats stats,
                         uint64_t cycles, uint64_t sim_ns,
                         bool flow_valid, const net::FiveTuple &flow)
{
    PacketOutcome outcome;
    outcome.stats = stats;
    outcome.cycles = cycles;
    outcome.verdict = isa::SysCode::Drop;
    outcome.fault = kind;
    outcome.faultMessage = std::move(message);
    packetCount++;

    // Invariant: pb.packets == pb.sent + pb.dropped + pb.faults.total.
    // A faulted packet counts as a packet (and any partial work the
    // handler did counts as instructions and simulation time), but it
    // is neither sent nor dropped and stays out of the per-packet
    // histograms that characterize the workload.
    packetsCtr->add(1);
    instsCtr->add(outcome.stats.instCount);
    simNsCtr->add(sim_ns);
    faultsTotalCtr->add(1);
    switch (kind) {
      case FaultKind::MalformedPacket:
        faultsMalformedCtr->add(1);
        break;
      case FaultKind::SimFault:
        faultsSimCtr->add(1);
        break;
      case FaultKind::BudgetExceeded:
        faultsBudgetCtr->add(1);
        break;
      case FaultKind::None:
        break;
    }
    myInsts += outcome.stats.instCount;
    mySimNs += sim_ns;
    if (mySimNs > 0)
        mipsGauge->set(static_cast<double>(myInsts) * 1e3 /
                       static_cast<double>(mySimNs));
    publishInterpMetrics();
    if (uarch)
        publishUarchMetrics();

    // A faulted packet is traffic too: while a pump runs it shows up
    // in the windowed fault rate and against its flow, so a flow of
    // poison packets surfaces in the live top-K table.
    if (obs::statsEnabled()) {
        uint64_t now_ns = obs::telemetryNowNs();
        telem->record(now_ns, outcome.stats.instCount,
                      capture.l3Len(), true);
        if (flow_valid)
            telem->topk.observe(net::flowHash(flow), toFlowId(flow),
                                capture.l3Len(), true);
    }

    PB_LOG(Debug, "%s: packet fault (%s): %s", app.name().c_str(),
           faultKindName(kind), outcome.faultMessage.c_str());

    if (cfg.faultPolicy == FaultPolicy::Quarantine &&
        cfg.quarantine) {
        cfg.quarantine->write(capture);
        faultsQuarantinedCtr->add(1);
    }
    return outcome;
}

PacketOutcome
PacketBench::processPacket(net::Packet &packet)
{
    // One span per packet.  When tracing is off the constructor is a
    // single relaxed load and the arg() calls are dead branches.
    PB_TRACE_SPAN_NAMED(span, "pb", "packet");
    span.arg("app", tracedAppName);
    span.arg("engine", static_cast<uint64_t>(cfg.engineId));
    span.arg("packet", packetCount);

    // Per-flow live accounting keys on the *dispatcher's* view of
    // the packet — the 5-tuple before scrambling or rewriting — so
    // parse it first, and only while a stats pump is running
    // (disabled path: one relaxed load and a branch).
    bool flow_valid = false;
    net::FiveTuple flow;
    if (obs::statsEnabled())
        flow_valid = net::parseFiveTuple(packet, flow);

    // Validate before any preprocessing, so a malformed packet is
    // recorded (and quarantined) exactly as the trace delivered it.
    uint32_t l3_len = packet.l3Len();
    if (l3_len == 0 || l3_len > sim::layout::packetSize) {
        const char *msg =
            l3_len == 0
                ? "packet with no layer-3 bytes reached the framework"
                : "packet larger than simulated packet memory";
        if (cfg.faultPolicy == FaultPolicy::Abort)
            fatal("%s", msg);
        span.arg("fault", faultKindName(FaultKind::MalformedPacket));
        return recordFault(packet, FaultKind::MalformedPacket, msg,
                           {}, 0, 0, flow_valid, flow);
    }

    // Quarantine must capture the bytes as read from the trace, and
    // scrambling is not guaranteed byte-reversible (checksum folding),
    // so snapshot before it runs.
    bool keep_original = cfg.scramble &&
                         cfg.faultPolicy == FaultPolicy::Quarantine &&
                         cfg.quarantine;
    std::vector<uint8_t> original;
    if (keep_original)
        original = packet.bytes;
    if (cfg.scramble)
        scrambler.scramblePacket(packet);

    // Place the packet (from the L3 header onwards) into simulated
    // packet memory.  Framework work: not accounted.
    // Clear exactly the previous packet's stale tail beyond this
    // packet's extent, so no bytes of packet N-1 survive into packet
    // N's view of packet memory (and a 40-byte packet after another
    // 40-byte packet costs no memset at all).
    if (prevPacketLen > l3_len)
        mem.fill(sim::layout::packetBase + l3_len,
                 prevPacketLen - l3_len);
    mem.writeBlock(sim::layout::packetBase, packet.l3(), l3_len);
    prevPacketLen = l3_len;

    // Opt-in NPE32 instruction/memory event stream: attach the
    // sampler to the fanout for every Nth packet while tracing runs
    // (PB_TRACE_SAMPLE; 0 = never).  ScopedObserver detaches on both
    // the completion and the fault path.
    uint32_t npe_period = obs::Tracer::instance().npeSamplePeriod();
    bool sample_npe = obs::traceEnabled() && npe_period > 0 &&
                      packetCount % npe_period == 0;
    ScopedObserver npe_attach(fanout,
                              sample_npe ? &npeSampler : nullptr);

    // Selective accounting: the observer is active only while the
    // application's handler runs.
    cpu.resetRegs();
    cpu.setReg(isa::regA0, sim::layout::packetBase);
    cpu.setReg(isa::regA1, l3_len);
    cpu.setObserver(&fanout);
    rec->beginPacket();
    if (timer)
        timer->mark();
    auto sim_start = std::chrono::steady_clock::now();
    sim::RunResult result{};
    try {
        PB_SCOPED_TIMER("sim.interp.run_ns");
        result = cpu.run(entry, cfg.instBudget);
    } catch (const sim::SimError &e) {
        // Leave the engine exactly as a completed packet would:
        // recorder closed, observer detached, registers reset.
        // prevPacketLen already covers this packet's extent, so the
        // next packet's stale-tail clearing stays correct.
        uint64_t sim_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - sim_start)
                .count());
        sim::PacketStats stats = rec->endPacket();
        uint64_t cycles = timer ? timer->cyclesSinceMark() : 0;
        if (prof)
            prof->flush();
        cpu.setObserver(nullptr);
        cpu.resetRegs();
        if (cfg.faultPolicy == FaultPolicy::Abort)
            throw;
        FaultKind kind = dynamic_cast<const sim::BudgetError *>(&e)
                             ? FaultKind::BudgetExceeded
                             : FaultKind::SimFault;
        span.arg("fault", faultKindName(kind));
        span.arg("insts", stats.instCount);
        if (keep_original) {
            net::Packet repro = packet;
            repro.bytes = std::move(original);
            return recordFault(repro, kind, e.what(), stats, cycles,
                               sim_ns, flow_valid, flow);
        }
        return recordFault(packet, kind, e.what(), stats, cycles,
                           sim_ns, flow_valid, flow);
    }
    auto sim_end = std::chrono::steady_clock::now();
    uint64_t sim_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            sim_end - sim_start)
            .count());
    PacketOutcome outcome;
    outcome.stats = rec->endPacket();
    if (timer)
        outcome.cycles = timer->cyclesSinceMark();
    if (prof)
        prof->flush();
    cpu.setObserver(nullptr);

    outcome.verdict = result.stopCode;
    outcome.outInterface = result.stopArg;
    span.arg("insts", outcome.stats.instCount);
    span.arg("verdict", outcome.verdict == isa::SysCode::Send
                            ? "send"
                            : "drop");
    packetCount++;

    // Publish this packet into the run-wide telemetry.
    packetsCtr->add(1);
    instsCtr->add(outcome.stats.instCount);
    (outcome.verdict == isa::SysCode::Send ? sentCtr : droppedCtr)
        ->add(1);
    simNsCtr->add(sim_ns);
    instHist->observe(outcome.stats.instCount);
    uniqueHist->observe(outcome.stats.uniqueInstCount);
    if (cycleHist)
        cycleHist->observe(outcome.cycles);
    myInsts += outcome.stats.instCount;
    mySimNs += sim_ns;
    if (mySimNs > 0)
        mipsGauge->set(static_cast<double>(myInsts) * 1e3 /
                       static_cast<double>(mySimNs));
    publishInterpMetrics();
    if (uarch)
        publishUarchMetrics();

    // Windowed live telemetry, only while a stats pump runs (the
    // whole plane stays behind one relaxed load and a branch when
    // off); reuses the sim-end timestamp so even the enabled hot
    // path takes no extra clock read.
    if (obs::statsEnabled()) {
        uint64_t now_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                sim_end.time_since_epoch())
                .count());
        telem->record(now_ns, outcome.stats.instCount, l3_len, false);
        if (flow_valid)
            telem->topk.observe(net::flowHash(flow), toFlowId(flow),
                                l3_len, false);
    }

    if (outcome.verdict == isa::SysCode::Send) {
        // Copy the (possibly rewritten) packet back out.
        mem.readBlock(sim::layout::packetBase, packet.l3(), l3_len);
    }
    return outcome;
}

std::vector<PacketOutcome>
PacketBench::run(net::TraceSource &source, uint32_t max_packets,
                 net::TraceSink *sink)
{
    using clock = std::chrono::steady_clock;
    std::vector<PacketOutcome> outcomes;
    outcomes.reserve(max_packets);
    auto run_start = clock::now();
    auto beat_at = run_start;
    uint64_t run_start_packets = packetCount;
    uint64_t beat_packets = packetCount;
    for (uint32_t i = 0; i < max_packets; i++) {
        // Graceful shutdown (SIGINT/SIGTERM via common/shutdown.hh):
        // stop pulling packets; the partial run's statistics flush
        // through --report/--stats/--trace exactly like a full one.
        if (shutdownRequested())
            break;
        auto packet = source.next();
        if (!packet)
            break;
        outcomes.push_back(processPacket(*packet));
        if (sink && outcomes.back().verdict == isa::SysCode::Send)
            sink->write(*packet);
        if (!cfg.heartbeatMs)
            continue;
        auto now = clock::now();
        if (now - beat_at <
            std::chrono::milliseconds(cfg.heartbeatMs))
            continue;
        // Instantaneous rate over the interval since the previous
        // beat next to the cumulative average since run start, so a
        // stall or burst is visible against the run's overall pace.
        // Beat-to-beat deltas cost nothing per packet, unlike the
        // windowed estimators (which only run under a stats pump).
        double beat_s =
            std::chrono::duration<double>(now - beat_at).count();
        double now_pps =
            beat_s > 0.0
                ? static_cast<double>(packetCount - beat_packets) /
                      beat_s
                : 0.0;
        double run_s =
            std::chrono::duration<double>(now - run_start).count();
        double avg_pps =
            run_s > 0.0 ? static_cast<double>(
                              packetCount - run_start_packets) /
                              run_s
                        : 0.0;
        PB_LOG(Info,
               "%s: %llu packets (%.0f pkt/s now / %.0f avg), "
               "%llu insts, %.1f sim-MIPS, %llu faults",
               app.name().c_str(),
               static_cast<unsigned long long>(packetCount),
               now_pps, avg_pps,
               static_cast<unsigned long long>(myInsts),
               mySimNs ? static_cast<double>(myInsts) * 1e3 /
                             static_cast<double>(mySimNs)
                       : 0.0,
               static_cast<unsigned long long>(
                   faultsTotalCtr->value()));
        beat_at = now;
        beat_packets = packetCount;
    }
    return outcomes;
}

} // namespace pb::core
