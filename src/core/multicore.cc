/**
 * @file
 * Multi-engine simulation implementation.
 */

#include "multicore.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/shutdown.hh"
#include "common/spscqueue.hh"
#include "net/ipv4.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/tracing.hh"

namespace pb::core
{

double
MultiCoreResult::imbalance() const
{
    if (engines.empty() || totalInstructions == 0)
        return 1.0;
    uint64_t max_insts = 0;
    for (const auto &load : engines)
        max_insts = std::max(max_insts, load.instructions);
    double mean = static_cast<double>(totalInstructions) /
                  static_cast<double>(engines.size());
    return mean > 0.0 ? static_cast<double>(max_insts) / mean : 1.0;
}

double
MultiCoreResult::speedup() const
{
    uint64_t max_insts = 0;
    for (const auto &load : engines)
        max_insts = std::max(max_insts, load.instructions);
    return max_insts
               ? static_cast<double>(totalInstructions) / max_insts
               : 1.0;
}

MultiCoreBench::MultiCoreBench(const AppFactory &factory,
                               uint32_t num_engines, BenchConfig cfg_)
    : cfg(cfg_)
{
    if (num_engines == 0)
        fatal("MultiCoreBench: need at least one engine");
    for (uint32_t i = 0; i < num_engines; i++) {
        apps.push_back(factory());
        BenchConfig engine_cfg = cfg;
        engine_cfg.engineId = i;
        engines.push_back(
            std::make_unique<PacketBench>(*apps.back(), engine_cfg));
    }
    loads.assign(num_engines, EngineLoad{});
    dispatchedPackets.assign(num_engines, 0);
}

uint32_t
MultiCoreBench::leastLoadedEngine() const
{
    uint32_t best = 0;
    for (uint32_t e = 1; e < numEngines(); e++) {
        if (dispatchedPackets[e] < dispatchedPackets[best])
            best = e;
    }
    return best;
}

uint32_t
MultiCoreBench::placeByHash(bool has_tuple, uint32_t hash)
{
    const bool stealing =
        cfg.dispatchPolicy == DispatchPolicy::Stealing;
    if (!has_tuple) {
        // No 5-tuple (non-IPv4, truncated): spread instead of
        // pinning everything to engine 0, which would skew
        // mc.imbalance.  No flow identity means no order constraint,
        // so Stealing places each such packet least-loaded.
        PB_COUNTER("mc.dispatch.no_tuple");
        uint32_t e = stealing ? leastLoadedEngine()
                              : rrNext++ % numEngines();
        dispatchedPackets[e]++;
        return e;
    }
    uint32_t home = hash % numEngines();
    if (!stealing) {
        // Flow pinning: hash the 5-tuple so a flow's state stays on
        // one engine.  The dispatch hash is independent of the
        // application's own bucket hash to avoid correlated
        // imbalance.
        dispatchedPackets[home]++;
        return home;
    }
    // Stealing: an established flow stays on its recorded engine
    // (flow order per 5-tuple); a new flow goes to the least-loaded
    // engine, which steers mice away from an elephant's engine.
    auto [it, inserted] = flowHome.try_emplace(hash, 0);
    if (inserted) {
        it->second = leastLoadedEngine();
        if (it->second != home)
            PB_COUNTER("mc.dispatch.stolen");
    }
    dispatchedPackets[it->second]++;
    return it->second;
}

uint32_t
MultiCoreBench::dispatchIndex(const net::Packet &packet)
{
    net::FiveTuple tuple;
    bool has_tuple = parseFiveTuple(packet, tuple);
    return placeByHash(has_tuple,
                       has_tuple ? net::flowHash(tuple) : 0);
}

uint32_t
MultiCoreBench::processPacket(net::Packet &packet)
{
    uint32_t index = dispatchIndex(packet);
    uint64_t l3_len = packet.l3Len();
    PacketOutcome outcome = engines[index]->processPacket(packet);
    loads[index].packets++;
    loads[index].instructions += outcome.stats.instCount;
    loads[index].bytes += l3_len;
    if (outcome.faulted())
        loads[index].faults++;
    PB_COUNTER("mc.packets");
    return index;
}

MultiCoreResult
MultiCoreBench::runSerial(net::TraceSource &source,
                          uint32_t max_packets)
{
    for (uint32_t i = 0; i < max_packets; i++) {
        // Graceful shutdown: stop pulling new packets; everything
        // processed so far stays recorded and flushes normally.
        if (shutdownRequested())
            break;
        auto packet = source.next();
        if (!packet)
            break;
        processPacket(*packet);
    }
    return result();
}

MultiCoreResult
MultiCoreBench::runParallel(net::TraceSource &source,
                            uint32_t max_packets)
{
    const uint32_t n = numEngines();
    const uint32_t batch_size = std::max<uint32_t>(1, cfg.dispatchBatch);
    const uint32_t depth = std::max<uint32_t>(1, cfg.queueDepth);

    using Batch = std::vector<net::Packet>;
    std::vector<std::unique_ptr<SpscQueue<Batch>>> queues;
    queues.reserve(n);
    for (uint32_t e = 0; e < n; e++)
        queues.push_back(std::make_unique<SpscQueue<Batch>>(depth));

    std::mutex error_mu;
    std::exception_ptr first_error;
    std::atomic<bool> abort{false};

    // One worker per engine; only worker e touches engines[e] and
    // loads[e], so per-engine state needs no locking (thread start
    // and join order the accesses against this thread).  A worker
    // that throws records the exception, then keeps draining its
    // queue so the dispatcher can never block on a full queue whose
    // consumer is gone.
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (uint32_t e = 0; e < n; e++) {
        workers.emplace_back([&, e] {
            if (obs::traceEnabled())
                obs::Tracer::instance().setThreadName(
                    strprintf("engine %u", e));
            Batch batch;
            bool failed = false;
            while (queues[e]->pop(batch)) {
                PB_TRACE_SPAN_NAMED(batch_span, "mc",
                                    "worker.batch");
                batch_span.arg("engine",
                               static_cast<uint64_t>(e));
                batch_span.arg("batch",
                               static_cast<uint64_t>(batch.size()));
                if (!failed) {
                    try {
                        for (auto &packet : batch) {
                            // Under Drop/Quarantine a faulting
                            // packet is an outcome, not an
                            // exception, so it cannot poison the
                            // run; only Abort (or a framework bug)
                            // reaches the catch below.
                            uint64_t l3_len = packet.l3Len();
                            PacketOutcome outcome =
                                engines[e]->processPacket(packet);
                            loads[e].packets++;
                            loads[e].instructions +=
                                outcome.stats.instCount;
                            loads[e].bytes += l3_len;
                            if (outcome.faulted())
                                loads[e].faults++;
                        }
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(error_mu);
                        if (!first_error)
                            first_error = std::current_exception();
                        abort.store(true, std::memory_order_release);
                        failed = true;
                    }
                }
                batch.clear();
            }
        });
    }

    // The dispatcher (this thread) makes every dispatch decision in
    // trace order with the same hash as the serial path, so engine e
    // receives the identical packet subsequence either way.
    obs::Counter &packets_ctr =
        obs::defaultRegistry().counter("mc.packets");
    obs::Counter &batches_ctr =
        obs::defaultRegistry().counter("mc.batches");

    // Queue-occupancy counter series, one per engine ("mc.queue0",
    // ...); names are interned so rings can store bare pointers.
    std::vector<const char *> queue_names;
    if (obs::traceEnabled()) {
        obs::Tracer &tracer = obs::Tracer::instance();
        tracer.setThreadName("dispatcher");
        for (uint32_t e = 0; e < n; e++)
            queue_names.push_back(
                tracer.intern(strprintf("mc.queue%u", e)));
    }
    // Queue-occupancy sampling for the live telemetry plane: the
    // dispatcher publishes each queue's depth (in batches) after
    // every hand-off, so the stats pump reports how far each engine
    // is behind its feed.
    std::vector<obs::EngineTelemetry *> telem;
    telem.reserve(n);
    for (uint32_t e = 0; e < n; e++)
        telem.push_back(&obs::Telemetry::instance().engine(e));

    std::vector<Batch> pending(n);
    for (auto &batch : pending)
        batch.reserve(batch_size);
    auto push_batch = [&](uint32_t e) {
        PB_TRACE_SPAN_NAMED(span, "mc", "dispatch");
        span.arg("engine", static_cast<uint64_t>(e));
        span.arg("batch", static_cast<uint64_t>(pending[e].size()));
        queues[e]->push(std::move(pending[e]));
        batches_ctr.add(1);
        telem[e]->queueDepth.store(queues[e]->size(),
                                   std::memory_order_relaxed);
        if (obs::traceEnabled())
            obs::traceCounter("mc", queue_names[e],
                              queues[e]->size());
    };
    // Batched front end: stage up to hash_batch packets, parse and
    // flow-hash their headers in one SIMD kernel call, then make
    // every placement decision in trace order.  The kernel hash is
    // bit-identical to net::flowHash, so engine e still receives
    // exactly the serial path's packet subsequence.
    constexpr uint32_t hash_batch = 16;
    obs::Counter &hash_batches_ctr =
        obs::defaultRegistry().counter("mc.hash_batches");
    std::vector<net::Packet> staged;
    staged.reserve(hash_batch);
    const net::Packet *ptrs[hash_batch];
    uint32_t hash[hash_batch];
    bool valid[hash_batch];
    uint32_t taken = 0;
    bool stop = false;
    while (!stop) {
        staged.clear();
        while (staged.size() < hash_batch && taken < max_packets) {
            // Graceful shutdown / worker abort: stop pulling, then
            // fall through to the drain below — staged packets are
            // still placed, pending batches are pushed, queues are
            // closed, and every worker finishes what it was handed,
            // so the run ends with complete, flushable accounting.
            if (shutdownRequested() ||
                abort.load(std::memory_order_acquire)) {
                stop = true;
                break;
            }
            auto packet = source.next();
            if (!packet) {
                stop = true;
                break;
            }
            taken++;
            staged.push_back(std::move(*packet));
        }
        if (taken >= max_packets)
            stop = true;
        if (staged.empty())
            break;
        const unsigned count = static_cast<unsigned>(staged.size());
        for (unsigned i = 0; i < count; i++)
            ptrs[i] = &staged[i];
        {
            PB_SCOPED_TIMER("simd.hash_ns");
            net::hashPacketBatch(ptrs, count, hash, valid);
        }
        hash_batches_ctr.add(1);
        for (unsigned i = 0; i < count; i++) {
            uint32_t e = placeByHash(valid[i], hash[i]);
            packets_ctr.add(1);
            pending[e].push_back(std::move(staged[i]));
            if (pending[e].size() >= batch_size) {
                push_batch(e);
                pending[e] = Batch();
                pending[e].reserve(batch_size);
            }
        }
    }
    for (uint32_t e = 0; e < n; e++) {
        if (!pending[e].empty())
            push_batch(e);
        queues[e]->close();
    }
    for (auto &worker : workers)
        worker.join();
    // Drained: don't leave the last sampled depth dangling in the
    // live view after the run ends.
    for (uint32_t e = 0; e < n; e++)
        telem[e]->queueDepth.store(0, std::memory_order_relaxed);
    if (first_error)
        std::rethrow_exception(first_error);
    return result();
}

MultiCoreResult
MultiCoreBench::run(net::TraceSource &source, uint32_t max_packets)
{
    auto start = std::chrono::steady_clock::now();
    MultiCoreResult res = cfg.parallel && numEngines() > 1
                              ? runParallel(source, max_packets)
                              : runSerial(source, max_packets);
    res.wallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    publishRunMetrics(res);
    return res;
}

void
MultiCoreBench::publishRunMetrics(const MultiCoreResult &res)
{
    obs::Registry &reg = obs::defaultRegistry();
    reg.gauge("mc.engines").set(numEngines());
    reg.gauge("mc.imbalance").set(res.imbalance());
    reg.gauge("mc.speedup").set(res.speedup());
    reg.gauge("mc.parallel").set(cfg.parallel ? 1.0 : 0.0);
    reg.gauge("mc.dispatch_stealing")
        .set(cfg.dispatchPolicy == DispatchPolicy::Stealing ? 1.0
                                                            : 0.0);
    reg.gauge("mc.dispatch.flows")
        .set(static_cast<double>(flowHome.size()));
    reg.counter("mc.wall_ns").add(res.wallNs);
    // Per-engine aggregation: one gauge pair per engine, so reports
    // expose the load split instead of one clobbered global value.
    for (uint32_t e = 0; e < numEngines(); e++) {
        reg.gauge(strprintf("mc.engine%u.packets", e))
            .set(static_cast<double>(res.engines[e].packets));
        reg.gauge(strprintf("mc.engine%u.insts", e))
            .set(static_cast<double>(res.engines[e].instructions));
        reg.gauge(strprintf("mc.engine%u.bytes", e))
            .set(static_cast<double>(res.engines[e].bytes));
        reg.gauge(strprintf("mc.engine%u.faults", e))
            .set(static_cast<double>(res.engines[e].faults));
    }
}

MultiCoreResult
MultiCoreBench::result() const
{
    MultiCoreResult res;
    res.engines = loads;
    for (const auto &load : loads) {
        res.totalPackets += load.packets;
        res.totalInstructions += load.instructions;
        res.totalFaults += load.faults;
    }
    return res;
}

} // namespace pb::core
