/**
 * @file
 * Multi-engine simulation implementation.
 */

#include "multicore.hh"

#include "common/hash.hh"
#include "net/ipv4.hh"
#include "obs/metrics.hh"

namespace pb::core
{

double
MultiCoreResult::imbalance() const
{
    if (engines.empty() || totalInstructions == 0)
        return 1.0;
    uint64_t max_insts = 0;
    for (const auto &load : engines)
        max_insts = std::max(max_insts, load.instructions);
    double mean = static_cast<double>(totalInstructions) /
                  static_cast<double>(engines.size());
    return mean > 0.0 ? static_cast<double>(max_insts) / mean : 1.0;
}

double
MultiCoreResult::speedup() const
{
    uint64_t max_insts = 0;
    for (const auto &load : engines)
        max_insts = std::max(max_insts, load.instructions);
    return max_insts
               ? static_cast<double>(totalInstructions) / max_insts
               : 1.0;
}

MultiCoreBench::MultiCoreBench(const AppFactory &factory,
                               uint32_t num_engines, BenchConfig cfg)
{
    if (num_engines == 0)
        fatal("MultiCoreBench: need at least one engine");
    for (uint32_t i = 0; i < num_engines; i++) {
        apps.push_back(factory());
        engines.push_back(
            std::make_unique<PacketBench>(*apps.back(), cfg));
    }
    loads.assign(num_engines, EngineLoad{});
}

uint32_t
MultiCoreBench::processPacket(net::Packet &packet)
{
    // Flow pinning: hash the 5-tuple so a flow's state stays on one
    // engine.  The dispatch hash is independent of the application's
    // own bucket hash to avoid correlated imbalance.
    uint32_t index = 0;
    net::FiveTuple tuple;
    if (parseFiveTuple(packet, tuple)) {
        uint32_t ports =
            (static_cast<uint32_t>(tuple.srcPort) << 16) |
            tuple.dstPort;
        uint32_t h = mix32(mix32(tuple.src, tuple.dst),
                           mix32(ports, tuple.proto));
        index = h % numEngines();
    }
    PacketOutcome outcome = engines[index]->processPacket(packet);
    loads[index].packets++;
    loads[index].instructions += outcome.stats.instCount;
    PB_COUNTER("mc.packets");
    return index;
}

MultiCoreResult
MultiCoreBench::run(net::TraceSource &source, uint32_t max_packets)
{
    for (uint32_t i = 0; i < max_packets; i++) {
        auto packet = source.next();
        if (!packet)
            break;
        processPacket(*packet);
    }
    MultiCoreResult res = result();
    obs::Registry &reg = obs::defaultRegistry();
    reg.gauge("mc.engines").set(numEngines());
    reg.gauge("mc.imbalance").set(res.imbalance());
    reg.gauge("mc.speedup").set(res.speedup());
    return res;
}

MultiCoreResult
MultiCoreBench::result() const
{
    MultiCoreResult res;
    res.engines = loads;
    for (const auto &load : loads) {
        res.totalPackets += load.packets;
        res.totalInstructions += load.instructions;
    }
    return res;
}

} // namespace pb::core
