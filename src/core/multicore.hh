/**
 * @file
 * Multi-engine simulation: one application replicated across N
 * processing engines with flow-pinned dispatch.
 *
 * Network processors exploit packet-level parallelism by running the
 * same application on many engines (paper Section I and its
 * reference [31], "Pipelining vs. multiprocessors").  Stateful
 * applications require packets of one flow to visit the same engine
 * (flow pinning), so the dispatcher hashes the 5-tuple; packets with
 * no parseable 5-tuple fall back to round-robin.  This class
 * instantiates N independent simulated machines — each with its own
 * memory and application state — and reports the resulting load
 * balance, which bounds the achievable speedup.
 *
 * Execution modes (BenchConfig::parallel):
 *  - serial (default): every engine runs on the calling thread, the
 *    reference path;
 *  - parallel: one worker thread per engine, each owning its
 *    PacketBench, fed batches of packets through bounded SPSC queues
 *    by a dispatcher thread.  Dispatch decisions are made on the
 *    dispatcher thread in trace order with the same hash, so each
 *    engine sees the identical packet subsequence in the identical
 *    order as the serial path — per-engine outcomes are
 *    bit-identical; only wall-clock time changes.
 */

#ifndef PB_CORE_MULTICORE_HH
#define PB_CORE_MULTICORE_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/packetbench.hh"

namespace pb::core
{

/** Per-engine totals after a multi-engine run. */
struct EngineLoad
{
    uint64_t packets = 0;
    uint64_t instructions = 0;
    uint64_t bytes = 0;  ///< layer-3 bytes handed to the engine
    uint64_t faults = 0; ///< faulted packets (Drop/Quarantine policy)
};

/** Result of a multi-engine run. */
struct MultiCoreResult
{
    std::vector<EngineLoad> engines;
    uint64_t totalPackets = 0;
    uint64_t totalInstructions = 0;
    uint64_t totalFaults = 0;

    /** Host wall-clock time of the run() that produced this. */
    uint64_t wallNs = 0;

    /** Max engine instructions / mean engine instructions (>= 1). */
    double imbalance() const;

    /**
     * Speedup over one engine under run-to-completion: total work
     * divided by the most loaded engine's work.
     */
    double speedup() const;
};

/** N replicated engines with flow-pinned packet dispatch. */
class MultiCoreBench
{
  public:
    /** Factory for per-engine application instances. */
    using AppFactory =
        std::function<std::unique_ptr<Application>()>;

    /**
     * @param factory     creates one application per engine (each
     *                    engine owns independent state)
     * @param num_engines number of processing engines
     * @param cfg         per-engine framework configuration; its
     *                    parallel/dispatchBatch/queueDepth fields
     *                    select the run() execution mode
     */
    MultiCoreBench(const AppFactory &factory, uint32_t num_engines,
                   BenchConfig cfg = {});

    /**
     * Dispatch one packet on the calling thread: 5-tuple-hashed to
     * an engine (round-robin for packets without a parseable
     * 5-tuple) and processed there.
     * @return the engine index used
     */
    uint32_t processPacket(net::Packet &packet);

    /**
     * Run up to @p max_packets from @p source — serially, or with
     * one worker thread per engine when cfg.parallel is set.  The
     * first exception thrown by any worker is rethrown here after
     * all threads have shut down cleanly.
     */
    MultiCoreResult run(net::TraceSource &source,
                        uint32_t max_packets);

    /** Result so far. */
    MultiCoreResult result() const;

    uint32_t numEngines() const
    {
        return static_cast<uint32_t>(engines.size());
    }

    /** Access one engine's machine (for state inspection). */
    PacketBench &engine(uint32_t index) { return *engines.at(index); }

  private:
    /**
     * Engine choice for one packet, per cfg.dispatchPolicy:
     *
     *  - Pinned: the 5-tuple hash (independent of the applications'
     *    own bucket hashes);
     *  - Stealing: the flow's recorded home engine, or — for a flow
     *    seen for the first time — the engine with the fewest
     *    packets dispatched so far ("mc.dispatch.stolen" counts the
     *    flows this steers away from their hash home).
     *
     * Packets with no parseable 5-tuple (non-IPv4, truncated) go
     * round-robin under Pinned and least-loaded under Stealing, so
     * they cannot pile up on engine 0 and skew the reported
     * imbalance.  Either way the decision is a deterministic
     * function of the packet sequence so far, made on the
     * dispatching thread in trace order — which is what keeps the
     * serial path the bit-identical per-engine oracle of the
     * parallel path for both policies.
     */
    uint32_t dispatchIndex(const net::Packet &packet);

    /**
     * The policy core of dispatchIndex(), taking the parse outcome
     * and (when @p has_tuple) the packet's flow hash.  The batched
     * parallel dispatcher computes hashes for 16 headers per SIMD
     * kernel call (net::hashPacketBatch) and feeds them through here
     * one at a time in trace order, so placement state advances
     * exactly as in the serial path.
     */
    uint32_t placeByHash(bool has_tuple, uint32_t hash);

    /** Least-loaded engine by dispatched packet count (ties low). */
    uint32_t leastLoadedEngine() const;

    MultiCoreResult runSerial(net::TraceSource &source,
                              uint32_t max_packets);
    MultiCoreResult runParallel(net::TraceSource &source,
                                uint32_t max_packets);

    /** Publish mc.* metrics for a finished run(). */
    void publishRunMetrics(const MultiCoreResult &res);

    BenchConfig cfg;
    std::vector<std::unique_ptr<Application>> apps;
    std::vector<std::unique_ptr<PacketBench>> engines;
    std::vector<EngineLoad> loads;
    uint32_t rrNext = 0; ///< round-robin cursor for no-5-tuple packets

    /**
     * @name Stealing-policy dispatcher state.
     * Touched only by the dispatching thread (the caller of
     * processPacket()/run()), never by workers, so it needs no
     * locking.  flowHome grows one entry per distinct flow hash for
     * the lifetime of the bench — bounded by the corpus for replay,
     * a deliberate memory/adaptivity trade documented in
     * docs/SERVICE.md.
     * @{
     */
    std::unordered_map<uint64_t, uint32_t> flowHome;
    std::vector<uint64_t> dispatchedPackets;
    /** @} */
};

} // namespace pb::core

#endif // PB_CORE_MULTICORE_HH
