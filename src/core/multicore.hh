/**
 * @file
 * Multi-engine simulation: one application replicated across N
 * processing engines with flow-pinned dispatch.
 *
 * Network processors exploit packet-level parallelism by running the
 * same application on many engines (paper Section I and its
 * reference [31], "Pipelining vs. multiprocessors").  Stateful
 * applications require packets of one flow to visit the same engine
 * (flow pinning), so the dispatcher hashes the 5-tuple.  This class
 * instantiates N independent simulated machines — each with its own
 * memory and application state — and reports the resulting load
 * balance, which bounds the achievable speedup.
 */

#ifndef PB_CORE_MULTICORE_HH
#define PB_CORE_MULTICORE_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/packetbench.hh"

namespace pb::core
{

/** Per-engine totals after a multi-engine run. */
struct EngineLoad
{
    uint64_t packets = 0;
    uint64_t instructions = 0;
};

/** Result of a multi-engine run. */
struct MultiCoreResult
{
    std::vector<EngineLoad> engines;
    uint64_t totalPackets = 0;
    uint64_t totalInstructions = 0;

    /** Max engine instructions / mean engine instructions (>= 1). */
    double imbalance() const;

    /**
     * Speedup over one engine under run-to-completion: total work
     * divided by the most loaded engine's work.
     */
    double speedup() const;
};

/** N replicated engines with flow-pinned packet dispatch. */
class MultiCoreBench
{
  public:
    /** Factory for per-engine application instances. */
    using AppFactory =
        std::function<std::unique_ptr<Application>()>;

    /**
     * @param factory     creates one application per engine (each
     *                    engine owns independent state)
     * @param num_engines number of processing engines
     * @param cfg         per-engine framework configuration
     */
    MultiCoreBench(const AppFactory &factory, uint32_t num_engines,
                   BenchConfig cfg = {});

    /**
     * Dispatch one packet: 5-tuple-hashed to an engine (non-IPv4
     * packets go to engine 0) and processed there.
     * @return the engine index used
     */
    uint32_t processPacket(net::Packet &packet);

    /** Run up to @p max_packets from @p source. */
    MultiCoreResult run(net::TraceSource &source,
                        uint32_t max_packets);

    /** Result so far. */
    MultiCoreResult result() const;

    uint32_t numEngines() const
    {
        return static_cast<uint32_t>(engines.size());
    }

    /** Access one engine's machine (for state inspection). */
    PacketBench &engine(uint32_t index) { return *engines.at(index); }

  private:
    std::vector<std::unique_ptr<Application>> apps;
    std::vector<std::unique_ptr<PacketBench>> engines;
    std::vector<EngineLoad> loads;
};

} // namespace pb::core

#endif // PB_CORE_MULTICORE_HH
