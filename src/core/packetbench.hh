/**
 * @file
 * The PacketBench framework: runs applications over packet traces on
 * the NPE32 simulator and collects per-packet workload statistics.
 *
 * Framework responsibilities (paper Section III-A):
 *  - read packets from a trace source and place them in simulated
 *    packet memory (unaccounted — specialized hardware does this on
 *    a real NP),
 *  - optionally preprocess (IP address scrambling, Section IV-B),
 *  - invoke the application's packet handler on the simulated core
 *    with *selective accounting* enabled,
 *  - collect the SEND/DROP verdict and per-packet statistics,
 *  - optionally write accepted packets to an output trace.
 */

#ifndef PB_CORE_PACKETBENCH_HH
#define PB_CORE_PACKETBENCH_HH

#include <memory>
#include <vector>

#include "core/app.hh"
#include "core/fault.hh"
#include "net/ipv4.hh"
#include "net/scramble.hh"
#include "net/trace.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/stats.hh"
#include "obs/tracing.hh"
#include "sim/accounting.hh"
#include "sim/cpu.hh"
#include "sim/timing.hh"
#include "sim/uarch.hh"

namespace pb::core
{

/**
 * Default heartbeat interval: PB_HEARTBEAT_MS from the environment
 * (parsed once), 5000 ms when unset or malformed; 0 disables.
 */
uint32_t defaultHeartbeatMs();

/**
 * How MultiCoreBench assigns flows to engines (core/multicore.hh).
 *
 * Both policies keep flow order: every packet of one 5-tuple visits
 * the same engine, in trace order.  Both are deterministic functions
 * of the packet sequence, decided by the dispatcher in trace order,
 * so for either policy the serial run is the bit-identical per-engine
 * oracle of the parallel run.
 */
enum class DispatchPolicy : uint8_t
{
    /** Static 5-tuple-hash pinning (the historical behavior). */
    Pinned,

    /**
     * Flow stealing for skewed traffic: a *new* flow is assigned to
     * the engine with the fewest packets dispatched so far (ties to
     * the lowest index) instead of its hash home, so mice flows are
     * steered away from the engine an elephant flow is saturating.
     * Established flows stay put — flow order per 5-tuple holds.
     */
    Stealing,
};

/** Framework configuration. */
struct BenchConfig
{
    /** Per-packet detail level. */
    sim::RecorderConfig recorder;

    /** Per-packet instruction budget (runaway guard). */
    uint64_t instBudget = 10'000'000;

    /**
     * Which interpreter loop runs the handler (sim/cpu.hh).  Blocked
     * is the production hot path; Reference is the per-instruction
     * loop, bit-identical but slower — for differential testing and
     * A/B measurement (bench_micro_interp).
     */
    sim::DispatchMode dispatch = sim::DispatchMode::Blocked;

    /**
     * Scramble IP addresses before processing (the paper's
     * preprocessing for NLANR traces).
     */
    bool scramble = false;
    uint32_t scrambleKey = 0x5ca1ab1e;

    /** Attach the microarchitectural models (caches, predictor). */
    bool microArch = false;

    /** Attach the pipeline timing model (per-packet cycle counts). */
    bool timing = false;
    sim::TimingParams timingParams;

    /** Attach the NPE32 hot-spot profiler (obs/profiler.hh). */
    bool profile = false;

    /**
     * What to do when a packet cannot be processed — malformed input
     * (no L3 bytes, oversized) or a simulator fault in the handler
     * (bad access, bad opcode, blown instruction budget).  Abort
     * preserves the historical throwing behavior; Drop and Quarantine
     * record the fault in the PacketOutcome and the pb.faults.*
     * metrics and leave the engine clean for the next packet.
     */
    FaultPolicy faultPolicy = FaultPolicy::Abort;

    /**
     * Destination for faulting packets under FaultPolicy::Quarantine
     * (ignored otherwise).  Use a QuarantineSink when several engines
     * share one sink.  May be null: Quarantine then degrades to Drop.
     */
    net::TraceSink *quarantine = nullptr;

    /**
     * Emit a PB_LOG(Info) heartbeat at most every this many
     * milliseconds of wall time in run(); 0 disables.  Defaults to
     * the PB_HEARTBEAT_MS environment variable (5000 when unset).
     * The line carries packets, the instantaneous pkt/s over the
     * interval since the previous beat ("now") next to the
     * cumulative run average ("avg"), instructions, sim-MIPS, and
     * the run-wide pb.faults.total count.  Silent unless
     * PB_LOG_LEVEL allows Info.
     */
    uint32_t heartbeatMs = defaultHeartbeatMs();

    /**
     * Engine index this instance simulates (annotates per-packet
     * trace spans; MultiCoreBench numbers its engines 0..N-1, a
     * lone PacketBench is engine 0).
     */
    uint32_t engineId = 0;

    /**
     * @name Multi-engine execution (core/multicore.hh).
     * Only MultiCoreBench reads these; a lone PacketBench ignores
     * them.
     * @{
     */

    /**
     * Run MultiCoreBench::run() with one worker thread per engine,
     * fed by bounded SPSC queues from a dispatcher thread.  Off by
     * default: the serial path is the reference the parallel path
     * must match bit-for-bit (same flow-pinned dispatch, so the
     * per-engine packet sequences are identical either way).
     */
    bool parallel = false;

    /**
     * Packets per dispatcher-to-worker hand-off batch in the
     * parallel run loop; larger batches amortize queue
     * synchronization at the cost of latency to first dispatch.
     */
    uint32_t dispatchBatch = 64;

    /** Per-engine queue capacity in batches (back-pressure bound). */
    uint32_t queueDepth = 8;

    /**
     * Flow-to-engine assignment policy.  Pinned is the static hash
     * the paper's run-to-completion model implies; Stealing adapts
     * placement of new flows to the observed load for skewed flow
     * distributions (service mode's heavy-tail traffic).
     */
    DispatchPolicy dispatchPolicy = DispatchPolicy::Pinned;
    /** @} */
};

/** Outcome of processing one packet. */
struct PacketOutcome
{
    sim::PacketStats stats;
    isa::SysCode verdict = isa::SysCode::Drop;
    uint32_t outInterface = 0; ///< a1 at SYS SEND
    uint64_t cycles = 0;       ///< modeled cycles (0 unless timing)

    /** Why processing failed (None when it succeeded). */
    FaultKind fault = FaultKind::None;

    /** Diagnostic for a faulted packet (empty when none). */
    std::string faultMessage;

    /** True when this packet faulted instead of completing. */
    bool faulted() const { return fault != FaultKind::None; }
};

/** One application instance bound to a simulated core. */
class PacketBench
{
  public:
    /**
     * Set up @p app on a fresh simulated machine.
     * The application object must outlive the framework.
     */
    explicit PacketBench(Application &app, BenchConfig cfg = {});

    /**
     * Process one packet and return its statistics and verdict.
     * Accepted packets (SEND) have their possibly-modified bytes
     * copied back into @p packet, so callers can chain into a
     * TraceSink (the paper's write_packet_to_file()).
     */
    PacketOutcome processPacket(net::Packet &packet);

    /**
     * Process up to @p max_packets from @p source.
     * @param sink if non-null, packets the application sent are
     *             appended to this trace
     */
    std::vector<PacketOutcome> run(net::TraceSource &source,
                                   uint32_t max_packets,
                                   net::TraceSink *sink = nullptr);

    /** @name Component access for analyses and tests. @{ */
    const sim::BlockMap &blocks() const { return *blockMap; }
    const sim::PacketRecorder &recorder() const { return *rec; }
    const sim::MicroArchModel *microArch() const { return uarch.get(); }
    const sim::PipelineTimer *timing() const { return timer.get(); }
    const obs::HotSpotProfiler *profiler() const { return prof.get(); }
    sim::Memory &memory() { return mem; }
    sim::Cpu &core() { return cpu; }
    const sim::Cpu &core() const { return cpu; }
    const isa::Program &program() const { return cpu.program(); }
    uint64_t packetsProcessed() const { return packetCount; }
    /** @} */

  private:
    Application &app;
    BenchConfig cfg;
    sim::Memory mem;
    sim::Cpu cpu;
    std::unique_ptr<sim::BlockMap> blockMap;
    std::unique_ptr<sim::PacketRecorder> rec;
    std::unique_ptr<sim::MicroArchModel> uarch;
    std::unique_ptr<sim::PipelineTimer> timer;
    std::unique_ptr<obs::HotSpotProfiler> prof;
    sim::FanoutObserver fanout;
    net::AddressScrambler scrambler;
    uint32_t entry = 0;
    uint64_t packetCount = 0;

    /**
     * Sampled NPE32 event stream (obs/tracing.hh): attached to the
     * fanout for exactly the packets selected by
     * Tracer::npeSamplePeriod() while tracing is enabled.
     */
    obs::NpeTraceSampler npeSampler;

    /** App name interned for trace-span annotation (stable ptr). */
    const char *tracedAppName = nullptr;

    /**
     * Layer-3 extent of the previous packet in simulated packet
     * memory; the next packet clears exactly the stale tail beyond
     * its own length so applications can never observe another
     * packet's bytes.
     */
    uint32_t prevPacketLen = 0;

    /**
     * Record one faulted packet (policy is Drop or Quarantine):
     * builds the Faulted outcome, publishes pb.faults.*, and — when
     * quarantining — writes @p capture (the packet as read from the
     * trace, pre-scramble) to cfg.quarantine.  Partial work the
     * handler did before faulting arrives via @p stats / @p cycles /
     * @p sim_ns so instruction and time accounting stay truthful.
     * @p flow is the packet's pre-scramble 5-tuple when
     * @p flow_valid (parsed only while a stats pump runs), so the
     * live flow table attributes faults to the dispatcher's flow.
     */
    PacketOutcome recordFault(const net::Packet &capture,
                              FaultKind kind, std::string message,
                              sim::PacketStats stats, uint64_t cycles,
                              uint64_t sim_ns, bool flow_valid,
                              const net::FiveTuple &flow);

    /**
     * Live telemetry (obs/stats.hh) for this engine: windowed rates,
     * the rolling instructions-per-packet histogram, and the
     * per-flow top-K table, fed per packet only while a stats pump
     * runs (obs::statsEnabled()) — the disabled path is one relaxed
     * load and a branch.
     */
    obs::EngineTelemetry *telem = nullptr;

    /** @name Published telemetry (obs/metrics.hh). @{ */
    void publishUarchMetrics();
    void publishInterpMetrics();

    obs::Counter *packetsCtr;
    obs::Counter *instsCtr;
    obs::Counter *sentCtr;
    obs::Counter *droppedCtr;
    obs::Counter *faultsTotalCtr;
    obs::Counter *faultsMalformedCtr;
    obs::Counter *faultsSimCtr;
    obs::Counter *faultsBudgetCtr;
    obs::Counter *faultsQuarantinedCtr;
    obs::Counter *simNsCtr;
    obs::Gauge *mipsGauge;
    obs::Gauge *interpMipsGauge;
    obs::Gauge *interpBlocksGauge;
    obs::Gauge *interpBlockLenGauge;
    obs::Histogram *instHist;
    obs::Histogram *uniqueHist;
    obs::Histogram *cycleHist = nullptr;

    /**
     * Cached uarch metric references, resolved at construction like
     * the pb.* counters above (non-null only when cfg.microArch).
     * Per-instance members, not function-local statics: a static
     * would be shared across instances and would dangle if a test
     * ever swapped the default registry.
     */
    obs::Counter *uarchIcacheHitsCtr = nullptr;
    obs::Counter *uarchIcacheMissesCtr = nullptr;
    obs::Counter *uarchDcacheHitsCtr = nullptr;
    obs::Counter *uarchDcacheMissesCtr = nullptr;
    obs::Counter *uarchBranchLookupsCtr = nullptr;
    obs::Counter *uarchBranchMispredictsCtr = nullptr;
    obs::Gauge *uarchIcacheRateGauge = nullptr;
    obs::Gauge *uarchDcacheRateGauge = nullptr;
    obs::Gauge *uarchBranchRateGauge = nullptr;

    /** This instance's share (the counters are process-global). */
    uint64_t myInsts = 0;
    uint64_t mySimNs = 0;

    /** Last published uarch totals, for delta publishing. */
    struct UarchSnapshot
    {
        uint64_t icacheAccesses = 0, icacheMisses = 0;
        uint64_t dcacheAccesses = 0, dcacheMisses = 0;
        uint64_t branchLookups = 0, branchMispredicts = 0;
    } prevUarch;
    /** @} */
};

} // namespace pb::core

#endif // PB_CORE_PACKETBENCH_HH
