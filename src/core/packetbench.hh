/**
 * @file
 * The PacketBench framework: runs applications over packet traces on
 * the NPE32 simulator and collects per-packet workload statistics.
 *
 * Framework responsibilities (paper Section III-A):
 *  - read packets from a trace source and place them in simulated
 *    packet memory (unaccounted — specialized hardware does this on
 *    a real NP),
 *  - optionally preprocess (IP address scrambling, Section IV-B),
 *  - invoke the application's packet handler on the simulated core
 *    with *selective accounting* enabled,
 *  - collect the SEND/DROP verdict and per-packet statistics,
 *  - optionally write accepted packets to an output trace.
 */

#ifndef PB_CORE_PACKETBENCH_HH
#define PB_CORE_PACKETBENCH_HH

#include <memory>
#include <vector>

#include "core/app.hh"
#include "net/scramble.hh"
#include "net/trace.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "sim/accounting.hh"
#include "sim/cpu.hh"
#include "sim/timing.hh"
#include "sim/uarch.hh"

namespace pb::core
{

/** Framework configuration. */
struct BenchConfig
{
    /** Per-packet detail level. */
    sim::RecorderConfig recorder;

    /** Per-packet instruction budget (runaway guard). */
    uint64_t instBudget = 10'000'000;

    /**
     * Scramble IP addresses before processing (the paper's
     * preprocessing for NLANR traces).
     */
    bool scramble = false;
    uint32_t scrambleKey = 0x5ca1ab1e;

    /** Attach the microarchitectural models (caches, predictor). */
    bool microArch = false;

    /** Attach the pipeline timing model (per-packet cycle counts). */
    bool timing = false;
    sim::TimingParams timingParams;

    /** Attach the NPE32 hot-spot profiler (obs/profiler.hh). */
    bool profile = false;

    /**
     * Emit a PB_LOG(Info) heartbeat every N processed packets in
     * run(); 0 disables.  Silent unless PB_LOG_LEVEL allows Info.
     */
    uint32_t heartbeatPackets = 10'000;
};

/** Outcome of processing one packet. */
struct PacketOutcome
{
    sim::PacketStats stats;
    isa::SysCode verdict = isa::SysCode::Drop;
    uint32_t outInterface = 0; ///< a1 at SYS SEND
    uint64_t cycles = 0;       ///< modeled cycles (0 unless timing)
};

/** One application instance bound to a simulated core. */
class PacketBench
{
  public:
    /**
     * Set up @p app on a fresh simulated machine.
     * The application object must outlive the framework.
     */
    explicit PacketBench(Application &app, BenchConfig cfg = {});

    /**
     * Process one packet and return its statistics and verdict.
     * Accepted packets (SEND) have their possibly-modified bytes
     * copied back into @p packet, so callers can chain into a
     * TraceSink (the paper's write_packet_to_file()).
     */
    PacketOutcome processPacket(net::Packet &packet);

    /**
     * Process up to @p max_packets from @p source.
     * @param sink if non-null, packets the application sent are
     *             appended to this trace
     */
    std::vector<PacketOutcome> run(net::TraceSource &source,
                                   uint32_t max_packets,
                                   net::TraceSink *sink = nullptr);

    /** @name Component access for analyses and tests. @{ */
    const sim::BlockMap &blocks() const { return *blockMap; }
    const sim::PacketRecorder &recorder() const { return *rec; }
    const sim::MicroArchModel *microArch() const { return uarch.get(); }
    const sim::PipelineTimer *timing() const { return timer.get(); }
    const obs::HotSpotProfiler *profiler() const { return prof.get(); }
    sim::Memory &memory() { return mem; }
    const isa::Program &program() const { return cpu.program(); }
    uint64_t packetsProcessed() const { return packetCount; }
    /** @} */

  private:
    Application &app;
    BenchConfig cfg;
    sim::Memory mem;
    sim::Cpu cpu;
    std::unique_ptr<sim::BlockMap> blockMap;
    std::unique_ptr<sim::PacketRecorder> rec;
    std::unique_ptr<sim::MicroArchModel> uarch;
    std::unique_ptr<sim::PipelineTimer> timer;
    std::unique_ptr<obs::HotSpotProfiler> prof;
    sim::FanoutObserver fanout;
    net::AddressScrambler scrambler;
    uint32_t entry = 0;
    uint64_t packetCount = 0;

    /** @name Published telemetry (obs/metrics.hh). @{ */
    void publishUarchMetrics();

    obs::Counter *packetsCtr;
    obs::Counter *instsCtr;
    obs::Counter *sentCtr;
    obs::Counter *droppedCtr;
    obs::Counter *simNsCtr;
    obs::Gauge *mipsGauge;
    obs::Histogram *instHist;
    obs::Histogram *uniqueHist;
    obs::Histogram *cycleHist = nullptr;

    /** This instance's share (the counters are process-global). */
    uint64_t myInsts = 0;
    uint64_t mySimNs = 0;

    /** Last published uarch totals, for delta publishing. */
    struct UarchSnapshot
    {
        uint64_t icacheAccesses = 0, icacheMisses = 0;
        uint64_t dcacheAccesses = 0, dcacheMisses = 0;
        uint64_t branchLookups = 0, branchMispredicts = 0;
    } prevUarch;
    /** @} */
};

} // namespace pb::core

#endif // PB_CORE_PACKETBENCH_HH
