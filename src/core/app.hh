/**
 * @file
 * The PacketBench application interface.
 *
 * Mirrors the paper's API (Section III-B):
 *  - init() — here setup(): the application initializes its data
 *    structures (routing table, flow table, anonymization tables)
 *    before any packets are processed.  This work runs host-side and
 *    is not counted toward packet processing, exactly as the paper
 *    excludes init() from the statistics.
 *  - process_packet_function — the NPE32 program returned by
 *    setup(); the framework calls it once per packet with a0 =
 *    pointer to the layer-3 header and a1 = captured length.
 *  - write_packet_to_file / drop — expressed by the program ending
 *    with `sys SYS_SEND` (next hop in a1) or `sys SYS_DROP`.
 */

#ifndef PB_CORE_APP_HH
#define PB_CORE_APP_HH

#include <string>

#include "isa/program.hh"
#include "sim/memory.hh"

namespace pb::core
{

/** A packet-processing application runnable on PacketBench. */
class Application
{
  public:
    virtual ~Application() = default;

    /** Short identifier ("ipv4-radix", "flow-class", ...). */
    virtual std::string name() const = 0;

    /**
     * Initialize application state in simulated memory and return
     * the assembled packet-handler program (entry label "main").
     *
     * Called once before packet processing; the work done here is
     * not accounted (the paper's init()).
     */
    virtual isa::Program setup(sim::Memory &mem) = 0;
};

} // namespace pb::core

#endif // PB_CORE_APP_HH
