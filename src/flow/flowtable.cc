/**
 * @file
 * Host flow-table implementation.
 */

#include "flowtable.hh"

#include "common/logging.hh"

namespace pb::flow
{

FlowTable::FlowTable(uint32_t num_buckets) : numBuckets(num_buckets)
{
    if (num_buckets == 0 || (num_buckets & (num_buckets - 1)) != 0)
        fatal("FlowTable: bucket count must be a power of two");
}

bool
FlowTable::update(const net::FiveTuple &tuple, uint32_t packet_bytes)
{
    auto [it, inserted] = flows.try_emplace(tuple);
    it->second.packets++;
    it->second.bytes += packet_bytes;
    return inserted;
}

std::optional<FlowStats>
FlowTable::lookup(const net::FiveTuple &tuple) const
{
    auto it = flows.find(tuple);
    if (it == flows.end())
        return std::nullopt;
    return it->second;
}

} // namespace pb::flow
