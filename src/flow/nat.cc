/**
 * @file
 * Host NAT table implementation.
 */

#include "nat.hh"

namespace pb::flow
{

uint16_t
NatTable::bind(uint32_t src, uint16_t src_port, uint8_t proto)
{
    uint32_t port_proto =
        (static_cast<uint32_t>(src_port) << 16) | proto;
    auto [it, inserted] =
        map.try_emplace({src, port_proto},
                        static_cast<uint16_t>(nextPort));
    if (inserted)
        nextPort++;
    return it->second;
}

void
NatTable::translate(net::Packet &packet)
{
    if (packet.l3Len() < net::ipv4::minHeaderLen)
        return;
    net::Ipv4View ip(packet.l3());
    if (ip.version() != 4)
        return;
    uint8_t proto = ip.proto();
    if (proto != static_cast<uint8_t>(net::IpProto::Tcp) &&
        proto != static_cast<uint8_t>(net::IpProto::Udp)) {
        return;
    }
    unsigned hlen = ip.headerLen();
    // The application handles the canonical option-less header only;
    // packets with IP options pass through untranslated.
    if (hlen != net::ipv4::minHeaderLen ||
        packet.l3Len() < hlen + 4) {
        return;
    }
    uint8_t *l4 = packet.l3() + hlen;
    uint16_t src_port = loadBe16(l4 + net::l4::offSrcPort);

    uint16_t ext_port = bind(ip.src(), src_port, proto);
    ip.setSrc(extAddr);
    storeBe16(l4 + net::l4::offSrcPort, ext_port);
    net::fillIpv4Checksum(packet.l3(), hlen);
}

} // namespace pb::flow
