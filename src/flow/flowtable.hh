/**
 * @file
 * 5-tuple flow classification (the paper's Flow Classification
 * workload): packets are classified into flows keyed by source and
 * destination address, ports, and protocol; the 5-tuple hashes into
 * a bucket array with chained collision resolution.
 *
 * The host FlowTable is the behavioral reference for the NPE32
 * application; hashTuple() defines the exact hash both sides use.
 *
 * Simulated memory layout (base = flow-table region start):
 *   +0                 allocNext: address of the next free heap node
 *   +4                 flowCount
 *   +8                 (pad)
 *   +12                (pad)
 *   +16                bucket array: numBuckets x 4-byte head pointer
 *   +16+4*numBuckets   node heap
 *
 * Node layout (32 bytes):
 *   +0 src   +4 dst   +8 (srcPort<<16)|dstPort   +12 proto
 *   +16 packet count   +20 byte count   +24 next   +28 pad
 */

#ifndef PB_FLOW_FLOWTABLE_HH
#define PB_FLOW_FLOWTABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/byteorder.hh"
#include "common/hash.hh"
#include "net/ipv4.hh"

namespace pb::flow
{

/** Layout constants shared with the NPE32 application. */
namespace flowlayout
{

constexpr uint32_t offAllocNext = 0;
constexpr uint32_t offFlowCount = 4;
constexpr uint32_t offBuckets = 16;

constexpr uint32_t nodeOffSrc = 0;
constexpr uint32_t nodeOffDst = 4;
constexpr uint32_t nodeOffPorts = 8;
constexpr uint32_t nodeOffProto = 12;
constexpr uint32_t nodeOffPackets = 16;
constexpr uint32_t nodeOffBytes = 20;
constexpr uint32_t nodeOffNext = 24;
constexpr uint32_t nodeSize = 32;

} // namespace flowlayout

/** Accumulated statistics for one flow. */
struct FlowStats
{
    uint64_t packets = 0;
    uint64_t bytes = 0;
};

/**
 * The hash both the host reference and the NPE32 program compute:
 * Jenkins one-at-a-time over the four 32-bit tuple words
 * (src, dst, (srcPort<<16)|dstPort, proto), with the standard final
 * avalanche.  The caller masks the result down to the bucket count.
 */
constexpr uint32_t
hashTuple(const net::FiveTuple &tuple)
{
    const uint32_t words[4] = {
        tuple.src, tuple.dst,
        (static_cast<uint32_t>(tuple.srcPort) << 16) | tuple.dstPort,
        tuple.proto};
    uint32_t hash = 0;
    for (uint32_t w : words) {
        hash += w;
        hash += hash << 10;
        hash ^= hash >> 6;
    }
    hash += hash << 3;
    hash ^= hash >> 11;
    hash += hash << 15;
    return hash;
}

/** Host-side flow classifier (behavioral reference). */
class FlowTable
{
  public:
    /** @param num_buckets bucket count, power of two. */
    explicit FlowTable(uint32_t num_buckets = 1024);

    /**
     * Account one packet.
     * @return true if this created a new flow
     */
    bool update(const net::FiveTuple &tuple, uint32_t packet_bytes);

    /** Statistics for a flow, if present. */
    std::optional<FlowStats> lookup(const net::FiveTuple &tuple) const;

    /** Number of distinct flows seen. */
    size_t numFlows() const { return flows.size(); }

    /** Bucket index a tuple hashes to. */
    uint32_t
    bucketOf(const net::FiveTuple &tuple) const
    {
        return hashTuple(tuple) & (numBuckets - 1);
    }

    uint32_t bucketCount() const { return numBuckets; }

    /** Hash functor for containers keyed by 5-tuples. */
    struct KeyHash
    {
        size_t
        operator()(const net::FiveTuple &tuple) const
        {
            return hashTuple(tuple);
        }
    };

    /** All flows (for differential tests and reports). */
    const std::unordered_map<net::FiveTuple, FlowStats, KeyHash> &
    all() const
    {
        return flows;
    }

  private:
    uint32_t numBuckets;
    std::unordered_map<net::FiveTuple, FlowStats, KeyHash> flows;
};

} // namespace pb::flow

#endif // PB_FLOW_FLOWTABLE_HH
