/**
 * @file
 * Source NAT (NAPT) binding table — host reference for the NAT
 * application.
 *
 * NAT is one of the paper's motivating router functions (Section II
 * cites RFC 1631).  The translator maps each internal
 * (source address, source port, protocol) to a fresh external port
 * on one external address, in first-seen order, so the mapping is a
 * deterministic function of the packet sequence — which is what the
 * differential tests rely on.
 *
 * Simulated memory layout (base = NAT region start):
 *   +0   allocNext: address of the next free binding node
 *   +4   binding count
 *   +8   next external port to hand out
 *   +12  (pad)
 *   +16  bucket array: numBuckets x 4-byte head pointer
 *   then the node heap
 *
 * Binding node (16 bytes):
 *   +0 internal source address
 *   +4 (srcPort << 16) | protocol
 *   +8 external port
 *   +12 next pointer
 */

#ifndef PB_FLOW_NAT_HH
#define PB_FLOW_NAT_HH

#include <cstdint>
#include <unordered_map>

#include "net/ipv4.hh"

namespace pb::flow
{

/** Layout constants shared with the NPE32 NAT application. */
namespace natlayout
{

constexpr uint32_t offAllocNext = 0;
constexpr uint32_t offBindingCount = 4;
constexpr uint32_t offNextPort = 8;
constexpr uint32_t offBuckets = 16;

constexpr uint32_t nodeOffSrc = 0;
constexpr uint32_t nodeOffPortProto = 4;
constexpr uint32_t nodeOffExtPort = 8;
constexpr uint32_t nodeOffNext = 12;
constexpr uint32_t nodeSize = 16;

/** Hash of a binding key (mirrored in assembly). */
constexpr uint32_t
hashKey(uint32_t src, uint32_t port_proto)
{
    uint32_t h = src ^ port_proto;
    h ^= h >> 16;
    h ^= h >> 8;
    return h;
}

} // namespace natlayout

/** Host-side NAPT binding table. */
class NatTable
{
  public:
    /**
     * @param external_addr address translated packets appear from
     * @param port_base     first external port handed out
     */
    NatTable(uint32_t external_addr, uint16_t port_base)
        : extAddr(external_addr), nextPort(port_base)
    {}

    /**
     * External port bound to (src, srcPort, proto), allocating a new
     * one on first sight.
     */
    uint16_t bind(uint32_t src, uint16_t src_port, uint8_t proto);

    /**
     * Apply the translation to @p packet the way the NAT
     * application does: TCP/UDP packets get their source address and
     * port rewritten and the IP checksum recomputed; other
     * protocols pass through untouched.
     */
    void translate(net::Packet &packet);

    uint32_t externalAddr() const { return extAddr; }
    size_t bindings() const { return map.size(); }

  private:
    struct KeyHash
    {
        size_t
        operator()(const std::pair<uint32_t, uint32_t> &key) const
        {
            return natlayout::hashKey(key.first, key.second);
        }
    };

    uint32_t extAddr;
    uint32_t nextPort;
    std::unordered_map<std::pair<uint32_t, uint32_t>, uint16_t,
                       KeyHash>
        map;
};

} // namespace pb::flow

#endif // PB_FLOW_NAT_HH
