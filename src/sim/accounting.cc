/**
 * @file
 * Per-packet accounting implementation.
 */

#include "accounting.hh"

#include "sim/memmap.hh"

namespace pb::sim
{

PacketRecorder::PacketRecorder(const isa::Program &prog,
                               const BlockMap &blocks, RecorderConfig cfg_)
    : cfg(cfg_),
      progBase(prog.baseAddr),
      progWords(static_cast<uint32_t>(prog.words.size())),
      blockMap(blocks)
{
    wordEpoch.assign(progWords, 0);
    blockEpoch.assign(blockMap.numBlocks(), 0);
    textTouch.init(layout::textBase, layout::textSize);
    dataTouch.init(layout::dataBase, layout::dataSize);
    packetTouch.init(layout::packetBase, layout::packetSize);
    stackTouch.init(layout::stackBase, layout::stackSize);
}

void
PacketRecorder::beginPacket()
{
    if (inPacket)
        panic("PacketRecorder::beginPacket: packet already open");
    inPacket = true;
    epoch++;
    current = PacketStats{};
}

PacketStats
PacketRecorder::endPacket()
{
    if (!inPacket)
        panic("PacketRecorder::endPacket: no packet open");
    inPacket = false;
    return std::move(current);
}

void
PacketRecorder::onInst(uint32_t addr, const isa::Inst &inst)
{
    current.instCount++;
    totalInsts_++;
    classCounts_[static_cast<size_t>(isa::opInfo(inst.op).cls)]++;
    textTouch.mark(addr, 4);

    uint32_t word = (addr - progBase) / 4;
    if (word < progWords && wordEpoch[word] != epoch) {
        wordEpoch[word] = epoch;
        current.uniqueInstCount++;
        if (cfg.blockSets) {
            uint32_t block = blockMap.blockOf(addr);
            if (blockEpoch[block] != epoch) {
                blockEpoch[block] = epoch;
                current.blocks.push_back(block);
            }
        }
    }
    if (cfg.instTrace)
        current.instTrace.push_back(addr);
}

void
PacketRecorder::onMemAccess(const MemAccessEvent &event)
{
    switch (event.region) {
      case MemRegion::Packet:
        if (event.isStore)
            current.packetWrites++;
        else
            current.packetReads++;
        packetTouch.mark(event.addr, event.size);
        break;
      case MemRegion::Data:
        if (event.isStore)
            current.nonPacketWrites++;
        else
            current.nonPacketReads++;
        dataTouch.mark(event.addr, event.size);
        break;
      case MemRegion::Stack:
        if (event.isStore)
            current.nonPacketWrites++;
        else
            current.nonPacketReads++;
        stackTouch.mark(event.addr, event.size);
        break;
      case MemRegion::Text:
      case MemRegion::Unmapped:
        // Reads of constants embedded in text count as non-packet.
        if (event.isStore)
            current.nonPacketWrites++;
        else
            current.nonPacketReads++;
        break;
    }
    if (cfg.memTrace)
        current.memTrace.push_back({current.instCount, event});
}

uint64_t
PacketRecorder::instMemoryBytes() const
{
    return textTouch.count;
}

uint64_t
PacketRecorder::dataMemoryBytes() const
{
    return dataTouch.count + packetTouch.count + stackTouch.count;
}

} // namespace pb::sim
