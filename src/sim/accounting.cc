/**
 * @file
 * Per-packet accounting implementation.
 */

#include "accounting.hh"

#include "sim/memmap.hh"

namespace pb::sim
{

PacketRecorder::PacketRecorder(const isa::Program &prog,
                               const BlockMap &blocks, RecorderConfig cfg_)
    : cfg(cfg_),
      progBase(prog.baseAddr),
      progWords(static_cast<uint32_t>(prog.words.size())),
      blockMap(blocks)
{
    wordEpoch.assign(progWords, 0);
    blockEpoch.assign(blockMap.numBlocks(), 0);
    wordTouched.assign(progWords, false);
    dataTouch.init(layout::dataBase, layout::dataSize);
    packetTouch.init(layout::packetBase, layout::packetSize);
    stackTouch.init(layout::stackBase, layout::stackSize);
}

void
PacketRecorder::beginPacket()
{
    if (inPacket)
        panic("PacketRecorder::beginPacket: packet already open");
    inPacket = true;
    epoch++;
    current = PacketStats{};
}

PacketStats
PacketRecorder::endPacket()
{
    if (!inPacket)
        panic("PacketRecorder::endPacket: no packet open");
    inPacket = false;
    return std::move(current);
}

uint64_t
PacketRecorder::instMemoryBytes() const
{
    // Fetches are aligned 4-byte spans, so distinct executed words
    // map one-to-one onto touched instruction bytes.
    return wordsTouched_ * 4;
}

uint64_t
PacketRecorder::dataMemoryBytes() const
{
    return dataTouch.count + packetTouch.count + stackTouch.count;
}

} // namespace pb::sim
