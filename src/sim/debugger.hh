/**
 * @file
 * Interactive debugger for NPE32 programs.
 *
 * A small command-driven debugger over the Cpu: single-step,
 * breakpoints, register and memory inspection, disassembly.  The
 * command interface reads from any istream and writes to any
 * ostream, so it works both as an interactive CLI
 * (examples/npe_debug.cc) and under unit test.
 *
 * Commands:
 *   s [n]           step n instructions (default 1)
 *   c               continue to breakpoint / SYS / fault
 *   b <addr|label>  set a breakpoint
 *   d <addr|label>  delete a breakpoint
 *   r               print registers
 *   m <addr> [n]    dump n bytes of memory (default 16)
 *   l [addr] [n]    disassemble n instructions (default 8, at pc)
 *   q               quit
 */

#ifndef PB_SIM_DEBUGGER_HH
#define PB_SIM_DEBUGGER_HH

#include <iosfwd>
#include <set>
#include <string>

#include "sim/cpu.hh"

namespace pb::sim
{

/** Why stepping stopped. */
enum class StopReason
{
    Step,       ///< requested step count exhausted
    Breakpoint, ///< hit a breakpoint
    Sys,        ///< program executed SYS
    Fault,      ///< simulator fault (memory, decode, ...)
};

/** Single-core NPE32 debugger. */
class Debugger
{
  public:
    /**
     * @param cpu   core with a loaded program
     * @param entry initial program counter
     */
    Debugger(Cpu &cpu, uint32_t entry);

    /** @name Programmatic interface. @{ */
    /** Execute up to @p max_steps instructions. */
    StopReason step(uint64_t max_steps = 1);

    /** Run until breakpoint, SYS, or fault. */
    StopReason cont();

    void setBreakpoint(uint32_t addr) { breakpoints.insert(addr); }
    void clearBreakpoint(uint32_t addr) { breakpoints.erase(addr); }
    const std::set<uint32_t> &breaks() const { return breakpoints; }

    uint32_t pc() const { return pc_; }
    bool finished() const { return done; }

    /** SYS code that ended the program (valid once finished()). */
    isa::SysCode stopCode() const { return sysCode; }

    /** Message of the last fault (empty if none). */
    const std::string &faultMessage() const { return fault; }

    /** Total instructions stepped so far. */
    uint64_t steps() const { return stepCount; }
    /** @} */

    /**
     * Run the textual command loop: read commands from @p in,
     * respond on @p out, until `q`, EOF, or program end.
     */
    void repl(std::istream &in, std::ostream &out);

  private:
    /** Execute exactly one instruction; updates pc/done/fault. */
    bool stepOne();

    /** Resolve "0x..." / decimal / program label to an address. */
    bool resolve(const std::string &token, uint32_t &addr) const;

    Cpu &cpu;
    uint32_t pc_;
    bool done = false;
    isa::SysCode sysCode = isa::SysCode::Done;
    std::string fault;
    std::set<uint32_t> breakpoints;
    uint64_t stepCount = 0;
};

} // namespace pb::sim

#endif // PB_SIM_DEBUGGER_HH
