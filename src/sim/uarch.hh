/**
 * @file
 * Microarchitectural models: bimodal branch predictor and
 * set-associative caches.
 *
 * The paper notes that standard microarchitectural statistics
 * (instruction mix, branch misprediction, cache behavior) fall out of
 * the SimpleScalar substrate.  These models provide the equivalent
 * capability for NPE32: attach a MicroArchModel to the CPU (via
 * FanoutObserver, next to the PacketRecorder) and read the rates.
 */

#ifndef PB_SIM_UARCH_HH
#define PB_SIM_UARCH_HH

#include <cstdint>
#include <vector>

#include "sim/cpu.hh"

namespace pb::sim
{

/** Classic 2-bit saturating-counter (bimodal) branch predictor. */
class BimodalPredictor
{
  public:
    /** @param entries number of 2-bit counters (power of two). */
    explicit BimodalPredictor(uint32_t entries = 2048);

    /** Predict and update for a resolved branch. */
    void update(uint32_t addr, bool taken);

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction rate in [0, 1]; 0 when no branches were seen. */
    double
    mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) / lookups_
                        : 0.0;
    }

  private:
    std::vector<uint8_t> counters;
    uint32_t mask;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

/** Set-associative cache with LRU replacement (tag-only model). */
class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity
     * @param line_bytes line size (power of two)
     * @param ways       associativity
     */
    CacheModel(uint32_t size_bytes, uint32_t line_bytes, uint32_t ways);

    /** Access one address; returns true on hit. */
    bool access(uint32_t addr);

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }

    /** Miss rate in [0, 1]; 0 when the cache was never accessed. */
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_
                         : 0.0;
    }

  private:
    struct Way
    {
        uint32_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    uint32_t lineShift;
    uint32_t numSets;
    uint32_t ways;
    std::vector<Way> sets; // numSets * ways
    uint64_t tick = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

/**
 * Bundles the classic SimpleScalar-style core statistics: I-cache,
 * D-cache, and branch predictor, driven by the execution stream.
 */
class MicroArchModel : public ExecObserver
{
  public:
    /** Sizes modeled on an IXP-class microengine's local stores. */
    MicroArchModel(uint32_t icache_bytes = 4096,
                   uint32_t dcache_bytes = 8192,
                   uint32_t line_bytes = 32, uint32_t ways = 2);

    void onInst(uint32_t addr, const isa::Inst &inst) override;
    void onMemAccess(const MemAccessEvent &event) override;
    void onBranch(uint32_t addr, bool taken, uint32_t target) override;

    const CacheModel &icache() const { return icache_; }
    const CacheModel &dcache() const { return dcache_; }
    const BimodalPredictor &predictor() const { return predictor_; }

  private:
    CacheModel icache_;
    CacheModel dcache_;
    BimodalPredictor predictor_;
};

} // namespace pb::sim

#endif // PB_SIM_UARCH_HH
