/**
 * @file
 * Static basic-block analysis of an NPE32 program.
 *
 * The paper's per-packet results (Figs. 7 and 8) are phrased in terms
 * of basic blocks: straight-line instruction sequences with a single
 * entry and a single exit.  We discover blocks statically from the
 * program image: a block leader is the program entry, any direct
 * branch/jump/call target, or the instruction following any
 * control-flow instruction.
 */

#ifndef PB_SIM_BBLOCK_HH
#define PB_SIM_BBLOCK_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace pb::sim
{

/** One static basic block. */
struct BasicBlock
{
    uint32_t id;        ///< dense index, in address order
    uint32_t startAddr; ///< byte address of the first instruction
    uint32_t numInsts;  ///< number of instructions in the block
};

/** Maps instruction addresses to basic blocks. */
class BlockMap
{
  public:
    /** Analyze @p prog; the program must be non-empty. */
    explicit BlockMap(const isa::Program &prog);

    /** Number of static basic blocks. */
    uint32_t numBlocks() const
    {
        return static_cast<uint32_t>(blocks_.size());
    }

    /** Block containing the instruction at @p addr. */
    uint32_t
    blockOf(uint32_t addr) const
    {
        return wordToBlock[(addr - baseAddr) / 4];
    }

    /** Block metadata by id. */
    const BasicBlock &block(uint32_t id) const { return blocks_[id]; }

    /** All blocks, in address order. */
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

  private:
    uint32_t baseAddr;
    std::vector<BasicBlock> blocks_;
    std::vector<uint32_t> wordToBlock;
};

} // namespace pb::sim

#endif // PB_SIM_BBLOCK_HH
