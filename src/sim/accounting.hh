/**
 * @file
 * Selective accounting: per-packet workload statistics.
 *
 * The paper modified SimpleScalar so that only instructions belonging
 * to the application — not the PacketBench framework — are counted.
 * In this reproduction the framework runs natively on the host, so
 * everything the simulated CPU executes *is* application work; the
 * PacketRecorder is attached for exactly the duration of each
 * process_packet() call and detached while the framework moves
 * packets around, which realizes the same accounting boundary.
 */

#ifndef PB_SIM_ACCOUNTING_HH
#define PB_SIM_ACCOUNTING_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/bblock.hh"
#include "sim/cpu.hh"

namespace pb::sim
{

/** What level of per-packet detail to keep. */
struct RecorderConfig
{
    /** Keep the full instruction-address trace (Fig. 6). */
    bool instTrace = false;
    /** Keep the full data-memory access trace (Fig. 9). */
    bool memTrace = false;
    /** Keep the set of basic blocks each packet executes (Figs. 7-8). */
    bool blockSets = false;
};

/** Statistics for one processed packet. */
struct PacketStats
{
    uint64_t instCount = 0;       ///< total instructions executed
    uint32_t uniqueInstCount = 0; ///< distinct instruction addresses
    uint32_t packetReads = 0;     ///< loads from packet memory
    uint32_t packetWrites = 0;    ///< stores to packet memory
    uint32_t nonPacketReads = 0;  ///< loads from data/stack memory
    uint32_t nonPacketWrites = 0; ///< stores to data/stack memory

    uint32_t packetAccesses() const { return packetReads + packetWrites; }
    uint32_t
    nonPacketAccesses() const
    {
        return nonPacketReads + nonPacketWrites;
    }

    /** Basic blocks executed at least once (sorted ids); optional. */
    std::vector<uint32_t> blocks;
    /** Executed instruction addresses in order; optional. */
    std::vector<uint32_t> instTrace;

    /** A data access annotated with when it happened. */
    struct TracedAccess
    {
        uint64_t instIndex; ///< ordinal of the accessing instruction
        MemAccessEvent event;
    };

    /** Data accesses in order; optional. */
    std::vector<TracedAccess> memTrace;
};

/** Number of InstClass values tracked in the mix histogram. */
constexpr size_t numInstClasses =
    static_cast<size_t>(isa::InstClass::Invalid) + 1;

/**
 * ExecObserver that produces PacketStats per packet plus run-level
 * aggregates (memory coverage, instruction mix).
 */
class PacketRecorder final : public ExecObserver
{
  public:
    PacketRecorder(const isa::Program &prog, const BlockMap &blocks,
                   RecorderConfig cfg = {});

    /** Start accounting a new packet. */
    void beginPacket();

    /** Finish the current packet and return its statistics. */
    PacketStats endPacket();

    // Defined inline: the CPU's block-stepped loop instantiates a
    // devirtualized template over the recorder, and these two are its
    // per-event hot path.
    void
    onInst(uint32_t addr, const isa::Inst &inst) override
    {
        current.instCount++;
        totalInsts_++;
        classCounts_[static_cast<size_t>(isa::opInfo(inst.op).cls)]++;

        uint32_t word = (addr - progBase) / 4;
        if (word < progWords && wordEpoch[word] != epoch) {
            wordEpoch[word] = epoch;
            current.uniqueInstCount++;
            // A word's first-ever execution is always also its first
            // execution within some packet, so the run-level
            // instruction footprint only needs checking on the
            // per-packet-unique path; the per-instruction hot path
            // pays nothing for it.
            if (!wordTouched[word]) {
                wordTouched[word] = true;
                wordsTouched_++;
            }
            if (cfg.blockSets) {
                uint32_t block = blockMap.blockOf(addr);
                if (blockEpoch[block] != epoch) {
                    blockEpoch[block] = epoch;
                    current.blocks.push_back(block);
                }
            }
        }
        if (cfg.instTrace)
            current.instTrace.push_back(addr);
    }

    void
    onMemAccess(const MemAccessEvent &event) override
    {
        switch (event.region) {
          case MemRegion::Packet:
            if (event.isStore)
                current.packetWrites++;
            else
                current.packetReads++;
            packetTouch.mark(event.addr, event.size);
            break;
          case MemRegion::Data:
            if (event.isStore)
                current.nonPacketWrites++;
            else
                current.nonPacketReads++;
            dataTouch.mark(event.addr, event.size);
            break;
          case MemRegion::Stack:
            if (event.isStore)
                current.nonPacketWrites++;
            else
                current.nonPacketReads++;
            stackTouch.mark(event.addr, event.size);
            break;
          case MemRegion::Text:
          case MemRegion::Unmapped:
            // Reads of constants embedded in text count as
            // non-packet.
            if (event.isStore)
                current.nonPacketWrites++;
            else
                current.nonPacketReads++;
            break;
        }
        if (cfg.memTrace)
            current.memTrace.push_back({current.instCount, event});
    }

    PacketRecorder *asRecorder() override { return this; }

    /**
     * @name Run-level aggregates (across all packets so far).
     * @{
     */
    /** Bytes of instruction memory touched (paper Table IV col 1). */
    uint64_t instMemoryBytes() const;
    /** Bytes of data memory touched (paper Table IV col 2). */
    uint64_t dataMemoryBytes() const;
    /** Executed-instruction histogram by class. */
    const std::array<uint64_t, numInstClasses> &
    classCounts() const
    {
        return classCounts_;
    }
    /** Total instructions across all packets. */
    uint64_t totalInsts() const { return totalInsts_; }
    /** @} */

  private:
    /** Tracks which byte offsets of a region have been touched. */
    struct TouchMap
    {
        uint32_t base = 0;
        std::vector<bool> touched;
        uint64_t count = 0;

        void
        init(uint32_t base_addr, uint32_t size)
        {
            base = base_addr;
            touched.assign(size, false);
            count = 0;
        }

        void
        mark(uint32_t addr, uint32_t len)
        {
            for (uint32_t i = 0; i < len; i++) {
                uint32_t off = addr + i - base;
                if (off < touched.size() && !touched[off]) {
                    touched[off] = true;
                    count++;
                }
            }
        }
    };

    const RecorderConfig cfg;
    const uint32_t progBase;
    const uint32_t progWords;
    const BlockMap &blockMap;

    // Per-packet epoch marking: a word (or block) is unique within the
    // packet iff its stamp differs from the current epoch.
    uint32_t epoch = 0;
    std::vector<uint32_t> wordEpoch;
    std::vector<uint32_t> blockEpoch;

    /** Program words executed at least once over the whole run. */
    std::vector<bool> wordTouched;
    uint64_t wordsTouched_ = 0;

    PacketStats current;
    bool inPacket = false;

    // Run-level aggregates.
    std::array<uint64_t, numInstClasses> classCounts_{};
    uint64_t totalInsts_ = 0;
    TouchMap dataTouch;
    TouchMap packetTouch;
    TouchMap stackTouch;
};

/** Forwards the execution stream to several observers. */
class FanoutObserver : public ExecObserver
{
  public:
    /** Attach another downstream observer. */
    void add(ExecObserver *observer) { sinks.push_back(observer); }

    /**
     * Detach @p observer (no-op when absent).  Lets the framework
     * attach per-packet observers — e.g. the sampled NPE32 event
     * tracer (obs/tracing.hh) — for exactly one packet's run.
     */
    void
    remove(ExecObserver *observer)
    {
        sinks.erase(std::remove(sinks.begin(), sinks.end(), observer),
                    sinks.end());
    }

    void
    onInst(uint32_t addr, const isa::Inst &inst) override
    {
        for (auto *sink : sinks)
            sink->onInst(addr, inst);
    }

    void
    onMemAccess(const MemAccessEvent &event) override
    {
        for (auto *sink : sinks)
            sink->onMemAccess(event);
    }

    void
    onBranch(uint32_t addr, bool taken, uint32_t target) override
    {
        for (auto *sink : sinks)
            sink->onBranch(addr, taken, target);
    }

    /**
     * With exactly one sink attached, hand the CPU that sink directly
     * so every event costs one virtual call instead of two.  With any
     * other sink count the fan-out itself stays in the path.
     */
    ExecObserver *
    soloSink() override
    {
        return sinks.size() == 1 ? sinks[0]->soloSink() : this;
    }

  private:
    std::vector<ExecObserver *> sinks;
};

} // namespace pb::sim

#endif // PB_SIM_ACCOUNTING_HH
