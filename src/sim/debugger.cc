/**
 * @file
 * NPE32 debugger implementation.
 */

#include "debugger.hh"

#include <istream>
#include <ostream>

#include "common/strutil.hh"
#include "isa/disasm.hh"

namespace pb::sim
{

Debugger::Debugger(Cpu &cpu_, uint32_t entry) : cpu(cpu_), pc_(entry)
{}

bool
Debugger::stepOne()
{
    if (done)
        return false;
    try {
        RunResult result = cpu.runSliceRef(pc_, 1);
        stepCount += result.instCount;
        if (result.hitBudget) {
            pc_ = result.nextPc;
            return true;
        }
        // Program ended with SYS.
        done = true;
        sysCode = result.stopCode;
        return false;
    } catch (const SimError &e) {
        done = true;
        fault = e.what();
        return false;
    }
}

StopReason
Debugger::step(uint64_t max_steps)
{
    for (uint64_t i = 0; i < max_steps; i++) {
        if (!stepOne())
            return fault.empty() ? StopReason::Sys : StopReason::Fault;
        if (i + 1 < max_steps && breakpoints.count(pc_))
            return StopReason::Breakpoint;
    }
    return StopReason::Step;
}

StopReason
Debugger::cont()
{
    while (true) {
        if (!stepOne())
            return fault.empty() ? StopReason::Sys : StopReason::Fault;
        if (breakpoints.count(pc_))
            return StopReason::Breakpoint;
    }
}

bool
Debugger::resolve(const std::string &token, uint32_t &addr) const
{
    const isa::Program &prog = cpu.program();
    if (prog.hasSymbol(token)) {
        addr = prog.symbols.at(token);
        return true;
    }
    auto value = parseInt(token);
    if (value && *value >= 0) {
        addr = static_cast<uint32_t>(*value);
        return true;
    }
    return false;
}

void
Debugger::repl(std::istream &in, std::ostream &out)
{
    const isa::Program &prog = cpu.program();
    auto show_pc = [&] {
        if (done) {
            if (fault.empty()) {
                out << "program ended: sys " <<
                    static_cast<int>(sysCode) << "\n";
            } else {
                out << "fault: " << fault << "\n";
            }
            return;
        }
        out << strprintf("0x%08x:  %s\n", pc_,
                         isa::disassemble(
                             isa::decode(cpu.program().words
                                             [(pc_ - prog.baseAddr) /
                                              4]),
                             pc_)
                             .c_str());
    };

    std::string line;
    out << "npe32 debugger; 's c b d r m l q'\n";
    show_pc();
    while (!done && out << "(dbg) " && std::getline(in, line)) {
        auto tokens = splitWs(line);
        if (tokens.empty())
            continue;
        const std::string &cmd = tokens[0];

        if (cmd == "q")
            break;
        if (cmd == "s") {
            uint64_t n = 1;
            if (tokens.size() > 1) {
                auto v = parseInt(tokens[1]);
                if (v && *v > 0)
                    n = static_cast<uint64_t>(*v);
            }
            StopReason reason = step(n);
            if (reason == StopReason::Breakpoint)
                out << "breakpoint\n";
            show_pc();
        } else if (cmd == "c") {
            StopReason reason = cont();
            if (reason == StopReason::Breakpoint)
                out << "breakpoint\n";
            show_pc();
        } else if (cmd == "b" || cmd == "d") {
            uint32_t addr;
            if (tokens.size() < 2 || !resolve(tokens[1], addr)) {
                out << "usage: " << cmd << " <addr|label>\n";
                continue;
            }
            if (cmd == "b") {
                setBreakpoint(addr);
                out << strprintf("breakpoint at 0x%08x\n", addr);
            } else {
                clearBreakpoint(addr);
                out << strprintf("cleared 0x%08x\n", addr);
            }
        } else if (cmd == "r") {
            for (unsigned r = 0; r < isa::numRegs; r++) {
                out << strprintf("%-4s 0x%08x%s",
                                 isa::regName(r).c_str(), cpu.reg(r),
                                 (r % 4 == 3) ? "\n" : "  ");
            }
            out << strprintf("pc   0x%08x  steps %llu\n", pc_,
                             static_cast<unsigned long long>(
                                 stepCount));
        } else if (cmd == "m") {
            uint32_t addr;
            if (tokens.size() < 2 || !resolve(tokens[1], addr)) {
                out << "usage: m <addr> [bytes]\n";
                continue;
            }
            uint32_t n = 16;
            if (tokens.size() > 2) {
                auto v = parseInt(tokens[2]);
                if (v && *v > 0)
                    n = static_cast<uint32_t>(*v);
            }
            // Access via the CPU's memory; faults become messages.
            out << strprintf("0x%08x:", addr);
            for (uint32_t i = 0; i < n; i++) {
                try {
                    out << strprintf(" %02x",
                                     cpu.memory().read8(addr + i));
                } catch (const SimError &) {
                    out << " ??";
                }
            }
            out << "\n";
        } else if (cmd == "l") {
            uint32_t addr = pc_;
            if (tokens.size() > 1 && !resolve(tokens[1], addr)) {
                out << "usage: l [addr] [count]\n";
                continue;
            }
            uint32_t n = 8;
            if (tokens.size() > 2) {
                auto v = parseInt(tokens[2]);
                if (v && *v > 0)
                    n = static_cast<uint32_t>(*v);
            }
            for (uint32_t i = 0; i < n; i++) {
                uint32_t a = addr + i * 4;
                if (a < prog.baseAddr || a >= prog.endAddr())
                    break;
                uint32_t word =
                    prog.words[(a - prog.baseAddr) / 4];
                out << strprintf(
                    "%s0x%08x:  %s\n", a == pc_ ? "=> " : "   ", a,
                    isa::disassemble(isa::decode(word), a).c_str());
            }
        } else {
            out << "commands: s [n] | c | b <a> | d <a> | r | "
                   "m <a> [n] | l [a] [n] | q\n";
        }
    }
}

} // namespace pb::sim
