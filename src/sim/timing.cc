/**
 * @file
 * Pipeline timing model implementation.
 */

#include "timing.hh"

namespace pb::sim
{

using isa::Format;
using isa::InstClass;
using isa::Op;

PipelineTimer::PipelineTimer(TimingParams params)
    : params_(params),
      icache(params.icacheBytes, params.cacheLineBytes,
             params.cacheWays),
      dcache(params.dcacheBytes, params.cacheLineBytes,
             params.cacheWays),
      predictor()
{}

void
PipelineTimer::onInst(uint32_t addr, const isa::Inst &inst)
{
    insts_++;
    cycles_++;
    if (!icache.access(addr))
        cycles_ += params_.icacheMissPenalty;

    const isa::OpInfo &info = isa::opInfo(inst.op);

    // Load-use interlock: does this instruction read the register a
    // load produced in the immediately preceding cycle?
    if (pendingLoadReg != 0xff && pendingLoadReg != 0) {
        bool uses = inst.rs == pendingLoadReg &&
                    info.format != Format::Jump &&
                    info.format != Format::Sys &&
                    inst.op != Op::LUI;
        // rt is a source for R-type and branches; rd is the *source*
        // for stores.
        if (info.format == Format::RType ||
            info.format == Format::Branch) {
            uses = uses || inst.rt == pendingLoadReg;
        }
        if (info.format == Format::Store)
            uses = uses || inst.rd == pendingLoadReg;
        if (uses)
            cycles_ += params_.loadUseStall;
    }
    pendingLoadReg =
        info.cls == InstClass::Load ? inst.rd : 0xff;

    if (info.cls == InstClass::IntMul)
        cycles_ += params_.mulLatency;
    if (info.cls == InstClass::Jump)
        cycles_ += params_.jumpBubble;
}

void
PipelineTimer::onMemAccess(const MemAccessEvent &event)
{
    if (!dcache.access(event.addr))
        cycles_ += params_.dcacheMissPenalty;
}

void
PipelineTimer::onBranch(uint32_t addr, bool taken, uint32_t target)
{
    (void)target;
    uint64_t before = predictor.mispredicts();
    predictor.update(addr, taken);
    if (predictor.mispredicts() != before)
        cycles_ += params_.branchMispredict;
}

} // namespace pb::sim
