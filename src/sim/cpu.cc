/**
 * @file
 * NPE32 interpreter implementation.
 */

#include "cpu.hh"

#include "common/bitops.hh"
#include "sim/memmap.hh"

namespace pb::sim
{

using isa::Inst;
using isa::Op;

Cpu::Cpu(Memory &mem_) : mem(mem_)
{
    resetRegs();
}

void
Cpu::resetRegs()
{
    for (auto &r : regs)
        r = 0;
    regs[isa::regSp] = layout::stackTop;
}

void
Cpu::loadProgram(const isa::Program &program)
{
    if (program.baseAddr < layout::textBase ||
        program.endAddr() > layout::textBase + layout::textSize) {
        fatal("program [0x%x, 0x%x) does not fit in the text region",
              program.baseAddr, program.endAddr());
    }
    prog = program;
    decoded.clear();
    decoded.reserve(prog.words.size());
    for (size_t i = 0; i < prog.words.size(); i++) {
        uint32_t word = prog.words[i];
        mem.write32(prog.baseAddr + static_cast<uint32_t>(i) * 4, word);
        decoded.push_back(isa::decode(word));
    }
}

uint32_t
Cpu::load(const Inst &inst)
{
    uint32_t addr = reg(inst.rs) + static_cast<uint32_t>(inst.imm);
    uint8_t size;
    uint32_t value;
    switch (inst.op) {
      case Op::LW:
        size = 4;
        value = mem.read32(addr);
        break;
      case Op::LH:
        size = 2;
        value = static_cast<uint32_t>(sext(mem.read16(addr), 16));
        break;
      case Op::LHU:
        size = 2;
        value = mem.read16(addr);
        break;
      case Op::LB:
        size = 1;
        value = static_cast<uint32_t>(sext(mem.read8(addr), 8));
        break;
      case Op::LBU:
        size = 1;
        value = mem.read8(addr);
        break;
      default:
        throw SimError("load() called for a non-load opcode");
    }
    if (obs)
        obs->onMemAccess({addr, size, false, mem.classify(addr)});
    return value;
}

void
Cpu::store(const Inst &inst)
{
    uint32_t addr = reg(inst.rs) + static_cast<uint32_t>(inst.imm);
    uint32_t value = reg(inst.rd);
    uint8_t size;
    switch (inst.op) {
      case Op::SW:
        size = 4;
        mem.write32(addr, value);
        break;
      case Op::SH:
        size = 2;
        mem.write16(addr, static_cast<uint16_t>(value));
        break;
      case Op::SB:
        size = 1;
        mem.write8(addr, static_cast<uint8_t>(value));
        break;
      default:
        throw SimError("store() called for a non-store opcode");
    }
    if (obs)
        obs->onMemAccess({addr, size, true, mem.classify(addr)});
}

RunResult
Cpu::run(uint32_t entry, uint64_t max_insts)
{
    RunResult result = runSlice(entry, max_insts);
    if (result.hitBudget) {
        throw BudgetError(strprintf(
            "instruction budget (%llu) exhausted at pc=0x%x",
            static_cast<unsigned long long>(max_insts),
            result.nextPc));
    }
    return result;
}

RunResult
Cpu::runSlice(uint32_t entry, uint64_t max_insts)
{
    if (decoded.empty())
        fatal("Cpu::run called with no program loaded");

    const uint32_t base = prog.baseAddr;
    const uint32_t end = prog.endAddr();
    uint32_t pc = entry;
    uint64_t count = 0;

    while (true) {
        if (pc < base || pc >= end) {
            throw MemoryError(strprintf(
                "instruction fetch outside program: pc=0x%x", pc));
        }
        if (!isAligned(pc, 4)) {
            throw AlignmentError(
                strprintf("misaligned instruction fetch: pc=0x%x", pc));
        }
        if (count >= max_insts) {
            lifetimeInsts += count;
            RunResult result{isa::SysCode::Done, reg(isa::regA1),
                             count};
            result.hitBudget = true;
            result.nextPc = pc;
            return result;
        }

        const Inst &inst = decoded[(pc - base) / 4];
        if (inst.op == Op::INVALID) {
            throw DecodeError(strprintf(
                "undecodable instruction word at pc=0x%x", pc));
        }
        count++;
        if (obs)
            obs->onInst(pc, inst);

        uint32_t next_pc = pc + 4;
        const uint32_t rs = reg(inst.rs);
        const uint32_t rt = reg(inst.rt);
        const uint32_t uimm = static_cast<uint32_t>(inst.imm);

        switch (inst.op) {
          case Op::ADD:
            setReg(inst.rd, rs + rt);
            break;
          case Op::SUB:
            setReg(inst.rd, rs - rt);
            break;
          case Op::AND:
            setReg(inst.rd, rs & rt);
            break;
          case Op::OR:
            setReg(inst.rd, rs | rt);
            break;
          case Op::XOR:
            setReg(inst.rd, rs ^ rt);
            break;
          case Op::SLL:
            setReg(inst.rd, rs << (rt & 31));
            break;
          case Op::SRL:
            setReg(inst.rd, rs >> (rt & 31));
            break;
          case Op::SRA:
            setReg(inst.rd, static_cast<uint32_t>(
                                static_cast<int32_t>(rs) >> (rt & 31)));
            break;
          case Op::MUL:
            setReg(inst.rd, rs * rt);
            break;
          case Op::SLT:
            setReg(inst.rd, static_cast<int32_t>(rs) <
                                    static_cast<int32_t>(rt)
                                ? 1
                                : 0);
            break;
          case Op::SLTU:
            setReg(inst.rd, rs < rt ? 1 : 0);
            break;

          case Op::ADDI:
            setReg(inst.rd, rs + uimm);
            break;
          case Op::ANDI:
            setReg(inst.rd, rs & uimm);
            break;
          case Op::ORI:
            setReg(inst.rd, rs | uimm);
            break;
          case Op::XORI:
            setReg(inst.rd, rs ^ uimm);
            break;
          case Op::SLLI:
            setReg(inst.rd, rs << (uimm & 31));
            break;
          case Op::SRLI:
            setReg(inst.rd, rs >> (uimm & 31));
            break;
          case Op::SRAI:
            setReg(inst.rd, static_cast<uint32_t>(
                                static_cast<int32_t>(rs) >> (uimm & 31)));
            break;
          case Op::SLTI:
            setReg(inst.rd, static_cast<int32_t>(rs) < inst.imm ? 1 : 0);
            break;
          case Op::SLTIU:
            setReg(inst.rd, rs < uimm ? 1 : 0);
            break;
          case Op::LUI:
            setReg(inst.rd, uimm << 16);
            break;

          case Op::LW:
          case Op::LH:
          case Op::LHU:
          case Op::LB:
          case Op::LBU:
            setReg(inst.rd, load(inst));
            break;
          case Op::SW:
          case Op::SH:
          case Op::SB:
            store(inst);
            break;

          case Op::BEQ:
          case Op::BNE:
          case Op::BLT:
          case Op::BGE:
          case Op::BLTU:
          case Op::BGEU: {
            bool taken;
            switch (inst.op) {
              case Op::BEQ:
                taken = rs == rt;
                break;
              case Op::BNE:
                taken = rs != rt;
                break;
              case Op::BLT:
                taken = static_cast<int32_t>(rs) <
                        static_cast<int32_t>(rt);
                break;
              case Op::BGE:
                taken = static_cast<int32_t>(rs) >=
                        static_cast<int32_t>(rt);
                break;
              case Op::BLTU:
                taken = rs < rt;
                break;
              default:
                taken = rs >= rt;
                break;
            }
            uint32_t target = pc + 4 + uimm * 4;
            if (obs)
                obs->onBranch(pc, taken, target);
            if (taken)
                next_pc = target;
            break;
          }

          case Op::J:
            next_pc = pc + 4 + uimm * 4;
            break;
          case Op::JAL:
            setReg(isa::regLr, pc + 4);
            next_pc = pc + 4 + uimm * 4;
            break;
          case Op::JR:
            next_pc = rs;
            break;
          case Op::JALR:
            setReg(inst.rd, pc + 4);
            next_pc = rs;
            break;

          case Op::SYS: {
            lifetimeInsts += count;
            return {static_cast<isa::SysCode>(inst.imm),
                    reg(isa::regA1), count};
          }

          case Op::INVALID:
            throw DecodeError("unreachable: INVALID opcode executed");
        }

        pc = next_pc;
    }
}

} // namespace pb::sim
