/**
 * @file
 * NPE32 interpreter implementation.
 *
 * Two dispatch loops share one set of memory/ALU semantics:
 * runSliceRef() is the per-instruction reference loop (debugger
 * single-step, differential-test oracle); runBlocked<HasObs>() is the
 * production loop, which hoists fetch-bounds, alignment, and budget
 * checks to once per straight-line run and compiles the observer
 * notifications out entirely when no observer is attached.  The two
 * are bit-identical: same RunResult, registers, memory effects,
 * observer event stream, and faults (type, message, and pc).
 */

#include "cpu.hh"

#include <type_traits>

#include "common/bitops.hh"
#include "sim/accounting.hh"
#include "sim/memmap.hh"

/**
 * Token-threaded dispatch needs the GNU labels-as-values extension
 * (GCC and Clang).  Elsewhere the no-observer configuration runs the
 * portable switch-based loop instead — same semantics, one shared
 * dispatch branch.
 */
#if defined(__GNUC__) || defined(__clang__)
#define PB_THREADED_DISPATCH 1
#endif

namespace pb::sim
{

using isa::Inst;
using isa::Op;

namespace
{

/** Observer whose events compile to nothing (no-observer loop). */
struct NoObs
{
    void onInst(uint32_t, const Inst &) {}
    void onMemAccess(const MemAccessEvent &) {}
    void onBranch(uint32_t, bool, uint32_t) {}
};

} // namespace

Cpu::Cpu(Memory &mem_) : mem(mem_)
{
    resetRegs();
}

void
Cpu::resetRegs()
{
    for (auto &r : regs)
        r = 0;
    regs[isa::regSp] = layout::stackTop;
}

void
Cpu::loadProgram(const isa::Program &program)
{
    if (program.baseAddr < layout::textBase ||
        program.endAddr() > layout::textBase + layout::textSize) {
        fatal("program [0x%x, 0x%x) does not fit in the text region",
              program.baseAddr, program.endAddr());
    }
    prog = program;
    decoded.clear();
    decoded.reserve(prog.words.size());
    for (size_t i = 0; i < prog.words.size(); i++) {
        uint32_t word = prog.words[i];
        mem.write32(prog.baseAddr + static_cast<uint32_t>(i) * 4, word);
        decoded.push_back(isa::decode(word));
    }

    // Straight-line run lengths for the block-stepped loop: distance
    // (inclusive) from each slot to the next control-flow instruction
    // or undecodable word, clamped to the program end.  Undecodable
    // words terminate a run so the instructions before one execute
    // unchecked and the fault fires exactly where the reference loop
    // fires it.
    runLen.assign(decoded.size(), 1);
    for (size_t i = decoded.size(); i-- > 0;) {
        if (isa::isControlFlow(decoded[i].op) ||
            decoded[i].op == Op::INVALID || i + 1 == decoded.size())
            runLen[i] = 1;
        else
            runLen[i] = runLen[i + 1] + 1;
    }
}

inline uint32_t
Cpu::loadValue(const Inst &inst, uint32_t &addr, uint8_t &size,
               MemRegion &region)
{
    addr = reg(inst.rs) + static_cast<uint32_t>(inst.imm);
    switch (inst.op) {
      case Op::LW:
        size = 4;
        return mem.read32(addr, region);
      case Op::LH:
        size = 2;
        return static_cast<uint32_t>(sext(mem.read16(addr, region), 16));
      case Op::LHU:
        size = 2;
        return mem.read16(addr, region);
      case Op::LB:
        size = 1;
        return static_cast<uint32_t>(sext(mem.read8(addr, region), 8));
      case Op::LBU:
        size = 1;
        return mem.read8(addr, region);
      default:
        throw SimError("load() called for a non-load opcode");
    }
}

inline void
Cpu::storeValue(const Inst &inst, uint32_t &addr, uint8_t &size,
                MemRegion &region)
{
    addr = reg(inst.rs) + static_cast<uint32_t>(inst.imm);
    uint32_t value = reg(inst.rd);
    switch (inst.op) {
      case Op::SW:
        size = 4;
        mem.write32(addr, value, region);
        break;
      case Op::SH:
        size = 2;
        mem.write16(addr, static_cast<uint16_t>(value), region);
        break;
      case Op::SB:
        size = 1;
        mem.write8(addr, static_cast<uint8_t>(value), region);
        break;
      default:
        throw SimError("store() called for a non-store opcode");
    }
}

uint32_t
Cpu::load(const Inst &inst)
{
    uint32_t addr;
    uint8_t size;
    MemRegion region;
    uint32_t value = loadValue(inst, addr, size, region);
    if (obs)
        obs->onMemAccess({addr, size, false, region});
    return value;
}

void
Cpu::store(const Inst &inst)
{
    uint32_t addr;
    uint8_t size;
    MemRegion region;
    storeValue(inst, addr, size, region);
    if (obs)
        obs->onMemAccess({addr, size, true, region});
}

RunResult
Cpu::run(uint32_t entry, uint64_t max_insts)
{
    RunResult result = runSlice(entry, max_insts);
    if (result.hitBudget) {
        throw BudgetError(strprintf(
            "instruction budget (%llu) exhausted at pc=0x%x",
            static_cast<unsigned long long>(max_insts),
            result.nextPc));
    }
    return result;
}

RunResult
Cpu::runSlice(uint32_t entry, uint64_t max_insts)
{
    if (dispatch == DispatchMode::Reference)
        return runSliceRef(entry, max_insts);
    if (recObs)
        return runBlocked(entry, max_insts, recObs);
    if (obs)
        return runBlocked(entry, max_insts, obs);
#ifdef PB_THREADED_DISPATCH
    return runThreadedUntracked(entry, max_insts);
#else
    NoObs none;
    return runBlocked(entry, max_insts, &none);
#endif
}

/**
 * The block-stepped production loop, templated on the concrete
 * observer type (NoObs / PacketRecorder / ExecObserver).  The outer
 * loop performs the fetch-bounds, alignment, and budget checks once
 * per straight-line run — they hold for every instruction of the run:
 * the pc only moves sequentially inside one, runLen never crosses the
 * program end, and the run is clipped to the remaining budget.  The
 * inner loop is free of per-instruction guards: undecodable words are
 * detected at run setup (they can only sit in a run's last slot), and
 * operand reads index the register file directly (regs[regZero] is
 * invariantly 0 because setReg never writes it).
 *
 * With no observer attached the loop additionally stops maintaining
 * the pc per instruction — only control-flow instructions need it,
 * only a run's last slot can hold one, and its address reconstructs
 * from the instruction pointer.
 */
template <typename ObsT>
RunResult
Cpu::runBlocked(uint32_t entry, uint64_t max_insts, ObsT *o)
{
    // Tracked mode delivers (pc, inst) events per instruction;
    // untracked mode (NoObs) elides the pc bookkeeping.
    constexpr bool kTracked = !std::is_same_v<ObsT, NoObs>;

    if (decoded.empty())
        fatal("Cpu::run called with no program loaded");

    const uint32_t base = prog.baseAddr;
    // base is 4-aligned (loadProgram stores the image with write32),
    // so one unsigned offset folds the bounds check (wrap catches
    // pc < base) and carries the alignment bits.
    const uint32_t text_len = prog.endAddr() - base;
    const Inst *const insts = decoded.data();
    const uint32_t *const lens = runLen.data();
    const uint32_t *const r = regs;
    uint32_t pc = entry;
    uint64_t count = 0;
    uint64_t blocks = 0;

    while (true) {
        // Same checks, same order, as the reference loop applies
        // before each instruction.
        const uint32_t pcoff = pc - base;
        if (pcoff >= text_len) {
            throw MemoryError(strprintf(
                "instruction fetch outside program: pc=0x%x", pc));
        }
        if (pcoff & 3) {
            throw AlignmentError(
                strprintf("misaligned instruction fetch: pc=0x%x", pc));
        }
        if (count >= max_insts) {
            lifetimeInsts += count;
            lifetimeBlocks += blocks;
            RunResult result{isa::SysCode::Done, reg(isa::regA1),
                             count};
            result.hitBudget = true;
            result.nextPc = pc;
            return result;
        }

        const uint32_t slot = pcoff / 4;
        uint64_t n = lens[slot];
        if (n > max_insts - count)
            n = max_insts - count; // budget expires mid-run
        blocks++;

        const Inst *ip = insts + slot;
        const Inst *stop = ip + n;
        // An undecodable word can only occupy a run's last slot (it
        // terminates runLen), so hoist its detection out of the inner
        // loop: execute the straight-line prefix, then fault exactly
        // where — and exactly as uncounted/unobserved as — the
        // reference loop does.  A budget-clipped run never ends on
        // one (the clip lands strictly inside the prefix).
        const bool ends_invalid = stop[-1].op == Op::INVALID;
        if (ends_invalid)
            stop--;

        // Untracked mode: where a taken control transfer (always the
        // run's last instruction) sent the pc, if anywhere.
        [[maybe_unused]] uint32_t pc_redirect = 0;
        [[maybe_unused]] bool redirected = false;

        for (; ip != stop; ++ip) {
            const Inst &inst = *ip;
            uint32_t next_pc = 0;
            if constexpr (kTracked) {
                o->onInst(pc, inst);
                next_pc = pc + 4;
            }
            // Address of the current instruction, reconstructed on
            // demand in untracked mode.
            auto ipc = [&] {
                if constexpr (kTracked)
                    return pc;
                else
                    return base +
                           (static_cast<uint32_t>(ip - insts) << 2);
            };

            const uint32_t rs = r[inst.rs];
            const uint32_t rt = r[inst.rt];
            const uint32_t uimm = static_cast<uint32_t>(inst.imm);

            switch (inst.op) {
              case Op::ADD:
                setReg(inst.rd, rs + rt);
                break;
              case Op::SUB:
                setReg(inst.rd, rs - rt);
                break;
              case Op::AND:
                setReg(inst.rd, rs & rt);
                break;
              case Op::OR:
                setReg(inst.rd, rs | rt);
                break;
              case Op::XOR:
                setReg(inst.rd, rs ^ rt);
                break;
              case Op::SLL:
                setReg(inst.rd, rs << (rt & 31));
                break;
              case Op::SRL:
                setReg(inst.rd, rs >> (rt & 31));
                break;
              case Op::SRA:
                setReg(inst.rd,
                       static_cast<uint32_t>(static_cast<int32_t>(rs) >>
                                             (rt & 31)));
                break;
              case Op::MUL:
                setReg(inst.rd, rs * rt);
                break;
              case Op::SLT:
                setReg(inst.rd, static_cast<int32_t>(rs) <
                                        static_cast<int32_t>(rt)
                                    ? 1
                                    : 0);
                break;
              case Op::SLTU:
                setReg(inst.rd, rs < rt ? 1 : 0);
                break;

              case Op::ADDI:
                setReg(inst.rd, rs + uimm);
                break;
              case Op::ANDI:
                setReg(inst.rd, rs & uimm);
                break;
              case Op::ORI:
                setReg(inst.rd, rs | uimm);
                break;
              case Op::XORI:
                setReg(inst.rd, rs ^ uimm);
                break;
              case Op::SLLI:
                setReg(inst.rd, rs << (uimm & 31));
                break;
              case Op::SRLI:
                setReg(inst.rd, rs >> (uimm & 31));
                break;
              case Op::SRAI:
                setReg(inst.rd,
                       static_cast<uint32_t>(static_cast<int32_t>(rs) >>
                                             (uimm & 31)));
                break;
              case Op::SLTI:
                setReg(inst.rd,
                       static_cast<int32_t>(rs) < inst.imm ? 1 : 0);
                break;
              case Op::SLTIU:
                setReg(inst.rd, rs < uimm ? 1 : 0);
                break;
              case Op::LUI:
                setReg(inst.rd, uimm << 16);
                break;

              case Op::LW: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                const uint32_t value = mem.read32(addr, region);
                o->onMemAccess({addr, 4, false, region});
                setReg(inst.rd, value);
                break;
              }
              case Op::LH: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                const uint32_t value = static_cast<uint32_t>(
                    sext(mem.read16(addr, region), 16));
                o->onMemAccess({addr, 2, false, region});
                setReg(inst.rd, value);
                break;
              }
              case Op::LHU: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                const uint32_t value = mem.read16(addr, region);
                o->onMemAccess({addr, 2, false, region});
                setReg(inst.rd, value);
                break;
              }
              case Op::LB: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                const uint32_t value = static_cast<uint32_t>(
                    sext(mem.read8(addr, region), 8));
                o->onMemAccess({addr, 1, false, region});
                setReg(inst.rd, value);
                break;
              }
              case Op::LBU: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                const uint32_t value = mem.read8(addr, region);
                o->onMemAccess({addr, 1, false, region});
                setReg(inst.rd, value);
                break;
              }

              case Op::SW: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                mem.write32(addr, r[inst.rd], region);
                o->onMemAccess({addr, 4, true, region});
                break;
              }
              case Op::SH: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                mem.write16(addr, static_cast<uint16_t>(r[inst.rd]),
                            region);
                o->onMemAccess({addr, 2, true, region});
                break;
              }
              case Op::SB: {
                const uint32_t addr = rs + uimm;
                MemRegion region;
                mem.write8(addr, static_cast<uint8_t>(r[inst.rd]),
                           region);
                o->onMemAccess({addr, 1, true, region});
                break;
              }

              case Op::BEQ: {
                const bool taken = rs == rt;
                if constexpr (kTracked) {
                    const uint32_t target = pc + 4 + uimm * 4;
                    o->onBranch(pc, taken, target);
                    if (taken)
                        next_pc = target;
                } else if (taken) {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              }
              case Op::BNE: {
                const bool taken = rs != rt;
                if constexpr (kTracked) {
                    const uint32_t target = pc + 4 + uimm * 4;
                    o->onBranch(pc, taken, target);
                    if (taken)
                        next_pc = target;
                } else if (taken) {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              }
              case Op::BLT: {
                const bool taken = static_cast<int32_t>(rs) <
                                   static_cast<int32_t>(rt);
                if constexpr (kTracked) {
                    const uint32_t target = pc + 4 + uimm * 4;
                    o->onBranch(pc, taken, target);
                    if (taken)
                        next_pc = target;
                } else if (taken) {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              }
              case Op::BGE: {
                const bool taken = static_cast<int32_t>(rs) >=
                                   static_cast<int32_t>(rt);
                if constexpr (kTracked) {
                    const uint32_t target = pc + 4 + uimm * 4;
                    o->onBranch(pc, taken, target);
                    if (taken)
                        next_pc = target;
                } else if (taken) {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              }
              case Op::BLTU: {
                const bool taken = rs < rt;
                if constexpr (kTracked) {
                    const uint32_t target = pc + 4 + uimm * 4;
                    o->onBranch(pc, taken, target);
                    if (taken)
                        next_pc = target;
                } else if (taken) {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              }
              case Op::BGEU: {
                const bool taken = rs >= rt;
                if constexpr (kTracked) {
                    const uint32_t target = pc + 4 + uimm * 4;
                    o->onBranch(pc, taken, target);
                    if (taken)
                        next_pc = target;
                } else if (taken) {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              }

              case Op::J:
                if constexpr (kTracked) {
                    next_pc = pc + 4 + uimm * 4;
                } else {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              case Op::JAL:
                setReg(isa::regLr, ipc() + 4);
                if constexpr (kTracked) {
                    next_pc = pc + 4 + uimm * 4;
                } else {
                    pc_redirect = ipc() + 4 + uimm * 4;
                    redirected = true;
                }
                break;
              case Op::JR:
                if constexpr (kTracked) {
                    next_pc = rs;
                } else {
                    pc_redirect = rs;
                    redirected = true;
                }
                break;
              case Op::JALR:
                setReg(inst.rd, ipc() + 4);
                if constexpr (kTracked) {
                    next_pc = rs;
                } else {
                    pc_redirect = rs;
                    redirected = true;
                }
                break;

              case Op::SYS: {
                const uint64_t executed =
                    count +
                    static_cast<uint64_t>(ip - (insts + slot)) + 1;
                lifetimeInsts += executed;
                lifetimeBlocks += blocks;
                return {static_cast<isa::SysCode>(inst.imm),
                        reg(isa::regA1), executed};
              }

              case Op::INVALID:
                // Hoisted to run setup (ends_invalid); unreachable.
                throw DecodeError(strprintf(
                    "undecodable instruction word at pc=0x%x",
                    ipc()));
            }

            if constexpr (kTracked)
                pc = next_pc;
        }
        count += static_cast<uint64_t>(stop - (insts + slot));
        if constexpr (!kTracked) {
            pc = redirected
                     ? pc_redirect
                     : base + (static_cast<uint32_t>(stop - insts)
                               << 2);
        }
        if (ends_invalid) {
            // pc advanced through the straight-line prefix and now
            // sits on the undecodable slot.
            throw DecodeError(strprintf(
                "undecodable instruction word at pc=0x%x", pc));
        }
        // Only a run's last instruction can redirect control, so pc
        // now points wherever the terminator (or the budget clip)
        // left it; loop around to re-validate it.
    }
}

#ifdef PB_THREADED_DISPATCH

/**
 * The no-observer block-stepped loop with token-threaded dispatch.
 * Block structure and semantics are identical to runBlocked<NoObs> —
 * same hoisted checks in the same order, same budget clip, same
 * undecodable-word handling, same pc elision — but every opcode body
 * ends in its own computed goto instead of funnelling through one
 * switch.  The indirect branch predictor then keys each prediction on
 * the *current* opcode's dispatch site, which captures opcode-pair
 * correlations a single shared dispatch branch cannot.  This is the
 * dominant remaining per-instruction cost once observer notifications
 * compile out, so only the no-observer configuration takes this path.
 */
RunResult
Cpu::runThreadedUntracked(uint32_t entry, uint64_t max_insts)
{
    if (decoded.empty())
        fatal("Cpu::run called with no program loaded");

    // One dispatch-target slot per opcode byte value 0x00..0x50
    // (Op::SYS); gaps — undefined encodings and Op::INVALID — can
    // never be dispatched (isa::decode maps unknown words to INVALID
    // and INVALID is hoisted out of runs), but point at a defensive
    // fault label anyway.
#define PB_UNDEF &&do_undef,
    static const void *const tbl[0x51] = {
        PB_UNDEF                                          // 0x00
        &&do_add, &&do_sub, &&do_and, &&do_or, &&do_xor,  // 0x01-0x05
        &&do_sll, &&do_srl, &&do_sra, &&do_mul,           // 0x06-0x09
        &&do_slt, &&do_sltu,                              // 0x0a-0x0b
        PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF               // 0x0c-0x0f
        &&do_addi, &&do_andi, &&do_ori, &&do_xori,        // 0x10-0x13
        &&do_slli, &&do_srli, &&do_srai,                  // 0x14-0x16
        &&do_slti, &&do_sltiu, &&do_lui,                  // 0x17-0x19
        PB_UNDEF PB_UNDEF PB_UNDEF                        // 0x1a-0x1c
        PB_UNDEF PB_UNDEF PB_UNDEF                        // 0x1d-0x1f
        &&do_lw, &&do_lh, &&do_lhu, &&do_lb, &&do_lbu,    // 0x20-0x24
        &&do_sw, &&do_sh, &&do_sb,                        // 0x25-0x27
        PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF               // 0x28-0x2b
        PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF               // 0x2c-0x2f
        &&do_beq, &&do_bne, &&do_blt, &&do_bge,           // 0x30-0x33
        &&do_bltu, &&do_bgeu,                             // 0x34-0x35
        PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF      // 0x36-0x3a
        PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF      // 0x3b-0x3f
        &&do_j, &&do_jal, &&do_jr, &&do_jalr,             // 0x40-0x43
        PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF      // 0x44-0x48
        PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF PB_UNDEF      // 0x49-0x4d
        PB_UNDEF PB_UNDEF                                 // 0x4e-0x4f
        &&do_sys,                                         // 0x50
    };
#undef PB_UNDEF

// Advance to the next instruction of the run and dispatch it, or
// close the run out when the straight-line prefix is exhausted.
#define PB_NEXT()                                                     \
    do {                                                              \
        if (++ip == stop)                                             \
            goto block_done;                                          \
        goto *tbl[static_cast<uint8_t>(ip->op)];                      \
    } while (0)

// Address of the instruction `ip` points at (the elided pc).
#define PB_IPC()                                                      \
    (base + (static_cast<uint32_t>(ip - insts) << 2))

    const uint32_t base = prog.baseAddr;
    const uint32_t text_len = prog.endAddr() - base;
    const Inst *const insts = decoded.data();
    const uint32_t *const lens = runLen.data();
    const uint32_t *const r = regs;
    uint32_t pc = entry;
    uint64_t count = 0;
    uint64_t blocks = 0;
    const Inst *blockstart = nullptr;
    const Inst *ip = nullptr;
    const Inst *stop = nullptr;
    bool ends_invalid = false;
    uint32_t pc_redirect = 0;
    bool redirected = false;

next_block:
    {
        // Same checks, same order, as the reference loop applies
        // before each instruction (see runBlocked for the argument
        // that once per run is equivalent).
        const uint32_t pcoff = pc - base;
        if (pcoff >= text_len) {
            throw MemoryError(strprintf(
                "instruction fetch outside program: pc=0x%x", pc));
        }
        if (pcoff & 3) {
            throw AlignmentError(
                strprintf("misaligned instruction fetch: pc=0x%x", pc));
        }
        if (count >= max_insts) {
            lifetimeInsts += count;
            lifetimeBlocks += blocks;
            RunResult result{isa::SysCode::Done, reg(isa::regA1),
                             count};
            result.hitBudget = true;
            result.nextPc = pc;
            return result;
        }

        const uint32_t slot = pcoff / 4;
        uint64_t n = lens[slot];
        if (n > max_insts - count)
            n = max_insts - count; // budget expires mid-run
        blocks++;

        blockstart = insts + slot;
        ip = blockstart;
        stop = ip + n;
        ends_invalid = stop[-1].op == Op::INVALID;
        if (ends_invalid)
            stop--;
    }
    redirected = false;
    if (ip == stop) // the run is a lone undecodable word
        goto block_done;
    goto *tbl[static_cast<uint8_t>(ip->op)];

do_add: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] + r[inst.rt]);
    PB_NEXT();
}
do_sub: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] - r[inst.rt]);
    PB_NEXT();
}
do_and: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] & r[inst.rt]);
    PB_NEXT();
}
do_or: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] | r[inst.rt]);
    PB_NEXT();
}
do_xor: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] ^ r[inst.rt]);
    PB_NEXT();
}
do_sll: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] << (r[inst.rt] & 31));
    PB_NEXT();
}
do_srl: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] >> (r[inst.rt] & 31));
    PB_NEXT();
}
do_sra: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           static_cast<uint32_t>(static_cast<int32_t>(r[inst.rs]) >>
                                 (r[inst.rt] & 31)));
    PB_NEXT();
}
do_mul: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] * r[inst.rt]);
    PB_NEXT();
}
do_slt: {
    const Inst &inst = *ip;
    setReg(inst.rd, static_cast<int32_t>(r[inst.rs]) <
                            static_cast<int32_t>(r[inst.rt])
                        ? 1
                        : 0);
    PB_NEXT();
}
do_sltu: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] < r[inst.rt] ? 1 : 0);
    PB_NEXT();
}

do_addi: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] + static_cast<uint32_t>(inst.imm));
    PB_NEXT();
}
do_andi: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] & static_cast<uint32_t>(inst.imm));
    PB_NEXT();
}
do_ori: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] | static_cast<uint32_t>(inst.imm));
    PB_NEXT();
}
do_xori: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] ^ static_cast<uint32_t>(inst.imm));
    PB_NEXT();
}
do_slli: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] << (inst.imm & 31));
    PB_NEXT();
}
do_srli: {
    const Inst &inst = *ip;
    setReg(inst.rd, r[inst.rs] >> (inst.imm & 31));
    PB_NEXT();
}
do_srai: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           static_cast<uint32_t>(static_cast<int32_t>(r[inst.rs]) >>
                                 (inst.imm & 31)));
    PB_NEXT();
}
do_slti: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           static_cast<int32_t>(r[inst.rs]) < inst.imm ? 1 : 0);
    PB_NEXT();
}
do_sltiu: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           r[inst.rs] < static_cast<uint32_t>(inst.imm) ? 1 : 0);
    PB_NEXT();
}
do_lui: {
    const Inst &inst = *ip;
    setReg(inst.rd, static_cast<uint32_t>(inst.imm) << 16);
    PB_NEXT();
}

do_lw: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           mem.read32(r[inst.rs] + static_cast<uint32_t>(inst.imm)));
    PB_NEXT();
}
do_lh: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           static_cast<uint32_t>(sext(
               mem.read16(r[inst.rs] + static_cast<uint32_t>(inst.imm)),
               16)));
    PB_NEXT();
}
do_lhu: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           mem.read16(r[inst.rs] + static_cast<uint32_t>(inst.imm)));
    PB_NEXT();
}
do_lb: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           static_cast<uint32_t>(sext(
               mem.read8(r[inst.rs] + static_cast<uint32_t>(inst.imm)),
               8)));
    PB_NEXT();
}
do_lbu: {
    const Inst &inst = *ip;
    setReg(inst.rd,
           mem.read8(r[inst.rs] + static_cast<uint32_t>(inst.imm)));
    PB_NEXT();
}

do_sw: {
    const Inst &inst = *ip;
    mem.write32(r[inst.rs] + static_cast<uint32_t>(inst.imm),
                r[inst.rd]);
    PB_NEXT();
}
do_sh: {
    const Inst &inst = *ip;
    mem.write16(r[inst.rs] + static_cast<uint32_t>(inst.imm),
                static_cast<uint16_t>(r[inst.rd]));
    PB_NEXT();
}
do_sb: {
    const Inst &inst = *ip;
    mem.write8(r[inst.rs] + static_cast<uint32_t>(inst.imm),
               static_cast<uint8_t>(r[inst.rd]));
    PB_NEXT();
}

do_beq: {
    const Inst &inst = *ip;
    if (r[inst.rs] == r[inst.rt]) {
        pc_redirect =
            PB_IPC() + 4 + static_cast<uint32_t>(inst.imm) * 4;
        redirected = true;
    }
    PB_NEXT();
}
do_bne: {
    const Inst &inst = *ip;
    if (r[inst.rs] != r[inst.rt]) {
        pc_redirect =
            PB_IPC() + 4 + static_cast<uint32_t>(inst.imm) * 4;
        redirected = true;
    }
    PB_NEXT();
}
do_blt: {
    const Inst &inst = *ip;
    if (static_cast<int32_t>(r[inst.rs]) <
        static_cast<int32_t>(r[inst.rt])) {
        pc_redirect =
            PB_IPC() + 4 + static_cast<uint32_t>(inst.imm) * 4;
        redirected = true;
    }
    PB_NEXT();
}
do_bge: {
    const Inst &inst = *ip;
    if (static_cast<int32_t>(r[inst.rs]) >=
        static_cast<int32_t>(r[inst.rt])) {
        pc_redirect =
            PB_IPC() + 4 + static_cast<uint32_t>(inst.imm) * 4;
        redirected = true;
    }
    PB_NEXT();
}
do_bltu: {
    const Inst &inst = *ip;
    if (r[inst.rs] < r[inst.rt]) {
        pc_redirect =
            PB_IPC() + 4 + static_cast<uint32_t>(inst.imm) * 4;
        redirected = true;
    }
    PB_NEXT();
}
do_bgeu: {
    const Inst &inst = *ip;
    if (r[inst.rs] >= r[inst.rt]) {
        pc_redirect =
            PB_IPC() + 4 + static_cast<uint32_t>(inst.imm) * 4;
        redirected = true;
    }
    PB_NEXT();
}

do_j: {
    const Inst &inst = *ip;
    pc_redirect = PB_IPC() + 4 + static_cast<uint32_t>(inst.imm) * 4;
    redirected = true;
    PB_NEXT();
}
do_jal: {
    const Inst &inst = *ip;
    const uint32_t at = PB_IPC();
    setReg(isa::regLr, at + 4);
    pc_redirect = at + 4 + static_cast<uint32_t>(inst.imm) * 4;
    redirected = true;
    PB_NEXT();
}
do_jr: {
    const Inst &inst = *ip;
    pc_redirect = r[inst.rs];
    redirected = true;
    PB_NEXT();
}
do_jalr: {
    const Inst &inst = *ip;
    // rd may alias rs: the jump target is the pre-link rs value.
    pc_redirect = r[inst.rs];
    redirected = true;
    setReg(inst.rd, PB_IPC() + 4);
    PB_NEXT();
}

do_sys: {
    const Inst &inst = *ip;
    const uint64_t executed =
        count + static_cast<uint64_t>(ip - blockstart) + 1;
    lifetimeInsts += executed;
    lifetimeBlocks += blocks;
    return {static_cast<isa::SysCode>(inst.imm), reg(isa::regA1),
            executed};
}

do_undef:
    // Unreachable: decode() maps every undefined encoding to
    // Op::INVALID, which run setup hoists out of dispatch.
    throw DecodeError(strprintf(
        "undecodable instruction word at pc=0x%x", PB_IPC()));

block_done:
    count += static_cast<uint64_t>(stop - blockstart);
    pc = redirected
             ? pc_redirect
             : base + (static_cast<uint32_t>(stop - insts) << 2);
    if (ends_invalid) {
        // pc advanced through the straight-line prefix and now sits
        // on the undecodable slot.
        throw DecodeError(strprintf(
            "undecodable instruction word at pc=0x%x", pc));
    }
    goto next_block;

#undef PB_NEXT
#undef PB_IPC
}

#endif // PB_THREADED_DISPATCH

RunResult
Cpu::runSliceRef(uint32_t entry, uint64_t max_insts)
{
    if (decoded.empty())
        fatal("Cpu::run called with no program loaded");

    const uint32_t base = prog.baseAddr;
    const uint32_t end = prog.endAddr();
    uint32_t pc = entry;
    uint64_t count = 0;

    while (true) {
        if (pc < base || pc >= end) {
            throw MemoryError(strprintf(
                "instruction fetch outside program: pc=0x%x", pc));
        }
        if (!isAligned(pc, 4)) {
            throw AlignmentError(
                strprintf("misaligned instruction fetch: pc=0x%x", pc));
        }
        if (count >= max_insts) {
            lifetimeInsts += count;
            RunResult result{isa::SysCode::Done, reg(isa::regA1),
                             count};
            result.hitBudget = true;
            result.nextPc = pc;
            return result;
        }

        const Inst &inst = decoded[(pc - base) / 4];
        if (inst.op == Op::INVALID) {
            throw DecodeError(strprintf(
                "undecodable instruction word at pc=0x%x", pc));
        }
        count++;
        if (obs)
            obs->onInst(pc, inst);

        uint32_t next_pc = pc + 4;
        const uint32_t rs = reg(inst.rs);
        const uint32_t rt = reg(inst.rt);
        const uint32_t uimm = static_cast<uint32_t>(inst.imm);

        switch (inst.op) {
          case Op::ADD:
            setReg(inst.rd, rs + rt);
            break;
          case Op::SUB:
            setReg(inst.rd, rs - rt);
            break;
          case Op::AND:
            setReg(inst.rd, rs & rt);
            break;
          case Op::OR:
            setReg(inst.rd, rs | rt);
            break;
          case Op::XOR:
            setReg(inst.rd, rs ^ rt);
            break;
          case Op::SLL:
            setReg(inst.rd, rs << (rt & 31));
            break;
          case Op::SRL:
            setReg(inst.rd, rs >> (rt & 31));
            break;
          case Op::SRA:
            setReg(inst.rd, static_cast<uint32_t>(
                                static_cast<int32_t>(rs) >> (rt & 31)));
            break;
          case Op::MUL:
            setReg(inst.rd, rs * rt);
            break;
          case Op::SLT:
            setReg(inst.rd, static_cast<int32_t>(rs) <
                                    static_cast<int32_t>(rt)
                                ? 1
                                : 0);
            break;
          case Op::SLTU:
            setReg(inst.rd, rs < rt ? 1 : 0);
            break;

          case Op::ADDI:
            setReg(inst.rd, rs + uimm);
            break;
          case Op::ANDI:
            setReg(inst.rd, rs & uimm);
            break;
          case Op::ORI:
            setReg(inst.rd, rs | uimm);
            break;
          case Op::XORI:
            setReg(inst.rd, rs ^ uimm);
            break;
          case Op::SLLI:
            setReg(inst.rd, rs << (uimm & 31));
            break;
          case Op::SRLI:
            setReg(inst.rd, rs >> (uimm & 31));
            break;
          case Op::SRAI:
            setReg(inst.rd, static_cast<uint32_t>(
                                static_cast<int32_t>(rs) >> (uimm & 31)));
            break;
          case Op::SLTI:
            setReg(inst.rd, static_cast<int32_t>(rs) < inst.imm ? 1 : 0);
            break;
          case Op::SLTIU:
            setReg(inst.rd, rs < uimm ? 1 : 0);
            break;
          case Op::LUI:
            setReg(inst.rd, uimm << 16);
            break;

          case Op::LW:
          case Op::LH:
          case Op::LHU:
          case Op::LB:
          case Op::LBU:
            setReg(inst.rd, load(inst));
            break;
          case Op::SW:
          case Op::SH:
          case Op::SB:
            store(inst);
            break;

          case Op::BEQ:
          case Op::BNE:
          case Op::BLT:
          case Op::BGE:
          case Op::BLTU:
          case Op::BGEU: {
            bool taken;
            switch (inst.op) {
              case Op::BEQ:
                taken = rs == rt;
                break;
              case Op::BNE:
                taken = rs != rt;
                break;
              case Op::BLT:
                taken = static_cast<int32_t>(rs) <
                        static_cast<int32_t>(rt);
                break;
              case Op::BGE:
                taken = static_cast<int32_t>(rs) >=
                        static_cast<int32_t>(rt);
                break;
              case Op::BLTU:
                taken = rs < rt;
                break;
              default:
                taken = rs >= rt;
                break;
            }
            uint32_t target = pc + 4 + uimm * 4;
            if (obs)
                obs->onBranch(pc, taken, target);
            if (taken)
                next_pc = target;
            break;
          }

          case Op::J:
            next_pc = pc + 4 + uimm * 4;
            break;
          case Op::JAL:
            setReg(isa::regLr, pc + 4);
            next_pc = pc + 4 + uimm * 4;
            break;
          case Op::JR:
            next_pc = rs;
            break;
          case Op::JALR:
            setReg(inst.rd, pc + 4);
            next_pc = rs;
            break;

          case Op::SYS: {
            lifetimeInsts += count;
            return {static_cast<isa::SysCode>(inst.imm),
                    reg(isa::regA1), count};
          }

          case Op::INVALID:
            throw DecodeError("unreachable: INVALID opcode executed");
        }

        pc = next_pc;
    }
}

} // namespace pb::sim
