/**
 * @file
 * NPE32 processor core interpreter.
 *
 * This is the PacketBench equivalent of the paper's SimpleScalar
 * processor simulator: it executes one application program at
 * instruction granularity and reports every executed instruction,
 * memory access, and branch outcome to an ExecObserver.  The
 * framework attaches an observer only while application code runs,
 * which implements the paper's *selective accounting*.
 *
 * Two dispatch loops execute the same ISA bit-identically:
 *
 *  - DispatchMode::Blocked (default): the pre-decoded program also
 *    carries, per instruction slot, the straight-line run length to
 *    the next control-flow/SYS instruction.  Fetch-bounds, alignment,
 *    and budget checks hoist to once per run instead of once per
 *    instruction, and the inner loop is specialized on whether an
 *    observer is attached (the no-observer loop contains no virtual
 *    calls at all).
 *  - DispatchMode::Reference: the plain one-instruction-at-a-time
 *    loop, kept as the semantic reference for differential tests and
 *    as the debugger's single-step primitive (runSliceRef).
 *
 * Every data access resolves its memory region exactly once: the
 * region rides along with the loaded/stored value into the observer
 * event instead of being re-classified.
 */

#ifndef PB_SIM_CPU_HH
#define PB_SIM_CPU_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "isa/program.hh"
#include "sim/memory.hh"

namespace pb::sim
{

class PacketRecorder;

/** One simulated data-memory access. */
struct MemAccessEvent
{
    uint32_t addr;
    uint8_t size;     ///< 1, 2, or 4 bytes
    bool isStore;
    MemRegion region;
};

/**
 * Receives the full execution stream of a simulated program.
 * Default implementations ignore everything, so collectors override
 * only what they need.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** An instruction at @p addr is about to execute. */
    virtual void onInst(uint32_t addr, const isa::Inst &inst)
    {
        (void)addr;
        (void)inst;
    }

    /** The current instruction performed a data-memory access. */
    virtual void onMemAccess(const MemAccessEvent &event)
    {
        (void)event;
    }

    /** A conditional branch at @p addr resolved. */
    virtual void onBranch(uint32_t addr, bool taken, uint32_t target)
    {
        (void)addr;
        (void)taken;
        (void)target;
    }

    /**
     * The observer the CPU should actually deliver events to.
     * Fan-out observers that currently forward to exactly one sink
     * return that sink, so a single-collector run pays one virtual
     * call per event instead of two (Cpu::setObserver resolves this
     * once at attach time).
     */
    virtual ExecObserver *soloSink() { return this; }

    /**
     * Non-null when this observer IS the accounting PacketRecorder
     * (a final class).  The CPU resolves this at attach time so the
     * block-stepped loop can instantiate a fully devirtualized —
     * and therefore inlinable — event path for the common
     * one-recorder configuration.
     */
    virtual PacketRecorder *asRecorder() { return nullptr; }
};

/** Why and how a run() ended. */
struct RunResult
{
    isa::SysCode stopCode;  ///< SYS code that ended execution
    uint32_t stopArg;       ///< a1 register at the stop point
    uint64_t instCount;     ///< instructions executed in this run
    bool hitBudget = false; ///< stopped on the instruction budget
    uint32_t nextPc = 0;    ///< resume point when hitBudget
};

/** Which interpreter loop run()/runSlice() use. */
enum class DispatchMode : uint8_t
{
    Blocked,   ///< block-stepped hot path (default)
    Reference, ///< per-instruction reference loop
};

/** Single NPE32 core. */
class Cpu
{
  public:
    /** Default per-run instruction budget (runaway-loop guard). */
    static constexpr uint64_t defaultBudget = 50'000'000;

    explicit Cpu(Memory &mem);

    /**
     * Copy a program image into the text region and pre-decode it.
     * The program must fit entirely inside the text region.
     */
    void loadProgram(const isa::Program &prog);

    /** The currently loaded program. */
    const isa::Program &program() const { return prog; }

    /**
     * Attach (or with nullptr, detach) the execution observer.  The
     * observer's soloSink() is resolved here, once: if the sink set
     * of an attached fan-out changes while attached, re-attach.
     */
    void
    setObserver(ExecObserver *observer)
    {
        obs = observer ? observer->soloSink() : nullptr;
        recObs = obs ? obs->asRecorder() : nullptr;
    }

    /** Select the dispatch loop (Blocked is the default). */
    void setDispatchMode(DispatchMode mode) { dispatch = mode; }
    DispatchMode dispatchMode() const { return dispatch; }

    /** Read an architectural register. */
    uint32_t
    reg(unsigned r) const
    {
        return r == isa::regZero ? 0 : regs[r];
    }

    /** Write an architectural register (writes to r0 are ignored). */
    void
    setReg(unsigned r, uint32_t value)
    {
        if (r != isa::regZero)
            regs[r] = value;
    }

    /** Reset registers (sp to stack top) without touching memory. */
    void resetRegs();

    /**
     * Execute from @p entry until a SYS instruction.
     *
     * @param entry     byte address of the first instruction
     * @param max_insts instruction budget
     * @throws SimError (or a subclass) on any execution fault,
     *         including BudgetError when the budget runs out
     */
    RunResult run(uint32_t entry, uint64_t max_insts = defaultBudget);

    /**
     * Like run(), but budget exhaustion is not an error: the result
     * has hitBudget set and nextPc holds the resume point.  Uses the
     * configured dispatch mode.
     */
    RunResult runSlice(uint32_t entry, uint64_t max_insts);

    /**
     * runSlice() on the per-instruction reference loop regardless of
     * the configured dispatch mode.  This is the single-stepping
     * primitive the debugger builds on and the oracle the
     * differential tests compare the block-stepped loop against.
     */
    RunResult runSliceRef(uint32_t entry, uint64_t max_insts);

    /** Total instructions executed over the CPU's lifetime. */
    uint64_t totalInstCount() const { return lifetimeInsts; }

    /**
     * Straight-line runs entered by the block-stepped loop over the
     * CPU's lifetime (0 under DispatchMode::Reference).  Like
     * totalInstCount(), accumulated when a slice returns — a slice
     * that faults contributes nothing.  Feeds the
     * sim.interp.{blocks,block_len} gauges.
     */
    uint64_t totalBlockCount() const { return lifetimeBlocks; }

    /** The memory this core is attached to. */
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }

  private:
    Memory &mem;
    isa::Program prog;
    std::vector<isa::Inst> decoded;
    /**
     * runLen[i]: number of instructions from slot i up to and
     * including the next control-flow / SYS / undecodable slot
     * (clamped to the end of the program).  Always >= 1.
     */
    std::vector<uint32_t> runLen;
    ExecObserver *obs = nullptr;
    /** obs, when it is exactly the (final) accounting recorder. */
    PacketRecorder *recObs = nullptr;
    DispatchMode dispatch = DispatchMode::Blocked;
    uint32_t regs[isa::numRegs] = {};
    uint64_t lifetimeInsts = 0;
    uint64_t lifetimeBlocks = 0;

    /**
     * The block-stepped loop, templated on the concrete observer
     * type: a no-op observer (events compile out), the final
     * PacketRecorder (events inline), or plain ExecObserver (one
     * virtual call per event).
     */
    template <typename ObsT>
    RunResult runBlocked(uint32_t entry, uint64_t max_insts,
                         ObsT *o);

    /**
     * The no-observer block-stepped loop with token-threaded dispatch
     * (GNU computed goto).  Defined and used only on compilers with
     * the labels-as-values extension; elsewhere runSlice falls back to
     * runBlocked over the no-op observer.
     */
    RunResult runThreadedUntracked(uint32_t entry,
                                   uint64_t max_insts);

    /** Resolve + read for a load; region reported for the observer. */
    uint32_t loadValue(const isa::Inst &inst, uint32_t &addr,
                       uint8_t &size, MemRegion &region);
    /** Resolve + write for a store. */
    void storeValue(const isa::Inst &inst, uint32_t &addr,
                    uint8_t &size, MemRegion &region);

    uint32_t load(const isa::Inst &inst);
    void store(const isa::Inst &inst);
};

} // namespace pb::sim

#endif // PB_SIM_CPU_HH
