/**
 * @file
 * NPE32 processor core interpreter.
 *
 * This is the PacketBench equivalent of the paper's SimpleScalar
 * processor simulator: it executes one application program at
 * instruction granularity and reports every executed instruction,
 * memory access, and branch outcome to an ExecObserver.  The
 * framework attaches an observer only while application code runs,
 * which implements the paper's *selective accounting*.
 */

#ifndef PB_SIM_CPU_HH
#define PB_SIM_CPU_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "isa/program.hh"
#include "sim/memory.hh"

namespace pb::sim
{

/** One simulated data-memory access. */
struct MemAccessEvent
{
    uint32_t addr;
    uint8_t size;     ///< 1, 2, or 4 bytes
    bool isStore;
    MemRegion region;
};

/**
 * Receives the full execution stream of a simulated program.
 * Default implementations ignore everything, so collectors override
 * only what they need.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** An instruction at @p addr is about to execute. */
    virtual void onInst(uint32_t addr, const isa::Inst &inst)
    {
        (void)addr;
        (void)inst;
    }

    /** The current instruction performed a data-memory access. */
    virtual void onMemAccess(const MemAccessEvent &event)
    {
        (void)event;
    }

    /** A conditional branch at @p addr resolved. */
    virtual void onBranch(uint32_t addr, bool taken, uint32_t target)
    {
        (void)addr;
        (void)taken;
        (void)target;
    }
};

/** Why and how a run() ended. */
struct RunResult
{
    isa::SysCode stopCode;  ///< SYS code that ended execution
    uint32_t stopArg;       ///< a1 register at the stop point
    uint64_t instCount;     ///< instructions executed in this run
    bool hitBudget = false; ///< stopped on the instruction budget
    uint32_t nextPc = 0;    ///< resume point when hitBudget
};

/** Single NPE32 core. */
class Cpu
{
  public:
    /** Default per-run instruction budget (runaway-loop guard). */
    static constexpr uint64_t defaultBudget = 50'000'000;

    explicit Cpu(Memory &mem);

    /**
     * Copy a program image into the text region and pre-decode it.
     * The program must fit entirely inside the text region.
     */
    void loadProgram(const isa::Program &prog);

    /** The currently loaded program. */
    const isa::Program &program() const { return prog; }

    /** Attach (or with nullptr, detach) the execution observer. */
    void setObserver(ExecObserver *observer) { obs = observer; }

    /** Read an architectural register. */
    uint32_t
    reg(unsigned r) const
    {
        return r == isa::regZero ? 0 : regs[r];
    }

    /** Write an architectural register (writes to r0 are ignored). */
    void
    setReg(unsigned r, uint32_t value)
    {
        if (r != isa::regZero)
            regs[r] = value;
    }

    /** Reset registers (sp to stack top) without touching memory. */
    void resetRegs();

    /**
     * Execute from @p entry until a SYS instruction.
     *
     * @param entry     byte address of the first instruction
     * @param max_insts instruction budget
     * @throws SimError (or a subclass) on any execution fault,
     *         including BudgetError when the budget runs out
     */
    RunResult run(uint32_t entry, uint64_t max_insts = defaultBudget);

    /**
     * Like run(), but budget exhaustion is not an error: the result
     * has hitBudget set and nextPc holds the resume point.  This is
     * the single-stepping primitive the debugger builds on.
     */
    RunResult runSlice(uint32_t entry, uint64_t max_insts);

    /** Total instructions executed over the CPU's lifetime. */
    uint64_t totalInstCount() const { return lifetimeInsts; }

    /** The memory this core is attached to. */
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }

  private:
    Memory &mem;
    isa::Program prog;
    std::vector<isa::Inst> decoded;
    ExecObserver *obs = nullptr;
    uint32_t regs[isa::numRegs] = {};
    uint64_t lifetimeInsts = 0;

    uint32_t load(const isa::Inst &inst);
    void store(const isa::Inst &inst);
};

} // namespace pb::sim

#endif // PB_SIM_CPU_HH
