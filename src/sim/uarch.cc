/**
 * @file
 * Microarchitectural model implementations.
 */

#include "uarch.hh"

#include <bit>

#include "common/bitops.hh"

namespace pb::sim
{

BimodalPredictor::BimodalPredictor(uint32_t entries)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("BimodalPredictor: entries must be a power of two");
    counters.assign(entries, 1); // weakly not-taken
    mask = entries - 1;
}

void
BimodalPredictor::update(uint32_t addr, bool taken)
{
    uint8_t &counter = counters[(addr >> 2) & mask];
    bool predict_taken = counter >= 2;
    lookups_++;
    if (predict_taken != taken)
        mispredicts_++;
    if (taken) {
        if (counter < 3)
            counter++;
    } else {
        if (counter > 0)
            counter--;
    }
}

CacheModel::CacheModel(uint32_t size_bytes, uint32_t line_bytes,
                       uint32_t ways_)
    : ways(ways_)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        fatal("CacheModel: line size must be a power of two");
    if (ways == 0)
        fatal("CacheModel: need at least one way");
    uint32_t lines = size_bytes / line_bytes;
    if (lines == 0 || lines % ways != 0)
        fatal("CacheModel: %u bytes / %u-byte lines not divisible into "
              "%u ways", size_bytes, line_bytes, ways);
    numSets = lines / ways;
    if ((numSets & (numSets - 1)) != 0)
        fatal("CacheModel: set count must be a power of two");
    lineShift = static_cast<uint32_t>(std::countr_zero(line_bytes));
    sets.assign(static_cast<size_t>(numSets) * ways, Way{});
}

bool
CacheModel::access(uint32_t addr)
{
    accesses_++;
    tick++;
    uint32_t line = addr >> lineShift;
    uint32_t set = line & (numSets - 1);
    uint32_t tag = line >> std::countr_zero(numSets);

    Way *base = &sets[static_cast<size_t>(set) * ways];
    Way *victim = base;
    for (uint32_t w = 0; w < ways; w++) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick;
            return true;
        }
        if (!way.valid || way.lastUse < victim->lastUse ||
            (victim->valid && !way.valid)) {
            victim = &way;
        }
    }
    misses_++;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick;
    return false;
}

MicroArchModel::MicroArchModel(uint32_t icache_bytes,
                               uint32_t dcache_bytes, uint32_t line_bytes,
                               uint32_t ways)
    : icache_(icache_bytes, line_bytes, ways),
      dcache_(dcache_bytes, line_bytes, ways),
      predictor_()
{}

void
MicroArchModel::onInst(uint32_t addr, const isa::Inst &inst)
{
    (void)inst;
    icache_.access(addr);
}

void
MicroArchModel::onMemAccess(const MemAccessEvent &event)
{
    dcache_.access(event.addr);
}

void
MicroArchModel::onBranch(uint32_t addr, bool taken, uint32_t target)
{
    (void)target;
    predictor_.update(addr, taken);
}

} // namespace pb::sim
