/**
 * @file
 * Pipeline timing model.
 *
 * Estimates execution cycles for the NPE32 core as a classic 5-stage
 * in-order pipeline, the microarchitecture class of the IXP
 * microengines the paper's ARM target stands in for:
 *
 *  - 1 cycle per instruction baseline,
 *  - load-use interlock (consumer immediately after a load stalls),
 *  - multiply latency,
 *  - taken-jump fetch bubble,
 *  - branch misprediction penalty driven by the bimodal predictor,
 *  - I-/D-cache miss penalties driven by the cache models.
 *
 * Attach alongside the PacketRecorder to get per-packet cycle counts
 * and a modeled CPI.
 */

#ifndef PB_SIM_TIMING_HH
#define PB_SIM_TIMING_HH

#include "sim/uarch.hh"

namespace pb::sim
{

/** Stall and latency parameters, in cycles. */
struct TimingParams
{
    uint32_t loadUseStall = 1;
    uint32_t mulLatency = 3;       ///< extra cycles beyond 1
    uint32_t jumpBubble = 1;
    uint32_t branchMispredict = 3;
    uint32_t icacheMissPenalty = 20;
    uint32_t dcacheMissPenalty = 25;
    uint32_t icacheBytes = 4096;
    uint32_t dcacheBytes = 8192;
    uint32_t cacheLineBytes = 32;
    uint32_t cacheWays = 2;
};

/** Cycle estimator for the in-order pipeline. */
class PipelineTimer : public ExecObserver
{
  public:
    explicit PipelineTimer(TimingParams params = {});

    void onInst(uint32_t addr, const isa::Inst &inst) override;
    void onMemAccess(const MemAccessEvent &event) override;
    void onBranch(uint32_t addr, bool taken, uint32_t target) override;

    /** Total modeled cycles since construction. */
    uint64_t cycles() const { return cycles_; }

    /** Total instructions observed. */
    uint64_t insts() const { return insts_; }

    /** Modeled cycles per instruction (0 if nothing ran). */
    double
    cpi() const
    {
        return insts_ ? static_cast<double>(cycles_) / insts_ : 0.0;
    }

    /** Remember the current cycle count (per-packet bracketing). */
    void mark() { markCycles = cycles_; }

    /** Cycles accumulated since the last mark(). */
    uint64_t cyclesSinceMark() const { return cycles_ - markCycles; }

    const TimingParams &params() const { return params_; }

  private:
    TimingParams params_;
    CacheModel icache;
    CacheModel dcache;
    BimodalPredictor predictor;

    uint64_t cycles_ = 0;
    uint64_t insts_ = 0;
    uint64_t markCycles = 0;
    uint8_t pendingLoadReg = 0xff; ///< rd of the previous load
};

} // namespace pb::sim

#endif // PB_SIM_TIMING_HH
