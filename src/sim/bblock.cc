/**
 * @file
 * Basic-block discovery implementation.
 */

#include "bblock.hh"

#include <set>

#include "isa/inst.hh"

namespace pb::sim
{

using isa::Format;
using isa::Op;

BlockMap::BlockMap(const isa::Program &prog) : baseAddr(prog.baseAddr)
{
    const size_t n = prog.words.size();
    if (n == 0)
        fatal("BlockMap: empty program");

    std::set<uint32_t> leaders;
    leaders.insert(0);
    // Every label is a potential entry point (function entries called
    // indirectly, data-driven jump targets).
    for (const auto &[name, addr] : prog.symbols) {
        uint32_t word = (addr - baseAddr) / 4;
        if (word < n)
            leaders.insert(word);
    }

    for (size_t i = 0; i < n; i++) {
        isa::Inst inst = isa::decode(prog.words[i]);
        if (!isa::isControlFlow(inst.op))
            continue;
        const Format fmt = isa::opInfo(inst.op).format;
        // The instruction after any control-flow instruction starts a
        // new block.
        if (i + 1 < n)
            leaders.insert(static_cast<uint32_t>(i + 1));
        // Direct targets are leaders.
        if (fmt == Format::Branch || fmt == Format::Jump) {
            int64_t target = static_cast<int64_t>(i) + 1 + inst.imm;
            if (target >= 0 && target < static_cast<int64_t>(n))
                leaders.insert(static_cast<uint32_t>(target));
        }
    }

    wordToBlock.assign(n, 0);
    uint32_t id = 0;
    for (auto it = leaders.begin(); it != leaders.end(); ++it, ++id) {
        uint32_t start = *it;
        auto next = std::next(it);
        uint32_t end_word =
            (next == leaders.end()) ? static_cast<uint32_t>(n) : *next;
        blocks_.push_back(
            {id, baseAddr + start * 4, end_word - start});
        for (uint32_t w = start; w < end_word; w++)
            wordToBlock[w] = id;
    }
}

} // namespace pb::sim
