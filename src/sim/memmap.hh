/**
 * @file
 * Simulated memory layout.
 *
 * PacketBench distinguishes three semantically different memory
 * regions in one flat address space — exactly the distinction the
 * paper draws between instruction memory, packet data, and program
 * (non-packet) data.  On a real network processor these map to the
 * instruction store, packet buffers / receive FIFOs, and SRAM/DRAM
 * application state respectively.
 */

#ifndef PB_SIM_MEMMAP_HH
#define PB_SIM_MEMMAP_HH

#include <cstdint>
#include <string_view>

namespace pb::sim
{

/** Semantic class of a memory address. */
enum class MemRegion : uint8_t
{
    Text,     ///< instruction memory
    Data,     ///< application state (routing tables, flow tables, ...)
    Packet,   ///< the packet currently being processed
    Stack,    ///< call stack (counts as non-packet data)
    Unmapped,
};

/** Human-readable region name. */
std::string_view memRegionName(MemRegion region);

/** True for regions the paper calls "non-packet memory". */
constexpr bool
isNonPacketData(MemRegion region)
{
    return region == MemRegion::Data || region == MemRegion::Stack;
}

/** Default memory layout (bases and sizes in bytes). */
namespace layout
{

constexpr uint32_t textBase = 0x0000'1000;
constexpr uint32_t textSize = 256 * 1024;

constexpr uint32_t dataBase = 0x0010'0000;
constexpr uint32_t dataSize = 16 * 1024 * 1024;

constexpr uint32_t packetBase = 0x0800'0000;
constexpr uint32_t packetSize = 64 * 1024;

constexpr uint32_t stackBase = 0x7fff'0000;
constexpr uint32_t stackSize = 64 * 1024;

/** Initial stack pointer (16-byte aligned, just below the top). */
constexpr uint32_t stackTop = stackBase + stackSize - 16;

/**
 * @name O(1) address resolution.
 *
 * The layout is fixed at compile time, so region lookup does not
 * need to scan a region list: a 64 KiB-page-granular table maps
 * `addr >> pageShift` to the region that intersects that page (no
 * page is shared by two regions), and a single range check against
 * the region's extent settles partially covered pages.
 * @{
 */

/** log2 of the lookup page size (64 KiB pages). */
constexpr unsigned pageShift = 16;

/** Number of lookup pages covering the 32-bit address space. */
constexpr uint32_t numPages = 1u << (32 - pageShift);

/** Number of mapped regions (MemRegion::Unmapped has no storage). */
constexpr unsigned numRegions = 4;

/** Region base address by region index (MemRegion value). */
constexpr uint32_t regionBase[numRegions] = {textBase, dataBase,
                                             packetBase, stackBase};

/** Region size by region index (MemRegion value). */
constexpr uint32_t regionSize[numRegions] = {textSize, dataSize,
                                             packetSize, stackSize};

namespace detail
{

struct PageTable
{
    uint8_t page[numPages];
};

constexpr PageTable
buildPageTable()
{
    PageTable t{};
    for (uint32_t i = 0; i < numPages; i++)
        t.page[i] = numRegions; // unmapped
    for (unsigned r = 0; r < numRegions; r++) {
        uint64_t first = regionBase[r] >> pageShift;
        uint64_t last =
            (static_cast<uint64_t>(regionBase[r]) + regionSize[r] - 1) >>
            pageShift;
        for (uint64_t p = first; p <= last; p++)
            t.page[p] = static_cast<uint8_t>(r);
    }
    return t;
}

inline constexpr PageTable pageTable = buildPageTable();

} // namespace detail

/**
 * Index of the region intersecting @p addr's page, or numRegions
 * when the page is unmapped.  Callers must still range-check against
 * regionBase/regionSize: the first and last page of a region can be
 * partially covered (the text region is not page-aligned).
 */
constexpr unsigned
pageRegionIndex(uint32_t addr)
{
    return detail::pageTable.page[addr >> pageShift];
}

/** @} */

} // namespace layout

/**
 * Classify an address against the fixed layout.  O(1): one table
 * load plus one range check.
 */
constexpr MemRegion
classifyAddr(uint32_t addr)
{
    unsigned idx = layout::pageRegionIndex(addr);
    if (idx >= layout::numRegions ||
        addr - layout::regionBase[idx] >= layout::regionSize[idx])
        return MemRegion::Unmapped;
    return static_cast<MemRegion>(idx);
}

static_assert(classifyAddr(layout::textBase) == MemRegion::Text);
static_assert(classifyAddr(layout::textBase - 1) == MemRegion::Unmapped);
static_assert(classifyAddr(layout::textBase + layout::textSize) ==
              MemRegion::Unmapped);
static_assert(classifyAddr(layout::dataBase + layout::dataSize - 1) ==
              MemRegion::Data);
static_assert(classifyAddr(layout::packetBase) == MemRegion::Packet);
static_assert(classifyAddr(layout::stackTop) == MemRegion::Stack);
static_assert(classifyAddr(0) == MemRegion::Unmapped);
static_assert(classifyAddr(0xffff'ffff) == MemRegion::Unmapped);

} // namespace pb::sim

#endif // PB_SIM_MEMMAP_HH
