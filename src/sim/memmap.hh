/**
 * @file
 * Simulated memory layout.
 *
 * PacketBench distinguishes three semantically different memory
 * regions in one flat address space — exactly the distinction the
 * paper draws between instruction memory, packet data, and program
 * (non-packet) data.  On a real network processor these map to the
 * instruction store, packet buffers / receive FIFOs, and SRAM/DRAM
 * application state respectively.
 */

#ifndef PB_SIM_MEMMAP_HH
#define PB_SIM_MEMMAP_HH

#include <cstdint>
#include <string_view>

namespace pb::sim
{

/** Semantic class of a memory address. */
enum class MemRegion : uint8_t
{
    Text,     ///< instruction memory
    Data,     ///< application state (routing tables, flow tables, ...)
    Packet,   ///< the packet currently being processed
    Stack,    ///< call stack (counts as non-packet data)
    Unmapped,
};

/** Human-readable region name. */
std::string_view memRegionName(MemRegion region);

/** True for regions the paper calls "non-packet memory". */
constexpr bool
isNonPacketData(MemRegion region)
{
    return region == MemRegion::Data || region == MemRegion::Stack;
}

/** Default memory layout (bases and sizes in bytes). */
namespace layout
{

constexpr uint32_t textBase = 0x0000'1000;
constexpr uint32_t textSize = 256 * 1024;

constexpr uint32_t dataBase = 0x0010'0000;
constexpr uint32_t dataSize = 16 * 1024 * 1024;

constexpr uint32_t packetBase = 0x0800'0000;
constexpr uint32_t packetSize = 64 * 1024;

constexpr uint32_t stackBase = 0x7fff'0000;
constexpr uint32_t stackSize = 64 * 1024;

/** Initial stack pointer (16-byte aligned, just below the top). */
constexpr uint32_t stackTop = stackBase + stackSize - 16;

} // namespace layout

} // namespace pb::sim

#endif // PB_SIM_MEMMAP_HH
