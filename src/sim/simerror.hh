/**
 * @file
 * Typed errors raised by the processor simulator.
 */

#ifndef PB_SIM_SIMERROR_HH
#define PB_SIM_SIMERROR_HH

#include "common/logging.hh"

namespace pb::sim
{

/** Any error raised while executing a simulated program. */
class SimError : public Error
{
  public:
    explicit SimError(const std::string &msg) : Error(msg) {}
};

/** Access to unmapped memory or a region-boundary violation. */
class MemoryError : public SimError
{
  public:
    explicit MemoryError(const std::string &msg) : SimError(msg) {}
};

/** Misaligned load, store, or instruction fetch. */
class AlignmentError : public SimError
{
  public:
    explicit AlignmentError(const std::string &msg) : SimError(msg) {}
};

/** Fetch of an undecodable instruction word. */
class DecodeError : public SimError
{
  public:
    explicit DecodeError(const std::string &msg) : SimError(msg) {}
};

/** Program exceeded its instruction budget (runaway loop guard). */
class BudgetError : public SimError
{
  public:
    explicit BudgetError(const std::string &msg) : SimError(msg) {}
};

} // namespace pb::sim

#endif // PB_SIM_SIMERROR_HH
