/**
 * @file
 * Simulated memory implementation.
 */

#include "memory.hh"

#include <cstring>

#include "common/bitops.hh"

namespace pb::sim
{

std::string_view
memRegionName(MemRegion region)
{
    switch (region) {
      case MemRegion::Text:
        return "text";
      case MemRegion::Data:
        return "data";
      case MemRegion::Packet:
        return "packet";
      case MemRegion::Stack:
        return "stack";
      case MemRegion::Unmapped:
        return "unmapped";
    }
    return "unmapped";
}

Memory::Memory()
{
    using namespace layout;
    regions.push_back(
        {textBase, textSize, MemRegion::Text,
         std::vector<uint8_t>(textSize, 0)});
    regions.push_back(
        {dataBase, dataSize, MemRegion::Data,
         std::vector<uint8_t>(dataSize, 0)});
    regions.push_back(
        {packetBase, packetSize, MemRegion::Packet,
         std::vector<uint8_t>(packetSize, 0)});
    regions.push_back(
        {stackBase, stackSize, MemRegion::Stack,
         std::vector<uint8_t>(stackSize, 0)});
}

MemRegion
Memory::classify(uint32_t addr) const
{
    for (const auto &region : regions) {
        if (region.contains(addr))
            return region.kind;
    }
    return MemRegion::Unmapped;
}

const Memory::Region &
Memory::find(uint32_t addr, uint32_t len) const
{
    for (const auto &region : regions) {
        if (region.contains(addr)) {
            if (len > region.size - (addr - region.base)) {
                throw MemoryError(strprintf(
                    "access [0x%x, +%u) crosses the end of the %s region",
                    addr, len,
                    std::string(memRegionName(region.kind)).c_str()));
            }
            return region;
        }
    }
    throw MemoryError(
        strprintf("access to unmapped address 0x%x (%u bytes)", addr,
                  len));
}

Memory::Region &
Memory::find(uint32_t addr, uint32_t len)
{
    return const_cast<Region &>(
        static_cast<const Memory *>(this)->find(addr, len));
}

uint8_t
Memory::read8(uint32_t addr) const
{
    const Region &region = find(addr, 1);
    return region.bytes[addr - region.base];
}

uint16_t
Memory::read16(uint32_t addr) const
{
    if (!isAligned(addr, 2))
        throw AlignmentError(
            strprintf("misaligned 16-bit read at 0x%x", addr));
    const Region &region = find(addr, 2);
    const uint8_t *p = &region.bytes[addr - region.base];
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
Memory::read32(uint32_t addr) const
{
    if (!isAligned(addr, 4))
        throw AlignmentError(
            strprintf("misaligned 32-bit read at 0x%x", addr));
    const Region &region = find(addr, 4);
    const uint8_t *p = &region.bytes[addr - region.base];
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

void
Memory::write8(uint32_t addr, uint8_t value)
{
    Region &region = find(addr, 1);
    region.bytes[addr - region.base] = value;
}

void
Memory::write16(uint32_t addr, uint16_t value)
{
    if (!isAligned(addr, 2))
        throw AlignmentError(
            strprintf("misaligned 16-bit write at 0x%x", addr));
    Region &region = find(addr, 2);
    uint8_t *p = &region.bytes[addr - region.base];
    p[0] = static_cast<uint8_t>(value);
    p[1] = static_cast<uint8_t>(value >> 8);
}

void
Memory::write32(uint32_t addr, uint32_t value)
{
    if (!isAligned(addr, 4))
        throw AlignmentError(
            strprintf("misaligned 32-bit write at 0x%x", addr));
    Region &region = find(addr, 4);
    uint8_t *p = &region.bytes[addr - region.base];
    p[0] = static_cast<uint8_t>(value);
    p[1] = static_cast<uint8_t>(value >> 8);
    p[2] = static_cast<uint8_t>(value >> 16);
    p[3] = static_cast<uint8_t>(value >> 24);
}

void
Memory::writeBlock(uint32_t addr, const uint8_t *data, uint32_t len)
{
    if (len == 0)
        return;
    Region &region = find(addr, len);
    std::memcpy(&region.bytes[addr - region.base], data, len);
}

void
Memory::readBlock(uint32_t addr, uint8_t *data, uint32_t len) const
{
    if (len == 0)
        return;
    const Region &region = find(addr, len);
    std::memcpy(data, &region.bytes[addr - region.base], len);
}

void
Memory::fill(uint32_t addr, uint32_t len, uint8_t value)
{
    if (len == 0)
        return;
    Region &region = find(addr, len);
    std::memset(&region.bytes[addr - region.base], value, len);
}

void
Memory::reset()
{
    for (auto &region : regions)
        std::fill(region.bytes.begin(), region.bytes.end(), 0);
}

} // namespace pb::sim
