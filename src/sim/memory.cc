/**
 * @file
 * Simulated memory implementation: backing storage, bulk accessors,
 * and the cold error paths of the O(1) resolver (the hot resolve
 * itself is inline in memory.hh).
 */

#include "memory.hh"

#include <algorithm>
#include <cstring>

#include "net/simd/kernels.hh"

namespace pb::sim
{

std::string_view
memRegionName(MemRegion region)
{
    switch (region) {
      case MemRegion::Text:
        return "text";
      case MemRegion::Data:
        return "data";
      case MemRegion::Packet:
        return "packet";
      case MemRegion::Stack:
        return "stack";
      case MemRegion::Unmapped:
        return "unmapped";
    }
    return "unmapped";
}

Memory::Memory()
{
    for (unsigned r = 0; r < layout::numRegions; r++) {
        store[r].assign(layout::regionSize[r], 0);
        dirtyLo[r] = layout::regionSize[r];
        dirtyHi[r] = 0;
    }
}

void
Memory::throwUnmapped(uint32_t addr, uint32_t len)
{
    throw MemoryError(
        strprintf("access to unmapped address 0x%x (%u bytes)", addr,
                  len));
}

void
Memory::throwCrossesEnd(uint32_t addr, uint32_t len, MemRegion region)
{
    throw MemoryError(strprintf(
        "access [0x%x, +%u) crosses the end of the %s region", addr,
        len, std::string(memRegionName(region)).c_str()));
}

void
Memory::throwMisaligned(const char *what, uint32_t addr)
{
    throw AlignmentError(
        strprintf("misaligned %s at 0x%x", what, addr));
}

void
Memory::writeBlock(uint32_t addr, const uint8_t *data, uint32_t len)
{
    if (len == 0)
        return;
    std::memcpy(writable(addr, len).ptr, data, len);
}

void
Memory::readBlock(uint32_t addr, uint8_t *data, uint32_t len) const
{
    if (len == 0)
        return;
    std::memcpy(data, readable(addr, len).ptr, len);
}

void
Memory::fill(uint32_t addr, uint32_t len, uint8_t value)
{
    if (len == 0)
        return;
    uint8_t *p = writable(addr, len).ptr;
    if (value == 0)
        net::simd::kernels().clearBytes(p, len);
    else
        std::memset(p, value, len);
}

void
Memory::reset()
{
    // Per-packet clear of whatever the last run dirtied — one of the
    // host hot loops, served by the dispatched SIMD clear kernel.
    const auto &kern = net::simd::kernels();
    for (unsigned r = 0; r < layout::numRegions; r++) {
        if (dirtyLo[r] < dirtyHi[r])
            kern.clearBytes(store[r].data() + dirtyLo[r],
                            dirtyHi[r] - dirtyLo[r]);
        dirtyLo[r] = layout::regionSize[r];
        dirtyHi[r] = 0;
    }
}

} // namespace pb::sim
