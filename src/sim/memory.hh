/**
 * @file
 * Simulated flat memory with semantic regions.
 *
 * The same Memory object is used from two sides:
 *  - the simulated CPU performs loads/stores during application
 *    execution (these are observed and accounted), and
 *  - the host-side PacketBench framework reads/writes it directly to
 *    place packets and build application data structures (these are
 *    *not* accounted — the paper's selective accounting).
 *
 * Memory itself is passive; accounting is done by the CPU's observer.
 *
 * Address resolution is O(1): the layout is fixed (sim/memmap.hh), so
 * a page-granular table plus one range check turns an address into a
 * host pointer and region kind in a single step — no region-list
 * scan, and the CPU classifies each access exactly once (the region
 * rides along with the resolved pointer instead of being recomputed
 * for the observer).
 */

#ifndef PB_SIM_MEMORY_HH
#define PB_SIM_MEMORY_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/bitops.hh"
#include "common/byteorder.hh"
#include "sim/memmap.hh"
#include "sim/simerror.hh"

namespace pb::sim
{

/** Byte-addressed simulated memory composed of disjoint regions. */
class Memory
{
  public:
    /** A resolved read-only view of [addr, addr+len). */
    struct ConstRef
    {
        const uint8_t *ptr;
        MemRegion region;
    };

    /** A resolved writable view of [addr, addr+len). */
    struct Ref
    {
        uint8_t *ptr;
        MemRegion region;
    };

    /** Create memory with the default PacketBench layout. */
    Memory();

    /**
     * Classify an address.  Returns MemRegion::Unmapped for addresses
     * outside every region (the caller decides whether that is an
     * error).
     */
    MemRegion classify(uint32_t addr) const { return classifyAddr(addr); }

    /**
     * Resolve [addr, addr+len) for reading: one page-table load, one
     * range check.  @throws MemoryError when the range is unmapped or
     * crosses the end of its region.
     */
    ConstRef
    readable(uint32_t addr, uint32_t len) const
    {
        unsigned idx = layout::pageRegionIndex(addr);
        if (idx >= layout::numRegions) [[unlikely]]
            throwUnmapped(addr, len);
        uint32_t off = addr - layout::regionBase[idx];
        if (off >= layout::regionSize[idx]) [[unlikely]]
            throwUnmapped(addr, len);
        if (len > layout::regionSize[idx] - off) [[unlikely]]
            throwCrossesEnd(addr, len, static_cast<MemRegion>(idx));
        return {store[idx].data() + off, static_cast<MemRegion>(idx)};
    }

    /**
     * Resolve [addr, addr+len) for writing.  Same checks as
     * readable(), and additionally widens the region's dirty extent
     * so reset() can re-zero only bytes that were actually written.
     */
    Ref
    writable(uint32_t addr, uint32_t len)
    {
        unsigned idx = layout::pageRegionIndex(addr);
        if (idx >= layout::numRegions) [[unlikely]]
            throwUnmapped(addr, len);
        uint32_t off = addr - layout::regionBase[idx];
        if (off >= layout::regionSize[idx]) [[unlikely]]
            throwUnmapped(addr, len);
        if (len > layout::regionSize[idx] - off) [[unlikely]]
            throwCrossesEnd(addr, len, static_cast<MemRegion>(idx));
        if (off < dirtyLo[idx])
            dirtyLo[idx] = off;
        if (off + len > dirtyHi[idx])
            dirtyHi[idx] = off + len;
        return {store[idx].data() + off, static_cast<MemRegion>(idx)};
    }

    /**
     * @name Simulated-width accessors.
     * All check mapping; 16/32-bit accesses additionally check
     * alignment.  Multi-byte values use little-endian byte order (the
     * NPE32 core is little-endian, like the ARM target the paper
     * used; network-order fields are handled explicitly by
     * application code, as on the real hardware).  The overloads with
     * a MemRegion out-parameter report which region was hit, so
     * callers that also classify (the CPU's observer path) resolve
     * the address exactly once.
     * @{
     */
    uint8_t
    read8(uint32_t addr, MemRegion &region) const
    {
        ConstRef ref = readable(addr, 1);
        region = ref.region;
        return *ref.ptr;
    }

    uint16_t
    read16(uint32_t addr, MemRegion &region) const
    {
        if (!isAligned(addr, 2)) [[unlikely]]
            throwMisaligned("16-bit read", addr);
        ConstRef ref = readable(addr, 2);
        region = ref.region;
        return loadWord<uint16_t>(ref.ptr);
    }

    uint32_t
    read32(uint32_t addr, MemRegion &region) const
    {
        if (!isAligned(addr, 4)) [[unlikely]]
            throwMisaligned("32-bit read", addr);
        ConstRef ref = readable(addr, 4);
        region = ref.region;
        return loadWord<uint32_t>(ref.ptr);
    }

    void
    write8(uint32_t addr, uint8_t value, MemRegion &region)
    {
        Ref ref = writable(addr, 1);
        region = ref.region;
        *ref.ptr = value;
    }

    void
    write16(uint32_t addr, uint16_t value, MemRegion &region)
    {
        if (!isAligned(addr, 2)) [[unlikely]]
            throwMisaligned("16-bit write", addr);
        Ref ref = writable(addr, 2);
        region = ref.region;
        storeWord(ref.ptr, value);
    }

    void
    write32(uint32_t addr, uint32_t value, MemRegion &region)
    {
        if (!isAligned(addr, 4)) [[unlikely]]
            throwMisaligned("32-bit write", addr);
        Ref ref = writable(addr, 4);
        region = ref.region;
        storeWord(ref.ptr, value);
    }

    uint8_t
    read8(uint32_t addr) const
    {
        MemRegion r;
        return read8(addr, r);
    }

    uint16_t
    read16(uint32_t addr) const
    {
        MemRegion r;
        return read16(addr, r);
    }

    uint32_t
    read32(uint32_t addr) const
    {
        MemRegion r;
        return read32(addr, r);
    }

    void
    write8(uint32_t addr, uint8_t value)
    {
        MemRegion r;
        write8(addr, value, r);
    }

    void
    write16(uint32_t addr, uint16_t value)
    {
        MemRegion r;
        write16(addr, value, r);
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        MemRegion r;
        write32(addr, value, r);
    }
    /** @} */

    /** Bulk copy into simulated memory (host-side, unaccounted). */
    void writeBlock(uint32_t addr, const uint8_t *data, uint32_t len);

    /** Bulk copy out of simulated memory (host-side, unaccounted). */
    void readBlock(uint32_t addr, uint8_t *data, uint32_t len) const;

    /** Zero-fill a byte range. */
    void fill(uint32_t addr, uint32_t len, uint8_t value = 0);

    /**
     * Zero all regions (fresh run).  Cost is proportional to the
     * bytes actually written since construction / the last reset, not
     * to the total layout size: each region tracks its dirty extent
     * and only that slice is re-zeroed.
     */
    void reset();

    /**
     * Dirty byte extent [lo, hi) of @p region as offsets from its
     * base; lo >= hi means the region is clean.  Exposed for tests
     * and telemetry.
     */
    std::pair<uint32_t, uint32_t>
    dirtyExtent(MemRegion region) const
    {
        unsigned idx = static_cast<unsigned>(region);
        return {dirtyLo[idx], dirtyHi[idx]};
    }

  private:
    /**
     * Host-endian word access: one memcpy, byte-swapped only on a
     * big-endian host (NPE32 memory is little-endian).
     */
    template <typename T>
    static T
    loadWord(const uint8_t *p)
    {
        T v;
        std::memcpy(&v, p, sizeof(T));
        if constexpr (std::endian::native == std::endian::big) {
            if constexpr (sizeof(T) == 2)
                v = bswap16(v);
            else
                v = bswap32(v);
        }
        return v;
    }

    template <typename T>
    static void
    storeWord(uint8_t *p, T v)
    {
        if constexpr (std::endian::native == std::endian::big) {
            if constexpr (sizeof(T) == 2)
                v = bswap16(v);
            else
                v = bswap32(v);
        }
        std::memcpy(p, &v, sizeof(T));
    }

    [[noreturn]] static void throwUnmapped(uint32_t addr, uint32_t len);
    [[noreturn]] static void throwCrossesEnd(uint32_t addr, uint32_t len,
                                             MemRegion region);
    [[noreturn]] static void throwMisaligned(const char *what,
                                             uint32_t addr);

    /** Backing bytes, indexed by MemRegion value (Text..Stack). */
    std::vector<uint8_t> store[layout::numRegions];

    /** Dirty extent per region, as [lo, hi) offsets from the base. */
    uint32_t dirtyLo[layout::numRegions];
    uint32_t dirtyHi[layout::numRegions];
};

} // namespace pb::sim

#endif // PB_SIM_MEMORY_HH
