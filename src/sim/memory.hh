/**
 * @file
 * Simulated flat memory with semantic regions.
 *
 * The same Memory object is used from two sides:
 *  - the simulated CPU performs loads/stores during application
 *    execution (these are observed and accounted), and
 *  - the host-side PacketBench framework reads/writes it directly to
 *    place packets and build application data structures (these are
 *    *not* accounted — the paper's selective accounting).
 *
 * Memory itself is passive; accounting is done by the CPU's observer.
 */

#ifndef PB_SIM_MEMORY_HH
#define PB_SIM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "sim/memmap.hh"
#include "sim/simerror.hh"

namespace pb::sim
{

/** Byte-addressed simulated memory composed of disjoint regions. */
class Memory
{
  public:
    /** Create memory with the default PacketBench layout. */
    Memory();

    /**
     * Classify an address.  Returns MemRegion::Unmapped for addresses
     * outside every region (the caller decides whether that is an
     * error).
     */
    MemRegion classify(uint32_t addr) const;

    /**
     * @name Simulated-width accessors.
     * All check mapping; 16/32-bit accesses additionally check
     * alignment.  Multi-byte values use little-endian byte order (the
     * NPE32 core is little-endian, like the ARM target the paper
     * used; network-order fields are handled explicitly by
     * application code, as on the real hardware).
     * @{
     */
    uint8_t read8(uint32_t addr) const;
    uint16_t read16(uint32_t addr) const;
    uint32_t read32(uint32_t addr) const;
    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);
    /** @} */

    /** Bulk copy into simulated memory (host-side, unaccounted). */
    void writeBlock(uint32_t addr, const uint8_t *data, uint32_t len);

    /** Bulk copy out of simulated memory (host-side, unaccounted). */
    void readBlock(uint32_t addr, uint8_t *data, uint32_t len) const;

    /** Zero-fill a byte range. */
    void fill(uint32_t addr, uint32_t len, uint8_t value = 0);

    /** Zero all regions (fresh run). */
    void reset();

  private:
    struct Region
    {
        uint32_t base;
        uint32_t size;
        MemRegion kind;
        std::vector<uint8_t> bytes;

        bool
        contains(uint32_t addr) const
        {
            return addr - base < size;
        }
    };

    /** Find the region containing [addr, addr+len); throws if none. */
    const Region &find(uint32_t addr, uint32_t len) const;
    Region &find(uint32_t addr, uint32_t len);

    std::vector<Region> regions;
};

} // namespace pb::sim

#endif // PB_SIM_MEMORY_HH
