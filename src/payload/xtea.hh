/**
 * @file
 * XTEA block cipher (Needham/Wheeler), the payload-encryption kernel
 * used by the payload-processing applications.
 *
 * The paper notes PacketBench also characterizes payload processing
 * applications (PPA, as defined in CommBench); encryption is
 * CommBench's canonical heavyweight PPA.  XTEA is small enough to
 * implement bit-exactly in NPE32 assembly while showing the defining
 * PPA property: cost scales with payload size, not header size.
 */

#ifndef PB_PAYLOAD_XTEA_HH
#define PB_PAYLOAD_XTEA_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace pb::payload
{

/** XTEA with the standard 32 rounds. */
class Xtea
{
  public:
    static constexpr unsigned rounds = 32;
    static constexpr uint32_t delta = 0x9e3779b9;

    /** @param key 128-bit key as four 32-bit words. */
    explicit Xtea(std::array<uint32_t, 4> key) : key(key) {}

    /** Encrypt one 64-bit block in place. */
    void encryptBlock(uint32_t &v0, uint32_t &v1) const;

    /** Decrypt one 64-bit block in place. */
    void decryptBlock(uint32_t &v0, uint32_t &v1) const;

    /**
     * Encrypt a byte buffer in place in ECB mode (blocks read as
     * little-endian word pairs, the NPE32 memory order).  A trailing
     * fragment shorter than 8 bytes is left unmodified — the
     * application processes whole blocks only.
     * @return number of bytes encrypted
     */
    size_t encryptBuffer(uint8_t *data, size_t len) const;

    /** Inverse of encryptBuffer(). */
    size_t decryptBuffer(uint8_t *data, size_t len) const;

    const std::array<uint32_t, 4> &keyWords() const { return key; }

  private:
    std::array<uint32_t, 4> key;
};

} // namespace pb::payload

#endif // PB_PAYLOAD_XTEA_HH
