/**
 * @file
 * XTEA implementation.
 */

#include "xtea.hh"

#include "common/byteorder.hh"

namespace pb::payload
{

void
Xtea::encryptBlock(uint32_t &v0, uint32_t &v1) const
{
    uint32_t sum = 0;
    for (unsigned i = 0; i < rounds; i++) {
        v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
        sum += delta;
        v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^
              (sum + key[(sum >> 11) & 3]);
    }
}

void
Xtea::decryptBlock(uint32_t &v0, uint32_t &v1) const
{
    uint32_t sum = delta * rounds;
    for (unsigned i = 0; i < rounds; i++) {
        v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^
              (sum + key[(sum >> 11) & 3]);
        sum -= delta;
        v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    }
}

size_t
Xtea::encryptBuffer(uint8_t *data, size_t len) const
{
    size_t done = 0;
    while (done + 8 <= len) {
        uint32_t v0 = loadLe32(data + done);
        uint32_t v1 = loadLe32(data + done + 4);
        encryptBlock(v0, v1);
        storeLe32(data + done, v0);
        storeLe32(data + done + 4, v1);
        done += 8;
    }
    return done;
}

size_t
Xtea::decryptBuffer(uint8_t *data, size_t len) const
{
    size_t done = 0;
    while (done + 8 <= len) {
        uint32_t v0 = loadLe32(data + done);
        uint32_t v1 = loadLe32(data + done + 4);
        decryptBlock(v0, v1);
        storeLe32(data + done, v0);
        storeLe32(data + done + 4, v1);
        done += 8;
    }
    return done;
}

} // namespace pb::payload
