/**
 * @file
 * Microarchitectural model tests: branch predictor and caches.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/memmap.hh"
#include "sim/uarch.hh"

namespace
{

using namespace pb;
using namespace pb::sim;

TEST(BimodalPredictor, LearnsAlwaysTaken)
{
    BimodalPredictor pred(64);
    for (int i = 0; i < 100; i++)
        pred.update(0x1000, true);
    // Initial counter is weakly-not-taken: at most 2 early misses.
    EXPECT_LE(pred.mispredicts(), 2u);
    EXPECT_EQ(pred.lookups(), 100u);
    EXPECT_LT(pred.mispredictRate(), 0.05);
}

TEST(BimodalPredictor, AlternatingPatternMispredicts)
{
    BimodalPredictor pred(64);
    for (int i = 0; i < 1000; i++)
        pred.update(0x2000, i % 2 == 0);
    // A 2-bit counter cannot learn strict alternation.
    EXPECT_GT(pred.mispredictRate(), 0.4);
}

TEST(BimodalPredictor, SeparateCountersPerAddress)
{
    BimodalPredictor pred(64);
    // Branch A always taken, branch B never; they use different
    // counters so both converge.
    for (int i = 0; i < 100; i++) {
        pred.update(0x1000, true);
        pred.update(0x1004, false);
    }
    EXPECT_LE(pred.mispredicts(), 2u);
}

TEST(BimodalPredictor, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(BimodalPredictor pred(100), FatalError);
    EXPECT_THROW(BimodalPredictor pred(0), FatalError);
}

TEST(CacheModel, HitsAfterFill)
{
    CacheModel cache(1024, 32, 2);
    EXPECT_FALSE(cache.access(0x1000)); // cold miss
    EXPECT_TRUE(cache.access(0x1000));  // hit
    EXPECT_TRUE(cache.access(0x101f));  // same line
    EXPECT_FALSE(cache.access(0x1020)); // next line
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheModel, LruEvictionWithinSet)
{
    // 2-way, 32-byte lines, 4 sets -> set stride 128 bytes.
    CacheModel cache(256, 32, 2);
    uint32_t a = 0x0000;
    uint32_t b = 0x0080; // same set as a
    uint32_t c = 0x0100; // same set as a and b
    EXPECT_FALSE(cache.access(a));
    EXPECT_FALSE(cache.access(b));
    EXPECT_TRUE(cache.access(a));  // refresh a; b is now LRU
    EXPECT_FALSE(cache.access(c)); // evicts b
    EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(b)); // b was evicted
}

TEST(CacheModel, FullyCoveredWorkingSetHasNoCapacityMisses)
{
    CacheModel cache(4096, 32, 4);
    // Touch 2 KiB twice; second pass must be all hits.
    for (uint32_t addr = 0; addr < 2048; addr += 4)
        cache.access(addr);
    uint64_t cold_misses = cache.misses();
    for (uint32_t addr = 0; addr < 2048; addr += 4)
        cache.access(addr);
    EXPECT_EQ(cache.misses(), cold_misses);
    EXPECT_EQ(cold_misses, 2048u / 32u);
}

TEST(CacheModel, RejectsBadGeometry)
{
    EXPECT_THROW(CacheModel(1000, 32, 2), FatalError);
    EXPECT_THROW(CacheModel(1024, 33, 2), FatalError);
    EXPECT_THROW(CacheModel(1024, 32, 0), FatalError);
}

TEST(MicroArchModel, DrivesAllThreeModels)
{
    Memory mem;
    Cpu cpu(mem);
    isa::Program prog = isa::Assembler(layout::textBase).assemble(R"(
        .equ DATA, 0x00100000
        main:
            li t0, DATA
            li t1, 100
        loop:
            lw t2, 0(t0)
            sw t2, 4(t0)
            addi t1, t1, -1
            bnez t1, loop
            sys 0
    )");
    cpu.loadProgram(prog);
    MicroArchModel uarch;
    cpu.setObserver(&uarch);
    cpu.run(prog.entry());

    EXPECT_GT(uarch.icache().accesses(), 400u);
    // Tiny loop: everything fits, so the I-cache hit rate is high.
    EXPECT_LT(uarch.icache().missRate(), 0.01);
    EXPECT_EQ(uarch.dcache().accesses(), 200u);
    EXPECT_LT(uarch.dcache().missRate(), 0.05);
    // Loop branch: taken 99 times then falls through; bimodal learns.
    EXPECT_EQ(uarch.predictor().lookups(), 100u);
    EXPECT_LT(uarch.predictor().mispredictRate(), 0.1);
}

} // namespace
