/**
 * @file
 * Basic-block discovery tests.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/bblock.hh"

namespace
{

using namespace pb;
using namespace pb::sim;

isa::Program
asmProg(const std::string &src)
{
    return isa::Assembler(0x1000).assemble(src, "bbtest");
}

TEST(BlockMap, StraightLineIsOneBlock)
{
    BlockMap map(asmProg("nop\nnop\nnop\nsys 0"));
    // sys ends a block, so: [nop nop nop sys].
    EXPECT_EQ(map.numBlocks(), 1u);
    EXPECT_EQ(map.block(0).numInsts, 4u);
}

TEST(BlockMap, BranchSplitsBlocks)
{
    BlockMap map(asmProg(R"(
            addi t0, zero, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 0
    )"));
    // Blocks: [addi], [addi, bnez], [sys].
    EXPECT_EQ(map.numBlocks(), 3u);
    EXPECT_EQ(map.block(0).numInsts, 1u);
    EXPECT_EQ(map.block(1).numInsts, 2u);
    EXPECT_EQ(map.block(2).numInsts, 1u);
}

TEST(BlockMap, BlockOfMapsEveryInstruction)
{
    isa::Program prog = asmProg(R"(
            b skip
            nop
        skip:
            sys 0
    )");
    BlockMap map(prog);
    // [b], [nop], [sys].
    EXPECT_EQ(map.numBlocks(), 3u);
    EXPECT_EQ(map.blockOf(0x1000), 0u);
    EXPECT_EQ(map.blockOf(0x1004), 1u);
    EXPECT_EQ(map.blockOf(0x1008), 2u);
}

TEST(BlockMap, CallTargetsAreLeaders)
{
    BlockMap map(asmProg(R"(
        main:
            call fn
            sys 0
            nop
        fn:
            nop
            ret
    )"));
    // [call], [sys], [nop] (label fn forces leader even though the
    // preceding sys already did), [nop ret] ... fn: nop, ret -> the
    // ret ends the program's last block.
    // Blocks: [call][sys][nop][nop ret].
    EXPECT_EQ(map.numBlocks(), 4u);
}

TEST(BlockMap, BlocksCoverProgramExactly)
{
    isa::Program prog = asmProg(R"(
        main:
            addi t0, zero, 5
        a:  bnez t0, b
            nop
        b:  addi t0, t0, -1
            bgt t0, zero, a
            sys 0
    )");
    BlockMap map(prog);
    uint32_t total = 0;
    uint32_t prev_end = prog.baseAddr;
    for (const auto &block : map.blocks()) {
        EXPECT_EQ(block.startAddr, prev_end) << "gap before block";
        prev_end = block.startAddr + block.numInsts * 4;
        total += block.numInsts;
        // Every instruction in the block maps back to it.
        for (uint32_t i = 0; i < block.numInsts; i++)
            EXPECT_EQ(map.blockOf(block.startAddr + i * 4), block.id);
    }
    EXPECT_EQ(total, prog.words.size());
    EXPECT_EQ(prev_end, prog.endAddr());
}

TEST(BlockMap, IdsAreDenseAndOrdered)
{
    BlockMap map(asmProg(R"(
        x: b y
        y: b x
    )"));
    for (uint32_t i = 0; i < map.numBlocks(); i++) {
        EXPECT_EQ(map.block(i).id, i);
        if (i > 0) {
            EXPECT_GT(map.block(i).startAddr,
                      map.block(i - 1).startAddr);
        }
    }
}

TEST(BlockMap, EmptyProgramRejected)
{
    isa::Program prog;
    prog.baseAddr = 0x1000;
    EXPECT_THROW(BlockMap map(prog), FatalError);
}

} // namespace
