/**
 * @file
 * Debugger tests: stepping, breakpoints, fault capture, and the
 * textual command loop driven through string streams.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/debugger.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::sim;

class DebuggerTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &src)
    {
        prog = isa::Assembler(layout::textBase).assemble(src);
        cpu.loadProgram(prog);
        dbg = std::make_unique<Debugger>(cpu, prog.entry("main"));
    }

    isa::Program prog;
    Memory mem;
    Cpu cpu{mem};
    std::unique_ptr<Debugger> dbg;
};

TEST_F(DebuggerTest, SingleStepAdvancesPc)
{
    load(R"(
        main:
            li t0, 1
            li t1, 2
            add t2, t0, t1
            sys 3
    )");
    EXPECT_EQ(dbg->pc(), layout::textBase);
    EXPECT_EQ(dbg->step(), StopReason::Step);
    EXPECT_EQ(dbg->pc(), layout::textBase + 4);
    EXPECT_EQ(dbg->step(2), StopReason::Step);
    EXPECT_EQ(cpu.reg(7), 3u) << "add must have executed";
    // The final step hits SYS.
    EXPECT_EQ(dbg->step(), StopReason::Sys);
    EXPECT_TRUE(dbg->finished());
    EXPECT_EQ(dbg->stopCode(), isa::SysCode::Halt);
    EXPECT_EQ(dbg->steps(), 4u);
}

TEST_F(DebuggerTest, BreakpointStopsCont)
{
    load(R"(
        main:
            li t0, 10
        loop:
            addi t0, t0, -1
            bnez t0, loop
        after:
            sys 3
    )");
    dbg->setBreakpoint(prog.symbols.at("after"));
    EXPECT_EQ(dbg->cont(), StopReason::Breakpoint);
    EXPECT_EQ(dbg->pc(), prog.symbols.at("after"));
    EXPECT_EQ(cpu.reg(5), 0u) << "loop ran to completion";
    EXPECT_EQ(dbg->cont(), StopReason::Sys);
}

TEST_F(DebuggerTest, BreakpointInLoopHitsRepeatedly)
{
    load(R"(
        main:
            li t0, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 3
    )");
    uint32_t loop_addr = prog.symbols.at("loop");
    dbg->setBreakpoint(loop_addr);
    int hits = 0;
    while (dbg->cont() == StopReason::Breakpoint)
        hits++;
    // Entered at loop 3 times; the first entry is from main's li
    // (counted), then two back edges.
    EXPECT_EQ(hits, 3);
}

TEST_F(DebuggerTest, FaultIsCaptured)
{
    load(R"(
        main:
            li t0, 0x00080000
            lw t1, 0(t0)
            sys 3
    )");
    EXPECT_EQ(dbg->cont(), StopReason::Fault);
    EXPECT_TRUE(dbg->finished());
    EXPECT_NE(dbg->faultMessage().find("unmapped"),
              std::string::npos);
}

TEST_F(DebuggerTest, ReplStepAndInspect)
{
    load(R"(
        main:
            li t0, 0x42
            sys 3
    )");
    std::stringstream in("r\ns\nr\nq\n");
    std::stringstream out;
    dbg->repl(in, out);
    std::string text = out.str();
    // Initial pc display, register dumps, and the stepped value.
    EXPECT_NE(text.find("npe32 debugger"), std::string::npos);
    EXPECT_NE(text.find("addi"), std::string::npos);
    EXPECT_NE(text.find("0x00000042"), std::string::npos);
    EXPECT_NE(text.find("pc   "), std::string::npos);
}

TEST_F(DebuggerTest, ReplBreakContinueMemoryListing)
{
    load(R"(
        .equ DATA, 0x00100000
        main:
            li t0, DATA
            li t1, 0xabcd
            sh t1, 0(t0)
        after:
            sys 3
    )");
    std::stringstream in("b after\nc\nm 0x00100000 4\nl main 8\nq\n");
    std::stringstream out;
    dbg->repl(in, out);
    std::string text = out.str();
    EXPECT_NE(text.find("breakpoint at"), std::string::npos);
    EXPECT_NE(text.find("breakpoint\n"), std::string::npos);
    // Little-endian bytes of 0xabcd.
    EXPECT_NE(text.find("cd ab 00 00"), std::string::npos);
    // Listing marks the current instruction.
    EXPECT_NE(text.find("=> "), std::string::npos);
}

TEST_F(DebuggerTest, ReplEndsAtProgramExit)
{
    load("main: sys 2");
    std::stringstream in("c\n");
    std::stringstream out;
    dbg->repl(in, out);
    EXPECT_NE(out.str().find("program ended: sys 2"),
              std::string::npos);
}

TEST_F(DebuggerTest, ReplHandlesBadCommands)
{
    load("main: nop\nsys 3");
    std::stringstream in("frob\nb\nm\nq\n");
    std::stringstream out;
    dbg->repl(in, out);
    std::string text = out.str();
    EXPECT_NE(text.find("commands:"), std::string::npos);
    EXPECT_NE(text.find("usage: b"), std::string::npos);
    EXPECT_NE(text.find("usage: m"), std::string::npos);
}

TEST(CpuRunSlice, ResumesExactlyWhereItStopped)
{
    Memory mem;
    Cpu cpu(mem);
    isa::Program prog = isa::Assembler(layout::textBase).assemble(R"(
        main:
            li t0, 0
            addi t0, t0, 1
            addi t0, t0, 1
            addi t0, t0, 1
            sys 3
    )");
    cpu.loadProgram(prog);
    RunResult slice = cpu.runSlice(prog.entry("main"), 2);
    EXPECT_TRUE(slice.hitBudget);
    EXPECT_EQ(slice.instCount, 2u);
    RunResult rest = cpu.runSlice(slice.nextPc, 1000);
    EXPECT_FALSE(rest.hitBudget);
    EXPECT_EQ(cpu.reg(5), 3u);
    EXPECT_EQ(slice.instCount + rest.instCount, 5u);
}

} // namespace
