/**
 * @file
 * Interpreter tests: instruction semantics, control flow, calls,
 * memory operations, SYS handling, and fault injection.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/cpu.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::sim;

class CpuTest : public ::testing::Test
{
  protected:
    /** Assemble and load; returns the entry address. */
    uint32_t
    loadAsm(const std::string &src)
    {
        isa::Program prog =
            isa::Assembler(layout::textBase).assemble(src, "cputest");
        cpu.loadProgram(prog);
        return prog.hasSymbol("main") ? prog.entry() : prog.baseAddr;
    }

    RunResult
    runAsm(const std::string &src, uint64_t budget = 1'000'000)
    {
        return cpu.run(loadAsm(src), budget);
    }

    Memory mem;
    Cpu cpu{mem};
};

TEST_F(CpuTest, ArithmeticBasics)
{
    runAsm(R"(
        li t0, 7
        li t1, 5
        add t2, t0, t1      # 12
        sub t3, t0, t1      # 2
        mul t4, t0, t1      # 35
        sys 3
    )");
    EXPECT_EQ(cpu.reg(7), 12u);
    EXPECT_EQ(cpu.reg(8), 2u);
    EXPECT_EQ(cpu.reg(9), 35u);
}

TEST_F(CpuTest, LogicAndShifts)
{
    runAsm(R"(
        li t0, 0x0ff0
        li t1, 0x00ff
        and t2, t0, t1      # 0x00f0
        or  t3, t0, t1      # 0x0fff
        xor t4, t0, t1      # 0x0f0f
        li  t5, 4
        sll s0, t1, t5      # 0x0ff0
        srl s1, t0, t5      # 0x00ff
        sys 3
    )");
    EXPECT_EQ(cpu.reg(7), 0x00f0u);
    EXPECT_EQ(cpu.reg(8), 0x0fffu);
    EXPECT_EQ(cpu.reg(9), 0x0f0fu);
    EXPECT_EQ(cpu.reg(11), 0x0ff0u);
    EXPECT_EQ(cpu.reg(12), 0x00ffu);
}

TEST_F(CpuTest, ArithmeticShiftIsSigned)
{
    runAsm(R"(
        li t0, -16
        li t1, 2
        sra t2, t0, t1     # -4
        srl t3, t0, t1     # large positive
        srai t4, t0, 4     # -1
        sys 3
    )");
    EXPECT_EQ(static_cast<int32_t>(cpu.reg(7)), -4);
    EXPECT_EQ(cpu.reg(8), 0xfffffff0u >> 2);
    EXPECT_EQ(static_cast<int32_t>(cpu.reg(9)), -1);
}

TEST_F(CpuTest, SignedVsUnsignedCompare)
{
    runAsm(R"(
        li t0, -1
        li t1, 1
        slt  t2, t0, t1    # -1 < 1 signed: 1
        sltu t3, t0, t1    # 0xffffffff < 1 unsigned: 0
        slti t4, t0, 0     # 1
        sltiu t5, t1, 2    # 1
        sys 3
    )");
    EXPECT_EQ(cpu.reg(7), 1u);
    EXPECT_EQ(cpu.reg(8), 0u);
    EXPECT_EQ(cpu.reg(9), 1u);
    EXPECT_EQ(cpu.reg(10), 1u);
}

TEST_F(CpuTest, RegisterZeroIsHardwired)
{
    runAsm(R"(
        li t0, 99
        add zero, t0, t0
        move t1, zero
        sys 3
    )");
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(6), 0u);
}

TEST_F(CpuTest, LoopComputesTriangularNumber)
{
    RunResult res = runAsm(R"(
        main:
            li t0, 10       # n
            li t1, 0        # sum
        loop:
            add t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            sys 3
    )");
    EXPECT_EQ(cpu.reg(6), 55u);
    // 2 setup + 10 iterations * 3 + 1 sys = 33.
    EXPECT_EQ(res.instCount, 33u);
}

TEST_F(CpuTest, BranchVariants)
{
    runAsm(R"(
        li t0, -5
        li t1, 5
        li s0, 0
        bge t0, t1, skip1     # not taken (signed)
        ori s0, s0, 1
    skip1:
        bgeu t0, t1, take2    # taken (unsigned: big)
        b fail
    take2:
        blt t0, t1, take3     # taken signed
        b fail
    take3:
        bltu t0, t1, fail     # not taken unsigned
        ori s0, s0, 2
        sys 3
    fail:
        li s0, 0xdead
        sys 3
    )");
    EXPECT_EQ(cpu.reg(11), 3u);
}

TEST_F(CpuTest, FunctionCallAndReturn)
{
    runAsm(R"(
        main:
            li a0, 21
            call double
            move s0, a0
            sys 3
        double:
            add a0, a0, a0
            ret
    )");
    EXPECT_EQ(cpu.reg(11), 42u);
}

TEST_F(CpuTest, NestedCallsWithStack)
{
    // f(n) = n <= 1 ? 1 : n * f(n-1), recursive with stack frames.
    runAsm(R"(
        main:
            li a0, 5
            call fact
            move s0, a0
            sys 3
        fact:
            li at, 2
            blt a0, at, base
            addi sp, sp, -8
            sw lr, 4(sp)
            sw a0, 0(sp)
            addi a0, a0, -1
            call fact
            lw t0, 0(sp)
            lw lr, 4(sp)
            addi sp, sp, 8
            mul a0, a0, t0
            ret
        base:
            li a0, 1
            ret
    )");
    EXPECT_EQ(cpu.reg(11), 120u);
}

TEST_F(CpuTest, LoadStoreWidths)
{
    runAsm(R"(
        .equ DATA, 0x00100000
        li  t0, DATA
        li  t1, 0x12345678
        sw  t1, 0(t0)
        lbu t2, 0(t0)       # LE: 0x78
        lbu t3, 3(t0)       # 0x12
        lhu t4, 0(t0)       # 0x5678
        lhu t5, 2(t0)       # 0x1234
        li  t1, 0xff
        sb  t1, 1(t0)
        lw  s0, 0(t0)       # 0x1234ff78
        sys 3
    )");
    EXPECT_EQ(cpu.reg(7), 0x78u);
    EXPECT_EQ(cpu.reg(8), 0x12u);
    EXPECT_EQ(cpu.reg(9), 0x5678u);
    EXPECT_EQ(cpu.reg(10), 0x1234u);
    EXPECT_EQ(cpu.reg(11), 0x1234ff78u);
}

TEST_F(CpuTest, SignExtendingLoads)
{
    runAsm(R"(
        .equ DATA, 0x00100000
        li t0, DATA
        li t1, 0x80f0
        sh t1, 0(t0)
        lh t2, 0(t0)        # sign-extends to 0xffff80f0
        lb t3, 1(t0)        # 0x80 -> -128
        lbu t4, 1(t0)       # 0x80
        sys 3
    )");
    EXPECT_EQ(cpu.reg(7), 0xffff80f0u);
    EXPECT_EQ(static_cast<int32_t>(cpu.reg(8)), -128);
    EXPECT_EQ(cpu.reg(9), 0x80u);
}

TEST_F(CpuTest, SysStopCodesAndArg)
{
    RunResult res = runAsm(R"(
        li a1, 3            # output interface
        sys 1               # SEND
    )");
    EXPECT_EQ(res.stopCode, isa::SysCode::Send);
    EXPECT_EQ(res.stopArg, 3u);

    res = runAsm("sys 2");
    EXPECT_EQ(res.stopCode, isa::SysCode::Drop);
}

TEST_F(CpuTest, InitialStackPointer)
{
    runAsm("sys 3");
    EXPECT_EQ(cpu.reg(isa::regSp), layout::stackTop);
}

TEST_F(CpuTest, JalrIndirectCall)
{
    runAsm(R"(
        main:
            la t0, fn
            jalr t0
            sys 3
        fn:
            li s0, 77
            ret
    )");
    EXPECT_EQ(cpu.reg(11), 77u);
}

// ---- fault injection ----

TEST_F(CpuTest, RunawayLoopHitsBudget)
{
    EXPECT_THROW(runAsm("loop: b loop", 1000), BudgetError);
}

TEST_F(CpuTest, UnmappedLoadFaults)
{
    EXPECT_THROW(runAsm(R"(
        li t0, 0x00080000   # hole between text and data regions
        lw t1, 0(t0)
        sys 3
    )"), MemoryError);
}

TEST_F(CpuTest, MisalignedLoadFaults)
{
    EXPECT_THROW(runAsm(R"(
        li t0, 0x00100001
        lw t1, 0(t0)
        sys 3
    )"), AlignmentError);
}

TEST_F(CpuTest, JumpOutsideProgramFaults)
{
    EXPECT_THROW(runAsm(R"(
        li t0, 0x00100000
        jr t0
    )"), MemoryError);
}

TEST_F(CpuTest, MisalignedJumpFaults)
{
    EXPECT_THROW(runAsm(R"(
        main:
            la t0, main
            addi t0, t0, 2
            jr t0
    )"), AlignmentError);
}

TEST_F(CpuTest, FallingOffTheEndFaults)
{
    // No SYS: execution runs past the last instruction.
    EXPECT_THROW(runAsm("nop\nnop"), MemoryError);
}

TEST_F(CpuTest, RunWithoutProgramIsFatal)
{
    Memory other_mem;
    Cpu fresh(other_mem);
    EXPECT_THROW(fresh.run(layout::textBase), FatalError);
}

TEST_F(CpuTest, ProgramTooBigForTextRejected)
{
    isa::Program prog;
    prog.baseAddr = layout::textBase;
    prog.words.assign(layout::textSize / 4 + 1, 0);
    EXPECT_THROW(cpu.loadProgram(prog), FatalError);
}

TEST_F(CpuTest, LifetimeInstructionCountAccumulates)
{
    runAsm("nop\nsys 3");
    uint64_t first = cpu.totalInstCount();
    EXPECT_EQ(first, 2u);
    cpu.run(cpu.program().baseAddr);
    EXPECT_EQ(cpu.totalInstCount(), 4u);
}

} // namespace
