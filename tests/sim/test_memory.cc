/**
 * @file
 * Simulated memory tests: regions, widths, endianness, bounds.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "sim/memory.hh"

namespace
{

using namespace pb;
using namespace pb::sim;
using namespace pb::sim::layout;

TEST(Memory, RegionClassification)
{
    Memory mem;
    EXPECT_EQ(mem.classify(textBase), MemRegion::Text);
    EXPECT_EQ(mem.classify(textBase + textSize - 1), MemRegion::Text);
    EXPECT_EQ(mem.classify(dataBase), MemRegion::Data);
    EXPECT_EQ(mem.classify(packetBase + 100), MemRegion::Packet);
    EXPECT_EQ(mem.classify(stackTop), MemRegion::Stack);
    EXPECT_EQ(mem.classify(0), MemRegion::Unmapped);
    EXPECT_EQ(mem.classify(textBase + textSize), MemRegion::Unmapped);
    EXPECT_EQ(mem.classify(0xffffffff), MemRegion::Unmapped);
}

TEST(Memory, NonPacketDataPredicate)
{
    EXPECT_TRUE(isNonPacketData(MemRegion::Data));
    EXPECT_TRUE(isNonPacketData(MemRegion::Stack));
    EXPECT_FALSE(isNonPacketData(MemRegion::Packet));
    EXPECT_FALSE(isNonPacketData(MemRegion::Text));
}

TEST(Memory, ReadWriteWidthsLittleEndian)
{
    Memory mem;
    mem.write32(dataBase, 0x11223344);
    EXPECT_EQ(mem.read8(dataBase), 0x44);
    EXPECT_EQ(mem.read8(dataBase + 3), 0x11);
    EXPECT_EQ(mem.read16(dataBase), 0x3344);
    EXPECT_EQ(mem.read16(dataBase + 2), 0x1122);
    EXPECT_EQ(mem.read32(dataBase), 0x11223344u);

    mem.write16(dataBase + 4, 0xbeef);
    EXPECT_EQ(mem.read8(dataBase + 4), 0xef);
    mem.write8(dataBase + 6, 0x7f);
    EXPECT_EQ(mem.read8(dataBase + 6), 0x7f);
}

TEST(Memory, FreshMemoryIsZero)
{
    Memory mem;
    EXPECT_EQ(mem.read32(dataBase + 1024), 0u);
    EXPECT_EQ(mem.read8(packetBase), 0u);
}

TEST(Memory, BlockCopyRoundTrip)
{
    Memory mem;
    uint8_t src[37];
    for (size_t i = 0; i < sizeof(src); i++)
        src[i] = static_cast<uint8_t>(i * 3 + 1);
    mem.writeBlock(packetBase + 5, src, sizeof(src));
    uint8_t dst[37] = {};
    mem.readBlock(packetBase + 5, dst, sizeof(dst));
    EXPECT_EQ(std::memcmp(src, dst, sizeof(src)), 0);
}

TEST(Memory, FillAndReset)
{
    Memory mem;
    mem.fill(dataBase, 16, 0xaa);
    EXPECT_EQ(mem.read8(dataBase + 15), 0xaa);
    EXPECT_EQ(mem.read8(dataBase + 16), 0x00);
    mem.reset();
    EXPECT_EQ(mem.read8(dataBase + 15), 0x00);
}

TEST(Memory, UnmappedAccessThrows)
{
    Memory mem;
    EXPECT_THROW(mem.read8(0), MemoryError);
    EXPECT_THROW(mem.write32(0xdead0000, 1), MemoryError);
    uint8_t buf[4];
    EXPECT_THROW(mem.readBlock(0x50, buf, 4), MemoryError);
}

TEST(Memory, CrossRegionAccessThrows)
{
    Memory mem;
    // Last byte is fine, one past the end is not.
    EXPECT_NO_THROW(mem.read8(packetBase + packetSize - 1));
    EXPECT_THROW(mem.read8(packetBase + packetSize), MemoryError);
    uint8_t buf[8];
    EXPECT_THROW(mem.readBlock(packetBase + packetSize - 4, buf, 8),
                 MemoryError);
}

TEST(Memory, MisalignedAccessThrows)
{
    Memory mem;
    EXPECT_THROW(mem.read32(dataBase + 2), AlignmentError);
    EXPECT_THROW(mem.read16(dataBase + 1), AlignmentError);
    EXPECT_THROW(mem.write32(dataBase + 1, 0), AlignmentError);
    EXPECT_THROW(mem.write16(dataBase + 3, 0), AlignmentError);
}

TEST(Memory, ZeroLengthBlockOpsAreNoops)
{
    Memory mem;
    EXPECT_NO_THROW(mem.writeBlock(dataBase, nullptr, 0));
    EXPECT_NO_THROW(mem.readBlock(dataBase, nullptr, 0));
    EXPECT_NO_THROW(mem.fill(dataBase, 0));
}

TEST(Memory, FreshRegionsAreClean)
{
    Memory mem;
    for (MemRegion region : {MemRegion::Text, MemRegion::Data,
                             MemRegion::Packet, MemRegion::Stack}) {
        auto [lo, hi] = mem.dirtyExtent(region);
        EXPECT_GE(lo, hi) << static_cast<int>(region);
    }
}

TEST(Memory, DirtyExtentCoversWrites)
{
    Memory mem;
    mem.write32(dataBase + 64, 0x12345678);
    auto [lo, hi] = mem.dirtyExtent(MemRegion::Data);
    EXPECT_EQ(lo, 64u);
    EXPECT_EQ(hi, 68u);

    // The extent widens to the union of all writes, and block ops
    // and fills mark it too.
    mem.write8(dataBase + 8, 0xff);
    uint8_t buf[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    mem.writeBlock(dataBase + 200, buf, sizeof(buf));
    std::tie(lo, hi) = mem.dirtyExtent(MemRegion::Data);
    EXPECT_EQ(lo, 8u);
    EXPECT_EQ(hi, 210u);

    // Reads don't dirty anything.
    auto [plo, phi] = mem.dirtyExtent(MemRegion::Packet);
    mem.read32(packetBase);
    auto [plo2, phi2] = mem.dirtyExtent(MemRegion::Packet);
    EXPECT_EQ(plo, plo2);
    EXPECT_EQ(phi, phi2);
}

TEST(Memory, ResetZeroesOnlyDirtyBytesAndClearsExtent)
{
    Memory mem;
    mem.write32(stackBase + 128, 0xdeadbeef);
    mem.fill(packetBase, 32, 0x55);
    mem.reset();
    EXPECT_EQ(mem.read32(stackBase + 128), 0u);
    EXPECT_EQ(mem.read8(packetBase + 31), 0u);
    for (MemRegion region : {MemRegion::Data, MemRegion::Packet,
                             MemRegion::Stack}) {
        auto [lo, hi] = mem.dirtyExtent(region);
        EXPECT_GE(lo, hi) << static_cast<int>(region);
    }
    // And the memory is writable/readable as usual afterwards.
    mem.write32(dataBase, 42);
    EXPECT_EQ(mem.read32(dataBase), 42u);
}

} // namespace
