/**
 * @file
 * Selective-accounting tests: per-packet statistics, unique
 * instruction counting, memory-region classification, and run-level
 * coverage.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/accounting.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::sim;

class AccountingTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &src, RecorderConfig cfg = {})
    {
        prog = isa::Assembler(layout::textBase).assemble(src, "acct");
        cpu.loadProgram(prog);
        blocks = std::make_unique<BlockMap>(prog);
        rec = std::make_unique<PacketRecorder>(prog, *blocks, cfg);
        cpu.setObserver(rec.get());
    }

    PacketStats
    runPacket()
    {
        rec->beginPacket();
        cpu.run(prog.hasSymbol("main") ? prog.entry() : prog.baseAddr);
        return rec->endPacket();
    }

    isa::Program prog;
    Memory mem;
    Cpu cpu{mem};
    std::unique_ptr<BlockMap> blocks;
    std::unique_ptr<PacketRecorder> rec;
};

TEST_F(AccountingTest, CountsInstructionsPerPacket)
{
    load(R"(
        main:
            li t0, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 0
    )");
    PacketStats stats = runPacket();
    EXPECT_EQ(stats.instCount, 1u + 3 * 2 + 1);
    // Unique: 4 distinct instructions despite the loop.
    EXPECT_EQ(stats.uniqueInstCount, 4u);
}

TEST_F(AccountingTest, UniqueCountResetsBetweenPackets)
{
    load("main: nop\nnop\nsys 0");
    PacketStats a = runPacket();
    PacketStats b = runPacket();
    EXPECT_EQ(a.uniqueInstCount, 3u);
    EXPECT_EQ(b.uniqueInstCount, 3u) << "epoch must reset per packet";
}

TEST_F(AccountingTest, ClassifiesPacketVsNonPacketAccesses)
{
    load(R"(
        .equ PKT,  0x08000000
        .equ DATA, 0x00100000
        main:
            li t0, PKT
            li t1, DATA
            lw t2, 0(t0)        # packet read
            lw t3, 4(t0)        # packet read
            sw t2, 0(t1)        # non-packet write
            lw t4, 0(t1)        # non-packet read
            sb t2, 8(t0)        # packet write
            sys 0
    )");
    PacketStats stats = runPacket();
    EXPECT_EQ(stats.packetReads, 2u);
    EXPECT_EQ(stats.packetWrites, 1u);
    EXPECT_EQ(stats.nonPacketReads, 1u);
    EXPECT_EQ(stats.nonPacketWrites, 1u);
    EXPECT_EQ(stats.packetAccesses(), 3u);
    EXPECT_EQ(stats.nonPacketAccesses(), 2u);
}

TEST_F(AccountingTest, StackCountsAsNonPacket)
{
    load(R"(
        main:
            addi sp, sp, -4
            sw t0, 0(sp)
            lw t1, 0(sp)
            addi sp, sp, 4
            sys 0
    )");
    PacketStats stats = runPacket();
    EXPECT_EQ(stats.nonPacketReads, 1u);
    EXPECT_EQ(stats.nonPacketWrites, 1u);
    EXPECT_EQ(stats.packetAccesses(), 0u);
}

TEST_F(AccountingTest, BlockSetsRecordedWhenEnabled)
{
    RecorderConfig cfg;
    cfg.blockSets = true;
    load(R"(
        main:
            li t0, 2
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 0
    )", cfg);
    PacketStats stats = runPacket();
    // Three static blocks, all executed.
    EXPECT_EQ(blocks->numBlocks(), 3u);
    ASSERT_EQ(stats.blocks.size(), 3u);
    // Each block appears once even though the loop ran twice.
}

TEST_F(AccountingTest, BlockSetsSkipUntakenPath)
{
    RecorderConfig cfg;
    cfg.blockSets = true;
    load(R"(
        main:
            li t0, 1
            bnez t0, skip
            nop                 # never executed
        skip:
            sys 0
    )", cfg);
    PacketStats stats = runPacket();
    // Executed blocks: [li,bnez] and [sys]; the nop block is skipped.
    EXPECT_EQ(stats.blocks.size(), 2u);
    EXPECT_LT(stats.blocks.size(), blocks->numBlocks());
}

TEST_F(AccountingTest, InstTraceWhenEnabled)
{
    RecorderConfig cfg;
    cfg.instTrace = true;
    load("main: nop\nnop\nsys 0", cfg);
    PacketStats stats = runPacket();
    ASSERT_EQ(stats.instTrace.size(), 3u);
    EXPECT_EQ(stats.instTrace[0], layout::textBase);
    EXPECT_EQ(stats.instTrace[1], layout::textBase + 4);
    EXPECT_EQ(stats.instTrace[2], layout::textBase + 8);
}

TEST_F(AccountingTest, MemTraceWhenEnabled)
{
    RecorderConfig cfg;
    cfg.memTrace = true;
    load(R"(
        .equ PKT, 0x08000000
        main:
            li t0, PKT
            lw t1, 0(t0)
            sw t1, 64(t0)
            sys 0
    )", cfg);
    PacketStats stats = runPacket();
    ASSERT_EQ(stats.memTrace.size(), 2u);
    EXPECT_FALSE(stats.memTrace[0].event.isStore);
    EXPECT_TRUE(stats.memTrace[1].event.isStore);
    EXPECT_EQ(stats.memTrace[0].event.region, MemRegion::Packet);
    EXPECT_EQ(stats.memTrace[1].event.addr, layout::packetBase + 64);
    // li expands to two words; the lw is instruction 3, sw is 4.
    EXPECT_EQ(stats.memTrace[0].instIndex, 3u);
    EXPECT_EQ(stats.memTrace[1].instIndex, 4u);
}

TEST_F(AccountingTest, TracesEmptyWhenDisabled)
{
    load(R"(
        .equ PKT, 0x08000000
        main:
            li t0, PKT
            lw t1, 0(t0)
            sys 0
    )");
    PacketStats stats = runPacket();
    EXPECT_TRUE(stats.instTrace.empty());
    EXPECT_TRUE(stats.memTrace.empty());
    EXPECT_TRUE(stats.blocks.empty());
}

TEST_F(AccountingTest, RunLevelMemoryCoverage)
{
    load(R"(
        .equ DATA, 0x00100000
        main:
            li t0, DATA
            sw t1, 0(t0)
            sw t1, 0(t0)        # same word: no new coverage
            sb t1, 100(t0)
            sys 0
    )");
    runPacket();
    // 5 instructions (li is one word: DATA fits? 0x00100000 needs
    // lui+ori -> li is 2 words), so 6 words * 4 bytes of text.
    EXPECT_EQ(rec->instMemoryBytes(), prog.words.size() * 4);
    EXPECT_EQ(rec->dataMemoryBytes(), 4u + 1u);
    runPacket();
    EXPECT_EQ(rec->dataMemoryBytes(), 5u) << "coverage is run-level";
}

TEST_F(AccountingTest, InstructionMixHistogram)
{
    load(R"(
        .equ DATA, 0x00100000
        main:
            li t0, DATA         # 2 alu (lui+ori)
            lw t1, 0(t0)        # load
            sw t1, 4(t0)        # store
            beq t1, zero, next  # branch (taken)
        next:
            mul t2, t1, t1      # mul
            sys 0               # sys
    )");
    runPacket();
    const auto &mix = rec->classCounts();
    EXPECT_EQ(mix[static_cast<size_t>(isa::InstClass::IntAlu)], 2u);
    EXPECT_EQ(mix[static_cast<size_t>(isa::InstClass::Load)], 1u);
    EXPECT_EQ(mix[static_cast<size_t>(isa::InstClass::Store)], 1u);
    EXPECT_EQ(mix[static_cast<size_t>(isa::InstClass::Branch)], 1u);
    EXPECT_EQ(mix[static_cast<size_t>(isa::InstClass::IntMul)], 1u);
    EXPECT_EQ(mix[static_cast<size_t>(isa::InstClass::Sys)], 1u);
    EXPECT_EQ(rec->totalInsts(), 7u);
}

TEST_F(AccountingTest, MismatchedBeginEndPanics)
{
    load("main: sys 0");
    EXPECT_THROW(rec->endPacket(), PanicError);
    rec->beginPacket();
    EXPECT_THROW(rec->beginPacket(), PanicError);
}

TEST_F(AccountingTest, FanoutForwardsToAllSinks)
{
    load("main: nop\nsys 0");
    PacketRecorder second(prog, *blocks);
    FanoutObserver fan;
    fan.add(rec.get());
    fan.add(&second);
    cpu.setObserver(&fan);
    rec->beginPacket();
    second.beginPacket();
    cpu.run(prog.entry());
    PacketStats a = rec->endPacket();
    PacketStats b = second.endPacket();
    EXPECT_EQ(a.instCount, 2u);
    EXPECT_EQ(b.instCount, 2u);
}

} // namespace
