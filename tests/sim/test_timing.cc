/**
 * @file
 * Pipeline timing model tests with hand-computed cycle counts.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/memmap.hh"
#include "sim/timing.hh"

namespace
{

using namespace pb;
using namespace pb::sim;

/** Params with all penalties zero except the one under test. */
TimingParams
only(uint32_t TimingParams::*field, uint32_t value)
{
    TimingParams params;
    params.loadUseStall = 0;
    params.mulLatency = 0;
    params.jumpBubble = 0;
    params.branchMispredict = 0;
    params.icacheMissPenalty = 0;
    params.dcacheMissPenalty = 0;
    params.*field = value;
    return params;
}

class TimingTest : public ::testing::Test
{
  protected:
    uint64_t
    run(const std::string &src, TimingParams params)
    {
        isa::Program prog =
            isa::Assembler(layout::textBase).assemble(src);
        Memory mem;
        Cpu cpu(mem);
        cpu.loadProgram(prog);
        timer = std::make_unique<PipelineTimer>(params);
        cpu.setObserver(timer.get());
        cpu.run(prog.hasSymbol("main") ? prog.entry()
                                       : prog.baseAddr);
        return timer->cycles();
    }

    std::unique_ptr<PipelineTimer> timer;
};

TEST_F(TimingTest, BaselineOneCyclePerInstruction)
{
    TimingParams params = only(&TimingParams::loadUseStall, 0);
    uint64_t cycles = run("nop\nnop\nnop\nsys 3", params);
    EXPECT_EQ(cycles, 4u);
    EXPECT_EQ(timer->insts(), 4u);
    EXPECT_DOUBLE_EQ(timer->cpi(), 1.0);
}

TEST_F(TimingTest, LoadUseStallDetected)
{
    TimingParams params = only(&TimingParams::loadUseStall, 2);
    // lw t0 then immediately add using t0: stall.
    uint64_t stalled = run(R"(
        .equ DATA, 0x00100000
        main:
            li  t1, DATA
            lw  t0, 0(t1)
            add t2, t0, t1
            sys 3
    )", params);
    // Same work with an independent instruction in between: no stall.
    uint64_t scheduled = run(R"(
        .equ DATA, 0x00100000
        main:
            li  t1, DATA
            lw  t0, 0(t1)
            add t3, t1, t1
            add t2, t0, t1
            sys 3
    )", params);
    EXPECT_EQ(stalled, 5u + 2u);   // li(2) lw add sys + stall
    EXPECT_EQ(scheduled, 6u);      // one more inst, no stall
}

TEST_F(TimingTest, StoreSourceCountsForInterlock)
{
    TimingParams params = only(&TimingParams::loadUseStall, 1);
    uint64_t cycles = run(R"(
        .equ DATA, 0x00100000
        main:
            li  t1, DATA
            lw  t0, 0(t1)
            sw  t0, 4(t1)       # store uses the loaded value
            sys 3
    )", params);
    EXPECT_EQ(cycles, 5u + 1u);
}

TEST_F(TimingTest, MulLatency)
{
    TimingParams params = only(&TimingParams::mulLatency, 3);
    uint64_t cycles = run("mul t0, t1, t2\nsys 3", params);
    EXPECT_EQ(cycles, 2u + 3u);
}

TEST_F(TimingTest, JumpBubble)
{
    TimingParams params = only(&TimingParams::jumpBubble, 1);
    uint64_t cycles = run(R"(
        main:
            j next
        next:
            sys 3
    )", params);
    EXPECT_EQ(cycles, 2u + 1u);
}

TEST_F(TimingTest, BranchMispredictPenalty)
{
    TimingParams params = only(&TimingParams::branchMispredict, 5);
    // A loop branch taken 9 times then not taken: the bimodal
    // predictor (initialized weakly-not-taken) mispredicts the first
    // taken resolution and the final fall-through.
    uint64_t cycles = run(R"(
        main:
            li t0, 10
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 3
    )", params);
    // Instructions: 1 + 10*2 + 1 = 22; mispredicts: 2.
    EXPECT_EQ(cycles, 22u + 2 * 5u);
}

TEST_F(TimingTest, CacheMissPenalties)
{
    TimingParams params = only(&TimingParams::dcacheMissPenalty, 10);
    // Two loads from the same line: one cold miss.
    uint64_t cycles = run(R"(
        .equ DATA, 0x00100000
        main:
            li t1, DATA
            lw t0, 0(t1)
            lw t2, 4(t1)
            sys 3
    )", params);
    EXPECT_EQ(cycles, 5u + 10u);

    // Instruction fetches: a straight-line run of 8 instructions
    // spans one 32-byte line -> 1 icache miss.
    params = only(&TimingParams::icacheMissPenalty, 7);
    cycles = run("nop\nnop\nnop\nnop\nnop\nnop\nnop\nsys 3", params);
    EXPECT_EQ(cycles, 8u + 7u);
}

TEST_F(TimingTest, MarkBracketsPerPacketCycles)
{
    TimingParams params = only(&TimingParams::loadUseStall, 0);
    isa::Program prog = isa::Assembler(layout::textBase)
                            .assemble("main: nop\nnop\nsys 3");
    Memory mem;
    Cpu cpu(mem);
    cpu.loadProgram(prog);
    PipelineTimer pipeline(params);
    cpu.setObserver(&pipeline);
    cpu.run(prog.entry());
    pipeline.mark();
    cpu.run(prog.entry());
    EXPECT_EQ(pipeline.cyclesSinceMark(), 3u);
    EXPECT_EQ(pipeline.cycles(), 6u);
}

TEST_F(TimingTest, RealisticCpiIsPlausible)
{
    // Default params over a loopy program: CPI in a sane band.
    TimingParams params;
    run(R"(
        .equ DATA, 0x00100000
        main:
            li t0, 200
            li t1, DATA
        loop:
            lw t2, 0(t1)
            add t2, t2, t0
            sw t2, 0(t1)
            addi t0, t0, -1
            bnez t0, loop
            sys 3
    )", params);
    EXPECT_GT(timer->cpi(), 1.0);
    EXPECT_LT(timer->cpi(), 2.5);
}

} // namespace
