/**
 * @file
 * Differential tests of the interpreter dispatch loops.
 *
 * The block-stepped loop (and its threaded no-observer variant) must
 * be bit-identical to the per-instruction reference loop: same
 * RunResult, same registers, same per-packet statistics, same
 * observer event stream, and — for every fault class — the same
 * exception type, message, and architectural state at the throw.
 * These tests pin that equivalence down both on the real workload
 * programs (every application, hundreds of synthetic packets) and on
 * a hand-built fault matrix.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/experiments.hh"
#include "isa/assembler.hh"
#include "net/tracegen.hh"
#include "sim/accounting.hh"
#include "sim/bblock.hh"
#include "sim/cpu.hh"
#include "sim/memmap.hh"
#include "sim/simerror.hh"

namespace
{

using namespace pb;
using namespace pb::sim;

/** One observer callback, flattened for comparison. */
struct Event
{
    enum Kind : uint8_t { Inst, Mem, Branch } kind;
    uint32_t a; ///< Inst/Branch: pc; Mem: address
    uint32_t b; ///< Inst: opcode; Mem: size; Branch: target
    uint32_t c; ///< Mem: isStore; Branch: taken
    uint32_t d; ///< Mem: region

    bool
    operator==(const Event &o) const
    {
        return kind == o.kind && a == o.a && b == o.b && c == o.c &&
               d == o.d;
    }
};

/** Records the full execution stream for stream-equality checks. */
class RecordingObserver : public ExecObserver
{
  public:
    std::vector<Event> events;

    void
    onInst(uint32_t addr, const isa::Inst &inst) override
    {
        events.push_back({Event::Inst, addr,
                          static_cast<uint32_t>(inst.op), 0, 0});
    }

    void
    onMemAccess(const MemAccessEvent &event) override
    {
        events.push_back({Event::Mem, event.addr, event.size,
                          event.isStore,
                          static_cast<uint32_t>(event.region)});
    }

    void
    onBranch(uint32_t addr, bool taken, uint32_t target) override
    {
        events.push_back({Event::Branch, addr, target, taken, 0});
    }
};

void
expectStatsEqual(const PacketStats &a, const PacketStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.instCount, b.instCount) << what;
    EXPECT_EQ(a.uniqueInstCount, b.uniqueInstCount) << what;
    EXPECT_EQ(a.packetReads, b.packetReads) << what;
    EXPECT_EQ(a.packetWrites, b.packetWrites) << what;
    EXPECT_EQ(a.nonPacketReads, b.nonPacketReads) << what;
    EXPECT_EQ(a.nonPacketWrites, b.nonPacketWrites) << what;
    EXPECT_EQ(a.blocks, b.blocks) << what;
}

/**
 * One application on one simulated machine, driven with the
 * framework's calling convention (mirrors PacketBench's per-packet
 * accounting boundary).
 */
struct AppHarness
{
    sim::Memory mem;
    sim::Cpu cpu{mem};
    uint32_t entry = 0;
    std::unique_ptr<core::Application> app;
    std::unique_ptr<sim::BlockMap> blockMap;
    std::unique_ptr<sim::PacketRecorder> rec;
    sim::FanoutObserver fanout;
    RecordingObserver recording;
    uint32_t prevLen = 0;

    /** @p wired selects what setObserver() sees (solo vs fan-out). */
    enum class Obs { None, RecorderOnly, RecorderAndStream };

    AppHarness(an::AppKind kind, DispatchMode mode, Obs wired)
    {
        an::ExperimentConfig cfg;
        app = an::makeApp(kind, cfg);
        isa::Program prog = app->setup(mem);
        cpu.loadProgram(prog);
        entry = prog.entry("main");
        blockMap = std::make_unique<sim::BlockMap>(prog);
        RecorderConfig rcfg;
        rcfg.blockSets = true;
        rec = std::make_unique<sim::PacketRecorder>(prog, *blockMap,
                                                    rcfg);
        cpu.setDispatchMode(mode);
        switch (wired) {
          case Obs::None:
            break;
          case Obs::RecorderOnly:
            // Single sink: setObserver resolves through the fan-out
            // straight to the devirtualized recorder path.
            fanout.add(rec.get());
            cpu.setObserver(&fanout);
            break;
          case Obs::RecorderAndStream:
            // Two sinks: the generic virtual-dispatch path.
            fanout.add(rec.get());
            fanout.add(&recording);
            cpu.setObserver(&fanout);
            break;
        }
    }

    RunResult
    runOne(const net::Packet &packet, PacketStats *stats)
    {
        uint32_t l3_len = packet.l3Len();
        if (prevLen > l3_len)
            mem.fill(sim::layout::packetBase + l3_len,
                     prevLen - l3_len);
        mem.writeBlock(sim::layout::packetBase, packet.l3(), l3_len);
        prevLen = l3_len;
        cpu.resetRegs();
        cpu.setReg(isa::regA0, sim::layout::packetBase);
        cpu.setReg(isa::regA1, l3_len);
        if (stats)
            rec->beginPacket();
        sim::RunResult result = cpu.run(entry, 10'000'000);
        if (stats)
            *stats = rec->endPacket();
        return result;
    }
};

/**
 * Every application, hundreds of packets: the reference loop, the
 * block-stepped loop (in its no-observer, devirtualized-recorder,
 * and generic-observer configurations), and the recorded statistics
 * and event streams must all agree exactly.
 */
TEST(InterpDiff, AppsAgreeAcrossDispatchModesAndObservers)
{
    constexpr uint32_t numPackets = 200;
    for (an::AppKind kind : an::allAppKinds) {
        std::vector<net::Packet> packets;
        net::SyntheticTrace gen(net::Profile::MRA, numPackets, 7);
        while (auto p = gen.next())
            packets.push_back(*p);

        using Obs = AppHarness::Obs;
        AppHarness refFull(kind, DispatchMode::Reference,
                           Obs::RecorderAndStream);
        AppHarness blkFull(kind, DispatchMode::Blocked,
                           Obs::RecorderAndStream);
        AppHarness blkSolo(kind, DispatchMode::Blocked,
                           Obs::RecorderOnly);
        AppHarness blkNone(kind, DispatchMode::Blocked, Obs::None);

        std::string title = an::appTitle(kind);
        for (uint32_t i = 0; i < packets.size(); i++) {
            std::string ctx =
                title + " packet " + std::to_string(i);
            const net::Packet &p = packets[i];

            PacketStats sRef, sFull, sSolo;
            RunResult rRef = refFull.runOne(p, &sRef);
            RunResult rFull = blkFull.runOne(p, &sFull);
            RunResult rSolo = blkSolo.runOne(p, &sSolo);
            RunResult rNone = blkNone.runOne(p, nullptr);

            for (const RunResult *r : {&rFull, &rSolo, &rNone}) {
                EXPECT_EQ(static_cast<int>(rRef.stopCode),
                          static_cast<int>(r->stopCode))
                    << ctx;
                EXPECT_EQ(rRef.stopArg, r->stopArg) << ctx;
                EXPECT_EQ(rRef.instCount, r->instCount) << ctx;
                EXPECT_EQ(rRef.hitBudget, r->hitBudget) << ctx;
            }
            for (unsigned r = 0; r < isa::numRegs; r++) {
                EXPECT_EQ(refFull.cpu.reg(r), blkFull.cpu.reg(r))
                    << ctx << " r" << r;
                EXPECT_EQ(refFull.cpu.reg(r), blkSolo.cpu.reg(r))
                    << ctx << " r" << r;
                EXPECT_EQ(refFull.cpu.reg(r), blkNone.cpu.reg(r))
                    << ctx << " r" << r;
            }
            expectStatsEqual(sRef, sFull, ctx + " (generic)");
            expectStatsEqual(sRef, sSolo, ctx + " (solo)");
            if (refFull.recording.events !=
                blkFull.recording.events) {
                FAIL() << ctx << ": event streams diverge ("
                       << refFull.recording.events.size() << " vs "
                       << blkFull.recording.events.size()
                       << " events)";
            }
            refFull.recording.events.clear();
            blkFull.recording.events.clear();
        }

        // Run-level aggregates accumulated by the recorders.
        EXPECT_EQ(refFull.rec->totalInsts(),
                  blkFull.rec->totalInsts())
            << title;
        EXPECT_EQ(refFull.rec->instMemoryBytes(),
                  blkFull.rec->instMemoryBytes())
            << title;
        EXPECT_EQ(refFull.rec->dataMemoryBytes(),
                  blkFull.rec->dataMemoryBytes())
            << title;
        EXPECT_EQ(refFull.rec->classCounts(),
                  blkFull.rec->classCounts())
            << title;
        EXPECT_EQ(refFull.cpu.totalInstCount(),
                  blkFull.cpu.totalInstCount())
            << title;
    }
}

// ---------------------------------------------------------------------
// Fault matrix: hand-built programs that fault, run under every
// dispatch configuration.  Exception type, message, and the register
// file at the throw must match the reference loop exactly.
// ---------------------------------------------------------------------

/** How one faulting run ended. */
struct FaultOutcome
{
    std::string type;    ///< typeid-independent label, set by caller
    std::string message; ///< e..what()
    uint32_t regs[isa::numRegs];
};

class FaultMatrix : public ::testing::Test
{
  protected:
    /** The observer configurations every fault case runs under. */
    enum class Mode { Ref, BlockedNone, BlockedRecorder,
                      BlockedGeneric };

    static const char *
    modeName(Mode m)
    {
        switch (m) {
          case Mode::Ref: return "reference";
          case Mode::BlockedNone: return "blocked/none";
          case Mode::BlockedRecorder: return "blocked/recorder";
          case Mode::BlockedGeneric: return "blocked/generic";
        }
        return "?";
    }

    /**
     * Run @p src under @p mode; on the expected fault @p ErrT,
     * capture the message and register file.
     */
    template <typename ErrT>
    FaultOutcome
    runExpectingFault(const std::string &src, Mode mode,
                      uint64_t budget = 1000)
    {
        isa::Program prog = isa::Assembler(sim::layout::textBase)
                                .assemble(src, "faulttest");
        Memory mem;
        Cpu cpu{mem};
        cpu.loadProgram(prog);
        BlockMap blocks(prog);
        PacketRecorder rec(prog, blocks);
        RecordingObserver stream;
        FanoutObserver fanout;
        switch (mode) {
          case Mode::Ref:
            cpu.setDispatchMode(DispatchMode::Reference);
            break;
          case Mode::BlockedNone:
            break;
          case Mode::BlockedRecorder:
            fanout.add(&rec);
            cpu.setObserver(&fanout);
            rec.beginPacket();
            break;
          case Mode::BlockedGeneric:
            fanout.add(&rec);
            fanout.add(&stream);
            cpu.setObserver(&fanout);
            rec.beginPacket();
            break;
        }
        uint32_t entry = prog.hasSymbol("main") ? prog.entry()
                                                : prog.baseAddr;
        FaultOutcome out;
        try {
            cpu.run(entry, budget);
            ADD_FAILURE() << modeName(mode)
                          << ": expected a fault, run completed";
        } catch (const ErrT &e) {
            out.message = e.what();
        } catch (const std::exception &e) {
            ADD_FAILURE() << modeName(mode)
                          << ": wrong exception type: " << e.what();
        }
        for (unsigned r = 0; r < isa::numRegs; r++)
            out.regs[r] = cpu.reg(r);
        return out;
    }

    /** Run under all modes and require identical outcomes. */
    template <typename ErrT>
    void
    expectSameFault(const std::string &src,
                    const std::string &expect_message,
                    uint64_t budget = 1000)
    {
        FaultOutcome ref =
            runExpectingFault<ErrT>(src, Mode::Ref, budget);
        EXPECT_EQ(ref.message, expect_message);
        for (Mode m : {Mode::BlockedNone, Mode::BlockedRecorder,
                       Mode::BlockedGeneric}) {
            FaultOutcome got =
                runExpectingFault<ErrT>(src, m, budget);
            EXPECT_EQ(ref.message, got.message) << modeName(m);
            for (unsigned r = 0; r < isa::numRegs; r++)
                EXPECT_EQ(ref.regs[r], got.regs[r])
                    << modeName(m) << " r" << r;
        }
    }
};

TEST_F(FaultMatrix, FetchOutsideProgram)
{
    // Jump far past the end of the (tiny) program image.
    expectSameFault<MemoryError>(R"(
        main:
            li t0, 0x8000
            jr t0
    )",
                                 "instruction fetch outside program: "
                                 "pc=0x8000");
}

TEST_F(FaultMatrix, MisalignedFetch)
{
    expectSameFault<AlignmentError>(R"(
        main:
            li t0, 0x1002
            jr t0
    )",
                                    "misaligned instruction fetch: "
                                    "pc=0x1002");
}

TEST_F(FaultMatrix, UnmappedLoad)
{
    // Registers written before the fault must be identical at the
    // throw in every mode.
    expectSameFault<MemoryError>(R"(
        main:
            li t0, 11
            li t1, 22
            lw t2, 0(zero)
            li t3, 33
            sys 3
    )",
                                 "access to unmapped address 0x0 "
                                 "(4 bytes)");
}

TEST_F(FaultMatrix, MisalignedLoad)
{
    expectSameFault<AlignmentError>(R"(
        main:
            li t0, 0x100002
            lw t1, 0(t0)
            sys 3
    )",
                                    "misaligned 32-bit read at "
                                    "0x100002");
}

TEST_F(FaultMatrix, UnmappedStoreMidBlock)
{
    expectSameFault<MemoryError>(R"(
        main:
            li t0, 5
            li t1, 7
            add t2, t0, t1
            sw t2, 0(zero)
            add t3, t0, t0
            sys 3
    )",
                                 "access to unmapped address 0x0 "
                                 "(4 bytes)");
}

TEST_F(FaultMatrix, UndecodableWord)
{
    // 0xee is not a valid opcode byte; the word sits mid-stream so
    // the straight-line prefix before it must execute (and be
    // visible in the registers) before the fault fires.
    expectSameFault<DecodeError>(R"(
        main:
            li t0, 1
            li t1, 2
            .word 0xee000000
            li t2, 3
            sys 3
    )",
                                 "undecodable instruction word at "
                                 "pc=0x1008");
}

TEST_F(FaultMatrix, UndecodableWordAtEntry)
{
    // A run consisting of nothing but the undecodable word.
    expectSameFault<DecodeError>(R"(
        main:
            .word 0xee000000
    )",
                                 "undecodable instruction word at "
                                 "pc=0x1000");
}

TEST_F(FaultMatrix, BudgetExhausted)
{
    expectSameFault<BudgetError>(R"(
        main:
            j main
    )",
                                 "instruction budget (1000) "
                                 "exhausted at pc=0x1000",
                                 1000);
}

TEST_F(FaultMatrix, BudgetExhaustedMidStraightLine)
{
    // The budget expires in the middle of a straight-line run, so
    // the block-stepped loop has to clip the run; nextPc must land
    // exactly on the first unexecuted instruction.
    const std::string src = R"(
        main:
            li t0, 1
            li t1, 2
            li t2, 3
            li t3, 4
            li t4, 5
            sys 3
    )";
    expectSameFault<BudgetError>(
        src, "instruction budget (3) exhausted at pc=0x100c", 3);
}

TEST_F(FaultMatrix, SliceResumesIdenticallyAcrossModes)
{
    const std::string src = R"(
        main:
            li t0, 1
            li t1, 2
            li t2, 3
            li t3, 4
            li t4, 5
            sys 3
    )";
    isa::Program prog =
        isa::Assembler(sim::layout::textBase).assemble(src, "slice");

    auto sliceAndResume = [&](DispatchMode mode) {
        Memory mem;
        Cpu cpu{mem};
        cpu.loadProgram(prog);
        cpu.setDispatchMode(mode);
        RunResult first = cpu.runSlice(prog.entry(), 3);
        EXPECT_TRUE(first.hitBudget);
        RunResult rest = cpu.runSlice(first.nextPc, 1000);
        EXPECT_FALSE(rest.hitBudget);
        return std::tuple(first.instCount, first.nextPc,
                          rest.instCount, cpu.reg(9));
    };

    auto ref = sliceAndResume(DispatchMode::Reference);
    auto blk = sliceAndResume(DispatchMode::Blocked);
    EXPECT_EQ(ref, blk);
    EXPECT_EQ(std::get<1>(ref), sim::layout::textBase + 12);
}

} // namespace
