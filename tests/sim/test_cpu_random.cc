/**
 * @file
 * Randomized differential testing of the NPE32 interpreter: random
 * instruction sequences are executed both by the simulator and by a
 * host-side golden evaluator; every architectural register (and for
 * memory programs, every touched byte) must match.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/disasm.hh"
#include "sim/cpu.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::sim;
using isa::Inst;
using isa::Op;

/** Golden register-file evaluator for ALU instructions. */
class GoldenAlu
{
  public:
    uint32_t regs[isa::numRegs] = {};

    uint32_t read(unsigned r) const { return r == 0 ? 0 : regs[r]; }

    void
    write(unsigned r, uint32_t value)
    {
        if (r != 0)
            regs[r] = value;
    }

    void
    step(const Inst &inst)
    {
        uint32_t rs = read(inst.rs);
        uint32_t rt = read(inst.rt);
        uint32_t uimm = static_cast<uint32_t>(inst.imm);
        switch (inst.op) {
          case Op::ADD:
            write(inst.rd, rs + rt);
            break;
          case Op::SUB:
            write(inst.rd, rs - rt);
            break;
          case Op::AND:
            write(inst.rd, rs & rt);
            break;
          case Op::OR:
            write(inst.rd, rs | rt);
            break;
          case Op::XOR:
            write(inst.rd, rs ^ rt);
            break;
          case Op::SLL:
            write(inst.rd, rs << (rt & 31));
            break;
          case Op::SRL:
            write(inst.rd, rs >> (rt & 31));
            break;
          case Op::SRA:
            write(inst.rd,
                  static_cast<uint32_t>(static_cast<int32_t>(rs) >>
                                        (rt & 31)));
            break;
          case Op::MUL:
            write(inst.rd, rs * rt);
            break;
          case Op::SLT:
            write(inst.rd, static_cast<int32_t>(rs) <
                                   static_cast<int32_t>(rt)
                               ? 1
                               : 0);
            break;
          case Op::SLTU:
            write(inst.rd, rs < rt ? 1 : 0);
            break;
          case Op::ADDI:
            write(inst.rd, rs + uimm);
            break;
          case Op::ANDI:
            write(inst.rd, rs & uimm);
            break;
          case Op::ORI:
            write(inst.rd, rs | uimm);
            break;
          case Op::XORI:
            write(inst.rd, rs ^ uimm);
            break;
          case Op::SLLI:
            write(inst.rd, rs << (uimm & 31));
            break;
          case Op::SRLI:
            write(inst.rd, rs >> (uimm & 31));
            break;
          case Op::SRAI:
            write(inst.rd,
                  static_cast<uint32_t>(static_cast<int32_t>(rs) >>
                                        (uimm & 31)));
            break;
          case Op::SLTI:
            write(inst.rd,
                  static_cast<int32_t>(rs) < inst.imm ? 1 : 0);
            break;
          case Op::SLTIU:
            write(inst.rd, rs < uimm ? 1 : 0);
            break;
          case Op::LUI:
            write(inst.rd, uimm << 16);
            break;
          default:
            FAIL() << "golden evaluator fed a non-ALU op";
        }
    }
};

constexpr Op aluOps[] = {
    Op::ADD,  Op::SUB,  Op::AND,  Op::OR,   Op::XOR,  Op::SLL,
    Op::SRL,  Op::SRA,  Op::MUL,  Op::SLT,  Op::SLTU, Op::ADDI,
    Op::ANDI, Op::ORI,  Op::XORI, Op::SLLI, Op::SRLI, Op::SRAI,
    Op::SLTI, Op::SLTIU, Op::LUI,
};

Inst
randomAluInst(Rng &rng)
{
    Inst inst;
    inst.op = aluOps[rng.below(sizeof(aluOps) / sizeof(aluOps[0]))];
    inst.rd = static_cast<uint8_t>(rng.range(1, 12));
    inst.rs = static_cast<uint8_t>(rng.below(13));
    inst.rt = static_cast<uint8_t>(rng.below(13));
    switch (inst.op) {
      case Op::ADDI:
      case Op::SLTI:
        inst.imm = static_cast<int32_t>(rng.below(65536)) - 32768;
        break;
      case Op::SLLI:
      case Op::SRLI:
      case Op::SRAI:
        inst.imm = static_cast<int32_t>(rng.below(32));
        break;
      default:
        inst.imm = static_cast<int32_t>(rng.below(65536));
        break;
    }
    return inst;
}

class RandomAluPrograms : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(RandomAluPrograms, SimulatorMatchesGoldenEvaluator)
{
    Rng rng(GetParam() * 2654435761u + 17);
    Memory mem;
    Cpu cpu(mem);

    for (int trial = 0; trial < 50; trial++) {
        const unsigned len = 1 + rng.below(60);
        isa::Program prog;
        prog.baseAddr = layout::textBase;
        std::vector<Inst> insts;
        for (unsigned i = 0; i < len; i++) {
            insts.push_back(randomAluInst(rng));
            prog.words.push_back(isa::encode(insts.back()));
        }
        prog.words.push_back(isa::encode(
            {Op::SYS, 0, 0, 0,
             static_cast<int32_t>(isa::SysCode::Halt)}));
        prog.symbols["main"] = prog.baseAddr;

        GoldenAlu golden;
        cpu.loadProgram(prog);
        cpu.resetRegs();
        for (unsigned r = 1; r < 13; r++) {
            uint32_t seed_value = rng.next();
            cpu.setReg(r, seed_value);
            golden.write(r, seed_value);
        }
        golden.write(isa::regSp, cpu.reg(isa::regSp));
        golden.write(isa::regAt, 0);

        for (const auto &inst : insts)
            golden.step(inst);
        cpu.run(prog.entry());

        for (unsigned r = 0; r < 13; r++) {
            ASSERT_EQ(cpu.reg(r), golden.read(r))
                << "reg " << isa::regName(r) << " trial " << trial
                << "\n"
                << isa::disassemble(prog);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluPrograms,
                         ::testing::Range(1u, 9u));

/** Golden evaluator for memory programs: shadow byte array. */
TEST(RandomMemPrograms, SimulatorMatchesShadowMemory)
{
    Rng rng(99);
    Memory mem;
    Cpu cpu(mem);
    constexpr uint32_t base = layout::dataBase;
    constexpr uint32_t window = 256;

    for (int trial = 0; trial < 200; trial++) {
        uint8_t shadow[window] = {};
        uint32_t shadow_regs[4] = {}; // t0..t3 golden values

        isa::Program prog;
        prog.baseAddr = layout::textBase;
        // a0 holds the window base (set below, never overwritten).
        struct MemOp
        {
            Inst inst;
        };
        const unsigned len = 1 + rng.below(40);
        std::vector<Inst> insts;
        for (unsigned i = 0; i < len; i++) {
            Inst inst;
            unsigned width_sel = rng.below(3); // 0=byte 1=half 2=word
            bool is_store = rng.chance(0.5);
            uint32_t align = 1u << width_sel;
            inst.imm = static_cast<int32_t>(
                rng.below(window / align) * align);
            inst.rs = isa::regA0;
            inst.rd = static_cast<uint8_t>(5 + rng.below(4)); // t0-t3
            if (is_store) {
                inst.op = width_sel == 0   ? Op::SB
                          : width_sel == 1 ? Op::SH
                                           : Op::SW;
            } else {
                // Mix sign- and zero-extending loads.
                if (width_sel == 0)
                    inst.op = rng.chance(0.5) ? Op::LB : Op::LBU;
                else if (width_sel == 1)
                    inst.op = rng.chance(0.5) ? Op::LH : Op::LHU;
                else
                    inst.op = Op::LW;
            }
            insts.push_back(inst);
            prog.words.push_back(isa::encode(inst));
        }
        prog.words.push_back(isa::encode(
            {Op::SYS, 0, 0, 0,
             static_cast<int32_t>(isa::SysCode::Halt)}));
        prog.symbols["main"] = prog.baseAddr;

        cpu.loadProgram(prog);
        cpu.resetRegs();
        cpu.setReg(isa::regA0, base);
        mem.fill(base, window);
        for (unsigned r = 0; r < 4; r++) {
            uint32_t v = rng.next();
            cpu.setReg(5 + r, v);
            shadow_regs[r] = v;
        }

        // Golden evaluation.
        auto ld = [&](uint32_t off, unsigned n) {
            uint32_t v = 0;
            for (unsigned b = 0; b < n; b++)
                v |= static_cast<uint32_t>(shadow[off + b]) << (8 * b);
            return v;
        };
        for (const auto &inst : insts) {
            uint32_t off = static_cast<uint32_t>(inst.imm);
            uint32_t &reg = shadow_regs[inst.rd - 5];
            switch (inst.op) {
              case Op::SB:
                shadow[off] = static_cast<uint8_t>(reg);
                break;
              case Op::SH:
                shadow[off] = static_cast<uint8_t>(reg);
                shadow[off + 1] = static_cast<uint8_t>(reg >> 8);
                break;
              case Op::SW:
                for (unsigned b = 0; b < 4; b++)
                    shadow[off + b] =
                        static_cast<uint8_t>(reg >> (8 * b));
                break;
              case Op::LB:
                reg = static_cast<uint32_t>(sext(ld(off, 1), 8));
                break;
              case Op::LBU:
                reg = ld(off, 1);
                break;
              case Op::LH:
                reg = static_cast<uint32_t>(sext(ld(off, 2), 16));
                break;
              case Op::LHU:
                reg = ld(off, 2);
                break;
              case Op::LW:
                reg = ld(off, 4);
                break;
              default:
                FAIL();
            }
        }
        cpu.run(prog.entry());

        for (unsigned r = 0; r < 4; r++) {
            ASSERT_EQ(cpu.reg(5 + r), shadow_regs[r])
                << "t" << r << " trial " << trial;
        }
        for (uint32_t off = 0; off < window; off++) {
            ASSERT_EQ(mem.read8(base + off), shadow[off])
                << "byte " << off << " trial " << trial;
        }
    }
}

} // namespace
