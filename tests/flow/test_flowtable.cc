/**
 * @file
 * Flow table tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "flow/flowtable.hh"

namespace
{

using namespace pb;
using namespace pb::flow;
using pb::net::FiveTuple;

FiveTuple
tupleOf(uint32_t src, uint16_t sport)
{
    FiveTuple tuple;
    tuple.src = src;
    tuple.dst = 0x08080404;
    tuple.srcPort = sport;
    tuple.dstPort = 443;
    tuple.proto = 6;
    return tuple;
}

TEST(FlowTable, FirstPacketCreatesFlow)
{
    FlowTable table;
    EXPECT_TRUE(table.update(tupleOf(1, 10), 100));
    EXPECT_FALSE(table.update(tupleOf(1, 10), 200));
    EXPECT_TRUE(table.update(tupleOf(2, 10), 50));
    EXPECT_EQ(table.numFlows(), 2u);
}

TEST(FlowTable, AccumulatesStats)
{
    FlowTable table;
    table.update(tupleOf(1, 10), 100);
    table.update(tupleOf(1, 10), 200);
    table.update(tupleOf(1, 10), 44);
    auto stats = table.lookup(tupleOf(1, 10));
    ASSERT_TRUE(stats);
    EXPECT_EQ(stats->packets, 3u);
    EXPECT_EQ(stats->bytes, 344u);
    EXPECT_FALSE(table.lookup(tupleOf(9, 9)));
}

TEST(FlowTable, DistinguishesEveryTupleField)
{
    FlowTable table;
    FiveTuple base = tupleOf(1, 10);
    table.update(base, 1);
    FiveTuple t = base;
    t.src ^= 1;
    EXPECT_TRUE(table.update(t, 1));
    t = base;
    t.dst ^= 1;
    EXPECT_TRUE(table.update(t, 1));
    t = base;
    t.srcPort ^= 1;
    EXPECT_TRUE(table.update(t, 1));
    t = base;
    t.dstPort ^= 1;
    EXPECT_TRUE(table.update(t, 1));
    t = base;
    t.proto = 17;
    EXPECT_TRUE(table.update(t, 1));
    EXPECT_EQ(table.numFlows(), 6u);
}

TEST(FlowTable, HashSpreadsAcrossBuckets)
{
    FlowTable table(256);
    Rng rng(5);
    std::vector<int> hits(256, 0);
    for (int i = 0; i < 10000; i++) {
        FiveTuple tuple = tupleOf(rng.next(), static_cast<uint16_t>(
                                                  rng.below(65536)));
        hits[table.bucketOf(tuple)]++;
    }
    int empty = 0;
    int max_load = 0;
    for (int h : hits) {
        if (h == 0)
            empty++;
        max_load = std::max(max_load, h);
    }
    EXPECT_EQ(empty, 0);
    EXPECT_LT(max_load, 100) << "no pathological clustering";
}

TEST(FlowTable, RejectsNonPowerOfTwoBuckets)
{
    EXPECT_THROW(FlowTable(1000), FatalError);
    EXPECT_THROW(FlowTable(0), FatalError);
}

TEST(FlowTable, HashIsOrderSensitiveInPorts)
{
    // Swapping src/dst ports must change the hash (directional flows).
    FiveTuple a = tupleOf(1, 10);
    FiveTuple b = a;
    std::swap(b.srcPort, b.dstPort);
    EXPECT_NE(hashTuple(a), hashTuple(b));
}

} // namespace
