/**
 * @file
 * Instruction-pattern (Fig. 6) analysis tests.
 */

#include <gtest/gtest.h>

#include "analysis/instpattern.hh"

namespace
{

using namespace pb::an;

TEST(InstPattern, StraightLineIsIdentity)
{
    std::vector<uint32_t> trace = {0x1000, 0x1004, 0x1008};
    auto series = uniqueIndexSeries(trace);
    EXPECT_EQ(series, (std::vector<uint32_t>{0, 1, 2}));
    EXPECT_EQ(countBackJumps(series), 0u);
}

TEST(InstPattern, LoopRepeatsIndices)
{
    // Addresses A B C B C D: B and C repeat.
    std::vector<uint32_t> trace = {0x10, 0x14, 0x18, 0x14, 0x18, 0x1c};
    auto series = uniqueIndexSeries(trace);
    EXPECT_EQ(series, (std::vector<uint32_t>{0, 1, 2, 1, 2, 3}));
    EXPECT_EQ(countBackJumps(series), 1u);
}

TEST(InstPattern, MaxIndexIsUniqueCount)
{
    std::vector<uint32_t> trace = {1, 2, 3, 1, 2, 3, 1, 2, 3, 4};
    auto series = uniqueIndexSeries(trace);
    uint32_t max_index = 0;
    for (uint32_t v : series)
        max_index = std::max(max_index, v);
    EXPECT_EQ(max_index + 1, 4u);
    // Two loop back-edges: after each full 1-2-3 repetition except
    // the last, which continues forward to 4.
    EXPECT_EQ(countBackJumps(series), 2u);
}

TEST(InstPattern, EmptyTrace)
{
    EXPECT_TRUE(uniqueIndexSeries({}).empty());
    EXPECT_EQ(countBackJumps({}), 0u);
}

} // namespace
