/**
 * @file
 * Weighted flow graph tests.
 */

#include <gtest/gtest.h>

#include "analysis/flowgraph.hh"
#include "analysis/experiments.hh"
#include "isa/assembler.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::an;

/** Build a block map and collect a trace by running the program. */
struct Harness
{
    explicit Harness(const std::string &src)
        : prog(isa::Assembler(sim::layout::textBase).assemble(src)),
          blocks(prog),
          cpu(mem)
    {
        cpu.loadProgram(prog);
    }

    std::vector<uint32_t>
    trace()
    {
        sim::RecorderConfig cfg;
        cfg.instTrace = true;
        sim::PacketRecorder rec(prog, blocks, cfg);
        cpu.setObserver(&rec);
        rec.beginPacket();
        cpu.resetRegs();
        cpu.run(prog.entry("main"));
        auto stats = rec.endPacket();
        cpu.setObserver(nullptr);
        return stats.instTrace;
    }

    isa::Program prog;
    sim::BlockMap blocks;
    sim::Memory mem;
    sim::Cpu cpu;
};

TEST(FlowGraph, LoopProducesBackEdge)
{
    Harness h(R"(
        main:
            li t0, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 0
    )");
    // Blocks: 0=[li] 1=[addi,bnez] 2=[sys].
    WeightedFlowGraph graph(h.blocks);
    graph.addPacket(h.trace());

    EXPECT_EQ(graph.packets(), 1u);
    EXPECT_EQ(graph.blockEntries(0), 1u);
    EXPECT_EQ(graph.blockEntries(1), 3u) << "loop body entered thrice";
    EXPECT_EQ(graph.blockEntries(2), 1u);

    auto edges = graph.edges();
    // Edges: 0->1 (x1), 1->1 (x2, back edge), 1->2 (x1).
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0].from, 1u);
    EXPECT_EQ(edges[0].to, 1u);
    EXPECT_EQ(edges[0].count, 2u);
}

TEST(FlowGraph, BranchSplitsWeights)
{
    Harness h(R"(
        main:
            bnez a0, taken
            nop
            sys 0
        taken:
            sys 0
    )");
    WeightedFlowGraph graph(h.blocks);
    // Run twice with a0 = 0 and a0 = 1.
    h.cpu.resetRegs();
    {
        sim::RecorderConfig cfg;
        cfg.instTrace = true;
        sim::PacketRecorder rec(h.prog, h.blocks, cfg);
        h.cpu.setObserver(&rec);
        for (uint32_t a0 : {0u, 1u, 1u}) {
            rec.beginPacket();
            h.cpu.resetRegs();
            h.cpu.setReg(isa::regA0, a0);
            h.cpu.run(h.prog.entry("main"));
            graph.addPacket(rec.endPacket().instTrace);
        }
    }
    // Blocks: 0=[bnez] 1=[nop, sys] 2=[taken: sys].
    EXPECT_EQ(graph.blockEntries(0), 3u);
    EXPECT_EQ(graph.blockEntries(1), 1u); // fall-through once
    EXPECT_EQ(graph.blockEntries(2), 2u); // taken twice
    auto edges = graph.edges();
    EXPECT_EQ(edges[0].from, 0u);
    EXPECT_EQ(edges[0].to, 2u);
    EXPECT_EQ(edges[0].count, 2u);
}

TEST(FlowGraph, DotOutputWellFormed)
{
    Harness h(R"(
        main:
            li t0, 2
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 0
    )");
    WeightedFlowGraph graph(h.blocks);
    graph.addPacket(h.trace());
    std::string dot = graph.toDot("test");
    EXPECT_NE(dot.find("digraph test {"), std::string::npos);
    EXPECT_NE(dot.find("b1 -> b1"), std::string::npos);
    EXPECT_NE(dot.find("}"), std::string::npos);
    // Unexecuted blocks are omitted; executed ones labeled.
    EXPECT_NE(dot.find("entries"), std::string::npos);
}

TEST(FlowGraph, EmptyTraceIgnored)
{
    Harness h("main: sys 0");
    WeightedFlowGraph graph(h.blocks);
    graph.addPacket({});
    EXPECT_EQ(graph.packets(), 0u);
    EXPECT_TRUE(graph.edges().empty());
}

TEST(FlowGraph, RealApplicationGraphIsConnectedAndWeighted)
{
    // The radix app over a few packets: hot loop edge must dominate.
    ExperimentConfig cfg;
    cfg.coreTablePrefixes = 1024;
    sim::RecorderConfig recorder;
    recorder.instTrace = true;
    AppRun run =
        runApp(AppKind::Ipv4Radix, net::Profile::MRA, 20, cfg,
               recorder);

    // Rebuild the same program to get its block map.
    auto app = makeApp(AppKind::Ipv4Radix, cfg);
    sim::Memory mem;
    isa::Program prog = app->setup(mem);
    sim::BlockMap blocks(prog);

    WeightedFlowGraph graph(blocks);
    for (const auto &stats : run.stats)
        graph.addPacket(stats.instTrace);
    auto edges = graph.edges();
    ASSERT_FALSE(edges.empty());
    // The hottest edge (walk loop) is traversed many times/packet.
    EXPECT_GT(edges[0].count, 20u * 10);
}

} // namespace
