/**
 * @file
 * CSV export tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/export.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::an;

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string line;
    while (std::getline(stream, line))
        out.push_back(line);
    return out;
}

TEST(ExportCsv, StatsHaveHeaderAndRows)
{
    sim::PacketStats a;
    a.instCount = 100;
    a.uniqueInstCount = 40;
    a.packetReads = 5;
    a.packetWrites = 1;
    a.nonPacketReads = 7;
    a.nonPacketWrites = 2;
    sim::PacketStats b;
    b.instCount = 200;

    std::stringstream out;
    writeStatsCsv(out, {a, b});
    auto rows = lines(out.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0],
              "packet,insts,unique_insts,pkt_reads,pkt_writes,"
              "nonpkt_reads,nonpkt_writes");
    EXPECT_EQ(rows[1], "0,100,40,5,1,7,2");
    EXPECT_EQ(rows[2], "1,200,0,0,0,0,0");
}

TEST(ExportCsv, Series)
{
    std::stringstream out;
    writeSeriesCsv(out, "x", "y", {{1.0, 2.5}, {2.0, 3.5}});
    auto rows = lines(out.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], "x,y");
    EXPECT_EQ(rows[1], "1,2.5");
}

TEST(ExportCsv, Coverage)
{
    std::stringstream out;
    writeCoverageCsv(out, {{1, 0.25}, {2, 1.0}});
    auto rows = lines(out.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], "blocks,coverage");
    EXPECT_EQ(rows[1], "1,0.25");
    EXPECT_EQ(rows[2], "2,1");
}

TEST(ExportCsv, MemTrace)
{
    sim::PacketStats::TracedAccess access;
    access.instIndex = 12;
    access.event = {sim::layout::packetBase, 4, false,
                    sim::MemRegion::Packet};
    sim::PacketStats::TracedAccess store;
    store.instIndex = 13;
    store.event = {sim::layout::dataBase + 8, 1, true,
                   sim::MemRegion::Data};

    std::stringstream out;
    writeMemTraceCsv(out, {access, store});
    auto rows = lines(out.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], "inst_index,region,rw,addr,size");
    EXPECT_EQ(rows[1], strprintf("12,packet,R,%u,4",
                                 sim::layout::packetBase));
    EXPECT_EQ(rows[2], strprintf("13,data,W,%u,1",
                                 sim::layout::dataBase + 8));
}

TEST(ExportCsv, EmptyInputsProduceHeaderOnly)
{
    std::stringstream out;
    writeStatsCsv(out, {});
    EXPECT_EQ(lines(out.str()).size(), 1u);
}

} // namespace
