/**
 * @file
 * Delay model and multi-core dispatch tests.
 */

#include <gtest/gtest.h>

#include "analysis/delaymodel.hh"

namespace
{

using namespace pb;
using namespace pb::an;

sim::PacketStats
statsOf(uint64_t insts, uint32_t pkt, uint32_t nonpkt)
{
    sim::PacketStats stats;
    stats.instCount = insts;
    stats.packetReads = pkt;
    stats.nonPacketReads = nonpkt;
    return stats;
}

TEST(DelayModel, ComputesCycleBudget)
{
    CoreModel core;
    core.clockMhz = 1000.0; // 1 cycle = 1 ns
    core.cpi = 1.0;
    core.packetMemCycles = 4.0;
    core.dataMemCycles = 10.0;
    // 100 insts + 5*4 + 10*10 = 220 cycles = 0.22 usec.
    EXPECT_NEAR(packetDelayUsec(statsOf(100, 5, 10), core), 0.22,
                1e-9);
}

TEST(DelayModel, SummaryMeanMaxThroughput)
{
    CoreModel core;
    core.clockMhz = 1000.0;
    core.cpi = 1.0;
    core.packetMemCycles = 0.0;
    core.dataMemCycles = 0.0;
    std::vector<sim::PacketStats> run = {statsOf(1000, 0, 0),
                                         statsOf(3000, 0, 0)};
    DelaySummary summary = summarizeDelay(run, core);
    EXPECT_NEAR(summary.meanUsec, 2.0, 1e-9);
    EXPECT_NEAR(summary.maxUsec, 3.0, 1e-9);
    EXPECT_NEAR(summary.corePacketsPerSec, 500'000.0, 1.0);
}

TEST(DelayModel, EmptyRunIsFatal)
{
    CoreModel core;
    EXPECT_THROW(summarizeDelay({}, core), FatalError);
    EXPECT_THROW(simulateParallel({}, {}, 2), FatalError);
    EXPECT_THROW(simulateParallel({1.0}, {}, 0), FatalError);
    EXPECT_THROW(simulateParallel({1.0}, {0.0, 1.0}, 1), FatalError);
}

TEST(Parallel, SaturationThroughputScalesWithCores)
{
    // 1000 packets of 1 usec each, back to back.
    std::vector<double> service(1000, 1.0);
    ParallelResult one = simulateParallel(service, {}, 1);
    ParallelResult four = simulateParallel(service, {}, 4);
    EXPECT_NEAR(one.throughputPps, 1e6, 1e3);
    EXPECT_NEAR(four.throughputPps, 4e6, 4e4);
    EXPECT_NEAR(one.utilization, 1.0, 0.01);
    EXPECT_NEAR(four.utilization, 1.0, 0.01);
}

TEST(Parallel, IdleArrivalsBoundSojourn)
{
    // Arrivals 10 usec apart, service 1 usec: never queue.
    std::vector<double> service(100, 1.0);
    std::vector<double> arrivals;
    for (int i = 0; i < 100; i++)
        arrivals.push_back(i * 10.0);
    ParallelResult result = simulateParallel(service, arrivals, 1);
    EXPECT_NEAR(result.meanSojournUsec, 1.0, 1e-9);
    EXPECT_LT(result.utilization, 0.2);
}

TEST(Parallel, OverloadQueuesOnFewCores)
{
    // Arrivals 1 usec apart, service 3 usec: one core queues badly,
    // four cores keep up.
    std::vector<double> service(300, 3.0);
    std::vector<double> arrivals;
    for (int i = 0; i < 300; i++)
        arrivals.push_back(static_cast<double>(i));
    ParallelResult one = simulateParallel(service, arrivals, 1);
    ParallelResult four = simulateParallel(service, arrivals, 4);
    EXPECT_GT(one.meanSojournUsec, 100.0);
    EXPECT_LT(four.meanSojournUsec, 10.0);
}

TEST(Parallel, HeterogeneousServiceTimes)
{
    // Mixed light/heavy packets: throughput sits between the
    // all-light and all-heavy extremes.
    std::vector<double> service;
    for (int i = 0; i < 500; i++)
        service.push_back(i % 2 ? 0.5 : 2.0);
    ParallelResult result = simulateParallel(service, {}, 2);
    EXPECT_GT(result.throughputPps, 2e6 / 2.0);
    EXPECT_LT(result.throughputPps, 2e6 / 0.5);
}

} // namespace
