/**
 * @file
 * Integration tests over the experiment harness: run the paper's
 * experiments at reduced scale and assert the qualitative results
 * the paper reports (orderings, constancy, coverage shapes).
 */

#include <gtest/gtest.h>

#include "analysis/blockstats.hh"
#include "analysis/experiments.hh"
#include "analysis/instpattern.hh"
#include "analysis/occurrence.hh"

namespace
{

using namespace pb;
using namespace pb::an;

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.coreTablePrefixes = 4096; // keep test setup fast
    return cfg;
}

TEST(Experiments, Table2OrderingMatchesPaper)
{
    // Paper Table II: radix >> TSA > trie > flow classification.
    // Use the full-size core table: the radix/TSA margin depends on
    // the routing-table depth, as in the paper's MAE-WEST setup.
    ExperimentConfig cfg;
    double means[4];
    for (size_t i = 0; i < 4; i++) {
        means[i] =
            runApp(allAppKinds[i], net::Profile::MRA, 400, cfg)
                .meanInsts();
    }
    double radix = means[0];
    double trie = means[1];
    double flow = means[2];
    double tsa = means[3];
    EXPECT_GT(radix, tsa);
    EXPECT_GT(tsa, trie);
    EXPECT_GT(trie, flow);
    EXPECT_GT(radix, trie * 3) << "radix must dwarf trie";
}

TEST(Experiments, Table3PacketAccessesNearConstantAcrossTraces)
{
    // Paper Table III: packet-memory accesses are essentially the
    // same for every trace; forwarding apps land near 32.
    ExperimentConfig cfg = smallConfig();
    for (AppKind kind : {AppKind::Ipv4Radix, AppKind::Ipv4Trie}) {
        double lo = 1e9;
        double hi = 0;
        for (net::Profile profile : net::allProfiles) {
            double mean =
                runApp(kind, profile, 200, cfg).meanPacketAccesses();
            lo = std::min(lo, mean);
            hi = std::max(hi, mean);
        }
        // Dropped packets (failed RFC1812 checks) touch the packet
        // slightly less, and only scrambled traces have them, so
        // allow a small spread around the forwarding path's ~33.
        EXPECT_NEAR(lo, 31.5, 2.5);
        EXPECT_LT(hi - lo, 3.0) << appTitle(kind);
    }
}

TEST(Experiments, Table3NonPacketDominatedByRadix)
{
    ExperimentConfig cfg = smallConfig();
    double radix = runApp(AppKind::Ipv4Radix, net::Profile::COS, 200,
                          cfg)
                       .meanNonPacketAccesses();
    double trie =
        runApp(AppKind::Ipv4Trie, net::Profile::COS, 200, cfg)
            .meanNonPacketAccesses();
    EXPECT_GT(radix, trie * 10);
}

TEST(Experiments, Table4MemorySizes)
{
    // Paper Table IV: data memory large for radix and flow
    // classification, small for trie and TSA; instruction memory
    // largest for radix.
    ExperimentConfig cfg = smallConfig();
    uint64_t inst[4];
    uint64_t data[4];
    for (size_t i = 0; i < 4; i++) {
        AppRun run =
            runApp(allAppKinds[i], net::Profile::MRA, 1000, cfg);
        inst[i] = run.instMemoryBytes;
        data[i] = run.dataMemoryBytes;
    }
    EXPECT_GT(inst[0], inst[1]) << "radix text > trie text";
    EXPECT_GT(data[0], 10000u) << "radix touches a large table";
    EXPECT_LT(data[1], data[0] / 3) << "trie table is small";
    EXPECT_GT(data[2], data[1]) << "flow table grows with flows";
    // TSA touches its fixed tables plus the record area.
    EXPECT_GT(data[3], 1000u);
}

TEST(Experiments, Table5TopOccurrencesDominate)
{
    // Paper Table V: for trie / flow / TSA the top-3 instruction
    // counts cover ~90% of packets; radix is much flatter.
    ExperimentConfig cfg = smallConfig();
    double top3[4];
    for (size_t i = 0; i < 4; i++) {
        AppRun run =
            runApp(allAppKinds[i], net::Profile::COS, 2000, cfg);
        std::vector<uint64_t> values;
        for (const auto &s : run.stats)
            values.push_back(s.instCount);
        OccurrenceSummary summary = summarize(values, 3);
        top3[i] = 0;
        for (const auto &occurrence : summary.top)
            top3[i] += occurrence.pct;
    }
    EXPECT_LT(top3[0], 75.0) << "radix spreads over many counts";
    EXPECT_GT(top3[1], 60.0) << "trie dominated by few cases";
    EXPECT_GT(top3[2], 75.0) << "flow dominated by few cases";
    EXPECT_GT(top3[3], 90.0) << "TSA nearly constant";
}

TEST(Experiments, Table6UniqueVariationSmallerThanTotal)
{
    // Paper Tables V/VI: unique-instruction counts vary much less
    // than total instruction counts; radix and TSA re-execute
    // instructions heavily (repetition factor ~4x in the paper),
    // trie and flow are nearly straight-line.
    ExperimentConfig cfg = smallConfig();
    AppRun radix =
        runApp(AppKind::Ipv4Radix, net::Profile::COS, 500, cfg);
    double total = 0;
    double unique = 0;
    for (const auto &s : radix.stats) {
        total += static_cast<double>(s.instCount);
        unique += s.uniqueInstCount;
    }
    EXPECT_GT(total / unique, 2.0) << "radix repeats its loop body";

    AppRun flow =
        runApp(AppKind::FlowClass, net::Profile::COS, 500, cfg);
    total = unique = 0;
    for (const auto &s : flow.stats) {
        total += static_cast<double>(s.instCount);
        unique += s.uniqueInstCount;
    }
    EXPECT_LT(total / unique, 1.6) << "flow is nearly linear code";
}

TEST(Experiments, Fig6LoopsVisibleInRadixNotFlow)
{
    // Paper Fig. 6: radix shows heavy instruction repetition (loops),
    // flow classification is almost linear.
    ExperimentConfig cfg = smallConfig();
    sim::RecorderConfig recorder;
    recorder.instTrace = true;
    AppRun radix =
        runApp(AppKind::Ipv4Radix, net::Profile::MRA, 1, cfg, recorder);
    AppRun flow =
        runApp(AppKind::FlowClass, net::Profile::MRA, 1, cfg, recorder);
    auto radix_series = uniqueIndexSeries(radix.stats[0].instTrace);
    auto flow_series = uniqueIndexSeries(flow.stats[0].instTrace);
    EXPECT_GT(countBackJumps(radix_series), 15u);
    EXPECT_LT(countBackJumps(flow_series), 8u);
}

TEST(Experiments, Fig7MostBlocksAlwaysExecuted)
{
    // Paper Fig. 7: most blocks run for every packet (probability 1)
    // with a tail of rare special-case blocks.
    ExperimentConfig cfg = smallConfig();
    sim::RecorderConfig recorder;
    recorder.blockSets = true;
    AppRun run = runApp(AppKind::FlowClass, net::Profile::MRA, 500,
                        cfg, recorder);
    auto p = blockProbabilities(run.stats, run.numBlocks);
    uint32_t always = 0;
    uint32_t rare = 0;
    for (double probability : p) {
        if (probability > 0.999)
            always++;
        if (probability < 0.2)
            rare++;
    }
    EXPECT_GT(always, run.numBlocks / 3);
    EXPECT_GT(rare, 0u) << "some special-case blocks must be rare";
}

TEST(Experiments, Fig8CoverageReaches90PercentBeforeAllBlocks)
{
    // Paper Fig. 8: >90% of packets are processable with fewer than
    // all basic blocks (the "sweet spot").
    ExperimentConfig cfg = smallConfig();
    sim::RecorderConfig recorder;
    recorder.blockSets = true;
    for (AppKind kind : {AppKind::Ipv4Radix, AppKind::FlowClass}) {
        AppRun run =
            runApp(kind, net::Profile::MRA, 500, cfg, recorder);
        auto curve = coverageCurve(run.stats, run.numBlocks);
        uint32_t sweet = blocksForCoverage(curve, 0.9);
        EXPECT_LT(sweet, run.numBlocks) << appTitle(kind);
        EXPECT_GE(curve.back().packetFraction, 0.999);
    }
}

TEST(Experiments, Fig9RadixFrontLoadsPacketAccesses)
{
    // Paper Fig. 9: radix reads the packet header up front, then
    // works entirely in non-packet memory; flow classification
    // interleaves both throughout.
    ExperimentConfig cfg = smallConfig();
    sim::RecorderConfig recorder;
    recorder.memTrace = true;
    AppRun radix =
        runApp(AppKind::Ipv4Radix, net::Profile::MRA, 1, cfg, recorder);
    const auto &trace = radix.stats[0].memTrace;
    ASSERT_FALSE(trace.empty());
    // Find the last packet-memory READ; the walk after it must be a
    // long non-packet streak (TTL/checksum writes come at the end).
    size_t last_packet_read = 0;
    for (size_t i = 0; i < trace.size(); i++) {
        if (trace[i].event.region == sim::MemRegion::Packet &&
            !trace[i].event.isStore) {
            last_packet_read = i;
        }
    }
    // Count the longest run of consecutive non-packet accesses.
    size_t longest = 0;
    size_t current = 0;
    for (const auto &access : trace) {
        if (access.event.region != sim::MemRegion::Packet) {
            current++;
            longest = std::max(longest, current);
        } else {
            current = 0;
        }
    }
    EXPECT_GT(longest, trace.size() / 2)
        << "radix walk is one long non-packet phase";
    (void)last_packet_read;
}

TEST(Experiments, RenderersProduceOutput)
{
    // Smoke coverage of every renderer at tiny scale.
    ExperimentConfig cfg = smallConfig();
    EXPECT_NE(renderTable1().find("MRA"), std::string::npos);
    EXPECT_NE(renderTable2(cfg, 50).find("IPv4-radix"),
              std::string::npos);
    EXPECT_NE(renderTable3(cfg, 50).find("Non-pkt"),
              std::string::npos);
    EXPECT_NE(renderTable4(cfg, 50).find("Data memory"),
              std::string::npos);
    EXPECT_NE(renderTable5(cfg, 200).find("%"), std::string::npos);
    EXPECT_NE(renderTable6(cfg, 200).find("%"), std::string::npos);
    EXPECT_NE(renderFig3(cfg, 20).find("# packet"),
              std::string::npos);
    EXPECT_NE(renderFig4(cfg, 20).find("packet memory"),
              std::string::npos);
    EXPECT_NE(renderFig5(cfg, 20).find("non-packet"),
              std::string::npos);
    EXPECT_NE(renderFig6(cfg).find("unique_index"),
              std::string::npos);
    EXPECT_NE(renderFig7(cfg, 50).find("probability"),
              std::string::npos);
    EXPECT_NE(renderFig8(cfg, 50).find("coverage"),
              std::string::npos);
    EXPECT_NE(renderFig9(cfg).find("instruction"),
              std::string::npos);
}

} // namespace
