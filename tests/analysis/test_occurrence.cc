/**
 * @file
 * Occurrence-summary tests.
 */

#include <gtest/gtest.h>

#include "analysis/occurrence.hh"
#include "common/logging.hh"

namespace
{

using namespace pb;
using namespace pb::an;

TEST(Occurrence, BasicSummary)
{
    // 156 x6, 212 x3, 128 x1.
    std::vector<uint64_t> values;
    for (int i = 0; i < 6; i++)
        values.push_back(156);
    for (int i = 0; i < 3; i++)
        values.push_back(212);
    values.push_back(128);

    OccurrenceSummary s = summarize(values);
    ASSERT_EQ(s.top.size(), 3u);
    EXPECT_EQ(s.top[0].value, 156u);
    EXPECT_EQ(s.top[0].count, 6u);
    EXPECT_NEAR(s.top[0].pct, 60.0, 1e-9);
    EXPECT_EQ(s.top[1].value, 212u);
    EXPECT_EQ(s.top[2].value, 128u);
    EXPECT_EQ(s.min.value, 128u);
    EXPECT_NEAR(s.min.pct, 10.0, 1e-9);
    EXPECT_EQ(s.max.value, 212u);
    EXPECT_NEAR(s.average, (156.0 * 6 + 212 * 3 + 128) / 10, 1e-9);
    EXPECT_EQ(s.samples, 10u);
}

TEST(Occurrence, FewerDistinctValuesThanK)
{
    std::vector<uint64_t> values = {7, 7, 7};
    OccurrenceSummary s = summarize(values, 3);
    ASSERT_EQ(s.top.size(), 1u);
    EXPECT_EQ(s.top[0].value, 7u);
    EXPECT_NEAR(s.top[0].pct, 100.0, 1e-9);
    EXPECT_EQ(s.min.value, 7u);
    EXPECT_EQ(s.max.value, 7u);
}

TEST(Occurrence, TieBreaksAreStable)
{
    // Equal counts: smaller value first (map order preserved by
    // stable sort).
    std::vector<uint64_t> values = {5, 9, 5, 9};
    OccurrenceSummary s = summarize(values, 2);
    ASSERT_EQ(s.top.size(), 2u);
    EXPECT_EQ(s.top[0].value, 5u);
    EXPECT_EQ(s.top[1].value, 9u);
}

TEST(Occurrence, EmptyInputIsFatal)
{
    EXPECT_THROW(summarize({}), FatalError);
}

TEST(Occurrence, PercentagesSumBelowHundred)
{
    std::vector<uint64_t> values;
    for (uint64_t i = 0; i < 100; i++)
        values.push_back(i % 7);
    OccurrenceSummary s = summarize(values, 3);
    double total = 0;
    for (const auto &occurrence : s.top)
        total += occurrence.pct;
    EXPECT_LE(total, 100.0 + 1e-9);
}

} // namespace
