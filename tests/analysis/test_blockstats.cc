/**
 * @file
 * Block probability and coverage-curve tests.
 */

#include <gtest/gtest.h>

#include "analysis/blockstats.hh"

namespace
{

using namespace pb;
using namespace pb::an;

sim::PacketStats
withBlocks(std::vector<uint32_t> blocks)
{
    sim::PacketStats stats;
    stats.blocks = std::move(blocks);
    return stats;
}

TEST(BlockStats, Probabilities)
{
    std::vector<sim::PacketStats> packets;
    packets.push_back(withBlocks({0, 1}));
    packets.push_back(withBlocks({0, 2}));
    packets.push_back(withBlocks({0, 1, 2}));
    packets.push_back(withBlocks({0}));

    auto p = blockProbabilities(packets, 4);
    ASSERT_EQ(p.size(), 4u);
    EXPECT_DOUBLE_EQ(p[0], 1.0);
    EXPECT_DOUBLE_EQ(p[1], 0.5);
    EXPECT_DOUBLE_EQ(p[2], 0.5);
    EXPECT_DOUBLE_EQ(p[3], 0.0);
}

TEST(BlockStats, CoverageCurveGreedy)
{
    // Block 0 always used; block 1 by 75%; block 2 by 25%.
    std::vector<sim::PacketStats> packets;
    packets.push_back(withBlocks({0, 1}));
    packets.push_back(withBlocks({0, 1}));
    packets.push_back(withBlocks({0, 1}));
    packets.push_back(withBlocks({0, 2}));

    auto curve = coverageCurve(packets, 3);
    ASSERT_EQ(curve.size(), 3u);
    // Install order: 0, 1, 2.
    EXPECT_DOUBLE_EQ(curve[0].packetFraction, 0.0); // {0} covers none
    EXPECT_DOUBLE_EQ(curve[1].packetFraction, 0.75);
    EXPECT_DOUBLE_EQ(curve[2].packetFraction, 1.0);
    // Monotone.
    for (size_t i = 1; i < curve.size(); i++)
        EXPECT_GE(curve[i].packetFraction,
                  curve[i - 1].packetFraction);
}

TEST(BlockStats, BlocksForCoverage)
{
    std::vector<CoveragePoint> curve = {
        {1, 0.1}, {2, 0.5}, {3, 0.92}, {4, 1.0}};
    EXPECT_EQ(blocksForCoverage(curve, 0.9), 3u);
    EXPECT_EQ(blocksForCoverage(curve, 0.05), 1u);
    EXPECT_EQ(blocksForCoverage(curve, 1.0), 4u);
    // Unreachable fraction clamps to the last point.
    std::vector<CoveragePoint> partial = {{1, 0.4}, {2, 0.6}};
    EXPECT_EQ(blocksForCoverage(partial, 0.99), 2u);
}

TEST(BlockStats, UnusedBlocksDoNotBlockCoverage)
{
    // Packets use only block 0 of 10; one installed block suffices.
    std::vector<sim::PacketStats> packets(5, withBlocks({0}));
    auto curve = coverageCurve(packets, 10);
    EXPECT_DOUBLE_EQ(curve[0].packetFraction, 1.0);
}

TEST(BlockStats, EmptyRunIsFatal)
{
    std::vector<sim::PacketStats> none;
    EXPECT_THROW(blockProbabilities(none, 3), FatalError);
}

TEST(BlockStats, OutOfRangeBlockPanics)
{
    std::vector<sim::PacketStats> packets{withBlocks({7})};
    EXPECT_THROW(blockProbabilities(packets, 3), PanicError);
}

} // namespace
