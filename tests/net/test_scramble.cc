/**
 * @file
 * Address scrambler tests: bijectivity, invertibility, and packet
 * rewriting with checksum repair.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hh"
#include "net/ipv4.hh"
#include "net/scramble.hh"

namespace
{

using namespace pb;
using namespace pb::net;

TEST(Scramble, InvertibleEverywhereSampled)
{
    AddressScrambler scrambler(0xfeed);
    Rng rng(3);
    for (int i = 0; i < 100'000; i++) {
        uint32_t addr = rng.next();
        EXPECT_EQ(scrambler.unscramble(scrambler.scramble(addr)), addr);
    }
    // Edge values.
    for (uint32_t addr : {0u, 1u, 0xffffffffu, 0x80000000u})
        EXPECT_EQ(scrambler.unscramble(scrambler.scramble(addr)), addr);
}

TEST(Scramble, NoCollisionsOnDenseRange)
{
    // Bijectivity on a dense sequential range — exactly the NLANR
    // renumbered-address pattern the paper scrambles.
    AddressScrambler scrambler;
    std::unordered_set<uint32_t> seen;
    for (uint32_t i = 0; i < 200'000; i++)
        ASSERT_TRUE(seen.insert(scrambler.scramble(0x0a000001 + i)).second)
            << i;
}

TEST(Scramble, SpreadsSequentialAddresses)
{
    // Sequential inputs must cover the address space: check the top
    // byte takes many distinct values.
    AddressScrambler scrambler;
    std::unordered_set<uint8_t> top_bytes;
    for (uint32_t i = 0; i < 10'000; i++)
        top_bytes.insert(
            static_cast<uint8_t>(scrambler.scramble(0x0a000001 + i) >> 24));
    EXPECT_GT(top_bytes.size(), 200u);
}

TEST(Scramble, KeyChangesPermutation)
{
    AddressScrambler a(1);
    AddressScrambler b(2);
    int same = 0;
    for (uint32_t i = 0; i < 1000; i++) {
        if (a.scramble(i) == b.scramble(i))
            same++;
    }
    EXPECT_LE(same, 2);
}

TEST(Scramble, PacketRewriteKeepsChecksumValid)
{
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.proto = 6;
    tuple.srcPort = 1;
    tuple.dstPort = 2;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 40);

    AddressScrambler scrambler(0x1234);
    scrambler.scramblePacket(packet);

    Ipv4ConstView ip(packet.l3());
    EXPECT_EQ(ip.src(), scrambler.scramble(0x0a000001));
    EXPECT_EQ(ip.dst(), scrambler.scramble(0x0a000002));
    EXPECT_TRUE(verifyIpv4Checksum(packet.l3(), 20));
}

TEST(Scramble, IgnoresNonIpv4Packets)
{
    Packet junk;
    junk.bytes = {0x60, 0x00, 0x00, 0x00}; // IPv6-ish nibble
    AddressScrambler scrambler;
    EXPECT_NO_THROW(scrambler.scramblePacket(junk));
    EXPECT_EQ(junk.bytes[0], 0x60);
}

} // namespace
