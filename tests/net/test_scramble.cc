/**
 * @file
 * Address scrambler tests: bijectivity, invertibility, and packet
 * rewriting with checksum repair.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hh"
#include "net/ipv4.hh"
#include "net/scramble.hh"

namespace
{

using namespace pb;
using namespace pb::net;

TEST(Scramble, InvertibleEverywhereSampled)
{
    AddressScrambler scrambler(0xfeed);
    Rng rng(3);
    for (int i = 0; i < 100'000; i++) {
        uint32_t addr = rng.next();
        EXPECT_EQ(scrambler.unscramble(scrambler.scramble(addr)), addr);
    }
    // Edge values.
    for (uint32_t addr : {0u, 1u, 0xffffffffu, 0x80000000u})
        EXPECT_EQ(scrambler.unscramble(scrambler.scramble(addr)), addr);
}

TEST(Scramble, NoCollisionsOnDenseRange)
{
    // Bijectivity on a dense sequential range — exactly the NLANR
    // renumbered-address pattern the paper scrambles.
    AddressScrambler scrambler;
    std::unordered_set<uint32_t> seen;
    for (uint32_t i = 0; i < 200'000; i++)
        ASSERT_TRUE(seen.insert(scrambler.scramble(0x0a000001 + i)).second)
            << i;
}

TEST(Scramble, SpreadsSequentialAddresses)
{
    // Sequential inputs must cover the address space: check the top
    // byte takes many distinct values.
    AddressScrambler scrambler;
    std::unordered_set<uint8_t> top_bytes;
    for (uint32_t i = 0; i < 10'000; i++)
        top_bytes.insert(
            static_cast<uint8_t>(scrambler.scramble(0x0a000001 + i) >> 24));
    EXPECT_GT(top_bytes.size(), 200u);
}

TEST(Scramble, KeyChangesPermutation)
{
    AddressScrambler a(1);
    AddressScrambler b(2);
    int same = 0;
    for (uint32_t i = 0; i < 1000; i++) {
        if (a.scramble(i) == b.scramble(i))
            same++;
    }
    EXPECT_LE(same, 2);
}

TEST(Scramble, PacketRewriteKeepsChecksumValid)
{
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.proto = 6;
    tuple.srcPort = 1;
    tuple.dstPort = 2;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 40);

    AddressScrambler scrambler(0x1234);
    scrambler.scramblePacket(packet);

    Ipv4ConstView ip(packet.l3());
    EXPECT_EQ(ip.src(), scrambler.scramble(0x0a000001));
    EXPECT_EQ(ip.dst(), scrambler.scramble(0x0a000002));
    EXPECT_TRUE(verifyIpv4Checksum(packet.l3(), 20));
}

TEST(Scramble, IgnoresNonIpv4Packets)
{
    Packet junk;
    junk.bytes = {0x60, 0x00, 0x00, 0x00}; // IPv6-ish nibble
    AddressScrambler scrambler;
    EXPECT_NO_THROW(scrambler.scramblePacket(junk));
    EXPECT_EQ(junk.bytes[0], 0x60);
}

TEST(Scramble, PacketRewriteLeavesBadChecksumBad)
{
    // Regression: the old path recomputed the checksum from scratch
    // after scrambling, silently *repairing* corruption — a packet
    // that arrived invalid must still be invalid downstream.
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.proto = 6;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 40);
    Ipv4View ip(packet.l3());
    ip.setChecksum(static_cast<uint16_t>(ip.checksum() ^ 0x00ff));
    ASSERT_FALSE(verifyIpv4Checksum(packet.l3(), 20));

    AddressScrambler scrambler(0x1234);
    scrambler.scramblePacket(packet);

    // Addresses are scrambled either way...
    EXPECT_EQ(ip.src(), scrambler.scramble(0x0a000001));
    EXPECT_EQ(ip.dst(), scrambler.scramble(0x0a000002));
    // ...but the checksum stays broken.
    EXPECT_FALSE(verifyIpv4Checksum(packet.l3(), 20));
}

TEST(Scramble, PacketRewriteUpdatesOptionHeaderIncrementally)
{
    // With options, the incremental update must keep the checksum
    // valid over the full IHL-derived header without rewriting the
    // option bytes.
    FiveTuple tuple;
    tuple.src = 0xc0a80101;
    tuple.dst = 0x08080808;
    tuple.proto = 17;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 64);
    packet.bytes.insert(packet.bytes.begin() + ipv4::minHeaderLen, 4,
                        0x01); // NOP option padding
    packet.bytes.resize(64);
    Ipv4View ip(packet.l3());
    ip.setVersionIhl(4, 6);
    ip.setTotalLen(64);
    fillIpv4Checksum(packet.l3(), 24);

    AddressScrambler scrambler(0xbeef);
    scrambler.scramblePacket(packet);

    EXPECT_EQ(ip.src(), scrambler.scramble(0xc0a80101));
    EXPECT_EQ(ip.dst(), scrambler.scramble(0x08080808));
    EXPECT_TRUE(verifyIpv4Checksum(packet.l3(), 24));
    for (unsigned i = 0; i < 4; i++)
        EXPECT_EQ(packet.bytes[ipv4::minHeaderLen + i], 0x01) << i;
}

TEST(Scramble, PacketRewriteChecksumMatchesFullRecompute)
{
    // Property: for packets that arrive valid, the RFC 1624
    // incremental path lands on exactly the checksum a full
    // recompute would produce.
    Rng rng(99);
    AddressScrambler scrambler(0xa5a5a5a5);
    for (int i = 0; i < 200; i++) {
        FiveTuple tuple;
        tuple.src = rng.next();
        tuple.dst = rng.next();
        tuple.proto = 6;
        Packet packet;
        packet.bytes = buildIpv4Packet(tuple, 40);
        scrambler.scramblePacket(packet);
        Ipv4ConstView ip(packet.l3());
        uint16_t got = ip.checksum();
        std::vector<uint8_t> copy = packet.bytes;
        fillIpv4Checksum(copy.data(), 20);
        EXPECT_EQ(got, Ipv4ConstView(copy.data()).checksum())
            << "iter " << i;
    }
}

} // namespace
