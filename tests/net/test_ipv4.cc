/**
 * @file
 * IPv4 header, checksum, and 5-tuple tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "net/ipv4.hh"

namespace
{

using namespace pb;
using namespace pb::net;

FiveTuple
sampleTuple()
{
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0xc0a80105;
    tuple.srcPort = 12345;
    tuple.dstPort = 80;
    tuple.proto = static_cast<uint8_t>(IpProto::Tcp);
    return tuple;
}

TEST(Ipv4, BuildPacketRoundTripsFields)
{
    auto bytes = buildIpv4Packet(sampleTuple(), 64, 63);
    ASSERT_EQ(bytes.size(), 64u);
    Ipv4ConstView ip(bytes.data());
    EXPECT_EQ(ip.version(), 4);
    EXPECT_EQ(ip.ihl(), 5);
    EXPECT_EQ(ip.headerLen(), 20);
    EXPECT_EQ(ip.totalLen(), 64);
    EXPECT_EQ(ip.ttl(), 63);
    EXPECT_EQ(ip.proto(), 6);
    EXPECT_EQ(ip.src(), 0x0a000001u);
    EXPECT_EQ(ip.dst(), 0xc0a80105u);
}

TEST(Ipv4, BuiltPacketHasValidChecksum)
{
    auto bytes = buildIpv4Packet(sampleTuple(), 40);
    EXPECT_TRUE(verifyIpv4Checksum(bytes.data(), 20));
    // Corrupt one byte: checksum must fail.
    bytes[ipv4::offTtl] ^= 1;
    EXPECT_FALSE(verifyIpv4Checksum(bytes.data(), 20));
}

TEST(Ipv4, ChecksumKnownVector)
{
    // Classic example header from RFC 1071 discussions.
    uint8_t hdr[20] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                       0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
                       0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
    uint16_t sum = inetChecksum(hdr, 20);
    EXPECT_EQ(sum, 0xb861);
    storeBe16(hdr + ipv4::offChecksum, sum);
    EXPECT_TRUE(verifyIpv4Checksum(hdr, 20));
}

TEST(Ipv4, ChecksumOddLength)
{
    uint8_t data[3] = {0x12, 0x34, 0x56};
    // 0x1234 + 0x5600 = 0x6834 -> ~ = 0x97cb.
    EXPECT_EQ(inetChecksum(data, 3), 0x97cb);
}

TEST(Ipv4, FillVerifyProperty)
{
    // Property: fill then verify succeeds for random headers.
    Rng rng(42);
    for (int i = 0; i < 200; i++) {
        uint8_t hdr[20];
        for (auto &byte : hdr)
            byte = static_cast<uint8_t>(rng.below(256));
        hdr[0] = 0x45;
        fillIpv4Checksum(hdr, 20);
        EXPECT_TRUE(verifyIpv4Checksum(hdr, 20)) << "iter " << i;
    }
}

TEST(Ipv4, IncrementalChecksumMatchesRecompute)
{
    // Property (RFC 1624): updating the TTL field incrementally gives
    // the same checksum as recomputing from scratch.
    Rng rng(7);
    for (int i = 0; i < 200; i++) {
        auto bytes = buildIpv4Packet(sampleTuple(), 40,
                                     static_cast<uint8_t>(
                                         rng.range(2, 255)));
        Ipv4View ip(bytes.data());
        uint16_t old_sum = ip.checksum();
        uint16_t old_word = loadBe16(bytes.data() + ipv4::offTtl);
        ip.setTtl(ip.ttl() - 1);
        uint16_t new_word = loadBe16(bytes.data() + ipv4::offTtl);
        ip.setChecksum(incrementalChecksum(old_sum, old_word, new_word));
        EXPECT_TRUE(verifyIpv4Checksum(bytes.data(), 20)) << "iter " << i;
    }
}

TEST(Ipv4, ParseFiveTuple)
{
    Packet packet;
    packet.bytes = buildIpv4Packet(sampleTuple(), 40);
    packet.l3Offset = 0;
    FiveTuple tuple;
    ASSERT_TRUE(parseFiveTuple(packet, tuple));
    EXPECT_EQ(tuple, sampleTuple());
}

TEST(Ipv4, ParseFiveTupleIcmpHasNoPorts)
{
    FiveTuple icmp = sampleTuple();
    icmp.proto = static_cast<uint8_t>(IpProto::Icmp);
    icmp.srcPort = 0;
    icmp.dstPort = 0;
    Packet packet;
    packet.bytes = buildIpv4Packet(icmp, 84);
    FiveTuple tuple;
    ASSERT_TRUE(parseFiveTuple(packet, tuple));
    EXPECT_EQ(tuple.srcPort, 0);
    EXPECT_EQ(tuple.dstPort, 0);
}

TEST(Ipv4, ParseFiveTupleRejectsGarbage)
{
    Packet packet;
    packet.bytes = {0x45, 0x00};
    FiveTuple tuple;
    EXPECT_FALSE(parseFiveTuple(packet, tuple));

    packet.bytes = buildIpv4Packet(sampleTuple(), 40);
    packet.bytes[0] = 0x65; // version 6
    EXPECT_FALSE(parseFiveTuple(packet, tuple));
}

TEST(Ipv4, BuildRejectsTinyPacket)
{
    EXPECT_THROW(buildIpv4Packet(sampleTuple(), 20), FatalError);
}

/** Rewrite a built packet as IHL=6 with one 4-byte option word. */
std::vector<uint8_t>
withOptions(uint16_t total_len, uint32_t option_word)
{
    // Build a 20-byte-header packet, then splice the option word in
    // after the fixed header and re-derive IHL/lengths/checksum.
    auto bytes = buildIpv4Packet(sampleTuple(), total_len);
    bytes.insert(bytes.begin() + ipv4::minHeaderLen, 4, 0);
    storeBe32(bytes.data() + ipv4::minHeaderLen, option_word);
    bytes.resize(total_len); // keep the advertised total length
    Ipv4View ip(bytes.data());
    ip.setVersionIhl(4, 6);
    ip.setTotalLen(total_len);
    fillIpv4Checksum(bytes.data(), 24);
    return bytes;
}

TEST(Ipv4, Rfc1812ChecksumCoversOptions)
{
    Packet packet;
    packet.bytes = withOptions(64, 0x07040404); // record-route-ish
    ASSERT_EQ(Ipv4ConstView(packet.bytes.data()).headerLen(), 24u);
    EXPECT_EQ(rfc1812Check(packet), ForwardCheck::Ok);

    // Corrupting an option byte must now fail the checksum: the sum
    // covers the full IHL-derived header, not just 20 bytes.
    packet.bytes[ipv4::minHeaderLen + 1] ^= 0x40;
    EXPECT_EQ(rfc1812Check(packet), ForwardCheck::BadChecksum);
}

TEST(Ipv4, Rfc1812AcceptsOptionHeaderWhosePrefixSumDiffers)
{
    // A valid option-bearing header almost never has a 20-byte
    // prefix that also folds to zero; the old minHeaderLen verify
    // rejected these as BadChecksum.
    Packet packet;
    packet.bytes = withOptions(64, 0x01010100); // NOP padding
    EXPECT_FALSE(verifyIpv4Checksum(packet.bytes.data(),
                                    ipv4::minHeaderLen));
    EXPECT_EQ(rfc1812Check(packet), ForwardCheck::Ok);
}

TEST(Ipv4, Rfc1812RejectsTruncatedOptionHeader)
{
    // l3Len < IHL-derived header length: BadHeader, not a read past
    // the end of the buffer.
    Packet packet;
    packet.bytes = withOptions(64, 0x01010100);
    packet.bytes.resize(22);
    EXPECT_EQ(rfc1812Check(packet), ForwardCheck::BadHeader);
}

TEST(Ipv4, Rfc1812RejectsTotalLenShorterThanHeader)
{
    // totalLen inside the header (16 < 24): malformed even though
    // the buffer itself is long enough.
    Packet packet;
    packet.bytes = withOptions(64, 0x01010100);
    Ipv4View ip(packet.bytes.data());
    ip.setTotalLen(16);
    fillIpv4Checksum(packet.bytes.data(), 24);
    EXPECT_EQ(rfc1812Check(packet), ForwardCheck::BadHeader);
}

TEST(Ipv4, ParseFiveTupleFragmentTrainSharesPortlessTuple)
{
    // A non-first fragment carries payload bytes where the L4 header
    // would sit; reading "ports" there would split one datagram's
    // fragments across garbage flows.
    Packet first;
    first.bytes = buildIpv4Packet(sampleTuple(), 40);
    // First fragment: MF set, offset 0 — the real L4 header is
    // present, so ports are read.
    storeBe16(first.bytes.data() + ipv4::offFlagsFrag, 0x2000);
    FiveTuple tuple;
    ASSERT_TRUE(parseFiveTuple(first, tuple));
    EXPECT_EQ(tuple.srcPort, sampleTuple().srcPort);
    EXPECT_EQ(tuple.dstPort, sampleTuple().dstPort);

    // Later fragments: offset != 0 — ports stay 0 regardless of the
    // bytes at the L4 offset.
    for (uint16_t frag_off : {1, 5, 0x1fff}) {
        Packet frag;
        frag.bytes = buildIpv4Packet(sampleTuple(), 40);
        storeBe16(frag.bytes.data() + ipv4::offFlagsFrag,
                  static_cast<uint16_t>(0x2000 | frag_off));
        FiveTuple frag_tuple;
        ASSERT_TRUE(parseFiveTuple(frag, frag_tuple));
        EXPECT_EQ(frag_tuple.srcPort, 0) << frag_off;
        EXPECT_EQ(frag_tuple.dstPort, 0) << frag_off;
        EXPECT_EQ(frag_tuple.src, tuple.src);
        EXPECT_EQ(frag_tuple.dst, tuple.dst);
        EXPECT_EQ(frag_tuple.proto, tuple.proto);
    }
}

TEST(Ipv4, FragOffsetAccessor)
{
    auto bytes = buildIpv4Packet(sampleTuple(), 40);
    Ipv4View ip(bytes.data());
    EXPECT_EQ(ip.fragOffset(), 0); // DF-only flags: offset bits clear
    storeBe16(bytes.data() + ipv4::offFlagsFrag, 0x2000 | 123);
    EXPECT_EQ(ip.fragOffset(), 123);
    EXPECT_EQ(Ipv4ConstView(bytes.data()).fragOffset(), 123);
}

TEST(Ipv4, HashPacketBatchEmptyAndSingle)
{
    // Degenerate batch sizes used by the dispatcher's tail.
    hashPacketBatch(nullptr, 0, nullptr, nullptr);

    Packet packet;
    packet.bytes = buildIpv4Packet(sampleTuple(), 40);
    const Packet *ptr = &packet;
    uint32_t hash = 0;
    bool valid = false;
    hashPacketBatch(&ptr, 1, &hash, &valid);
    ASSERT_TRUE(valid);
    FiveTuple tuple;
    ASSERT_TRUE(parseFiveTuple(packet, tuple));
    EXPECT_EQ(hash, flowHash(tuple));
}

} // namespace
