/**
 * @file
 * Synthetic trace generator tests: determinism, profile structure,
 * NLANR renumbering, flow statistics.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "flow/flowtable.hh"
#include "net/ipv4.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::net;

std::vector<Packet>
generate(Profile profile, uint32_t count, uint32_t seed = 1)
{
    SyntheticTrace trace(profile, count, seed);
    std::vector<Packet> packets;
    while (auto packet = trace.next())
        packets.push_back(std::move(*packet));
    return packets;
}

TEST(TraceGen, ProducesExactlyCountPackets)
{
    SyntheticTrace trace(Profile::COS, 137);
    uint32_t n = 0;
    while (trace.next())
        n++;
    EXPECT_EQ(n, 137u);
    EXPECT_FALSE(trace.next()) << "exhausted source stays exhausted";
}

TEST(TraceGen, DeterministicForSeed)
{
    auto a = generate(Profile::MRA, 500, 9);
    auto b = generate(Profile::MRA, 500, 9);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
        EXPECT_EQ(a[i].tsUsec, b[i].tsUsec) << i;
    }
    auto c = generate(Profile::MRA, 500, 10);
    EXPECT_NE(a[0].bytes, c[0].bytes) << "different seed, different trace";
}

TEST(TraceGen, AllPacketsAreValidIpv4)
{
    for (Profile profile : allProfiles) {
        auto packets = generate(profile, 300);
        for (const auto &packet : packets) {
            ASSERT_GE(packet.l3Len(), 28u);
            Ipv4ConstView ip(packet.l3());
            EXPECT_EQ(ip.version(), 4);
            EXPECT_TRUE(verifyIpv4Checksum(packet.l3(), 20));
            EXPECT_GE(ip.ttl(), 1u);
            FiveTuple tuple;
            EXPECT_TRUE(parseFiveTuple(packet, tuple));
        }
    }
}

TEST(TraceGen, LanUsesEthernetFraming)
{
    auto packets = generate(Profile::LAN, 50);
    for (const auto &packet : packets) {
        EXPECT_EQ(packet.l3Offset, 14);
        EXPECT_EQ(packet.bytes[12], 0x08);
        EXPECT_EQ(packet.bytes[13], 0x00);
    }
}

TEST(TraceGen, BackboneUsesRawFraming)
{
    for (Profile profile : {Profile::MRA, Profile::COS, Profile::ODU}) {
        auto packets = generate(profile, 50);
        for (const auto &packet : packets)
            EXPECT_EQ(packet.l3Offset, 0);
    }
}

TEST(TraceGen, NlanrRenumberingIsSequentialFrom10)
{
    // Backbone profiles renumber addresses in order of first
    // appearance starting at 10.0.0.1, like the NLANR traces.
    auto packets = generate(Profile::MRA, 2000);
    std::set<uint32_t> addrs;
    for (const auto &packet : packets) {
        Ipv4ConstView ip(packet.l3());
        addrs.insert(ip.src());
        addrs.insert(ip.dst());
    }
    ASSERT_FALSE(addrs.empty());
    EXPECT_EQ(*addrs.begin(), 0x0a000001u);
    // Dense: max - min + 1 == count.
    EXPECT_EQ(*addrs.rbegin() - *addrs.begin() + 1, addrs.size());
}

TEST(TraceGen, LanAddressesArePrivateSubnets)
{
    auto packets = generate(Profile::LAN, 500);
    for (const auto &packet : packets) {
        Ipv4ConstView ip(packet.l3());
        EXPECT_EQ(ip.src() >> 16, 0xc0a8u) << "192.168/16 expected";
        EXPECT_EQ(ip.dst() >> 16, 0xc0a8u);
    }
}

TEST(TraceGen, FlowStructureMatchesProfile)
{
    // The new-flow fraction should be roughly 1/meanFlowLen; this is
    // what drives the paper's Flow Classification occurrence split.
    for (Profile profile : {Profile::MRA, Profile::LAN}) {
        const auto &info = profileInfo(profile);
        auto packets = generate(profile, 20'000);
        flow::FlowTable table(1024);
        uint32_t new_flows = 0;
        for (const auto &packet : packets) {
            FiveTuple tuple;
            ASSERT_TRUE(parseFiveTuple(packet, tuple));
            if (table.update(tuple, packet.wireLen))
                new_flows++;
        }
        double new_frac = static_cast<double>(new_flows) / packets.size();
        double expected = 1.0 / info.meanFlowLen;
        EXPECT_GT(new_frac, expected * 0.4) << info.name.data();
        EXPECT_LT(new_frac, expected * 2.5) << info.name.data();
    }
}

TEST(TraceGen, ProtocolMixRoughlyMatchesProfile)
{
    const auto &info = profileInfo(Profile::ODU);
    auto packets = generate(Profile::ODU, 20'000);
    uint32_t tcp = 0;
    uint32_t udp = 0;
    for (const auto &packet : packets) {
        Ipv4ConstView ip(packet.l3());
        if (ip.proto() == 6)
            tcp++;
        else if (ip.proto() == 17)
            udp++;
    }
    // Flows are weighted by length, so allow generous tolerance.
    EXPECT_NEAR(static_cast<double>(tcp) / packets.size(), info.pTcp,
                0.15);
    EXPECT_NEAR(static_cast<double>(udp) / packets.size(), info.pUdp,
                0.12);
}

TEST(TraceGen, TimestampsIncrease)
{
    auto packets = generate(Profile::COS, 500);
    for (size_t i = 1; i < packets.size(); i++)
        EXPECT_GT(packets[i].tsUsec, packets[i - 1].tsUsec);
}

TEST(TraceGen, ProfileInfoTableMatchesPaper)
{
    EXPECT_EQ(profileInfo(Profile::MRA).paperPackets, 4'643'333u);
    EXPECT_EQ(profileInfo(Profile::COS).paperPackets, 2'183'310u);
    EXPECT_EQ(profileInfo(Profile::ODU).paperPackets, 784'278u);
    EXPECT_EQ(profileInfo(Profile::LAN).paperPackets, 100'000u);
    EXPECT_EQ(profileInfo(Profile::MRA).linkDesc, "OC-12c (PoS)");
}

TEST(TraceGen, ZeroCountRejected)
{
    EXPECT_THROW(SyntheticTrace(Profile::MRA, 0), FatalError);
}

} // namespace
